"""Why some of the paper's bounds cannot be improved: indistinguishability demos.

Three certificates built with Observation 2.4:

1. Theorem 1.5 — no o(n)-round algorithm 4-colors every planar graph
   (obstruction: a non-4-colorable, locally planar toroidal triangulation);
2. Theorem 2.6 — no o(sqrt(n))-round algorithm 3-colors every planar
   bipartite graph (obstruction: a 4-chromatic Klein-bottle grid whose balls
   look exactly like planar-grid balls);
3. Linial — no o(n)-round algorithm 2-colors every path (the reason
   Theorem 1.3 requires d >= 3 and Corollary 1.4 requires a >= 2).

Run with:  python examples/lower_bound_demo.py
"""

from repro.lowerbounds import (
    bipartite_grid_lower_bound,
    path_two_coloring_lower_bound,
    planar_four_coloring_lower_bound,
)


def main() -> None:
    print("1) Theorem 1.5 (planar 4-coloring needs Omega(n) rounds)")
    fisk = planar_four_coloring_lower_bound(53, rounds=7)
    print("   obstruction:", fisk.obstruction.name,
          f"({fisk.obstruction.number_of_vertices()} vertices, chi >= "
          f"{fisk.certificate.obstruction_chromatic_lower_bound})")
    print("  ", fisk.certificate.conclusion())

    print("\n2) Theorem 2.6 (planar bipartite 3-coloring needs Omega(sqrt(n)) rounds)")
    grid = bipartite_grid_lower_bound(6, rounds=4)
    print("   obstruction:", grid.obstruction.name,
          f"({grid.obstruction.number_of_vertices()} vertices)")
    print("  ", grid.certificate.conclusion())

    print("\n3) Linial (2-coloring a path needs Omega(n) rounds)")
    path = path_two_coloring_lower_bound(200, rounds=20)
    print("   obstruction:", path.obstruction.name)
    print("  ", path.certificate.conclusion())
    print("\nAll three certificates were verified by exhibiting, for every ball of")
    print("the obstruction, an isomorphic (rooted) ball in a graph of the target")
    print("class — so no algorithm of that round budget can tell them apart.")


if __name__ == "__main__":
    main()
