"""Frequency assignment on a wireless mesh via distributed list-coloring.

Scenario: sensors scattered in the plane form a planar interference graph
(Delaunay neighbours interfere).  Each sensor is only *licensed* for some
subset of the available radio channels (its list), and channel assignment
has to be computed in the network itself, without shipping the whole
topology to a coordinator — exactly the LOCAL-model list-coloring problem
that Theorem 1.3 solves: 6 licensed channels per sensor always suffice on a
planar interference graph, no matter how the licenses are distributed.

Run with:  python examples/frequency_assignment.py
"""

import random

from repro.coloring import ListAssignment, verify_list_coloring
from repro.core import color_planar_graph
from repro.graphs.generators import planar


CHANNELS = [f"ch{i}" for i in range(1, 13)]  # 12 licensed channels overall


def build_license_lists(graph, channels_per_sensor: int, seed: int) -> ListAssignment:
    rng = random.Random(seed)
    return ListAssignment(
        {v: frozenset(rng.sample(CHANNELS, channels_per_sensor)) for v in graph}
    )


def main() -> None:
    network = planar.delaunay_triangulation(200, seed=7)
    licenses = build_license_lists(network, channels_per_sensor=6, seed=7)
    print(f"interference graph: {network!r}")
    print(f"channels per sensor: 6 out of {len(CHANNELS)} licensed channels")

    result = color_planar_graph(network, lists=licenses)
    verify_list_coloring(network, result.coloring, licenses)

    usage = {}
    for channel in result.coloring.values():
        usage[channel] = usage.get(channel, 0) + 1
    print(f"assignment found in {result.rounds} charged rounds")
    print("channel usage (sensors per channel):")
    for channel in sorted(usage):
        print(f"  {channel}: {usage[channel]}")
    print("no two interfering sensors share a channel: verified")


if __name__ == "__main__":
    main()
