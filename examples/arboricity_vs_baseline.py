"""Corollary 1.4 vs the Barenboim–Elkin baseline on bounded-arboricity graphs.

The paper's headline for sparse graphs: arboricity-a graphs can be colored
with 2a colors (best possible in general), whereas the previous efficient
algorithm (Barenboim–Elkin) uses floor((2+eps)a)+1 colors.  This example
runs both on the same inputs and prints the comparison table.

Run with:  python examples/arboricity_vs_baseline.py
"""

from repro.analysis import ExperimentRunner
from repro.coloring import verify_coloring
from repro.core import color_bounded_arboricity_graph
from repro.distributed import barenboim_elkin_coloring
from repro.graphs.generators import sparse


def main() -> None:
    runner = ExperimentRunner("2a colors (Corollary 1.4) vs (2+eps)a+1 (Barenboim-Elkin)")
    for arboricity in (2, 3, 4):
        graph = sparse.union_of_random_forests(200, arboricity, seed=arboricity)

        def ours(graph=graph, arboricity=arboricity):
            result = color_bounded_arboricity_graph(graph, arboricity=arboricity)
            verify_coloring(graph, result.coloring)
            return {
                "palette": 2 * arboricity,
                "colors used": result.colors_used(),
                "charged rounds": result.rounds,
            }

        def baseline(graph=graph, arboricity=arboricity):
            result = barenboim_elkin_coloring(graph, arboricity=arboricity, epsilon=1.0)
            verify_coloring(graph, result.coloring)
            return {
                "palette": result.palette_size,
                "colors used": result.colors_used,
                "charged rounds": result.rounds,
            }

        runner.run(f"a={arboricity}, n=200", "Corollary 1.4", ours)
        runner.run(f"a={arboricity}, n=200", "Barenboim-Elkin", baseline)
    runner.print_table()


if __name__ == "__main__":
    main()
