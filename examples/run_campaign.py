"""Drive the scenario registry programmatically (the API behind `python -m repro`).

Run with:  PYTHONPATH=src python examples/run_campaign.py

The CLI is a thin shell over :func:`repro.scenarios.run_scenario` /
:func:`repro.scenarios.run_campaign`; this example shows the same three
moves from Python — inspect the registry, run one scenario with parameter
overrides, and run a small campaign into a temporary directory.
"""

import json
import tempfile
from pathlib import Path

from repro.scenarios import all_scenarios, run_campaign, run_scenario, validate_artifact


def main() -> None:
    # 1. The registry: one declarative Scenario per paper experiment.
    print(f"{len(all_scenarios())} registered scenarios:")
    for scenario in all_scenarios():
        print(f"  {scenario.name:<24} {scenario.paper_ref}")

    # 2. Run one scenario inline with overridden parameters (no artifact).
    run = run_scenario(
        "theorem13-colors",
        overrides={"sizes": (60,), "ds": (4,)},
        workers=1,
        export=False,
    )
    run.runner.print_table()
    print(f"checks passed: {run.ok}")

    # 3. Run the lower-bound campaign at smoke size and read an artifact back.
    with tempfile.TemporaryDirectory() as tmp:
        campaign = run_campaign(
            ["lowerbound-fisk", "lowerbound-grids"],
            campaign="lowerbounds",
            smoke=True,
            workers=1,
            out=tmp,
        )
        print(f"\ncampaign wrote {campaign.path.name} + "
              f"{len(campaign.runs)} member artifacts")
        artifact = json.loads(
            (Path(tmp) / "BENCH_lowerbound-fisk.json").read_text()
        )
        problems = validate_artifact(artifact, expected_name="lowerbound-fisk")
        print(f"BENCH_lowerbound-fisk.json schema problems: {problems or 'none'}")


if __name__ == "__main__":
    main()
