"""Quickstart: 6-color a planar graph with the paper's algorithm.

Run with:  PYTHONPATH=src python examples/quickstart.py

This walks one Corollary 2.3 run by hand; the registered experiments are
driven by ``python -m repro`` (see ``examples/run_campaign.py`` for the
programmatic form and ``docs/experiments.md`` for the catalog).
"""

from repro.coloring import uniform_lists, verify_list_coloring
from repro.core import color_planar_graph
from repro.graphs.generators import planar


def main() -> None:
    # A random planar triangulation on 150 vertices (mad < 6, no K_7).
    graph = planar.delaunay_triangulation(150, seed=42)
    print(f"input: {graph!r}, max degree {graph.max_degree()}")

    # Corollary 2.3(1): 6-list-coloring in a polylogarithmic number of rounds.
    result = color_planar_graph(graph)
    lists = uniform_lists(graph, 6)
    verify_list_coloring(graph, result.coloring, lists)

    print(f"colors used : {result.colors_used()} (budget 6)")
    print(f"charged rounds: {result.rounds}")
    print(f"peeling layers: {result.peeling.number_of_layers}")
    print("\nround breakdown by phase:")
    print(result.ledger.summary())


if __name__ == "__main__":
    main()
