"""An immutable, integer-indexed CSR view of a :class:`~repro.graphs.graph.Graph`.

Every hot read path of the library (degeneracy peeling, ball collection,
rich-subgraph extraction, the LOCAL simulator's port tables) ultimately asks
the same three questions — "what is the degree of v", "who are the
neighbours of v", "what is the induced subgraph on S" — and the
``dict[vertex, set]`` storage of :class:`Graph` answers them with hashing
and per-edge allocations.  :class:`FrozenGraph` answers them from two flat
arrays in *compressed sparse row* (CSR) form:

* ``offsets`` — ``offsets[i] .. offsets[i+1]`` delimits the neighbour slice
  of the vertex with index ``i`` (so ``degree(i)`` is a subtraction);
* ``neighbors`` — the concatenated, per-vertex-sorted neighbour indices.

Vertex labels stay fully general (any hashable): a frozen graph stores the
label list (index ``->`` label) and the inverse dict, so all public methods
keep speaking the caller's vertex language.  When numpy is importable the
arrays are numpy ``int64`` arrays and BFS / subgraph extraction are
vectorized; otherwise plain Python lists are used with the same semantics
(``use_numpy=False`` forces the fallback, which the parity tests exercise).

The intended workflow is *freeze at the boundary*: build or mutate a
:class:`Graph`, call :meth:`Graph.freeze` once, and hand the frozen view to
the read-heavy pipeline.  :meth:`FrozenGraph.thaw` converts back when
mutation is needed again.  Global statistics computed along the way
(degeneracy order, core numbers, the greedy mad lower bound, max degree)
are cached on the instance — immutability makes that safe.

Million-node instances bypass :class:`Graph` entirely:

* :meth:`FrozenGraph.from_edge_array` builds the CSR form straight from a
  ``(m, 2)`` integer edge ndarray (self-loops dropped, duplicates merged)
  with *identity labels* ``0..n-1``, stored as a ``range`` plus an O(1)
  index view instead of a boxed label list and a dict — the per-vertex
  label machinery would otherwise dominate memory at n = 10^6;
* :meth:`save_npz` / :meth:`load_npz` give the graph an on-disk form; the
  npz members are stored uncompressed, so :meth:`load_npz` can memory-map
  ``indptr`` / ``indices`` directly out of the zip container (falling back
  to a regular load when the file layout does not permit it).
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator
from typing import Any, Protocol, runtime_checkable

try:  # numpy is the fast backend; the library works without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

if os.environ.get("REPRO_FORCE_PYTHON_BACKEND"):  # CI runs the suite both ways
    _np = None

from repro.errors import GraphError
from repro.graphs.graph import Edge, Graph, Vertex

__all__ = ["FrozenGraph", "GraphLike", "freeze", "HAS_NUMPY", "NPZ_FORMAT_VERSION"]

HAS_NUMPY = _np is not None

#: version tag written into (and required from) the npz on-disk form
NPZ_FORMAT_VERSION = 1


class _IdentityIndex:
    """Read-only ``{i: i for i in range(n)}`` without storing n dict entries.

    The label index of an identity-labelled :class:`FrozenGraph`: supports
    exactly the mapping operations the frozen read paths use (``[]``,
    ``get``, ``in``, ``len``, iteration) with dict-equivalent semantics
    (``1.0`` hashes like ``1``, so it resolves like ``1``).
    """

    __slots__ = ("_n",)

    def __init__(self, n: int) -> None:
        self._n = n

    def _as_index(self, v) -> int | None:
        try:
            i = int(v)
        except (TypeError, ValueError):
            return None
        if v == i and 0 <= i < self._n:
            return i
        return None

    def __getitem__(self, v) -> int:
        i = self._as_index(v)
        if i is None:
            raise KeyError(v)
        return i

    def get(self, v, default=None):
        i = self._as_index(v)
        return default if i is None else i

    def __contains__(self, v) -> bool:
        return self._as_index(v) is not None

    def __len__(self) -> int:
        return self._n

    def __iter__(self):
        return iter(range(self._n))


@runtime_checkable
class GraphLike(Protocol):
    """The read-only graph surface shared by :class:`Graph` and :class:`FrozenGraph`.

    Algorithms that only *read* a graph should annotate their parameter with
    this protocol; they then transparently accept either representation and
    can opportunistically use the CSR fast paths (``isinstance(g,
    FrozenGraph)``) without giving up on plain :class:`Graph` inputs.
    """

    def vertices(self) -> list[Vertex]: ...

    def edges(self) -> list[Edge]: ...

    def neighbors(self, v: Vertex) -> Iterable[Vertex]: ...

    def degree(self, v: Vertex) -> int: ...

    def degrees(self) -> dict[Vertex, int]: ...

    def number_of_vertices(self) -> int: ...

    def number_of_edges(self) -> int: ...

    def has_edge(self, u: Vertex, v: Vertex) -> bool: ...

    def subgraph(self, vertices: Iterable[Vertex]) -> "GraphLike": ...

    def ball(self, center: Vertex, radius: int) -> set[Vertex]: ...

    def bfs_distances(
        self, source: Vertex, radius: int | None = None
    ) -> dict[Vertex, int]: ...

    def connected_components(self) -> list[set[Vertex]]: ...

    def __iter__(self) -> Iterator[Vertex]: ...

    def __len__(self) -> int: ...

    def __contains__(self, v: Vertex) -> bool: ...


class FrozenGraph:
    """An immutable CSR snapshot of an undirected simple graph.

    Instances are created with :meth:`Graph.freeze`,
    :meth:`FrozenGraph.from_graph` or :meth:`FrozenGraph.from_edges`; they
    expose the same read API as :class:`Graph` (see :class:`GraphLike`) and
    raise :class:`~repro.errors.GraphError` on any mutation attempt.
    """

    __slots__ = ("_labels", "_index", "_offsets", "_neighbors", "name",
                 "metadata", "_use_numpy", "_peel_cache", "_list_cache",
                 "_density_cache")

    def __init__(
        self,
        labels: list[Vertex],
        offsets,
        neighbors,
        name: str = "",
        metadata: dict[str, Any] | None = None,
        use_numpy: bool | None = None,
    ) -> None:
        if use_numpy is None:
            use_numpy = HAS_NUMPY
        self._use_numpy = bool(use_numpy and HAS_NUMPY)
        if isinstance(labels, range) and labels == range(len(labels)):
            # identity labels (0..n-1): keep the range and a virtual index
            # instead of materializing n boxed ints plus an n-entry dict
            self._labels = labels
            self._index = _IdentityIndex(len(labels))
        else:
            self._labels = list(labels)
            self._index = {v: i for i, v in enumerate(self._labels)}
            if len(self._index) != len(self._labels):
                raise GraphError("duplicate vertex labels in FrozenGraph")
        if self._use_numpy:
            self._offsets = _np.asarray(offsets, dtype=_np.int64)
            self._neighbors = _np.asarray(neighbors, dtype=_np.int64)
        else:
            self._offsets = list(offsets)
            self._neighbors = list(neighbors)
        self.name = name
        self.metadata: dict[str, Any] = dict(metadata or {})
        self._peel_cache: tuple | None = None
        self._list_cache: tuple[list[int], list[int]] | None = None
        self._density_cache: float | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: "Graph | FrozenGraph", use_numpy: bool | None = None) -> "FrozenGraph":
        """Freeze ``graph`` (returns it unchanged if already frozen with the same backend)."""
        if isinstance(graph, FrozenGraph):
            if use_numpy is None or bool(use_numpy and HAS_NUMPY) == graph._use_numpy:
                return graph
            return cls(
                graph._labels,
                list(graph._offsets),
                list(graph._neighbors),
                name=graph.name,
                metadata=graph.metadata,
                use_numpy=use_numpy,
            )
        labels = graph.vertices()
        index = {v: i for i, v in enumerate(labels)}
        offsets = [0] * (len(labels) + 1)
        neighbors: list[int] = []
        for i, v in enumerate(labels):
            nbrs = sorted(index[u] for u in graph.neighbors(v))
            neighbors.extend(nbrs)
            offsets[i + 1] = len(neighbors)
        return cls(
            labels,
            offsets,
            neighbors,
            name=graph.name,
            metadata=graph.metadata,
            use_numpy=use_numpy,
        )

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        vertices: Iterable[Vertex] | None = None,
        name: str = "",
        use_numpy: bool | None = None,
    ) -> "FrozenGraph":
        """Freeze an edge list directly (convenience for generators and tests)."""
        return cls.from_graph(
            Graph(vertices=vertices, edges=edges, name=name), use_numpy=use_numpy
        )

    @classmethod
    def from_edge_array(
        cls,
        n: int,
        edges,
        name: str = "",
        metadata: dict[str, Any] | None = None,
    ) -> "FrozenGraph":
        """Build an identity-labelled frozen graph from a ``(m, 2)`` edge ndarray.

        This is the streaming-generator entry point: no :class:`Graph`, no
        per-vertex dicts — the edge array is symmetrized, self-loops are
        dropped, duplicate edges are merged, and the CSR pair is produced
        with a handful of vectorized passes.  Vertex labels are ``0..n-1``
        (see :attr:`identity_labels`).  Entries must lie in ``[0, n)``.
        """
        if n < 0:
            raise GraphError(f"negative vertex count {n}")
        if not HAS_NUMPY:
            # correctness fallback for numpy-less installs; the million-node
            # path always has numpy
            g = Graph(vertices=range(n), name=name, metadata=metadata)
            for u, v in edges:
                u, v = int(u), int(v)
                if u != v:
                    g.add_edge(u, v)
            return cls.from_graph(g, use_numpy=False)
        edge_arr = _np.asarray(edges, dtype=_np.int64)
        if edge_arr.size == 0:
            edge_arr = edge_arr.reshape(0, 2)
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
            raise GraphError(
                f"edge array must have shape (m, 2), got {edge_arr.shape}"
            )
        if edge_arr.size and (int(edge_arr.min()) < 0 or int(edge_arr.max()) >= n):
            raise GraphError(f"edge endpoints must lie in [0, {n})")
        lo = _np.minimum(edge_arr[:, 0], edge_arr[:, 1])
        hi = _np.maximum(edge_arr[:, 0], edge_arr[:, 1])
        keep = lo != hi  # self-loops have no place in a simple graph
        keys = _np.sort(lo[keep] * n + hi[keep])  # n^2 < 2^63 for any real n
        if keys.size:  # drop duplicate edges (sort + adjacent-diff dedupe
            # is an order of magnitude faster than np.unique here)
            keys = keys[_np.concatenate(([True], keys[1:] != keys[:-1]))]
        lo, hi = keys // n, keys % n
        src = _np.concatenate([lo, hi])
        dst = _np.concatenate([hi, lo])
        # keys are distinct, so the default (unstable) sort is safe
        order = _np.argsort(src * n + dst)
        counts = _np.bincount(src, minlength=n)
        offsets = _np.concatenate(
            ([0], _np.cumsum(counts, dtype=_np.int64))
        ).astype(_np.int64, copy=False)
        return cls(range(n), offsets, dst[order], name=name, metadata=metadata)

    def freeze(self) -> "FrozenGraph":
        """Already frozen; returns ``self`` (mirror of :meth:`Graph.freeze`)."""
        return self

    # ------------------------------------------------------------------
    # On-disk form: npz with memory-mappable CSR members
    # ------------------------------------------------------------------
    def save_npz(self, path) -> None:
        """Write the graph as an *uncompressed* ``.npz`` file.

        Members: ``format_version``, ``n``, ``indptr``/``indices`` (the CSR
        pair, int64), plus ``name``, a JSON dict of repr-round-trippable
        metadata, and — only for non-identity labels — a ``labels_repr``
        string array.  Uncompressed storage is deliberate: it lets
        :meth:`load_npz` hand back memory-mapped CSR arrays.
        """
        if not self._use_numpy:
            raise GraphError("save_npz requires the numpy backend")
        import ast
        import json

        meta: dict[str, str] = {}
        for key, value in self.metadata.items():
            try:
                if ast.literal_eval(repr(value)) == value:
                    meta[str(key)] = repr(value)
            except (ValueError, SyntaxError):
                continue  # not repr-round-trippable: drop, never corrupt
        arrays: dict[str, Any] = {
            "format_version": _np.array([NPZ_FORMAT_VERSION], dtype=_np.int64),
            "n": _np.array([len(self._labels)], dtype=_np.int64),
            "indptr": _np.ascontiguousarray(self._offsets, dtype=_np.int64),
            "indices": _np.ascontiguousarray(self._neighbors, dtype=_np.int64),
            "name": _np.array(self.name or ""),
            "meta_json": _np.array(json.dumps(meta, sort_keys=True)),
        }
        if not self.identity_labels:
            arrays["labels_repr"] = _np.array([repr(v) for v in self._labels])
        with open(os.fspath(path), "wb") as fh:
            _np.savez(fh, **arrays)

    @classmethod
    def load_npz(cls, path, mmap: bool = True) -> "FrozenGraph":
        """Load a graph written by :meth:`save_npz`.

        With ``mmap=True`` (the default) the CSR arrays are memory-mapped
        read-only straight out of the zip container — the graph opens in
        O(1) memory and pages are shared between every process that maps
        the same file.  Falls back to a regular in-memory load when the
        members cannot be mapped (compressed or foreign files).
        """
        if not HAS_NUMPY:
            raise GraphError("load_npz requires numpy")
        import ast
        import json

        path = os.fspath(path)
        with _np.load(path, allow_pickle=False) as data:
            version = int(data["format_version"][0])
            if version > NPZ_FORMAT_VERSION:
                raise GraphError(
                    f"npz graph format {version} is newer than supported "
                    f"{NPZ_FORMAT_VERSION}"
                )
            n = int(data["n"][0])
            name = str(data["name"][()]) if "name" in data.files else ""
            metadata: dict[str, Any] = {}
            if "meta_json" in data.files:
                for key, encoded in json.loads(str(data["meta_json"][()])).items():
                    try:
                        metadata[key] = ast.literal_eval(encoded)
                    except (ValueError, SyntaxError):
                        continue
            if "labels_repr" in data.files:
                labels: Any = [ast.literal_eval(s) for s in data["labels_repr"]]
            else:
                labels = range(n)
            mapped = _npz_memmaps(path, ("indptr", "indices")) if mmap else None
            if mapped is not None:
                indptr, indices = mapped["indptr"], mapped["indices"]
            else:
                indptr, indices = data["indptr"], data["indices"]
        graph = cls(labels, indptr, indices, name=name, metadata=metadata)
        if len(graph._offsets) != n + 1:
            raise GraphError(
                f"npz graph is corrupt: indptr has {len(graph._offsets)} "
                f"entries for n={n}"
            )
        return graph

    @property
    def identity_labels(self) -> bool:
        """True when vertex labels are exactly ``0..n-1`` in index order."""
        if isinstance(self._labels, range):
            return True
        return all(type(v) is int and v == i for i, v in enumerate(self._labels))

    def thaw(self) -> Graph:
        """Convert back to a mutable :class:`Graph` (labels preserved)."""
        g = Graph(name=self.name, metadata=self.metadata)
        for v in self._labels:
            g.add_vertex(v)
        for i, v in enumerate(self._labels):
            lo, hi = int(self._offsets[i]), int(self._offsets[i + 1])
            for k in range(lo, hi):
                j = int(self._neighbors[k])
                if i < j:
                    g.add_edge(v, self._labels[j])
        return g

    # ------------------------------------------------------------------
    # Mutation guards
    # ------------------------------------------------------------------
    def _immutable(self, *_args, **_kwargs):
        raise GraphError(
            "FrozenGraph is immutable; call thaw() to get a mutable Graph"
        )

    add_vertex = add_vertices = add_edge = add_edges = _immutable
    remove_edge = remove_vertex = remove_vertices = _immutable

    # ------------------------------------------------------------------
    # Index/label translation
    # ------------------------------------------------------------------
    def index_of(self, v: Vertex) -> int:
        """The CSR index of label ``v``."""
        try:
            return self._index[v]
        except KeyError as exc:
            raise GraphError(f"vertex {v!r} not in graph") from exc

    def label_of(self, i: int) -> Vertex:
        """The label stored at CSR index ``i``."""
        return self._labels[i]

    def neighbor_slice(self, i: int):
        """Zero-copy slice of neighbour *indices* of the vertex at index ``i``."""
        return self._neighbors[int(self._offsets[i]) : int(self._offsets[i + 1])]

    def csr_arrays(self):
        """The raw CSR pair ``(offsets, neighbors)`` in backend-native form.

        Zero-copy: numpy ``int64`` arrays on the numpy backend, plain lists
        otherwise.  This is the read surface the LOCAL simulator's routing
        fabric builds on — treat the arrays as immutable.
        """
        return self._offsets, self._neighbors

    def csr_lists(self) -> tuple[list[int], list[int]]:
        """Plain-list views of ``(offsets, neighbors)`` (cached, read-only).

        Scalar indexing on lists is several times faster than on numpy
        arrays, so sequential kernels (the simulator's per-node round loop,
        the peel) should read these instead of :meth:`csr_arrays`.
        """
        return self._csr_lists()

    # ------------------------------------------------------------------
    # Basic queries (Graph-compatible)
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._index

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._labels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        backend = "numpy" if self._use_numpy else "python"
        return (
            f"<FrozenGraph{label} n={self.number_of_vertices()} "
            f"m={self.number_of_edges()} backend={backend}>"
        )

    def vertices(self) -> list[Vertex]:
        return list(self._labels)

    def edges(self) -> list[Edge]:
        """Each edge exactly once, endpoints ordered by vertex index."""
        labels = self._labels
        result: list[Edge] = []
        offsets, neighbors = self._offsets, self._neighbors
        for i, v in enumerate(labels):
            for k in range(int(offsets[i]), int(offsets[i + 1])):
                j = int(neighbors[k])
                if i < j:
                    result.append((v, labels[j]))
        return result

    def neighbors(self, v: Vertex) -> list[Vertex]:
        """Neighbour *labels* of ``v`` (a fresh list; indices via :meth:`neighbor_slice`)."""
        i = self.index_of(v)
        labels = self._labels
        return [labels[int(j)] for j in self.neighbor_slice(i)]

    def degree(self, v: Vertex) -> int:
        i = self.index_of(v)
        return int(self._offsets[i + 1] - self._offsets[i])

    def degrees(self) -> dict[Vertex, int]:
        offsets = self._offsets
        return {
            v: int(offsets[i + 1] - offsets[i])
            for i, v in enumerate(self._labels)
        }

    def degree_array(self):
        """Per-index degrees (numpy array or list, matching the backend)."""
        if self._use_numpy:
            return _np.diff(self._offsets)
        return [
            self._offsets[i + 1] - self._offsets[i]
            for i in range(len(self._labels))
        ]

    def max_degree(self) -> int:
        if not self._labels:
            return 0
        degs = self.degree_array()
        return int(degs.max()) if self._use_numpy else max(degs)

    def min_degree(self) -> int:
        if not self._labels:
            return 0
        degs = self.degree_array()
        return int(degs.min()) if self._use_numpy else min(degs)

    def number_of_vertices(self) -> int:
        return len(self._labels)

    def number_of_edges(self) -> int:
        return len(self._neighbors) // 2

    def average_degree(self) -> float:
        n = len(self._labels)
        if n == 0:
            return 0.0
        return len(self._neighbors) / n

    def is_empty(self) -> bool:
        return not self._labels

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        iu = self._index.get(u)
        iv = self._index.get(v)
        if iu is None or iv is None:
            return False
        lo, hi = int(self._offsets[iu]), int(self._offsets[iu + 1])
        if hi - lo > int(self._offsets[iv + 1] - self._offsets[iv]):
            iu, iv = iv, iu
            lo, hi = int(self._offsets[iu]), int(self._offsets[iu + 1])
        # binary search in the sorted neighbour slice
        neighbors = self._neighbors
        while lo < hi:
            mid = (lo + hi) // 2
            val = int(neighbors[mid])
            if val == iv:
                return True
            if val < iv:
                lo = mid + 1
            else:
                hi = mid
        return False

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "FrozenGraph":
        """Frozen graphs are immutable; copy returns ``self``."""
        return self

    def subgraph(self, vertices: Iterable[Vertex]) -> "FrozenGraph":
        """Induced subgraph as a new :class:`FrozenGraph`.

        Unknown labels are silently ignored, matching
        :meth:`Graph.subgraph`.  The kept vertices appear in the order of
        the parent graph's indices (deterministic regardless of the input
        iteration order).
        """
        index = self._index
        keep_idx = sorted({index[v] for v in vertices if v in index})
        labels = self._labels
        new_labels = [labels[i] for i in keep_idx]
        n = len(labels)
        # the vectorized path scans every edge of the *parent* graph; for
        # small keep sets (balls, leaf blocks) the scalar walk over just
        # the kept rows is far cheaper
        if self._use_numpy and len(keep_idx) * 16 < n:
            offsets_l, neighbors_l = self._csr_lists()
            remap_small = {old: new for new, old in enumerate(keep_idx)}
            small_offsets = [0] * (len(keep_idx) + 1)
            small_neighbors: list[int] = []
            for new_i, old_i in enumerate(keep_idx):
                for k in range(offsets_l[old_i], offsets_l[old_i + 1]):
                    mapped = remap_small.get(neighbors_l[k])
                    if mapped is not None:
                        small_neighbors.append(mapped)
                small_offsets[new_i + 1] = len(small_neighbors)
            return FrozenGraph(
                new_labels, small_offsets, small_neighbors,
                name=self.name, metadata=self.metadata, use_numpy=True,
            )
        if self._use_numpy:
            mask = _np.zeros(n, dtype=bool)
            keep_arr = _np.asarray(keep_idx, dtype=_np.int64)
            mask[keep_arr] = True
            remap = _np.full(n, -1, dtype=_np.int64)
            remap[keep_arr] = _np.arange(len(keep_idx), dtype=_np.int64)
            degs = _np.diff(self._offsets)
            src = _np.repeat(_np.arange(n, dtype=_np.int64), degs)
            edge_keep = mask[src] & mask[self._neighbors]
            new_src = remap[src[edge_keep]]
            new_dst = remap[self._neighbors[edge_keep]]
            counts = _np.bincount(new_src, minlength=len(keep_idx))
            new_offsets = _np.concatenate(
                ([0], _np.cumsum(counts, dtype=_np.int64))
            )
            return FrozenGraph(
                new_labels, new_offsets, new_dst,
                name=self.name, metadata=self.metadata, use_numpy=True,
            )
        remap_d = {old: new for new, old in enumerate(keep_idx)}
        new_offsets = [0] * (len(keep_idx) + 1)
        new_neighbors: list[int] = []
        for new_i, old_i in enumerate(keep_idx):
            for k in range(self._offsets[old_i], self._offsets[old_i + 1]):
                j = self._neighbors[k]
                mapped = remap_d.get(j)
                if mapped is not None:
                    new_neighbors.append(mapped)
            new_offsets[new_i + 1] = len(new_neighbors)
        return FrozenGraph(
            new_labels, new_offsets, new_neighbors,
            name=self.name, metadata=self.metadata, use_numpy=False,
        )

    # ------------------------------------------------------------------
    # BFS / balls / components
    # ------------------------------------------------------------------
    # below this frontier size the scalar loop beats numpy's per-call
    # overhead (fancy indexing + unique on tiny arrays)
    _VECTORIZE_FRONTIER = 256

    def _csr_lists(self) -> tuple[list[int], list[int]]:
        """Plain-list views of (offsets, neighbors), cached.

        Scalar element access on Python lists is several times faster than
        on numpy arrays (no boxing per item), so the sequential kernels
        (peel, small-frontier BFS) always run on these.
        """
        if self._list_cache is None:
            if self._use_numpy:
                self._list_cache = (self._offsets.tolist(), self._neighbors.tolist())
            else:
                self._list_cache = (self._offsets, self._neighbors)
        return self._list_cache

    def _bfs_levels_idx(self, source_idx: int, radius: int | None) -> list[list[int]]:
        """Single-source BFS frontiers by index (see :meth:`multi_source_levels`)."""
        return self.multi_source_levels([source_idx], radius)

    def multi_source_levels(
        self, sources: Iterable[int], radius: int | None = None
    ) -> list[list[int]]:
        """BFS by index from several sources at once; returns the frontiers.

        ``levels[k]`` holds the indices at distance exactly ``k`` from the
        source set (``levels[0]`` is the deduplicated source list, in input
        order).  Adaptive: small frontiers expand with a scalar loop over
        the cached list views; once a frontier outgrows
        ``_VECTORIZE_FRONTIER`` (and numpy is available) the level
        expansion switches to one vectorized gather per level.
        """
        n = len(self._labels)
        offsets, neighbors = self._csr_lists()
        visited = bytearray(n)
        frontier: list[int] = []
        for i in sources:
            i = int(i)
            if not visited[i]:
                visited[i] = 1
                frontier.append(i)
        if not frontier:
            return []
        levels = [frontier]
        depth = 0
        np_visited = None
        while frontier and (radius is None or depth < radius):
            if self._use_numpy and len(frontier) >= self._VECTORIZE_FRONTIER:
                if np_visited is None:
                    np_visited = _np.frombuffer(visited, dtype=_np.uint8).astype(bool)
                nxt = self._expand_frontier_np(frontier, np_visited)
                for j in nxt:  # keep the scalar bitmap in sync for later levels
                    visited[j] = 1
            else:
                nxt = []
                append = nxt.append
                for i in frontier:
                    for k in range(offsets[i], offsets[i + 1]):
                        j = neighbors[k]
                        if not visited[j]:
                            visited[j] = 1
                            append(j)
                if np_visited is not None and nxt:
                    np_visited[nxt] = True
            if not nxt:
                break
            frontier = nxt
            levels.append(frontier)
            depth += 1
        return levels

    def _expand_frontier_np(self, frontier: list[int], visited) -> list[int]:
        """One vectorized BFS level: gather all neighbour slices at once.

        ``visited`` is a numpy bool array updated in place; the caller
        mirrors every update into its scalar bitmap so both views stay
        authoritative whichever expansion mode the next level picks.
        """
        front = _np.asarray(frontier, dtype=_np.int64)
        starts = self._offsets[front]
        counts = self._offsets[front + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return []
        shifts = _np.repeat(
            starts - _np.concatenate(([0], _np.cumsum(counts)[:-1])), counts
        )
        nbrs = self._neighbors[_np.arange(total, dtype=_np.int64) + shifts]
        nbrs = nbrs[~visited[nbrs]]
        if nbrs.size == 0:
            return []
        nbrs = _np.unique(nbrs)
        visited[nbrs] = True
        return nbrs.tolist()

    def bfs_distances(
        self, source: Vertex, radius: int | None = None
    ) -> dict[Vertex, int]:
        """Breadth-first distances from ``source`` (optionally truncated)."""
        source_idx = self.index_of(source)
        labels = self._labels
        distances: dict[Vertex, int] = {}
        for depth, frontier in enumerate(self._bfs_levels_idx(source_idx, radius)):
            for i in frontier:
                distances[labels[int(i)]] = depth
        return distances

    def ball(self, center: Vertex, radius: int) -> set[Vertex]:
        """``B_radius(center)`` as a set of labels."""
        center_idx = self.index_of(center)
        labels = self._labels
        result: set[Vertex] = set()
        for frontier in self._bfs_levels_idx(center_idx, radius):
            for i in frontier:
                result.add(labels[int(i)])
        return result

    def ball_indices(self, center_idx: int, radius: int) -> list[int]:
        """``B_radius`` of the vertex at ``center_idx`` as a list of indices."""
        out: list[int] = []
        for frontier in self._bfs_levels_idx(center_idx, radius):
            out.extend(int(i) for i in frontier)
        return out

    def all_balls(self, radius: int) -> dict[Vertex, set[Vertex]]:
        """The ball of *every* vertex at the given radius, in one sweep.

        Instead of n independent BFS runs, every vertex carries a bitmask of
        its current ball (a Python big-int over the n vertex indices) and
        each round replaces it with the OR of its own and its neighbours'
        masks — ``ball_{r}(v) = union of ball_{r-1}(N[v])``.  The ORs run at
        C speed on machine words, which beats per-source BFS by a wide
        margin on the dense output this produces (every vertex appears in
        many balls).  Masks are decoded with numpy when available and with
        a per-byte bit loop otherwise.
        """
        labels = self._labels
        n = len(labels)
        if n == 0:
            return {}
        offsets, neighbors = self._csr_lists()
        masks = [1 << i for i in range(n)]
        for _ in range(max(0, radius)):
            previous = masks
            masks = []
            append = masks.append
            for i in range(n):
                acc = previous[i]
                for j in neighbors[offsets[i] : offsets[i + 1]]:
                    acc |= previous[j]
                append(acc)
            if masks == previous:  # reached the whole component everywhere
                break
        # Vertices with equal masks (same component once the radius reaches
        # its eccentricity — the common case at the paper's c*log n radius)
        # share one decoded set object.  Callers treat balls as read-only.
        nbytes = (n + 7) // 8
        get_label = labels.__getitem__
        decoded: dict[int, set[Vertex]] = {}
        result: dict[Vertex, set[Vertex]] = {}
        unique_indices: list[int] = []
        for i, mask in enumerate(masks):
            if mask not in decoded:
                decoded[mask] = set()  # placeholder, filled below
                unique_indices.append(i)
        if self._use_numpy:
            # batch decode of the unique masks: stack them into one byte
            # matrix, locate the nonzero bytes, and expand each through a
            # 256-entry bit-position table — work is proportional to the
            # output, not to n * n bits
            buf = b"".join(masks[i].to_bytes(nbytes, "little") for i in unique_indices)
            arr = _np.frombuffer(buf, dtype=_np.uint8).reshape(len(unique_indices), nbytes)
            rows, cols = _np.nonzero(arr)  # row-major: sorted by mask index
            vals = arr[rows, cols]
            counts = _BYTE_POPCOUNT[vals]
            total = int(counts.sum())
            starts = _BYTE_TABLE_START[vals]
            shifts = _np.repeat(
                starts - _np.concatenate(([0], _np.cumsum(counts)[:-1])), counts
            )
            bitpos = _BYTE_TABLE_FLAT[_np.arange(total, dtype=_np.int64) + shifts]
            members = _np.repeat(cols.astype(_np.int64) * 8, counts) + bitpos
            per_row = _np.bincount(
                _np.repeat(rows, counts), minlength=len(unique_indices)
            )
            boundaries = _np.cumsum(per_row)[:-1]
            identity_labels = self.identity_labels
            for i, chunk in zip(unique_indices, _np.split(members, boundaries)):
                values = chunk.tolist()
                decoded[masks[i]] = (
                    set(values) if identity_labels else set(map(get_label, values))
                )
        else:
            for i in unique_indices:
                members_set: set[Vertex] = set()
                mask = masks[i]
                base = 0
                while mask:
                    byte = mask & 0xFF
                    while byte:
                        low = byte & -byte
                        members_set.add(get_label(base + low.bit_length() - 1))
                        byte ^= low
                    mask >>= 8
                    base += 8
                decoded[masks[i]] = members_set
        for i, v in enumerate(labels):
            result[v] = decoded[masks[i]]
        return result

    def connected_components(self) -> list[set[Vertex]]:
        n = len(self._labels)
        labels = self._labels
        seen = bytearray(n)
        components: list[set[Vertex]] = []
        for start in range(n):
            if seen[start]:
                continue
            component: set[Vertex] = set()
            for frontier in self._bfs_levels_idx(start, None):
                for i in frontier:
                    i = int(i)
                    seen[i] = 1
                    component.add(labels[i])
            components.append(component)
        return components

    def is_connected(self) -> bool:
        if not self._labels:
            return True
        first = self._bfs_levels_idx(0, None)
        reached = sum(len(level) for level in first)
        return reached == len(self._labels)

    # ------------------------------------------------------------------
    # Cached global statistics: one O(n + m) peel gives them all
    # ------------------------------------------------------------------
    def _peel(self) -> tuple[int, list[int], list[int]]:
        """Min-degree peel in O(n + m) (Matula–Beck bucket algorithm).

        Returns ``(degeneracy, order, cores)`` where ``order`` is the
        removal order (CSR indices) and ``cores`` the per-index core
        numbers.  Note the bucket algorithm's clamped degrees process
        vertices in min-*core* order, which is a valid degeneracy ordering
        but not an exact min-residual-degree order — the density bound of
        :meth:`peel_density_lower_bound` therefore runs its own exact peel.
        Cached — frozen graphs cannot change under us.
        """
        if self._peel_cache is not None:
            return self._peel_cache
        n = len(self._labels)
        if n == 0:
            self._peel_cache = (0, [], [])
            return self._peel_cache
        # the peel is inherently sequential: plain lists beat ndarray
        # element access inside the loop
        offsets, neighbors = self._csr_lists()
        deg = [offsets[i + 1] - offsets[i] for i in range(n)]
        max_deg = max(deg)
        # counting sort of the vertices by degree
        bin_start = [0] * (max_deg + 2)
        for d in deg:
            bin_start[d + 1] += 1
        for d in range(1, max_deg + 2):
            bin_start[d] += bin_start[d - 1]
        next_slot = list(bin_start[: max_deg + 1])
        pos = [0] * n
        vert = [0] * n
        for v in range(n):
            slot = next_slot[deg[v]]
            pos[v] = slot
            vert[slot] = v
            next_slot[deg[v]] = slot + 1
        bins = list(bin_start[: max_deg + 1])
        cur = list(deg)  # bucket degrees (clamped at the processing level)
        cores = [0] * n
        order: list[int] = []
        degen = 0
        for i in range(n):
            v = vert[i]
            dv = cur[v]
            if dv > degen:
                degen = dv
            cores[v] = degen
            order.append(v)
            for k in range(offsets[v], offsets[v + 1]):
                u = neighbors[k]
                if pos[u] > i:
                    du = cur[u]
                    if du > dv:
                        # move u to the front of its bucket, then shrink it
                        pu = pos[u]
                        pw = bins[du]
                        w = vert[pw]
                        if u != w:
                            vert[pu] = w
                            vert[pw] = u
                            pos[u] = pw
                            pos[w] = pu
                        bins[du] = pw + 1
                        cur[u] = du - 1
        self._peel_cache = (degen, order, cores)
        return self._peel_cache

    def _peel_density(self) -> float:
        """Exact greedy min-degree peel tracking the best suffix density.

        Unlike :meth:`_peel`, ties and decrements use true residual degrees
        (lazy-deletion heap), which is what the classical 2-approximation
        argument needs: the returned value is always >= mad(G) / 2.
        O(m log n); cached.
        """
        import heapq

        if self._density_cache is not None:
            return self._density_cache
        n = len(self._labels)
        if n == 0:
            self._density_cache = 0.0
            return self._density_cache
        offsets, neighbors = self._csr_lists()
        deg = [offsets[i + 1] - offsets[i] for i in range(n)]
        m = len(neighbors) // 2
        best = 2.0 * m / n
        heap = list(zip(deg, range(n)))
        heapq.heapify(heap)
        removed = bytearray(n)
        remaining = n
        while heap:
            d, v = heapq.heappop(heap)
            if removed[v] or d != deg[v]:
                continue  # stale entry
            removed[v] = 1
            m -= deg[v]
            remaining -= 1
            if remaining:
                density = 2.0 * m / remaining
                if density > best:
                    best = density
            for k in range(offsets[v], offsets[v + 1]):
                u = neighbors[k]
                if not removed[u]:
                    deg[u] -= 1
                    heapq.heappush(heap, (deg[u], u))
        self._density_cache = best
        return best

    def degeneracy(self) -> int:
        """The degeneracy (cached)."""
        return self._peel()[0]

    def degeneracy_ordering(self) -> tuple[int, list[Vertex]]:
        """``(degeneracy, removal order)`` with the order given as labels."""
        degen, order, _cores = self._peel()
        labels = self._labels
        return degen, [labels[i] for i in order]

    def core_numbers(self) -> dict[Vertex, int]:
        """Core number of every vertex (cached)."""
        _degen, _order, cores = self._peel()
        return {v: cores[i] for i, v in enumerate(self._labels)}

    def peel_density_lower_bound(self) -> float:
        """Greedy mad lower bound: best suffix density of an exact
        min-degree peel (always at least ``mad(G) / 2``)."""
        return self._peel_density()

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self._labels)
        g.add_edges_from(self.edges())
        return g

    # ------------------------------------------------------------------
    # Equality / pickling
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, FrozenGraph):
            if set(self._labels) != set(other._labels):
                return False
            return all(
                set(self.neighbors(v)) == set(other.neighbors(v))
                for v in self._labels
            )
        if isinstance(other, Graph):
            if set(self._labels) != set(other.vertices()):
                return False
            return all(
                set(self.neighbors(v)) == set(other.neighbors(v))
                for v in self._labels
            )
        return NotImplemented

    def __hash__(self) -> int:  # identity hash, like Graph
        return id(self)

    def __getstate__(self):
        # CSR arrays pickle natively (raw int64 buffers, no per-element
        # boxing) and identity labels travel as just the vertex count —
        # keeps worker handoff cheap even when a graph must be pickled
        if self._use_numpy:
            offsets = _np.ascontiguousarray(self._offsets)
            neighbors = _np.ascontiguousarray(self._neighbors)
        else:
            offsets, neighbors = list(self._offsets), list(self._neighbors)
        identity = isinstance(self._labels, range)
        return {
            "labels": None if identity else list(self._labels),
            "n": len(self._labels),
            "offsets": offsets,
            "neighbors": neighbors,
            "name": self.name,
            "metadata": self.metadata,
            "use_numpy": self._use_numpy,
        }

    def __setstate__(self, state):
        labels = state["labels"]
        if labels is None:
            labels = range(state["n"])
        self.__init__(
            labels,
            state["offsets"],
            state["neighbors"],
            name=state["name"],
            metadata=state["metadata"],
            use_numpy=state["use_numpy"],
        )


def _npz_memmaps(path: str, members: tuple[str, ...]):
    """Memory-map uncompressed ``.npy`` members of an npz zip file.

    ``np.load(..., mmap_mode=...)`` silently ignores the mmap request for
    npz containers, so this locates each member's data inside the zip by
    hand: the member must be stored (``ZIP_STORED``), its local file
    header gives the payload offset, and the npy header at that offset
    gives dtype/shape/order for an ``np.memmap`` window.  Returns ``None``
    whenever the file deviates from that layout (compressed members,
    unexpected npy versions) — callers fall back to a regular load.
    """
    import zipfile

    out: dict[str, Any] = {}
    try:
        with zipfile.ZipFile(path) as zf, open(path, "rb") as fh:
            for member in members:
                try:
                    info = zf.getinfo(member + ".npy")
                except KeyError:
                    return None
                if info.compress_type != zipfile.ZIP_STORED:
                    return None
                fh.seek(info.header_offset)
                local = fh.read(30)
                if len(local) != 30 or local[:4] != b"PK\x03\x04":
                    return None
                name_len = int.from_bytes(local[26:28], "little")
                extra_len = int.from_bytes(local[28:30], "little")
                fh.seek(info.header_offset + 30 + name_len + extra_len)
                version = _np.lib.format.read_magic(fh)
                if version == (1, 0):
                    shape, fortran, dtype = _np.lib.format.read_array_header_1_0(fh)
                elif version == (2, 0):
                    shape, fortran, dtype = _np.lib.format.read_array_header_2_0(fh)
                else:
                    return None
                if dtype.hasobject:
                    return None
                out[member] = _np.memmap(
                    path,
                    dtype=dtype,
                    mode="r",
                    shape=shape,
                    order="F" if fortran else "C",
                    offset=fh.tell(),
                )
    except (OSError, ValueError, zipfile.BadZipFile):
        return None
    return out


def freeze(graph: GraphLike, use_numpy: bool | None = None) -> FrozenGraph:
    """Freeze any :class:`GraphLike` into a :class:`FrozenGraph` (idempotent)."""
    return FrozenGraph.from_graph(graph, use_numpy=use_numpy)


if HAS_NUMPY:
    # byte-value -> bit positions lookup used by the all_balls batch decode
    _BYTE_POPCOUNT = _np.array(
        [bin(b).count("1") for b in range(256)], dtype=_np.int64
    )
    _BYTE_TABLE_FLAT = _np.array(
        [bit for b in range(256) for bit in range(8) if b >> bit & 1],
        dtype=_np.int64,
    )
    _BYTE_TABLE_START = _np.concatenate(
        ([0], _np.cumsum(_BYTE_POPCOUNT)[:-1])
    )
