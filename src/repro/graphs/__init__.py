"""Graph substrate: data structures, generators and structural properties.

Two graph representations are provided: the mutable, dict-of-sets
:class:`Graph` (construction and editing) and the immutable CSR
:class:`FrozenGraph` (hot read paths); convert with :meth:`Graph.freeze` /
:meth:`FrozenGraph.thaw`.  Read-only algorithms accept either — see the
:class:`GraphLike` protocol.
"""

from repro.graphs.frozen import FrozenGraph, GraphLike, freeze
from repro.graphs.graph import Edge, Graph, Vertex

__all__ = ["Graph", "Vertex", "Edge", "FrozenGraph", "GraphLike", "freeze"]
