"""Graph substrate: data structure, generators and structural properties."""

from repro.graphs.graph import Edge, Graph, Vertex

__all__ = ["Graph", "Vertex", "Edge"]
