"""A lightweight undirected simple-graph data structure.

The library uses its own :class:`Graph` class rather than a raw
``networkx.Graph`` for three reasons:

* the LOCAL-model simulator needs stable, explicit vertex identifiers and a
  cheap way to take induced subgraphs and balls without copying attribute
  dictionaries;
* most algorithms in the paper repeatedly query adjacency sets and degrees,
  which are fastest on plain ``dict[vertex, set]`` storage;
* graph generators want to attach light metadata (planar coordinates,
  embedding faces, the surface the graph lives on) without the overhead of
  per-edge attribute dicts.

Conversion to and from ``networkx`` is provided (:meth:`Graph.to_networkx`,
:meth:`Graph.from_networkx`) for algorithms where networkx already offers a
well-tested implementation (planarity testing, isomorphism, max-flow).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Any

import networkx as nx

from repro.errors import GraphError

Vertex = Hashable
Edge = tuple[Vertex, Vertex]

__all__ = ["Graph", "Vertex", "Edge"]


class Graph:
    """An undirected simple graph backed by adjacency sets.

    Vertices may be any hashable object.  Self-loops and parallel edges are
    rejected, matching the setting of the paper (simple graphs).

    ``Graph`` is the *mutable* representation: cheap to build and edit, but
    every adjacency query pays for hashing.  Read-heavy pipelines (degeneracy
    peeling, ball collection, the LOCAL simulator, anything at n >= a few
    thousand) should call :meth:`freeze` once construction is done and hand
    the resulting :class:`~repro.graphs.frozen.FrozenGraph` — an immutable
    CSR snapshot with O(1) degrees, array-backed neighbour slices, vectorized
    BFS/subgraphs and cached global statistics — to the algorithm.  Freezing
    costs one O(n + m log d) pass; ``FrozenGraph.thaw()`` converts back when
    mutation is needed again.  Algorithms in :mod:`repro.graphs.properties`,
    :mod:`repro.core` and :mod:`repro.local` accept either representation.

    Parameters
    ----------
    vertices:
        Optional iterable of initial vertices.
    edges:
        Optional iterable of ``(u, v)`` pairs; endpoints are added
        automatically.
    name:
        Optional human-readable name used in ``repr`` and experiment tables.
    """

    __slots__ = ("_adj", "name", "metadata")

    def __init__(
        self,
        vertices: Iterable[Vertex] | None = None,
        edges: Iterable[Edge] | None = None,
        name: str = "",
        metadata: Mapping[str, Any] | None = None,
    ) -> None:
        self._adj: dict[Vertex, set[Vertex]] = {}
        self.name = name
        self.metadata: dict[str, Any] = dict(metadata or {})
        if vertices is not None:
            for v in vertices:
                self.add_vertex(v)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        """Add vertex ``v`` (a no-op if already present)."""
        if v not in self._adj:
            self._adj[v] = set()

    def add_vertices(self, vertices: Iterable[Vertex]) -> None:
        for v in vertices:
            self.add_vertex(v)

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the edge ``{u, v}``, adding missing endpoints.

        Raises
        ------
        GraphError
            If ``u == v`` (self-loops are not allowed).
        """
        if u == v:
            raise GraphError(f"self-loops are not allowed (vertex {u!r})")
        self.add_vertex(u)
        self.add_vertex(v)
        self._adj[u].add(v)
        self._adj[v].add(u)

    def add_edges(self, edges: Iterable[Edge]) -> None:
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        try:
            self._adj[u].remove(v)
            self._adj[v].remove(u)
        except KeyError as exc:
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph") from exc

    def remove_vertex(self, v: Vertex) -> None:
        try:
            neighbors = self._adj.pop(v)
        except KeyError as exc:
            raise GraphError(f"vertex {v!r} not in graph") from exc
        for u in neighbors:
            self._adj[u].discard(v)

    def remove_vertices(self, vertices: Iterable[Vertex]) -> None:
        for v in list(vertices):
            self.remove_vertex(v)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Graph{label} n={self.number_of_vertices()} "
            f"m={self.number_of_edges()}>"
        )

    def vertices(self) -> list[Vertex]:
        """Return the vertices in insertion order."""
        return list(self._adj)

    def edges(self) -> list[Edge]:
        """Return each edge exactly once (endpoints in discovery order).

        Deduplication compares the insertion indices of the endpoints
        instead of allocating a ``frozenset`` per edge: every edge ``{u, v}``
        is reported from its earlier-inserted endpoint.
        """
        index = {v: i for i, v in enumerate(self._adj)}
        result: list[Edge] = []
        for u, nbrs in self._adj.items():
            iu = index[u]
            for v in nbrs:
                if iu < index[v]:
                    result.append((u, v))
        return result

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, v: Vertex) -> set[Vertex]:
        """Return the neighbour set of ``v`` (a copy is *not* made)."""
        try:
            return self._adj[v]
        except KeyError as exc:
            raise GraphError(f"vertex {v!r} not in graph") from exc

    def degree(self, v: Vertex) -> int:
        return len(self.neighbors(v))

    def degrees(self) -> dict[Vertex, int]:
        return {v: len(nbrs) for v, nbrs in self._adj.items()}

    def max_degree(self) -> int:
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def min_degree(self) -> int:
        if not self._adj:
            return 0
        return min(len(nbrs) for nbrs in self._adj.values())

    def number_of_vertices(self) -> int:
        return len(self._adj)

    def number_of_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def average_degree(self) -> float:
        """Average degree ``2|E|/|V|`` (0 for the empty graph)."""
        n = self.number_of_vertices()
        if n == 0:
            return 0.0
        return 2.0 * self.number_of_edges() / n

    def is_empty(self) -> bool:
        return not self._adj

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        g = Graph(name=self.name, metadata=self.metadata)
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        return g

    def subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """Return the subgraph induced by ``vertices``.

        Vertices not present in the graph are silently ignored, which is
        convenient when intersecting vertex sets coming from different
        peeling layers.
        """
        keep = {v for v in vertices if v in self._adj}
        g = Graph(name=self.name, metadata=self.metadata)
        g._adj = {v: self._adj[v] & keep for v in keep}
        return g

    def connected_components(self) -> list[set[Vertex]]:
        """Return the vertex sets of the connected components."""
        seen: set[Vertex] = set()
        components: list[set[Vertex]] = []
        for start in self._adj:
            if start in seen:
                continue
            component = {start}
            queue = deque([start])
            while queue:
                u = queue.popleft()
                for w in self._adj[u]:
                    if w not in component:
                        component.add(w)
                        queue.append(w)
            seen |= component
            components.append(component)
        return components

    def is_connected(self) -> bool:
        if not self._adj:
            return True
        return len(self.connected_components()) == 1

    def bfs_distances(
        self, source: Vertex, radius: int | None = None
    ) -> dict[Vertex, int]:
        """Breadth-first distances from ``source`` (optionally truncated).

        Parameters
        ----------
        source:
            Start vertex.
        radius:
            If given, only vertices at distance at most ``radius`` are
            returned.
        """
        if source not in self._adj:
            raise GraphError(f"vertex {source!r} not in graph")
        distances = {source: 0}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            du = distances[u]
            if radius is not None and du >= radius:
                continue
            for w in self._adj[u]:
                if w not in distances:
                    distances[w] = du + 1
                    queue.append(w)
        return distances

    def ball(self, center: Vertex, radius: int) -> set[Vertex]:
        """Return ``B_r(center)``: vertices at distance at most ``radius``."""
        return set(self.bfs_distances(center, radius))

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def freeze(self, use_numpy: bool | None = None):
        """Return an immutable CSR snapshot (:class:`~repro.graphs.frozen.FrozenGraph`).

        Freeze once at the boundary between construction and computation:
        the frozen view answers degree/neighbour/subgraph/ball queries from
        flat arrays and caches global statistics (degeneracy order, core
        numbers, greedy mad bound) across calls.  ``use_numpy=False`` forces
        the pure-Python array backend (mainly for tests).
        """
        from repro.graphs.frozen import FrozenGraph

        return FrozenGraph.from_graph(self, use_numpy=use_numpy)

    def to_networkx(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(self._adj)
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, g: nx.Graph, name: str = "") -> "Graph":
        graph = cls(name=name or str(g.name or ""))
        graph.add_vertices(g.nodes())
        graph.add_edges(g.edges())
        return graph

    @classmethod
    def from_edges(cls, edges: Iterable[Edge], name: str = "") -> "Graph":
        return cls(edges=edges, name=name)

    # ------------------------------------------------------------------
    # Relabeling
    # ------------------------------------------------------------------
    def relabel_to_integers(self) -> tuple["Graph", dict[Vertex, int]]:
        """Relabel vertices as ``1..n`` (the identifier space of the paper).

        Returns the relabelled graph and the mapping ``old -> new``.  The
        LOCAL model of the paper assumes identifiers are integers between 1
        and n; generators often use tuples (grid coordinates), so the
        simulator relabels before running.
        """
        mapping = {v: i + 1 for i, v in enumerate(self._adj)}
        g = Graph(name=self.name, metadata=self.metadata)
        for v in self._adj:
            g.add_vertex(mapping[v])
        for u, v in self.edges():
            g.add_edge(mapping[u], mapping[v])
        return g, mapping

    def relabeled(self, mapping: Mapping[Vertex, Vertex]) -> "Graph":
        """Return a copy with vertices renamed through ``mapping``."""
        g = Graph(name=self.name, metadata=self.metadata)
        for v in self._adj:
            g.add_vertex(mapping.get(v, v))
        for u, v in self.edges():
            g.add_edge(mapping.get(u, u), mapping.get(v, v))
        return g

    # ------------------------------------------------------------------
    # Equality (used heavily by tests)
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if set(self._adj) != set(other._adj):
            return False
        return all(self._adj[v] == other._adj[v] for v in self._adj)

    def __hash__(self) -> int:  # graphs are mutable; identity hash
        return id(self)
