"""Balls, rooted balls and rooted-ball isomorphism.

These primitives implement the view of a vertex in the LOCAL model (the
labelled ball of radius r determines the output after r rounds) and the
indistinguishability machinery of Observation 2.4: a distributed algorithm
cannot distinguish two vertices whose rooted balls are isomorphic, so if
every rooted ball of a high-chromatic graph ``H`` also appears in a graph
``G`` of the target class, no fast algorithm can color the class with fewer
than ``chi(H)`` colors.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.graphs.frozen import GraphLike
from repro.graphs.graph import Vertex

__all__ = [
    "ball_subgraph",
    "RootedBall",
    "rooted_ball",
    "rooted_balls_isomorphic",
    "ball_signature",
    "all_rooted_balls",
]


def ball_subgraph(graph: GraphLike, center: Vertex, radius: int) -> GraphLike:
    """The subgraph induced by the ball ``B_radius(center)``."""
    return graph.subgraph(graph.ball(center, radius))


@dataclass(frozen=True)
class RootedBall:
    """A ball together with its center (the "view" of a vertex).

    Attributes
    ----------
    center:
        The root vertex.
    radius:
        The radius the ball was extracted with.
    graph:
        The induced subgraph on the ball (same representation as the graph
        the ball was extracted from).
    distances:
        Distance of every ball vertex from the center.
    """

    center: Vertex
    radius: int
    graph: GraphLike
    distances: dict[Vertex, int]

    def signature(self) -> tuple:
        """A cheap isomorphism-invariant fingerprint (used to prune comparisons)."""
        return ball_signature(self)


def rooted_ball(graph: GraphLike, center: Vertex, radius: int) -> RootedBall:
    """Extract the rooted ball of ``center`` with the given ``radius``."""
    distances = graph.bfs_distances(center, radius)
    return RootedBall(
        center=center,
        radius=radius,
        graph=graph.subgraph(distances),
        distances=distances,
    )


def ball_signature(ball: RootedBall) -> tuple:
    """Isomorphism-invariant signature: size, edges, per-distance degree profile."""
    per_layer: dict[int, list[int]] = {}
    for v, dist in ball.distances.items():
        per_layer.setdefault(dist, []).append(ball.graph.degree(v))
    layers = tuple(
        (dist, tuple(sorted(per_layer[dist]))) for dist in sorted(per_layer)
    )
    return (
        ball.graph.number_of_vertices(),
        ball.graph.number_of_edges(),
        layers,
    )


def _to_rooted_networkx(ball: RootedBall) -> nx.Graph:
    """Convert to networkx with a strong per-node label.

    The label combines the BFS distance from the root, the degree within the
    ball, and the sorted multiset of the neighbours' distances — all rooted-
    isomorphism invariants.  Rich labels prune the isomorphism search
    dramatically on highly symmetric balls (grids, circulants).
    """
    g = nx.Graph()
    for v in ball.graph:
        neighbour_distances = tuple(
            sorted(ball.distances[u] for u in ball.graph.neighbors(v))
        )
        g.add_node(
            v,
            label=(ball.distances[v], ball.graph.degree(v), neighbour_distances),
        )
    g.add_edges_from(ball.graph.edges())
    return g


def rooted_balls_isomorphic(first: RootedBall, second: RootedBall) -> bool:
    """Whether two rooted balls are isomorphic *as rooted graphs*.

    The isomorphism must map the center to the center; since BFS distances
    from the center are isomorphism invariants of rooted graphs, requiring a
    distance-preserving isomorphism is equivalent and prunes the search.
    """
    if first.signature() != second.signature():
        return False
    g1 = _to_rooted_networkx(first)
    g2 = _to_rooted_networkx(second)
    try:
        return nx.vf2pp_is_isomorphic(g1, g2, node_label="label")
    except AttributeError:  # pragma: no cover - very old networkx
        matcher = nx.algorithms.isomorphism.GraphMatcher(
            g1,
            g2,
            node_match=nx.algorithms.isomorphism.categorical_node_match("label", None),
        )
        return matcher.is_isomorphic()


def all_rooted_balls(graph: GraphLike, radius: int) -> list[RootedBall]:
    """The rooted balls of every vertex of ``graph`` at the given radius."""
    return [rooted_ball(graph, v, radius) for v in graph]
