"""Gallai-tree recognition.

A *Gallai tree* is a connected graph in which every block (maximal
2-connected subgraph) is a clique or an odd cycle (Figure 1 of the paper).
Gallai trees are exactly the connected graphs that are **not**
degree-choosable (Theorem 1.1), and the happy-vertex test of Lemma 3.1 asks
whether the rich ball of a vertex induces a Gallai tree.

Recognition is straightforward given the block decomposition: check each
block.  A block is a clique iff it has ``k(k-1)/2`` edges on ``k``
vertices; it is an odd cycle iff it has ``k`` vertices, ``k`` edges, every
vertex has degree 2 within the block, and ``k`` is odd.
"""

from __future__ import annotations

from repro.graphs.graph import Graph, Vertex
from repro.graphs.properties.blocks import biconnected_components

__all__ = [
    "is_gallai_tree",
    "is_gallai_forest",
    "non_gallai_blocks",
    "block_is_clique",
    "block_is_odd_cycle",
]


def block_is_clique(graph: Graph, block: frozenset[Vertex]) -> bool:
    """Whether ``block`` induces a clique in ``graph``."""
    k = len(block)
    if k <= 2:
        return True
    sub = graph.subgraph(block)
    return sub.number_of_edges() == k * (k - 1) // 2


def block_is_odd_cycle(graph: Graph, block: frozenset[Vertex]) -> bool:
    """Whether ``block`` induces an odd cycle (of length >= 3) in ``graph``."""
    k = len(block)
    if k < 3 or k % 2 == 0:
        return False
    sub = graph.subgraph(block)
    if sub.number_of_edges() != k:
        return False
    return all(sub.degree(v) == 2 for v in sub)


def non_gallai_blocks(graph: Graph) -> list[frozenset[Vertex]]:
    """Blocks of ``graph`` that are neither cliques nor odd cycles.

    The graph need not be connected: blocks of every component are
    inspected.  An empty return value means every component is a Gallai
    tree ("Gallai forest").
    """
    bad = []
    for block in biconnected_components(graph):
        if block_is_clique(graph, block):
            continue
        if block_is_odd_cycle(graph, block):
            continue
        bad.append(block)
    return bad


def is_gallai_forest(graph: Graph) -> bool:
    """Whether every connected component of ``graph`` is a Gallai tree."""
    return not non_gallai_blocks(graph)


def is_gallai_tree(graph: Graph) -> bool:
    """Whether ``graph`` is a Gallai tree (connected + every block clique/odd cycle).

    The empty graph is not a Gallai tree (it is not connected in the usual
    sense used by the paper); a single vertex is.
    """
    if len(graph) == 0:
        return False
    if not graph.is_connected():
        return False
    return is_gallai_forest(graph)
