"""Degeneracy, cores and degeneracy orderings.

A graph is *k-degenerate* if every subgraph has a vertex of degree at most
``k``.  The degeneracy is computed by the classical linear-time peeling
algorithm (repeatedly remove a vertex of minimum degree); the removal order
(reversed) is a *degeneracy ordering*, along which a greedy coloring uses at
most ``degeneracy + 1`` colors.  The paper's baseline bound
``ch(G) <= floor(mad(G)) + 1`` is exactly greedy coloring along such an
ordering.

All entry points accept either a mutable :class:`Graph` or a
:class:`~repro.graphs.frozen.FrozenGraph`.  Both are routed through the CSR
bucket peel of :meth:`FrozenGraph._peel` (O(n + m), no hashing, cached on
frozen inputs), so the two representations produce *identical* orderings;
the pre-CSR dict-of-sets implementation is kept as
:func:`_degeneracy_ordering_sets` as the benchmark baseline.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

from repro.graphs.frozen import FrozenGraph, GraphLike
from repro.graphs.graph import Graph, Vertex

__all__ = ["degeneracy", "degeneracy_ordering", "core_numbers", "k_core"]


def degeneracy_ordering(graph: GraphLike) -> tuple[int, list[Vertex]]:
    """Return ``(degeneracy, ordering)``.

    The ordering lists vertices in the order in which the peeling algorithm
    removes them; every vertex has at most ``degeneracy`` neighbours *after*
    it in the ordering.
    """
    frozen = FrozenGraph.from_graph(graph)
    return frozen.degeneracy_ordering()


def degeneracy(graph: GraphLike) -> int:
    """The degeneracy of ``graph`` (0 for the empty graph)."""
    return degeneracy_ordering(graph)[0]


def core_numbers(graph: GraphLike) -> dict[Vertex, int]:
    """Core number of every vertex (the largest k such that v is in the k-core)."""
    return FrozenGraph.from_graph(graph).core_numbers()


def k_core(graph: GraphLike, k: int) -> GraphLike:
    """The maximal subgraph in which every vertex has degree at least ``k``.

    The result has the same representation as the input (frozen in, frozen
    out).
    """
    cores = core_numbers(graph)
    return graph.subgraph([v for v, c in cores.items() if c >= k])


def greedy_color_along(
    graph: GraphLike, ordering: Sequence[Vertex]
) -> dict[Vertex, int]:
    """Greedy coloring along ``ordering`` *reversed* (later vertices first).

    Along the reverse of a degeneracy ordering every vertex sees at most
    ``degeneracy`` already-colored neighbours, so at most
    ``degeneracy + 1`` colors are used.
    """
    colors: dict[Vertex, int] = {}
    for v in reversed(list(ordering)):
        used = {colors[u] for u in graph.neighbors(v) if u in colors}
        color = 0
        while color in used:
            color += 1
        colors[v] = color
    return colors


def _degeneracy_ordering_sets(graph: Graph) -> tuple[int, list[Vertex]]:
    """Pre-CSR heap-on-dict-of-sets peeling, kept as the benchmark baseline.

    ``bench_primitives.py`` times this against the CSR bucket peel to record
    the speedup; it is also a handy independent oracle for parity tests.
    """
    degrees = graph.degrees()
    remaining: dict[Vertex, set[Vertex]] = {
        v: set(graph.neighbors(v)) for v in graph
    }
    current = dict(degrees)
    heap = [(d, repr(v), v) for v, d in degrees.items()]
    heapq.heapify(heap)
    ordering: list[Vertex] = []
    removed: set[Vertex] = set()
    degen = 0
    while heap:
        d, _key, v = heapq.heappop(heap)
        if v in removed or d != current[v]:
            continue  # stale heap entry
        removed.add(v)
        degen = max(degen, current[v])
        ordering.append(v)
        for u in remaining[v]:
            if u in removed:
                continue
            remaining[u].discard(v)
            current[u] -= 1
            heapq.heappush(heap, (current[u], repr(u), u))
        remaining[v] = set()
    return degen, ordering
