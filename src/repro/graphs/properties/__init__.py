"""Structural graph properties used throughout the library."""

from repro.graphs.properties.arboricity import (
    ArboricityEstimate,
    arboricity,
    arboricity_lower_bound,
    greedy_forest_decomposition,
)
from repro.graphs.properties.balls import (
    RootedBall,
    all_rooted_balls,
    ball_subgraph,
    rooted_ball,
    rooted_balls_isomorphic,
)
from repro.graphs.properties.blocks import (
    biconnected_components,
    block_cut_tree,
    blocks_and_cut_vertices,
    cut_vertices,
    is_biconnected,
    leaf_blocks,
)
from repro.graphs.properties.cliques import find_clique_of_size, is_clique
from repro.graphs.properties.degeneracy import (
    degeneracy,
    degeneracy_ordering,
    greedy_color_along,
)
from repro.graphs.properties.gallai import (
    is_gallai_forest,
    is_gallai_tree,
    non_gallai_blocks,
)
from repro.graphs.properties.girth import girth, has_triangle
from repro.graphs.properties.mad import (
    densest_subgraph,
    maximum_average_degree,
    maximum_density,
)
from repro.graphs.properties.planarity import (
    heawood_colors,
    heawood_mad_bound,
    is_planar,
    mad_bound_from_girth,
)

__all__ = [
    "ArboricityEstimate",
    "arboricity",
    "arboricity_lower_bound",
    "greedy_forest_decomposition",
    "RootedBall",
    "all_rooted_balls",
    "ball_subgraph",
    "rooted_ball",
    "rooted_balls_isomorphic",
    "biconnected_components",
    "block_cut_tree",
    "blocks_and_cut_vertices",
    "cut_vertices",
    "is_biconnected",
    "leaf_blocks",
    "find_clique_of_size",
    "is_clique",
    "degeneracy",
    "degeneracy_ordering",
    "greedy_color_along",
    "is_gallai_forest",
    "is_gallai_tree",
    "non_gallai_blocks",
    "girth",
    "has_triangle",
    "densest_subgraph",
    "maximum_average_degree",
    "maximum_density",
    "heawood_colors",
    "heawood_mad_bound",
    "is_planar",
    "mad_bound_from_girth",
]
