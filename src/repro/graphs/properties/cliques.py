"""Clique detection.

Theorem 1.3 promises either a d-list-coloring or a ``(d+1)``-clique; the
algorithm therefore needs to *find* such a clique when it exists.  In the
LOCAL model this costs 2 rounds (each vertex inspects its radius-2 ball);
sequentially we search each closed neighbourhood, which is fast because the
graphs of interest have small maximum average degree (a (d+1)-clique can
only live inside the closed neighbourhood of a vertex of degree >= d).
"""

from __future__ import annotations

from itertools import combinations

from repro.graphs.graph import Graph, Vertex

__all__ = ["find_clique_of_size", "is_clique", "max_clique_greedy"]


def is_clique(graph: Graph, vertices) -> bool:
    """Whether ``vertices`` induce a complete subgraph of ``graph``."""
    vs = list(vertices)
    return all(graph.has_edge(u, v) for u, v in combinations(vs, 2))


def find_clique_of_size(graph: Graph, size: int) -> tuple[Vertex, ...] | None:
    """Find a clique on exactly ``size`` vertices, or return ``None``.

    The search enumerates, for every vertex ``v`` of degree at least
    ``size - 1``, the subsets of ``size - 1`` neighbours of ``v`` restricted
    to neighbours that themselves have degree at least ``size - 1``.  For
    sparse graphs (bounded mad) the neighbourhoods are small, so this is
    fast; the enumeration is additionally pruned by a greedy intersection
    test.
    """
    if size <= 0:
        return ()
    if size == 1:
        for v in graph:
            return (v,)
        return None
    if size == 2:
        for u, v in graph.edges():
            return (u, v)
        return None
    candidates = {v for v in graph if graph.degree(v) >= size - 1}
    for v in candidates:
        nbrs = [u for u in graph.neighbors(v) if u in candidates]
        if len(nbrs) < size - 1:
            continue
        found = _clique_in_neighborhood(graph, nbrs, size - 1)
        if found is not None:
            return (v, *found)
    return None


def _clique_in_neighborhood(
    graph: Graph, candidates: list[Vertex], size: int
) -> tuple[Vertex, ...] | None:
    """Find a clique of the given size inside ``candidates`` (backtracking)."""
    candidates = list(candidates)

    def extend(clique: list[Vertex], pool: list[Vertex]) -> tuple[Vertex, ...] | None:
        if len(clique) == size:
            return tuple(clique)
        if len(clique) + len(pool) < size:
            return None
        for i, u in enumerate(pool):
            new_pool = [w for w in pool[i + 1 :] if graph.has_edge(u, w)]
            result = extend(clique + [u], new_pool)
            if result is not None:
                return result
        return None

    return extend([], candidates)


def max_clique_greedy(graph: Graph, attempts: int = 8) -> tuple[Vertex, ...]:
    """A greedy lower bound on the maximum clique (not exact).

    Used only for reporting in experiment tables; correctness of the
    algorithms never depends on it.
    """
    best: tuple[Vertex, ...] = ()
    vertices = sorted(graph, key=graph.degree, reverse=True)
    for start_index in range(min(attempts, len(vertices))):
        v = vertices[start_index]
        clique = [v]
        pool = sorted(graph.neighbors(v), key=graph.degree, reverse=True)
        for u in pool:
            if all(graph.has_edge(u, w) for w in clique):
                clique.append(u)
        if len(clique) > len(best):
            best = tuple(clique)
    return best
