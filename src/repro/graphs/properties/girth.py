"""Girth computation (length of a shortest cycle).

The paper uses girth in two places: Proposition 2.2 (planar graphs of girth
``g`` have ``mad < 2g/(g-2)``) and Corollary 4.2 (the Moore-type bound of
Alon, Hoory and Linial, used to bound the size of the sad set).  The girth
is computed by the standard BFS-from-every-vertex algorithm in ``O(n m)``.
"""

from __future__ import annotations

import math
from collections import deque

from repro.graphs.graph import Graph, Vertex

__all__ = ["girth", "has_triangle", "shortest_cycle_through"]


def girth(graph: Graph) -> float:
    """The girth of ``graph`` (``math.inf`` for forests)."""
    best = math.inf
    for v in graph:
        cycle_len = _shortest_cycle_from(graph, v, int(best) if best < math.inf else None)
        if cycle_len < best:
            best = cycle_len
            if best == 3:
                return 3
    return best


def _shortest_cycle_from(
    graph: Graph, source: Vertex, cutoff: int | None
) -> float:
    """Length of a shortest cycle through ``source``-rooted BFS edges.

    A standard argument shows that taking the minimum of this quantity over
    all sources gives the girth: when BFS from ``v`` meets an edge between
    two vertices at depths ``d1`` and ``d2`` (neither being the tree parent
    relation), a cycle of length at most ``d1 + d2 + 1`` exists; the
    shortest cycle of the graph is found from any of its vertices.
    """
    dist: dict[Vertex, int] = {source: 0}
    parent: dict[Vertex, Vertex | None] = {source: None}
    queue: deque[Vertex] = deque([source])
    best = math.inf
    while queue:
        u = queue.popleft()
        if cutoff is not None and dist[u] * 2 >= cutoff:
            # no shorter cycle through `source` can be found deeper
            break
        for w in graph.neighbors(u):
            if w not in dist:
                dist[w] = dist[u] + 1
                parent[w] = u
                queue.append(w)
            elif parent[u] != w:
                best = min(best, dist[u] + dist[w] + 1)
    return best


def has_triangle(graph: Graph) -> bool:
    """Whether the graph contains a triangle."""
    for u in graph:
        nbrs = graph.neighbors(u)
        for v in nbrs:
            # iterate over the smaller neighbourhood for speed
            if len(graph.neighbors(v)) > len(nbrs):
                continue
            if any(w in nbrs and w != u for w in graph.neighbors(v)):
                return True
    return False


def shortest_cycle_through(graph: Graph, v: Vertex) -> float:
    """Length of a shortest cycle passing through ``v`` (inf if none)."""
    best = math.inf
    nbrs = list(graph.neighbors(v))
    for i, start in enumerate(nbrs):
        # BFS in G - v from `start`; a path to a later neighbour closes a cycle
        dist = {start: 0}
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for w in graph.neighbors(u):
                if w == v or w in dist:
                    continue
                dist[w] = dist[u] + 1
                queue.append(w)
        for other in nbrs[i + 1 :]:
            if other in dist:
                best = min(best, dist[other] + 2)
    return best
