"""Planarity testing and genus-related bounds.

Planarity testing delegates to networkx's Boyer–Myrvold style
``check_planarity``.  The module also exposes the density bounds that the
paper uses:

* Proposition 2.2: an n-vertex planar graph of girth at least ``g`` has
  ``mad < 2g / (g - 2)`` (so planar < 6, triangle-free planar < 4,
  girth >= 6 planar < 3);
* Heawood-type bound: a graph of Euler genus ``g >= 1`` has
  ``mad <= (5 + sqrt(24 g + 1)) / 2`` and hence choice number at most
  ``H(g) = floor((7 + sqrt(24 g + 1)) / 2)`` (Corollary 2.11).
"""

from __future__ import annotations

import math

import networkx as nx

from repro.graphs.graph import Graph

__all__ = [
    "is_planar",
    "planar_embedding",
    "mad_bound_from_girth",
    "heawood_mad_bound",
    "heawood_colors",
    "euler_genus_upper_bound",
]


def is_planar(graph: Graph) -> bool:
    """Whether ``graph`` is planar (Boyer–Myrvold via networkx)."""
    ok, _ = nx.check_planarity(graph.to_networkx(), counterexample=False)
    return ok


def planar_embedding(graph: Graph):
    """A combinatorial planar embedding, or ``None`` when non-planar."""
    ok, embedding = nx.check_planarity(graph.to_networkx(), counterexample=False)
    return embedding if ok else None


def mad_bound_from_girth(girth: float) -> float:
    """Proposition 2.2: planar graphs of girth >= ``girth`` have mad < 2g/(g-2).

    For forests (infinite girth) the bound degenerates to 2.
    """
    if math.isinf(girth):
        return 2.0
    if girth <= 2:
        raise ValueError("girth must be at least 3")
    return 2.0 * girth / (girth - 2.0)


def heawood_mad_bound(euler_genus: int) -> float:
    """Heawood bound: graphs of Euler genus ``g >= 1`` have mad <= (5+sqrt(24g+1))/2."""
    if euler_genus < 1:
        raise ValueError("Euler genus must be at least 1 (use 6 for planar graphs)")
    return (5.0 + math.sqrt(24.0 * euler_genus + 1.0)) / 2.0


def heawood_colors(euler_genus: int) -> int:
    """``H(g) = floor((7 + sqrt(24 g + 1)) / 2)`` — the Heawood number."""
    if euler_genus < 0:
        raise ValueError("Euler genus must be non-negative")
    if euler_genus == 0:
        return 4  # the four colour theorem (not used algorithmically here)
    return int(math.floor((7.0 + math.sqrt(24.0 * euler_genus + 1.0)) / 2.0))


def euler_genus_upper_bound(graph: Graph) -> int:
    """A crude upper bound on the Euler genus from Euler's formula.

    Every graph on ``n`` vertices and ``m`` edges embeds in a surface of
    Euler genus at most ``max(0, ceil((m - 3n + 6) / 3))`` *if* it embeds as
    a 2-cell embedding with triangular faces; in general a graph on n
    vertices has Euler genus O(n^2) (complete graph bound), which is what
    the paper's remark before Theorem 2.10 uses.  This helper returns the
    face-count bound, clamped below by 0 — adequate for reporting purposes.
    """
    n = graph.number_of_vertices()
    m = graph.number_of_edges()
    return max(0, math.ceil((m - 3 * n + 6) / 3)) if n >= 3 else 0
