"""Blocks (maximal 2-connected subgraphs), cut vertices and the block tree.

Blocks are the backbone of the Gallai-tree machinery (Section 1.4 of the
paper): a Gallai tree is a connected graph in which every block is a clique
or an odd cycle, and Theorem 1.1 (Borodin; Erdős–Rubin–Taylor) states that
connected non-Gallai-trees are degree-choosable.

Block decomposition is delegated to networkx's biconnected-components
implementation (Tarjan/Hopcroft); this module adapts it to the library's
:class:`~repro.graphs.graph.Graph` type and adds the block-cut-tree and
leaf-block helpers used by the Borodin–ERT solver and the happy-vertex
detector.
"""

from __future__ import annotations

import networkx as nx

from repro.graphs.graph import Graph, Vertex

__all__ = [
    "biconnected_components",
    "cut_vertices",
    "blocks_and_cut_vertices",
    "block_cut_tree",
    "is_biconnected",
    "leaf_blocks",
]


def blocks_and_cut_vertices(
    graph: Graph,
) -> tuple[list[frozenset[Vertex]], set[Vertex]]:
    """Return ``(blocks, cut_vertices)``.

    Each block is a frozenset of vertices.  Isolated vertices form singleton
    blocks (networkx omits them, so they are added back explicitly); bridge
    edges form blocks of size two.
    """
    g = graph.to_networkx()
    blocks = [frozenset(b) for b in nx.biconnected_components(g)]
    covered = set().union(*blocks) if blocks else set()
    for v in graph:
        if v not in covered:
            blocks.append(frozenset([v]))
    cuts = set(nx.articulation_points(g))
    return blocks, cuts


def biconnected_components(graph: Graph) -> list[frozenset[Vertex]]:
    """The blocks of the graph (vertex sets of maximal 2-connected subgraphs)."""
    return blocks_and_cut_vertices(graph)[0]


def cut_vertices(graph: Graph) -> set[Vertex]:
    """The cut vertices (articulation points) of the graph."""
    return blocks_and_cut_vertices(graph)[1]


def is_biconnected(graph: Graph) -> bool:
    """Whether the graph consists of a single block.

    Following the convention that is convenient for Gallai trees, a single
    vertex and a single edge (K_2) both count as "biconnected": what matters
    is that the graph is connected and has exactly one block.
    """
    if len(graph) <= 1:
        return True
    if not graph.is_connected():
        return False
    return len(biconnected_components(graph)) == 1


def block_cut_tree(
    graph: Graph,
) -> tuple[Graph, dict[Vertex, list[int]], list[frozenset[Vertex]]]:
    """Return the block-cut tree of ``graph``.

    The returned tree has a vertex ``("block", i)`` for every block and a
    vertex ``("cut", v)`` for every cut vertex ``v``, joined whenever the
    cut vertex belongs to the block.  The function also returns, for every
    original vertex, the indices of the blocks containing it, plus the block
    list itself (indexed consistently).
    """
    blocks, cuts = blocks_and_cut_vertices(graph)
    tree = Graph(name=f"{graph.name}_block_cut_tree")
    membership: dict[Vertex, list[int]] = {v: [] for v in graph}
    for i, block in enumerate(blocks):
        tree.add_vertex(("block", i))
        for v in block:
            membership[v].append(i)
    for v in cuts:
        tree.add_vertex(("cut", v))
        for i in membership[v]:
            tree.add_edge(("cut", v), ("block", i))
    return tree, membership, blocks


def leaf_blocks(graph: Graph) -> list[frozenset[Vertex]]:
    """Blocks containing at most one cut vertex ("end blocks").

    Every connected graph with at least two blocks has at least two leaf
    blocks; they are the starting point of the inductive proof of
    Theorem 1.1 and of the constructive Borodin–ERT solver.
    """
    blocks, cuts = blocks_and_cut_vertices(graph)
    return [block for block in blocks if len(block & cuts) <= 1]
