"""Arboricity bounds and forest decompositions.

The arboricity ``a(G)`` is the minimum number of forests needed to cover
the edges.  Nash–Williams:

    a(G) = max over subgraphs H with >= 2 vertices of ceil(|E(H)| / (|V(H)|-1)).

The paper relates it to the maximum average degree by
``2 a(G) - 2 <= ceil(mad(G)) <= 2 a(G)``.

This module provides:

* :func:`arboricity_lower_bound` — the Nash–Williams expression evaluated on
  the whole graph and on the exact densest subgraph (a certified lower
  bound);
* :func:`greedy_forest_decomposition` — an explicit partition of the edges
  into forests (a certified upper bound witness, used by the
  Barenboim–Elkin baseline and by Corollary 1.4 experiments);
* :func:`arboricity` — returns the exact value when the two bounds meet
  (which they do for all generator families shipped with the library) and
  otherwise the certified interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graphs.frozen import GraphLike
from repro.graphs.graph import Edge, Vertex
from repro.graphs.properties.mad import maximum_density

__all__ = [
    "arboricity",
    "arboricity_lower_bound",
    "greedy_forest_decomposition",
    "ArboricityEstimate",
]


@dataclass(frozen=True)
class ArboricityEstimate:
    """Certified bounds on the arboricity of a graph.

    Attributes
    ----------
    lower:
        Nash–Williams lower bound (from the whole graph and the densest
        subgraph).
    upper:
        Number of forests in an explicit greedy decomposition.
    forests:
        The witness decomposition (a list of edge lists, each acyclic).
    """

    lower: int
    upper: int
    forests: tuple[tuple[Edge, ...], ...]

    @property
    def exact(self) -> int | None:
        """The exact arboricity when the bounds coincide, else ``None``."""
        return self.lower if self.lower == self.upper else None


def arboricity_lower_bound(graph: GraphLike) -> int:
    """Nash–Williams lower bound ``max ceil(e_H / (v_H - 1))`` over two witnesses."""
    n = graph.number_of_vertices()
    m = graph.number_of_edges()
    if n < 2 or m == 0:
        return 0 if m == 0 else 1
    bound = math.ceil(m / (n - 1))
    density, vertices = maximum_density(graph)
    if len(vertices) >= 2:
        sub = graph.subgraph(vertices)
        bound = max(
            bound,
            math.ceil(sub.number_of_edges() / (sub.number_of_vertices() - 1)),
        )
    del density
    return bound


class _UnionFind:
    """Union–find with path compression for cycle detection in forests."""

    def __init__(self) -> None:
        self.parent: dict[Vertex, Vertex] = {}

    def find(self, v: Vertex) -> Vertex:
        parent = self.parent.setdefault(v, v)
        if parent == v:
            return v
        root = self.find(parent)
        self.parent[v] = root
        return root

    def union(self, u: Vertex, v: Vertex) -> bool:
        ru, rv = self.find(u), self.find(v)
        if ru == rv:
            return False
        self.parent[ru] = rv
        return True


def greedy_forest_decomposition(graph: GraphLike) -> list[list[Edge]]:
    """Partition the edges of ``graph`` into forests (greedy first-fit).

    Each edge is placed into the first forest in which it does not close a
    cycle.  The number of forests used is at most ``2 a(G)`` in the worst
    case but is frequently exactly ``a(G)`` on the generator families used
    by the experiments (a denser-first edge ordering improves the fit).
    """
    forests: list[list[Edge]] = []
    union_finds: list[_UnionFind] = []
    # process edges by decreasing min-degree of the endpoints: edges deep in
    # dense parts get first pick of the forests, which empirically tightens
    # the decomposition
    degrees = graph.degrees()
    edges = sorted(
        graph.edges(),
        key=lambda e: -(min(degrees[e[0]], degrees[e[1]])),
    )
    for u, v in edges:
        for forest, uf in zip(forests, union_finds):
            if uf.union(u, v):
                forest.append((u, v))
                break
        else:
            uf = _UnionFind()
            uf.union(u, v)
            forests.append([(u, v)])
            union_finds.append(uf)
    return forests


def arboricity(graph: GraphLike) -> ArboricityEstimate:
    """Certified bounds (and usually the exact value) of the arboricity."""
    lower = arboricity_lower_bound(graph)
    forests = greedy_forest_decomposition(graph)
    upper = len(forests)
    return ArboricityEstimate(
        lower=lower,
        upper=max(upper, lower) if upper else lower,
        forests=tuple(tuple(f) for f in forests),
    )
