"""Exact maximum average degree (mad) via Goldberg's max-flow reduction.

``mad(G) = 2 * max_{H subgraph of G} |E(H)| / |V(H)|`` — twice the maximum
subgraph density.  The densest subgraph is computed exactly with Goldberg's
classical construction: for a guess ``g``, build a flow network

    source -> (one node per edge)        capacity 1
    edge-node -> its two endpoints       capacity +inf
    vertex -> sink                       capacity g

A subgraph of density greater than ``g`` exists iff the minimum s-t cut is
smaller than ``|E|``.  Binary search over ``g`` combined with the fact that
two distinct subgraph densities differ by at least ``1/(n(n-1))`` pins down
the optimal density; the vertex side of the final cut is the densest
subgraph, from which the exact rational density is read off.

A cheap certified *lower* bound (greedy peeling, which is a 2-approximation
of the densest subgraph but an exact lower bound as a witness) and the
degeneracy-based upper bound ``mad <= 2 * degeneracy`` are also provided so
that callers can avoid the flow computation when a bound suffices.
"""

from __future__ import annotations

from fractions import Fraction

import networkx as nx

from repro.graphs.frozen import FrozenGraph, GraphLike
from repro.graphs.graph import Vertex

__all__ = [
    "maximum_average_degree",
    "densest_subgraph",
    "maximum_density",
    "mad_lower_bound_greedy",
]


def maximum_density(graph: GraphLike) -> tuple[Fraction, set[Vertex]]:
    """Exact maximum subgraph density ``max |E(H)|/|V(H)|`` and a witness.

    Returns ``(density, vertex_set)``; the density of the empty graph is 0.
    """
    n = graph.number_of_vertices()
    m = graph.number_of_edges()
    if n == 0 or m == 0:
        return Fraction(0), set(graph.vertices())

    edges = graph.edges()
    lo = Fraction(m, n)          # density of the whole graph: feasible
    hi = Fraction(m, 1)          # trivial upper bound
    best_set = set(graph.vertices())
    # densities are rationals with denominator <= n; stop when the interval
    # cannot contain two of them
    tolerance = Fraction(1, n * n)
    while hi - lo > tolerance:
        guess = (lo + hi) / 2
        subset = _denser_than(graph, edges, guess)
        if subset:
            lo = guess
            best_set = subset
        else:
            hi = guess
    sub = graph.subgraph(best_set)
    density = Fraction(sub.number_of_edges(), max(1, sub.number_of_vertices()))
    # One final refinement: the witness found at `lo` may itself allow an
    # even denser sub-subgraph; rerun the test at the witness density.
    improved = _denser_than(graph, edges, density)
    if improved:
        sub2 = graph.subgraph(improved)
        density2 = Fraction(sub2.number_of_edges(), max(1, sub2.number_of_vertices()))
        if density2 > density:
            return density2, set(improved)
    return density, set(best_set)


def _denser_than(graph: GraphLike, edges, guess: Fraction) -> set[Vertex]:
    """Return a vertex set inducing density > ``guess`` or an empty set."""
    m = len(edges)
    flow_graph = nx.DiGraph()
    source, sink = ("__source__",), ("__sink__",)
    g = float(guess)
    for index, (u, v) in enumerate(edges):
        edge_node = ("__edge__", index)
        flow_graph.add_edge(source, edge_node, capacity=1.0)
        flow_graph.add_edge(edge_node, ("__v__", u), capacity=float("inf"))
        flow_graph.add_edge(edge_node, ("__v__", v), capacity=float("inf"))
    for v in graph:
        flow_graph.add_edge(("__v__", v), sink, capacity=g)
    cut_value, (source_side, _sink_side) = nx.minimum_cut(flow_graph, source, sink)
    if cut_value >= m - 1e-9:
        return set()
    return {node[1] for node in source_side if isinstance(node, tuple) and node[0] == "__v__"}


def maximum_average_degree(graph: GraphLike) -> float:
    """Exact maximum average degree ``mad(G)`` as a float.

    For an exact rational value use ``2 * maximum_density(graph)[0]``.
    """
    return float(2 * maximum_density(graph)[0])


def densest_subgraph(graph: GraphLike) -> GraphLike:
    """The densest subgraph of ``graph`` (as an induced subgraph)."""
    _, vertices = maximum_density(graph)
    return graph.subgraph(vertices)


def mad_lower_bound_greedy(graph: GraphLike) -> float:
    """A fast lower bound on mad: the best density seen during greedy peeling.

    Repeatedly removing a minimum-degree vertex visits n subgraphs; the
    maximum of ``2 m_i / n_i`` over them is a valid lower bound on mad (and
    at least ``mad / 2`` by the classical 2-approximation analysis).  The
    peel runs on the CSR representation (one cached O(n + m) pass shared
    with :func:`~repro.graphs.properties.degeneracy.degeneracy_ordering`).
    """
    return FrozenGraph.from_graph(graph).peel_density_lower_bound()
