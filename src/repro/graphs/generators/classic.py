"""Classic graph families: paths, cycles, trees, cliques, Gallai trees, ...

These generators provide the simplest inputs for tests and benchmarks, and
also the constructions that the paper uses as running examples:

* Gallai trees (Figure 1 of the paper): connected graphs in which every
  block is a clique or an odd cycle.  These are exactly the connected graphs
  that are *not* degree-choosable (Theorem 1.1), so they are the adversarial
  inputs for the happy-vertex machinery.
* paths and trees: Linial's lower bounds (the ``a = 1`` exception in
  Corollary 1.4) are about these.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Sequence

from repro.errors import GeneratorError
from repro.graphs.graph import Graph

__all__ = [
    "empty_graph",
    "path",
    "cycle",
    "complete_graph",
    "complete_bipartite",
    "star",
    "random_tree",
    "complete_binary_tree",
    "grid_2d",
    "random_graph_gnp",
    "random_regular_graph",
    "gallai_tree",
    "random_gallai_tree",
    "book_of_cliques",
    "theta_graph",
]


def empty_graph(n: int) -> Graph:
    """Graph on ``n`` isolated vertices ``0..n-1``."""
    return Graph(vertices=range(n), name=f"empty_{n}")


def path(n: int) -> Graph:
    """Path on ``n`` vertices ``0..n-1``."""
    if n < 0:
        raise GeneratorError("n must be non-negative")
    g = Graph(vertices=range(n), name=f"path_{n}")
    g.add_edges((i, i + 1) for i in range(n - 1))
    return g


def cycle(n: int) -> Graph:
    """Cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise GeneratorError("a cycle needs at least 3 vertices")
    g = path(n)
    g.add_edge(n - 1, 0)
    g.name = f"cycle_{n}"
    return g


def complete_graph(n: int) -> Graph:
    """Clique ``K_n``."""
    g = Graph(vertices=range(n), name=f"K_{n}")
    g.add_edges(itertools.combinations(range(n), 2))
    return g


def complete_bipartite(a: int, b: int) -> Graph:
    """Complete bipartite graph ``K_{a,b}`` with parts ``0..a-1`` / ``a..a+b-1``."""
    g = Graph(vertices=range(a + b), name=f"K_{a}_{b}")
    g.add_edges((i, a + j) for i in range(a) for j in range(b))
    return g


def star(n_leaves: int) -> Graph:
    """Star with centre ``0`` and ``n_leaves`` leaves."""
    g = Graph(vertices=range(n_leaves + 1), name=f"star_{n_leaves}")
    g.add_edges((0, i) for i in range(1, n_leaves + 1))
    return g


def random_tree(n: int, seed: int | None = None) -> Graph:
    """Uniformly random labelled tree on ``n`` vertices (Prüfer sequence)."""
    if n <= 0:
        raise GeneratorError("n must be positive")
    if n == 1:
        return Graph(vertices=[0], name="tree_1")
    if n == 2:
        return Graph(vertices=[0, 1], edges=[(0, 1)], name="tree_2")
    rng = random.Random(seed)
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for v in prufer:
        degree[v] += 1
    g = Graph(vertices=range(n), name=f"tree_{n}")
    for v in prufer:
        for leaf in range(n):
            if degree[leaf] == 1:
                g.add_edge(leaf, v)
                degree[leaf] -= 1
                degree[v] -= 1
                break
    last = [v for v in range(n) if degree[v] == 1]
    g.add_edge(last[0], last[1])
    return g


def complete_binary_tree(depth: int) -> Graph:
    """Complete binary tree of the given depth (root = vertex 0)."""
    n = 2 ** (depth + 1) - 1
    g = Graph(vertices=range(n), name=f"binary_tree_d{depth}")
    for v in range(1, n):
        g.add_edge(v, (v - 1) // 2)
    return g


def grid_2d(rows: int, cols: int) -> Graph:
    """Planar rectangular grid; vertices are ``(row, col)`` pairs."""
    g = Graph(name=f"grid_{rows}x{cols}")
    for r in range(rows):
        for c in range(cols):
            g.add_vertex((r, c))
            if r > 0:
                g.add_edge((r, c), (r - 1, c))
            if c > 0:
                g.add_edge((r, c), (r, c - 1))
    g.metadata["planar"] = True
    return g


def random_graph_gnp(n: int, p: float, seed: int | None = None) -> Graph:
    """Erdős–Rényi ``G(n, p)``."""
    rng = random.Random(seed)
    g = Graph(vertices=range(n), name=f"gnp_{n}_{p}")
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g


def random_regular_graph(n: int, d: int, seed: int | None = None) -> Graph:
    """Random ``d``-regular simple graph via the configuration model.

    Retries until a simple perfect matching of half-edges is found; for the
    small degrees used in this library (d <= 10) this converges quickly.
    """
    if n * d % 2 != 0:
        raise GeneratorError("n*d must be even for a d-regular graph")
    if d >= n:
        raise GeneratorError("need d < n")
    rng = random.Random(seed)
    for _ in range(2000):
        stubs = [v for v in range(n) for _ in range(d)]
        rng.shuffle(stubs)
        edges = set()
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            if u == v or (min(u, v), max(u, v)) in edges:
                ok = False
                break
            edges.add((min(u, v), max(u, v)))
        if ok:
            g = Graph(vertices=range(n), edges=edges, name=f"regular_{n}_{d}")
            return g
    raise GeneratorError(
        f"failed to sample a simple {d}-regular graph on {n} vertices"
    )


def gallai_tree(block_specs: Sequence[tuple[str, int]]) -> Graph:
    """Build a Gallai tree from a chain of block specifications.

    Each block is attached to the previous block through a single shared
    (cut) vertex, which produces a "caterpillar" of blocks — enough to cover
    every local shape used in tests (Figure 1 of the paper shows such a
    graph with both clique blocks and odd-cycle blocks).

    Parameters
    ----------
    block_specs:
        Sequence of ``(kind, size)`` pairs, where ``kind`` is either
        ``"clique"`` or ``"odd_cycle"``.  Clique blocks need ``size >= 2``
        and odd-cycle blocks need an odd ``size >= 3``.
    """
    g = Graph(name="gallai_tree")
    next_vertex = 0
    attach: int | None = None
    for kind, size in block_specs:
        if kind == "clique":
            if size < 2:
                raise GeneratorError("clique blocks need size >= 2")
        elif kind == "odd_cycle":
            if size < 3 or size % 2 == 0:
                raise GeneratorError("odd_cycle blocks need odd size >= 3")
        else:
            raise GeneratorError(f"unknown block kind {kind!r}")
        block: list[int] = []
        if attach is not None:
            block.append(attach)
        while len(block) < size:
            block.append(next_vertex)
            next_vertex += 1
        if kind == "clique":
            g.add_edges(itertools.combinations(block, 2))
        else:
            for i in range(size):
                g.add_edge(block[i], block[(i + 1) % size])
        attach = block[-1]
    if next_vertex == 0 and attach is None:
        g.add_vertex(0)
    return g


def random_gallai_tree(
    n_blocks: int,
    max_block_size: int = 5,
    seed: int | None = None,
) -> Graph:
    """Random Gallai tree: blocks are cliques or odd cycles glued at cut vertices.

    Unlike :func:`gallai_tree`, the attachment vertex of each new block is
    chosen uniformly among all existing vertices, producing genuinely
    tree-like block structures.
    """
    rng = random.Random(seed)
    g = Graph(name="random_gallai_tree")
    g.add_vertex(0)
    next_vertex = 1
    for _ in range(n_blocks):
        attach = rng.choice(g.vertices())
        if rng.random() < 0.5:
            size = rng.randint(2, max_block_size)
            kind = "clique"
        else:
            size = rng.choice([s for s in range(3, max_block_size + 1) if s % 2 == 1])
            kind = "odd_cycle"
        block = [attach]
        while len(block) < size:
            block.append(next_vertex)
            g.add_vertex(next_vertex)
            next_vertex += 1
        if kind == "clique":
            g.add_edges(itertools.combinations(block, 2))
        else:
            for i in range(size):
                g.add_edge(block[i], block[(i + 1) % size])
    return g


def book_of_cliques(n_pages: int, clique_size: int) -> Graph:
    """``n_pages`` cliques sharing one common vertex (a Gallai tree).

    This is the construction mentioned in Section 6 of the paper ("attach a
    clique to every vertex on a path") restricted to a single spine vertex;
    useful to exercise nice list-assignments.
    """
    if clique_size < 2:
        raise GeneratorError("clique_size must be at least 2")
    g = Graph(name=f"book_{n_pages}x{clique_size}")
    g.add_vertex(0)
    next_vertex = 1
    for _ in range(n_pages):
        block = [0] + list(range(next_vertex, next_vertex + clique_size - 1))
        next_vertex += clique_size - 1
        g.add_edges(itertools.combinations(block, 2))
    return g


def theta_graph(lengths: Sequence[int]) -> Graph:
    """Theta graph: two hub vertices joined by internally disjoint paths.

    ``lengths[i]`` is the number of edges of the i-th path (>= 1; at most one
    path of length 1).  Theta graphs are 2-connected and neither cliques nor
    cycles whenever there are at least 3 paths, so they are the smallest
    witnesses of non-Gallai blocks — heavily used in tests of the
    Borodin–Erdős–Rubin–Taylor solver.
    """
    if len(lengths) < 2:
        raise GeneratorError("need at least two paths")
    if sum(1 for length in lengths if length == 1) > 1:
        raise GeneratorError("at most one path may have length 1")
    g = Graph(name="theta_" + "_".join(map(str, lengths)))
    a, b = "a", "b"
    g.add_vertex(a)
    g.add_vertex(b)
    next_vertex = 0
    for i, length in enumerate(lengths):
        if length < 1:
            raise GeneratorError("path lengths must be >= 1")
        previous = a
        for _ in range(length - 1):
            v = ("p", i, next_vertex)
            next_vertex += 1
            g.add_edge(previous, v)
            previous = v
        g.add_edge(previous, b)
    return g
