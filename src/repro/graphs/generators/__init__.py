"""Graph generators: classic, planar, sparse, surface and streaming families."""

from repro.graphs.generators import classic, planar, sparse, streaming, surfaces

__all__ = ["classic", "planar", "sparse", "streaming", "surfaces"]
