"""Graph generators: classic families, planar graphs, sparse graphs, surfaces."""

from repro.graphs.generators import classic, planar, sparse, surfaces

__all__ = ["classic", "planar", "sparse", "surfaces"]
