"""Graphs embedded on surfaces: the lower-bound constructions of the paper.

Three families are needed:

* **Klein-bottle grids** ``G_{k,l}`` (Figure 2, left): the k-by-l
  rectangular grid drawn on the Klein bottle.  Gallai proved that
  ``G_{2k+1,2l+1}`` is 4-chromatic; since its small balls look exactly like
  balls of planar (triangle-free, even bipartite) graphs, Observation 2.4
  yields the Omega(n) / Omega(sqrt(n)) lower bounds of Theorems 2.5 and 2.6.

* **Pentagonal tubes** ``C_5 x P_m`` and planar rectangular grids: the
  planar graphs whose balls realize the Klein-bottle balls (the graph
  ``H_{2l}`` of Figure 2, right, is a planar triangle-free graph of this
  kind).

* **Non-4-colorable toroidal triangulations** (Figure 3): the paper uses
  Fisk's construction (a toroidal triangulation with exactly two adjacent
  odd-degree vertices).  We substitute the *cube of a cycle*
  ``C_n(1,2,3)``, which is also a 6-regular triangulation of the torus, has
  chromatic number 5 whenever ``n`` is not divisible by 4 (certified by the
  independence-number bound ``alpha = floor(n/4)``), and all of whose balls
  of radius ``r < (n-7)/6`` are cubes of paths — planar 3-trees.  It
  therefore supports exactly the same indistinguishability argument as the
  Fisk triangulation (Theorem 1.5); the substitution is recorded in
  DESIGN.md.

All generators return :class:`repro.graphs.graph.Graph` objects with
metadata describing the surface and the relevant certificates.
"""

from __future__ import annotations

from repro.errors import GeneratorError
from repro.graphs.graph import Graph

__all__ = [
    "klein_bottle_grid",
    "torus_grid",
    "toroidal_triangular_grid",
    "pentagonal_tube",
    "cycle_power",
    "path_power",
    "fisk_like_triangulation",
    "planar_grid_patch",
]


def klein_bottle_grid(k: int, l: int) -> Graph:
    """The k-by-l rectangular grid on the Klein bottle (Figure 2, left).

    Vertices are pairs ``(i, j)`` with ``i in Z_k`` (vertical coordinate,
    wrapped normally, so vertical cycles have length ``k``) and
    ``j in {0..l-1}`` (horizontal coordinate).  Horizontal edges wrap with a
    *flip* ``(i, l-1) ~ (k-1-i, 0)``, which realizes the Klein-bottle
    identification of the figure.

    For ``k`` and ``l`` both odd, the graph is a non-bipartite
    quadrangulation of the Klein bottle and is 4-chromatic (Gallai); this is
    verified exactly for small instances in the test suite.
    """
    if k < 3 or l < 3:
        raise GeneratorError("need k >= 3 and l >= 3")
    g = Graph(name=f"klein_grid_{k}x{l}")
    for i in range(k):
        for j in range(l):
            g.add_vertex((i, j))
    for i in range(k):
        for j in range(l):
            g.add_edge((i, j), ((i + 1) % k, j))
            if j < l - 1:
                g.add_edge((i, j), (i, j + 1))
            else:
                g.add_edge((i, j), ((k - 1 - i) % k, 0))
    g.metadata["surface"] = "klein_bottle"
    g.metadata["quadrangulation"] = True
    if k % 2 == 1 and l % 2 == 1:
        g.metadata["chromatic_number"] = 4
    return g


def torus_grid(k: int, l: int) -> Graph:
    """The k-by-l quadrangulated grid on the torus (4-regular, girth 4)."""
    if k < 3 or l < 3:
        raise GeneratorError("need k >= 3 and l >= 3")
    g = Graph(name=f"torus_grid_{k}x{l}")
    for i in range(k):
        for j in range(l):
            g.add_edge((i, j), ((i + 1) % k, j))
            g.add_edge((i, j), (i, (j + 1) % l))
    g.metadata["surface"] = "torus"
    return g


def toroidal_triangular_grid(k: int, l: int) -> Graph:
    """The 6-regular triangulation of the torus on ``k*l`` vertices.

    Vertices ``(i, j)`` in ``Z_k x Z_l`` with edges to ``(i+1, j)``,
    ``(i, j+1)`` and ``(i+1, j+1)``.  Euler genus 2, maximum average degree
    exactly 6 — the extremal input for Corollary 2.11 with ``g = 2``.
    """
    if k < 3 or l < 3:
        raise GeneratorError("need k >= 3 and l >= 3")
    g = Graph(name=f"torus_triangulation_{k}x{l}")
    for i in range(k):
        for j in range(l):
            v = (i, j)
            g.add_edge(v, ((i + 1) % k, j))
            g.add_edge(v, (i, (j + 1) % l))
            g.add_edge(v, ((i + 1) % k, (j + 1) % l))
    g.metadata["surface"] = "torus"
    g.metadata["euler_genus"] = 2
    g.metadata["triangulation"] = True
    return g


def pentagonal_tube(length: int) -> Graph:
    """``C_5 x P_length`` (Cartesian product): concentric pentagons.

    Planar (draw the pentagons as nested circles) and triangle-free; its
    balls realize the balls of the Klein-bottle grid ``G_{5, 2l+1}`` away
    from wrap-around, playing the role of the graph ``H_{2l}`` in Figure 2
    (right) for Theorem 2.5.
    """
    if length < 1:
        raise GeneratorError("length must be positive")
    g = Graph(name=f"pentagonal_tube_{length}")
    for j in range(length):
        for i in range(5):
            g.add_edge((i, j), ((i + 1) % 5, j))
            if j + 1 < length:
                g.add_edge((i, j), (i, j + 1))
    g.metadata["planar"] = True
    g.metadata["triangle_free"] = True
    return g


def cycle_power(n: int, power: int = 3) -> Graph:
    """The ``power``-th power of the cycle ``C_n`` (circulant C_n(1..power)).

    For ``power = 3`` this is a 6-regular triangulation of the torus whose
    chromatic number is ``ceil(n / floor(n / 4))`` — equal to 5 whenever
    ``n >= 13`` and ``n`` is not a multiple of 4.  Its balls of radius
    ``r < (n - 2*power - 1) / (2*power)`` are powers of paths, i.e. planar
    3-trees, so the graph is locally planar.  This is our stand-in for the
    Fisk toroidal triangulation of Figure 3 (see module docstring).
    """
    if power < 1:
        raise GeneratorError("power must be positive")
    if n < 2 * power + 3:
        raise GeneratorError("need n >= 2*power + 3 for a simple graph")
    g = Graph(vertices=range(n), name=f"cycle_power_{n}_{power}")
    for i in range(n):
        for d in range(1, power + 1):
            g.add_edge(i, (i + d) % n)
    g.metadata["surface"] = "torus" if power == 3 else None
    g.metadata["circulant"] = tuple(range(1, power + 1))
    if power == 3 and n % 4 != 0 and n >= 13:
        g.metadata["chromatic_number_lower_bound"] = 5
    return g


def path_power(m: int, power: int = 3) -> Graph:
    """The ``power``-th power of the path ``P_m``.

    For ``power = 3`` this is a planar 3-tree (each vertex ``i >= 3`` is
    attached to the triangle ``{i-1, i-2, i-3}``); it is the planar graph
    whose balls are isomorphic to the balls of :func:`cycle_power`, which is
    what the Theorem 1.5 indistinguishability certificate needs.
    """
    if m < 1:
        raise GeneratorError("m must be positive")
    g = Graph(vertices=range(m), name=f"path_power_{m}_{power}")
    for i in range(m):
        for d in range(1, power + 1):
            if i + d < m:
                g.add_edge(i, i + d)
    if power == 3:
        g.metadata["planar"] = True
        g.metadata["planar_3_tree"] = True
    return g


def fisk_like_triangulation(n: int) -> Graph:
    """A non-4-colorable toroidal triangulation on ``n`` vertices.

    The paper (Theorem 1.5 / Figure 3) uses Fisk's triangulations, which
    exist for every ``n = 1 (mod 3)``.  We return :func:`cycle_power`
    ``C_n(1,2,3)`` instead, which exists for every ``n >= 13`` with
    ``n % 4 != 0`` and enjoys the same two properties used in the proof:

    * it is not 4-colorable (its independence number is ``floor(n/4)``, so
      ``chi >= ceil(n / floor(n/4)) = 5``);
    * every ball of radius ``r < (n - 7) / 6`` induces a cube of a path,
      which is a planar graph.

    Raises
    ------
    GeneratorError
        If ``n`` is divisible by 4 (the construction is then 4-colorable) or
        too small.
    """
    if n % 4 == 0:
        raise GeneratorError(
            "n must not be divisible by 4 (C_n(1,2,3) is 4-colorable otherwise)"
        )
    if n < 13:
        raise GeneratorError("need n >= 13")
    g = cycle_power(n, power=3)
    g.name = f"fisk_like_{n}"
    g.metadata["not_4_colorable"] = True
    # balls of radius up to (n - 4) // 6 are cubes of paths, hence planar
    g.metadata["planar_ball_radius"] = (n - 4) // 6
    return g


def planar_grid_patch(rows: int, cols: int) -> Graph:
    """Planar rectangular grid used as the comparison graph of Theorem 2.6."""
    from repro.graphs.generators.classic import grid_2d

    g = grid_2d(rows, cols)
    g.metadata["bipartite"] = True
    g.metadata["triangle_free"] = True
    return g
