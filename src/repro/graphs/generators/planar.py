"""Planar graph generators.

Corollary 2.3 of the paper is about three families:

1. arbitrary planar graphs (``mad < 6``) — 6-list-colorable by the paper's
   algorithm;
2. triangle-free planar graphs (``mad < 4``) — 4-list-colorable;
3. planar graphs of girth at least 6 (``mad < 3``) — 3-list-colorable.

The generators below produce representative members of each family at
arbitrary sizes: maximal planar triangulations (Apollonian networks and
Delaunay triangulations of random points), quadrangulation-like grids and
random bipartite planar graphs (triangle-free), and hexagonal lattices plus
edge subdivisions (girth >= 6).
"""

from __future__ import annotations

import random

import networkx as nx

from repro.errors import GeneratorError
from repro.graphs.graph import Graph

__all__ = [
    "apollonian_network",
    "stacked_triangulation",
    "delaunay_triangulation",
    "random_planar_graph",
    "wheel",
    "grid_graph",
    "hexagonal_lattice",
    "triangle_free_planar",
    "high_girth_planar",
    "subdivide",
    "outerplanar_fan",
    "icosahedron",
]


def wheel(n_spokes: int) -> Graph:
    """Wheel graph: an ``n_spokes``-cycle plus a universal hub vertex."""
    if n_spokes < 3:
        raise GeneratorError("a wheel needs at least 3 spokes")
    g = Graph(name=f"wheel_{n_spokes}")
    hub = "hub"
    g.add_vertex(hub)
    for i in range(n_spokes):
        g.add_edge(i, (i + 1) % n_spokes)
        g.add_edge(hub, i)
    g.metadata["planar"] = True
    return g


def apollonian_network(n_insertions: int, seed: int | None = None) -> Graph:
    """Random Apollonian network (stacked planar triangulation).

    Starts from a triangle and repeatedly inserts a new vertex inside a
    uniformly chosen face, joining it to the three face vertices.  The result
    is a maximal planar graph (a *stacked triangulation*), i.e. a planar
    3-tree: average degree just under 6, so it exercises the ``d = 6`` case
    of Theorem 1.3 at its tightest.
    """
    rng = random.Random(seed)
    g = Graph(name=f"apollonian_{n_insertions}")
    g.add_edges([(0, 1), (1, 2), (0, 2)])
    faces: list[tuple[int, int, int]] = [(0, 1, 2)]
    next_vertex = 3
    for _ in range(n_insertions):
        face_index = rng.randrange(len(faces))
        a, b, c = faces[face_index]
        v = next_vertex
        next_vertex += 1
        g.add_edges([(v, a), (v, b), (v, c)])
        faces[face_index] = (a, b, v)
        faces.append((a, c, v))
        faces.append((b, c, v))
    g.metadata["planar"] = True
    g.metadata["maximal_planar"] = n_insertions > 0
    return g


def stacked_triangulation(n_vertices: int, seed: int | None = None) -> Graph:
    """Apollonian network with exactly ``n_vertices`` vertices (>= 3)."""
    if n_vertices < 3:
        raise GeneratorError("need at least 3 vertices")
    return apollonian_network(n_vertices - 3, seed=seed)


def delaunay_triangulation(n_points: int, seed: int | None = None) -> Graph:
    """Delaunay triangulation of ``n_points`` random points in the unit square.

    Produces "geometric" planar triangulations whose degree distribution is
    much more balanced than Apollonian networks.  Requires scipy.
    """
    if n_points < 3:
        raise GeneratorError("need at least 3 points")
    import numpy as np
    from scipy.spatial import Delaunay

    rng = np.random.default_rng(seed)
    points = rng.random((n_points, 2))
    tri = Delaunay(points)
    g = Graph(vertices=range(n_points), name=f"delaunay_{n_points}")
    for simplex in tri.simplices:
        a, b, c = (int(x) for x in simplex)
        g.add_edge(a, b)
        g.add_edge(b, c)
        g.add_edge(a, c)
    g.metadata["planar"] = True
    g.metadata["coordinates"] = {i: tuple(points[i]) for i in range(n_points)}
    return g


def random_planar_graph(
    n_vertices: int, edge_fraction: float = 0.8, seed: int | None = None
) -> Graph:
    """Random planar graph: a Delaunay triangulation with edges subsampled.

    ``edge_fraction`` controls sparsity (1.0 keeps the triangulation).  The
    result stays planar because removing edges preserves planarity.
    """
    if not 0.0 <= edge_fraction <= 1.0:
        raise GeneratorError("edge_fraction must lie in [0, 1]")
    base = delaunay_triangulation(n_vertices, seed=seed)
    rng = random.Random(seed)
    g = Graph(vertices=base.vertices(), name=f"random_planar_{n_vertices}")
    for u, v in base.edges():
        if rng.random() < edge_fraction:
            g.add_edge(u, v)
    g.metadata["planar"] = True
    return g


def grid_graph(rows: int, cols: int) -> Graph:
    """Planar rectangular grid (bipartite, triangle-free, girth 4)."""
    from repro.graphs.generators.classic import grid_2d

    g = grid_2d(rows, cols)
    g.metadata["triangle_free"] = True
    g.metadata["bipartite"] = True
    return g


def hexagonal_lattice(rows: int, cols: int) -> Graph:
    """Hexagonal (honeycomb) lattice — planar with girth 6.

    Built through networkx's generator and relabelled to integers; realizes
    the "planar of girth at least 6" family of Corollary 2.3(3).
    """
    if rows < 1 or cols < 1:
        raise GeneratorError("rows and cols must be positive")
    h = nx.hexagonal_lattice_graph(rows, cols)
    g = Graph.from_networkx(nx.convert_node_labels_to_integers(h))
    g.name = f"hex_{rows}x{cols}"
    g.metadata["planar"] = True
    g.metadata["girth"] = 6
    return g


def triangle_free_planar(
    n_vertices: int, seed: int | None = None
) -> Graph:
    """Random triangle-free planar graph.

    Construction: take a random planar triangulation and keep only the edges
    of a bipartition-respecting subgraph of its *square grid overlay*?  That
    is overkill; instead we take the Delaunay triangulation and subdivide
    every edge once, which yields a planar bipartite (hence triangle-free)
    graph with roughly ``n_vertices`` original vertices plus one vertex per
    edge.  To keep sizes predictable we start from a triangulation on about
    ``n_vertices / 4`` points (a triangulation has ~3n edges).
    """
    base_points = max(4, n_vertices // 4)
    base = delaunay_triangulation(base_points, seed=seed)
    g = subdivide(base, times=1)
    g.name = f"triangle_free_planar_{len(g)}"
    g.metadata["planar"] = True
    g.metadata["triangle_free"] = True
    g.metadata["bipartite"] = True
    return g


def high_girth_planar(n_vertices: int, seed: int | None = None) -> Graph:
    """Random planar graph with girth at least 6 (triangulation, subdivided twice).

    Subdividing every edge multiplies the girth by the subdivision factor,
    so two rounds of subdivision turn girth-3 faces into girth-12 faces; the
    resulting graph has ``mad < 3`` and exercises the 3-list-coloring branch
    of Corollary 2.3.
    """
    base_points = max(4, n_vertices // 10)
    base = delaunay_triangulation(base_points, seed=seed)
    g = subdivide(base, times=2)
    g.name = f"high_girth_planar_{len(g)}"
    g.metadata["planar"] = True
    g.metadata["girth_at_least"] = 6
    return g


def subdivide(graph: Graph, times: int = 1) -> Graph:
    """Subdivide every edge of ``graph`` ``times`` times.

    Each original edge ``(u, v)`` becomes a path with ``times`` internal
    vertices.  Subdivision preserves planarity and multiplies the girth by
    ``times + 1``.
    """
    if times < 0:
        raise GeneratorError("times must be non-negative")
    if times == 0:
        return graph.copy()
    g = Graph(name=f"{graph.name}_subdivided_{times}")
    g.add_vertices(graph.vertices())
    counter = 0
    for u, v in graph.edges():
        previous = u
        for _ in range(times):
            w = ("sub", counter)
            counter += 1
            g.add_edge(previous, w)
            previous = w
        g.add_edge(previous, v)
    g.metadata.update(graph.metadata)
    return g


def outerplanar_fan(n: int) -> Graph:
    """Fan graph: a path ``1..n-1`` plus a vertex 0 joined to every path vertex.

    Outerplanar, maximal outerplanar for the fan; arboricity 2, mad < 4.
    """
    if n < 2:
        raise GeneratorError("need at least 2 vertices")
    g = Graph(vertices=range(n), name=f"fan_{n}")
    for i in range(1, n - 1):
        g.add_edge(i, i + 1)
    for i in range(1, n):
        g.add_edge(0, i)
    g.metadata["planar"] = True
    g.metadata["outerplanar"] = True
    return g


def icosahedron() -> Graph:
    """The icosahedron: a 5-regular planar triangulation on 12 vertices.

    Useful as a small planar graph with no vertex of degree <= 4, hence a
    worst case for naive "peel a small-degree vertex" strategies.
    """
    g = Graph.from_networkx(nx.icosahedral_graph())
    g.name = "icosahedron"
    g.metadata["planar"] = True
    return g
