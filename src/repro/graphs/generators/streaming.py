"""Streaming edge-array generators: corpus families at n = 10^6 and beyond.

The classic generators in :mod:`repro.graphs.generators.sparse` build a
``dict[vertex, set]`` :class:`~repro.graphs.graph.Graph` one edge at a
time — fine at n = 10^4, hopeless at n = 10^6 (gigabytes of boxed ints and
hash tables).  The ``stream_*`` builders here never touch :class:`Graph`:
each produces a ``(m, 2)`` int64 edge ndarray in vectorized numpy chunks
and hands it to :meth:`FrozenGraph.from_edge_array`, which symmetrizes,
deduplicates and CSR-packs it in a few array passes.  Vertices are always
``0..n-1`` (identity labels).

The families mirror the corpus matrix where a streaming formulation
exists — k-degenerate graphs, forest unions, k-trees, preferential
attachment, and the 6-regular toroidal triangular grid (the bounded-degree
surface family the batched round engine runs on).  They are *separate*
corpus families ("stream-degenerate" etc.), not drop-in replacements: the
chunked constructions make different (equally certified) random choices
than their scalar counterparts, so their digests are pinned independently.

Every builder certifies the same structural bounds in ``metadata`` as its
scalar sibling (``degeneracy_upper_bound``, ``mad_upper_bound``, ...):
construction order proves the bound, duplicate edges dropped by
:meth:`from_edge_array` can only lower it.
"""

from __future__ import annotations

import os
from typing import Any

try:  # same backend rule as repro.graphs.frozen
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less installs
    _np = None

if os.environ.get("REPRO_FORCE_PYTHON_BACKEND"):
    _np = None

from repro.errors import GeneratorError
from repro.graphs.frozen import FrozenGraph

__all__ = [
    "stream_degenerate_graph",
    "stream_forest_union",
    "stream_k_tree",
    "stream_power_law",
    "stream_torus",
    "STREAMING_BUILDERS",
]

#: default generation chunk: big enough to amortize numpy call overhead,
#: small enough that per-chunk scratch stays in cache-friendly territory
_CHUNK = 1 << 18


def _require_numpy() -> None:
    if _np is None:
        raise GeneratorError(
            "streaming generators require numpy "
            "(unset REPRO_FORCE_PYTHON_BACKEND or install numpy)"
        )


def _empty_edges():
    return _np.empty((0, 2), dtype=_np.int64)


def _pairs(src, dst):
    return _np.stack(
        [_np.asarray(src, dtype=_np.int64), _np.asarray(dst, dtype=_np.int64)],
        axis=1,
    )


# ---------------------------------------------------------------------------
# edge-array builders
# ---------------------------------------------------------------------------

def stream_degenerate_edges(n: int, degeneracy: int, seed: int, chunk: int = _CHUNK):
    """Edges of a random k-degenerate graph, built ``chunk`` vertices at a time.

    Vertices arrive in index order; the first ``min(n, k+1)`` form a
    clique, every later vertex draws ``k`` earlier neighbours uniformly
    (duplicates within a draw merge away downstream, which only lowers the
    degree).  Each vertex has back-degree <= k by construction, so the
    graph is k-degenerate and ``mad <= 2k``.
    """
    _require_numpy()
    if n < 0 or degeneracy < 0:
        raise GeneratorError("need n >= 0 and degeneracy >= 0")
    k = degeneracy
    rng = _np.random.default_rng(seed)
    parts = []
    head = min(n, k + 1)
    if head > 1:
        i, j = _np.triu_indices(head, k=1)
        parts.append(_pairs(i, j))
    start = head
    while start < n and k > 0:
        stop = min(n, start + chunk)
        v = _np.arange(start, stop, dtype=_np.int64)
        targets = rng.integers(0, v[:, None], size=(stop - start, k))
        parts.append(_pairs(_np.repeat(v, k), targets.reshape(-1)))
        start = stop
    if not parts:
        return _empty_edges()
    return _np.concatenate(parts, axis=0)


def stream_forest_union_edges(n: int, arboricity: int, seed: int):
    """Edges of a union of ``arboricity`` uniformly random spanning forests.

    Per forest: a random vertex permutation, then every non-root position
    attaches to a uniform earlier position — one vectorized draw per
    forest.  Arboricity <= a and ``mad <= 2a`` by construction.
    """
    _require_numpy()
    if n < 0 or arboricity < 0:
        raise GeneratorError("need n >= 0 and arboricity >= 0")
    if n < 2 or arboricity == 0:
        return _empty_edges()
    rng = _np.random.default_rng(seed)
    positions = _np.arange(1, n, dtype=_np.int64)
    parts = []
    for _ in range(arboricity):
        perm = rng.permutation(n).astype(_np.int64)
        parent_pos = rng.integers(0, positions)
        parts.append(_pairs(perm[parent_pos], perm[positions]))
    return _np.concatenate(parts, axis=0)


def stream_k_tree_edges(n: int, k: int, seed: int):
    """Edges of a random k-tree (treewidth k, (k+1)-clique on ``0..k``).

    The face table (the k-cliques a new vertex may join) is one
    preallocated ``(F, k)`` int64 array and all face choices are drawn up
    front, so the per-vertex loop is pure index arithmetic.
    """
    _require_numpy()
    if k < 1:
        raise GeneratorError("need k >= 1")
    if n <= k + 1:
        if n < 2:
            return _empty_edges()
        i, j = _np.triu_indices(n, k=1)
        return _pairs(i, j)
    rng = _np.random.default_rng(seed)
    grow = n - (k + 1)
    # face count before the t-th added vertex: (k+1) + t*k
    picks = rng.integers(0, (k + 1) + k * _np.arange(grow, dtype=_np.int64))
    faces = _np.empty(((k + 1) + k * grow, k), dtype=_np.int64)
    base = _np.arange(k + 1, dtype=_np.int64)
    for x in range(k + 1):
        faces[x] = _np.delete(base, x)
    ci, cj = _np.triu_indices(k + 1, k=1)
    total_edges = len(ci) + grow * k
    edges = _np.empty((total_edges, 2), dtype=_np.int64)
    edges[: len(ci), 0] = ci
    edges[: len(ci), 1] = cj
    eidx = len(ci)
    fc = k + 1
    diag = _np.arange(k)
    for t in range(grow):
        v = k + 1 + t
        face = faces[picks[t]]
        edges[eidx : eidx + k, 0] = v
        edges[eidx : eidx + k, 1] = face
        eidx += k
        new_faces = faces[fc : fc + k]
        new_faces[:] = face  # k copies of the chosen face ...
        new_faces[diag, diag] = v  # ... each with one vertex swapped for v
        fc += k
    return edges


def stream_power_law_edges(n: int, m: int, seed: int, chunk: int = 4096):
    """Edges of a chunked preferential-attachment graph (m-degenerate).

    The endpoint urn is one preallocated int64 array; vertices attach in
    blocks of ``chunk``, sampling the urn as frozen at the block boundary
    (a block-granular approximation of classic preferential attachment —
    targets are always *earlier* vertices, so back-degree <= m certifies
    m-degeneracy exactly).
    """
    _require_numpy()
    if m < 1:
        raise GeneratorError("need m >= 1")
    head = min(n, m + 1)
    if head < 2:
        return _empty_edges()
    rng = _np.random.default_rng(seed)
    hi, hj = _np.triu_indices(head, k=1)
    max_edges = len(hi) + (n - head) * m
    edges = _np.empty((max_edges, 2), dtype=_np.int64)
    urn = _np.empty(2 * max_edges, dtype=_np.int64)
    edges[: len(hi), 0] = hi
    edges[: len(hi), 1] = hj
    urn[: len(hi)] = hi
    urn[len(hi) : 2 * len(hi)] = hj
    eidx, uidx = len(hi), 2 * len(hi)
    start = head
    while start < n:
        stop = min(n, start + chunk)
        block = _np.arange(start, stop, dtype=_np.int64)
        targets = urn[rng.integers(0, uidx, size=(stop - start, m))].reshape(-1)
        src = _np.repeat(block, m)
        count = len(src)
        edges[eidx : eidx + count, 0] = src
        edges[eidx : eidx + count, 1] = targets
        urn[uidx : uidx + count] = src
        urn[uidx + count : uidx + 2 * count] = targets
        eidx += count
        uidx += 2 * count
        start = stop
    return edges[:eidx]


def stream_torus_edges(rows: int, cols: int, shuffle_seed: int | None = None):
    """Edges of the 6-regular toroidal triangular grid on ``rows * cols``.

    Same surface as :func:`repro.graphs.generators.surfaces.
    toroidal_triangular_grid` but with integer labels and fully vectorized
    index arithmetic.  ``shuffle_seed`` applies a random vertex relabeling:
    with identity identifiers feeding the LOCAL round engines, sequential
    row-major labels would create Theta(rows + cols)-long decreasing-id
    chains, while shuffled labels keep greedy local-maxima rounds
    logarithmic.
    """
    _require_numpy()
    if rows < 3 or cols < 3:
        raise GeneratorError("need rows >= 3 and cols >= 3")
    n = rows * cols
    v = _np.arange(n, dtype=_np.int64)
    i, j = v // cols, v % cols
    right = i * cols + (j + 1) % cols
    down = ((i + 1) % rows) * cols + j
    diag = ((i + 1) % rows) * cols + (j + 1) % cols
    edges = _np.concatenate(
        [_pairs(v, right), _pairs(v, down), _pairs(v, diag)], axis=0
    )
    if shuffle_seed is not None:
        perm = _np.random.default_rng(shuffle_seed).permutation(n).astype(_np.int64)
        edges = perm[edges]
    return edges


# ---------------------------------------------------------------------------
# frozen-graph builders (the corpus family entry points)
# ---------------------------------------------------------------------------

def stream_degenerate_graph(n: int, degeneracy: int, seed: int) -> FrozenGraph:
    """Random k-degenerate graph as an identity-labelled :class:`FrozenGraph`."""
    return FrozenGraph.from_edge_array(
        n,
        stream_degenerate_edges(n, degeneracy, seed),
        name=f"stream_degenerate_{n}_{degeneracy}",
        metadata={
            "degeneracy_upper_bound": degeneracy,
            "mad_upper_bound": 2 * degeneracy,
            "streaming": True,
        },
    )


def stream_forest_union(n: int, arboricity: int, seed: int) -> FrozenGraph:
    """Union of random spanning forests as a :class:`FrozenGraph`."""
    return FrozenGraph.from_edge_array(
        n,
        stream_forest_union_edges(n, arboricity, seed),
        name=f"stream_forest_union_{n}_{arboricity}",
        metadata={
            "arboricity_upper_bound": arboricity,
            "mad_upper_bound": 2 * arboricity,
            "streaming": True,
        },
    )


def stream_k_tree(n: int, k: int, seed: int) -> FrozenGraph:
    """Random k-tree as a :class:`FrozenGraph` (clique witness ``0..k``)."""
    graph = FrozenGraph.from_edge_array(
        n,
        stream_k_tree_edges(n, k, seed),
        name=f"stream_k_tree_{n}_{k}",
        metadata={
            "treewidth": k,
            "degeneracy_upper_bound": k,
            "streaming": True,
        },
    )
    if n >= k + 1:
        graph.metadata["clique_witness"] = tuple(range(k + 1))
    return graph


def stream_power_law(n: int, m: int, seed: int) -> FrozenGraph:
    """Chunked preferential-attachment graph as a :class:`FrozenGraph`."""
    return FrozenGraph.from_edge_array(
        n,
        stream_power_law_edges(n, m, seed),
        name=f"stream_power_law_{n}_{m}",
        metadata={
            "degeneracy_upper_bound": m,
            "mad_upper_bound": 2 * m,
            "streaming": True,
        },
    )


def stream_torus(rows: int, cols: int, shuffle_seed: int = 0) -> FrozenGraph:
    """Shuffled 6-regular toroidal triangular grid as a :class:`FrozenGraph`."""
    return FrozenGraph.from_edge_array(
        rows * cols,
        stream_torus_edges(rows, cols, shuffle_seed=shuffle_seed),
        name=f"stream_torus_{rows}x{cols}",
        metadata={
            "surface": "torus",
            "euler_genus": 2,
            "max_degree": 6,
            "degeneracy_upper_bound": 6,
            "streaming": True,
        },
    )


#: builder registry mirrored by the corpus family matrix
STREAMING_BUILDERS: dict[str, Any] = {
    "stream-degenerate": stream_degenerate_graph,
    "stream-forest": stream_forest_union,
    "stream-k-tree": stream_k_tree,
    "stream-power-law": stream_power_law,
    "stream-torus": stream_torus,
}
