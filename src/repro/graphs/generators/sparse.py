"""Generators of sparse graphs with controlled density parameters.

Theorem 1.3 needs graphs with ``mad(G) <= d`` and no ``(d+1)``-clique;
Corollary 1.4 needs graphs of arboricity exactly ``a``.  The generators in
this module construct such graphs with certified parameters:

* :func:`union_of_random_forests` — arboricity at most ``a`` by
  construction (Nash–Williams), hence ``mad <= 2a``;
* :func:`random_degenerate_graph` — ``k``-degenerate by construction, hence
  ``mad <= 2k`` and arboricity at most ``k``;
* :func:`random_bounded_mad_graph` — rejection-samples a graph whose exact
  maximum average degree (computed by the flow-based oracle) is at most the
  requested bound;
* :func:`near_regular_sparse_graph` — graphs where (almost) every vertex has
  degree exactly ``d``, the hardest regime for Lemma 3.1 (few vertices of
  degree ``<= d-1``).
"""

from __future__ import annotations

import random

from repro.errors import GeneratorError
from repro.graphs.graph import Graph

__all__ = [
    "union_of_random_forests",
    "random_degenerate_graph",
    "random_bounded_mad_graph",
    "near_regular_sparse_graph",
    "forest_with_extra_edges",
    "random_k_tree",
    "preferential_attachment",
]


def union_of_random_forests(
    n: int, arboricity: int, edge_density: float = 1.0, seed: int | None = None
) -> Graph:
    """Union of ``arboricity`` random spanning forests on the same vertex set.

    By the Nash–Williams theorem the result has arboricity at most
    ``arboricity``; with ``edge_density = 1.0`` each forest is a spanning
    tree so the graph has close to ``a(n-1)`` edges and its arboricity is
    exactly ``a`` for n large enough (any subgraph on all n vertices has
    ``ceil(m/(n-1)) = a``).

    Parameters
    ----------
    n:
        Number of vertices (``n <= 1`` degenerates to an edgeless graph —
        a forest on one or zero vertices is still a forest).
    arboricity:
        Number of forests to overlay.
    edge_density:
        Fraction of each spanning tree's edges to keep (1.0 keeps all).
    seed:
        Randomness seed.
    """
    if n < 0:
        raise GeneratorError("n must be non-negative")
    if arboricity < 1:
        raise GeneratorError("arboricity must be at least 1")
    if not 0.0 < edge_density <= 1.0:
        raise GeneratorError("edge_density must lie in (0, 1]")
    rng = random.Random(seed)
    g = Graph(vertices=range(n), name=f"forest_union_{n}_a{arboricity}")
    if n < 2:  # a forest on <= 1 vertex has no edges
        g.metadata["arboricity_upper_bound"] = arboricity
        g.metadata["mad_upper_bound"] = 2 * arboricity
        return g
    for _ in range(arboricity):
        order = list(range(n))
        rng.shuffle(order)
        for i in range(1, n):
            if rng.random() > edge_density:
                continue
            parent = order[rng.randrange(i)]
            child = order[i]
            if parent != child:
                g.add_edge(parent, child)
    g.metadata["arboricity_upper_bound"] = arboricity
    g.metadata["mad_upper_bound"] = 2 * arboricity
    return g


def random_degenerate_graph(
    n: int, degeneracy: int, seed: int | None = None, full: bool = True
) -> Graph:
    """Random ``k``-degenerate graph built along a random vertex ordering.

    Vertex ``i`` (in a random order) chooses up to ``degeneracy`` random
    earlier vertices as neighbours.  With ``full=True`` each vertex takes
    exactly ``min(i, degeneracy)`` earlier neighbours, giving
    ``m ~ k n - k(k+1)/2`` edges and ``mad`` close to ``2k``.
    """
    if n < 1:
        raise GeneratorError("need at least one vertex")
    if degeneracy < 0:
        raise GeneratorError("degeneracy must be non-negative")
    rng = random.Random(seed)
    order = list(range(n))
    rng.shuffle(order)
    g = Graph(vertices=range(n), name=f"degenerate_{n}_k{degeneracy}")
    for i, v in enumerate(order):
        available = order[:i]
        if not available:
            continue
        count = min(len(available), degeneracy)
        if not full:
            count = rng.randint(0, count)
        for u in rng.sample(available, count):
            g.add_edge(u, v)
    g.metadata["degeneracy_upper_bound"] = degeneracy
    g.metadata["mad_upper_bound"] = 2 * degeneracy
    return g


def random_bounded_mad_graph(
    n: int,
    mad_bound: float,
    seed: int | None = None,
    max_attempts: int = 50,
) -> Graph:
    """Random graph whose *exact* maximum average degree is at most ``mad_bound``.

    Edges are added one by one in random order; an edge is kept only if the
    exact maximum average degree (computed incrementally through the
    flow-based oracle on the affected subgraph) stays at most ``mad_bound``.
    To keep generation fast, the generator checks the cheaper sufficient
    condition "every subgraph reachable by the new edge keeps density"
    through the exact mad oracle applied every ``n`` accepted edges and
    rolls back the last batch when the bound is exceeded.

    The implementation below uses a simpler, still exact scheme: build a
    candidate with :func:`random_degenerate_graph` at degeneracy
    ``floor(mad_bound / 2)`` (which guarantees ``mad <= mad_bound``) and then
    greedily add random extra edges while the exact mad stays within the
    bound.  The exact check uses :func:`repro.graphs.properties.mad.maximum_average_degree`.
    """
    from repro.graphs.properties.mad import maximum_average_degree

    if mad_bound < 1:
        raise GeneratorError("mad_bound must be at least 1")
    rng = random.Random(seed)
    base_degeneracy = max(1, int(mad_bound // 2))
    g = random_degenerate_graph(n, base_degeneracy, seed=seed, full=True)
    g.name = f"bounded_mad_{n}_{mad_bound}"

    # Greedily densify while respecting the exact bound.
    vertices = g.vertices()
    for _ in range(max_attempts):
        u, v = rng.sample(vertices, 2)
        if g.has_edge(u, v):
            continue
        g.add_edge(u, v)
        if maximum_average_degree(g) > mad_bound + 1e-9:
            g.remove_edge(u, v)
    g.metadata["mad_upper_bound"] = mad_bound
    return g


def near_regular_sparse_graph(
    n: int, d: int, seed: int | None = None
) -> Graph:
    """A graph where almost every vertex has degree exactly ``d`` and ``mad <= d``.

    Construction: take a random ``d``-regular graph and delete a few edges
    from a random spanning structure until the maximum average degree drops
    to at most ``d`` (a ``d``-regular graph has average degree exactly ``d``,
    so mad is exactly ``d`` already unless a denser subgraph exists, which
    cannot happen since max degree is ``d``).  Hence the random regular
    graph itself already satisfies ``mad = d``; the generator simply excludes
    the (vanishingly unlikely, but checked) case of a ``(d+1)``-clique
    component by resampling.

    These are the adversarial inputs for Lemma 3.1: *no* vertex of degree
    ``<= d-1`` exists, so happiness can only come from non-Gallai balls.
    """
    from repro.graphs.generators.classic import random_regular_graph
    from repro.graphs.properties.cliques import find_clique_of_size

    if d < 3:
        raise GeneratorError("d must be at least 3 (Theorem 1.3 hypothesis)")
    rng = random.Random(seed)
    for attempt in range(50):
        g = random_regular_graph(n, d, seed=None if seed is None else seed + attempt)
        if find_clique_of_size(g, d + 1) is None:
            g.name = f"near_regular_{n}_d{d}"
            g.metadata["mad_upper_bound"] = d
            g.metadata["regular_degree"] = d
            return g
        rng.random()
    raise GeneratorError("could not avoid a (d+1)-clique; increase n")


def random_k_tree(n: int, k: int, seed: int | None = None) -> Graph:
    """Random ``k``-tree on ``n`` vertices (a maximal graph of treewidth ``k``).

    Start from a ``(k+1)``-clique and repeatedly attach a new vertex to a
    uniformly chosen existing ``k``-clique (a face of the construction).
    ``k``-trees are exactly the maximal ``k``-degenerate chordal graphs:
    planar 3-trees (``k = 3`` minus one) are the stacked triangulations the
    paper's planar experiments use, and general ``k`` gives the corpus a
    dense-but-degenerate family with ``mad < 2k`` and a guaranteed
    ``(k+1)``-clique — the witness side of Theorem 1.3's dichotomy.

    ``n <= k + 1`` degenerates to the complete graph ``K_n``.
    """
    if n < 1:
        raise GeneratorError("need at least one vertex")
    if k < 1:
        raise GeneratorError("k must be at least 1")
    rng = random.Random(seed)
    g = Graph(vertices=range(n), name=f"ktree_{n}_k{k}")
    base = list(range(min(n, k + 1)))
    for i, u in enumerate(base):
        for v in base[i + 1:]:
            g.add_edge(u, v)
    if n <= k + 1:
        g.metadata["degeneracy_upper_bound"] = max(0, n - 1)
        return g
    cliques: list[tuple[int, ...]] = [
        tuple(c for j, c in enumerate(base) if j != drop)
        for drop in range(k + 1)
    ]
    for v in range(k + 1, n):
        face = cliques[rng.randrange(len(cliques))]
        for u in face:
            g.add_edge(u, v)
        cliques.extend(
            tuple(c for j, c in enumerate(face) if j != drop) + (v,)
            for drop in range(k)
        )
    g.metadata["degeneracy_upper_bound"] = k
    g.metadata["mad_upper_bound"] = 2 * k
    g.metadata["clique_number"] = k + 1
    return g


def preferential_attachment(n: int, m: int, seed: int | None = None) -> Graph:
    """Barabási–Albert-style power-law graph: each new vertex picks ``m`` targets.

    Vertices arrive one at a time and connect to ``m`` distinct existing
    vertices sampled proportionally to degree (the classical repeated-stub
    urn), producing the heavy-tailed degree distributions the sparse
    pipelines never see from the forest/planar families.  The result is
    ``m``-degenerate by construction (every vertex has at most ``m``
    earlier neighbours), so ``mad <= 2m`` and the Theorem 1.3 driver's
    promise holds with ``d >= 2m``.
    """
    if n < 1:
        raise GeneratorError("need at least one vertex")
    if m < 1:
        raise GeneratorError("m must be at least 1")
    rng = random.Random(seed)
    g = Graph(vertices=range(n), name=f"powerlaw_{n}_m{m}")
    # the degree-proportional urn: every edge endpoint is one ball
    urn: list[int] = [0]
    for v in range(1, n):
        count = min(m, v)
        targets: set[int] = set()
        guard = 0
        while len(targets) < count and guard < 50 * count + 50:
            guard += 1
            targets.add(urn[rng.randrange(len(urn))])
        while len(targets) < count:  # degenerate urn: fill deterministically
            targets.add(next(u for u in range(v) if u not in targets))
        for u in targets:
            g.add_edge(u, v)
            urn.append(u)
            urn.append(v)
    g.metadata["degeneracy_upper_bound"] = m
    g.metadata["mad_upper_bound"] = 2 * m
    return g


def forest_with_extra_edges(
    n: int, extra_edges: int, seed: int | None = None
) -> Graph:
    """A spanning tree plus ``extra_edges`` random chords.

    Arboricity 2 (for any ``extra_edges >= 1``) but much sparser than the
    union of two spanning forests; useful to test the ``a = 2`` boundary of
    Corollary 1.4 away from the extremal density.
    """
    from repro.graphs.generators.classic import random_tree

    rng = random.Random(seed)
    g = random_tree(n, seed=seed)
    g.name = f"tree_plus_{extra_edges}"
    added = 0
    guard = 0
    while added < extra_edges and guard < 100 * extra_edges + 100:
        guard += 1
        u, v = rng.sample(range(n), 2)
        if not g.has_edge(u, v):
            g.add_edge(u, v)
            added += 1
    g.metadata["arboricity_upper_bound"] = 2
    return g
