"""Oracles for the structural witnesses: H-partitions and ruling forests.

Both structures carry *distance/domination* invariants that the coloring
pipelines silently rely on; these oracles make them machine-checked:

* :class:`HPartitionOracle` — the Barenboim–Elkin peel invariant: the
  classes partition the vertex set, and every vertex of class ``H_i`` has
  at most ``degree_bound`` neighbours in its own and later classes (that is
  literally why the slot phase always finds a free color);
* :class:`RulingForestOracle` — the (α, β)-ruling forest legality of
  Lemma 3.2: trees are vertex-disjoint, parent pointers are graph edges
  with consistent depths/roots, tree depth is at most β, the requested
  subset is dominated, and the roots are pairwise at distance at least α.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.graphs.graph import Vertex
from repro.verify.oracle import Verdict, collector

__all__ = ["HPartitionOracle", "RulingForestOracle"]


class HPartitionOracle:
    """Legality of an H-partition (Barenboim–Elkin Procedure Partition)."""

    name = "h-partition"

    def check(self, *, graph, partition: Any) -> Verdict:
        out = collector(self.name)
        classes = partition.classes
        class_of = partition.class_of
        bound = partition.degree_bound

        seen: dict[Vertex, int] = {}
        for index, members in enumerate(classes):
            for v in members:
                out.saw()
                if v in seen:
                    out.fail(
                        f"vertex {v!r} appears in classes {seen[v]} and {index}"
                    )
                seen[v] = index
                if class_of.get(v) != index:
                    out.fail(
                        f"class_of[{v!r}] = {class_of.get(v)!r} but the vertex "
                        f"sits in class {index}"
                    )
        for v in graph:
            out.saw()
            if v not in seen:
                out.fail(f"vertex {v!r} is in no class (classes must partition V)")

        # the peel invariant: at most `bound` neighbours in the same or a
        # later class — exactly the free-color counting of the slot phase
        for v in graph:
            index = seen.get(v)
            if index is None:
                continue
            out.saw()
            later = sum(1 for u in graph.neighbors(v) if seen.get(u, -1) >= index)
            if later > bound:
                out.fail(
                    f"vertex {v!r} (class {index}) has {later} neighbours in "
                    f"classes >= {index}, exceeding the degree bound {bound:g}"
                )
        return out.verdict()


class RulingForestOracle:
    """Legality of an (α, β)-ruling forest with respect to a subset."""

    name = "ruling-forest"

    def check(self, *, graph, forest: Any, subset: set[Vertex] | None = None) -> Verdict:
        out = collector(self.name)
        roots = list(forest.roots)
        parent = forest.parent
        depth = forest.depth
        tree_of = forest.tree_of

        root_set = set(roots)
        for r in roots:
            out.saw()
            if r not in graph:
                out.fail(f"root {r!r} is not a vertex of the graph")
            if parent.get(r, "missing") is not None:
                out.fail(f"root {r!r} has parent {parent.get(r)!r}, expected None")
            if depth.get(r) != 0:
                out.fail(f"root {r!r} has depth {depth.get(r)!r}, expected 0")
            if tree_of.get(r) != r:
                out.fail(f"root {r!r} is owned by tree {tree_of.get(r)!r}")

        for v, p in parent.items():
            if p is None:
                out.saw()
                if v not in root_set:
                    out.fail(f"vertex {v!r} has no parent but is not a root")
                continue
            out.saw()
            if not graph.has_edge(v, p):
                out.fail(f"tree edge ({v!r}, {p!r}) is not an edge of the graph")
            if depth.get(v) != depth.get(p, -2) + 1:
                out.fail(
                    f"depth[{v!r}] = {depth.get(v)!r} but its parent {p!r} "
                    f"has depth {depth.get(p)!r}"
                )
            if tree_of.get(v) != tree_of.get(p):
                out.fail(
                    f"vertex {v!r} is in tree {tree_of.get(v)!r} but its "
                    f"parent {p!r} is in tree {tree_of.get(p)!r}"
                )

        beta = forest.beta
        for v, d in depth.items():
            out.saw()
            if d > beta:
                out.fail(f"vertex {v!r} sits at depth {d} > beta = {beta}")

        if subset is not None:
            for v in subset:
                out.saw()
                if v not in parent:
                    out.fail(f"subset vertex {v!r} joined no tree (domination broken)")

        # roots pairwise at distance >= alpha: one depth-bounded BFS per root
        alpha = forest.alpha
        for r in roots:
            if r not in graph:
                continue
            out.saw()
            close = self._within(graph, r, alpha - 1) & root_set - {r}
            for other in sorted(close, key=repr):
                if repr(other) > repr(r):  # report each pair once
                    out.fail(
                        f"roots {r!r} and {other!r} are at distance "
                        f"< alpha = {alpha}"
                    )
        return out.verdict()

    @staticmethod
    def _within(graph, source: Vertex, limit: int) -> set[Vertex]:
        """All vertices within distance ``limit`` of ``source``."""
        distances = {source: 0}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            if distances[u] >= limit:
                continue
            for w in graph.neighbors(u):
                if w not in distances:
                    distances[w] = distances[u] + 1
                    queue.append(w)
        return set(distances)
