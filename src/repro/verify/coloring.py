"""Oracles for colorings, list-colorings, palettes and clique witnesses.

These wrap the predicates of :mod:`repro.coloring.verification` (which stay
the fast in-pipeline checks) into the :class:`~repro.verify.oracle.Oracle`
protocol: instead of raising on the first violation, they sweep the whole
witness and report *every* monochromatic edge, missing vertex, out-of-list
color or non-adjacent clique pair, capped for readability.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Any

from repro.coloring.assignment import Color, ListAssignment
from repro.coloring.verification import is_proper_coloring, number_of_colors
from repro.graphs.graph import Vertex
from repro.verify.oracle import Verdict, collector

__all__ = [
    "ProperColoringOracle",
    "ListColoringOracle",
    "PaletteBudgetOracle",
    "CliqueWitnessOracle",
    "DichotomyOracle",
]


class ProperColoringOracle:
    """Completeness + properness of a coloring (Theorem 1.3's output shape)."""

    name = "proper-coloring"

    def check(
        self,
        *,
        graph,
        coloring: Mapping[Vertex, Color],
        require_complete: bool = True,
    ) -> Verdict:
        out = collector(self.name)
        if require_complete:
            for v in graph:
                out.saw()
                if v not in coloring:
                    out.fail(f"vertex {v!r} is uncolored")
        # fast accept: one vectorized pass when the coloring is proper; the
        # edge scan below only runs to *name* the offending edges
        if not out.failures and is_proper_coloring(graph, coloring):
            out.saw(graph.number_of_edges())
            return out.verdict()
        for u, v in graph.edges():
            out.saw()
            if u in coloring and v in coloring and coloring[u] == coloring[v]:
                out.fail(
                    f"edge ({u!r}, {v!r}) is monochromatic "
                    f"with color {coloring[u]!r}"
                )
        return out.verdict()


class ListColoringOracle:
    """Proper coloring that additionally respects a list assignment."""

    name = "list-coloring"

    def check(
        self,
        *,
        graph,
        coloring: Mapping[Vertex, Color],
        lists: ListAssignment,
        require_complete: bool = True,
    ) -> Verdict:
        out = collector(self.name)
        proper = ProperColoringOracle().check(
            graph=graph, coloring=coloring, require_complete=require_complete
        )
        out.saw(proper.checked)
        for diagnostic in proper.diagnostics:
            out.fail(diagnostic)
        out.failures += max(0, proper.failures - len(proper.diagnostics))
        for v, color in coloring.items():
            if v not in lists:
                continue
            out.saw()
            if color not in lists[v]:
                out.fail(
                    f"vertex {v!r} uses color {color!r} outside its list "
                    f"{sorted(map(repr, lists[v]))}"
                )
        return out.verdict()


class PaletteBudgetOracle:
    """The number of distinct colors stays within the paper's budget."""

    name = "palette-budget"

    def check(
        self, *, coloring: Mapping[Vertex, Color], budget: int
    ) -> Verdict:
        out = collector(self.name)
        out.saw()
        used = number_of_colors(coloring)
        if used > budget:
            out.fail(
                f"coloring uses {used} distinct colors, budget is {budget} "
                f"(palette {sorted(map(repr, set(coloring.values())))[:12]})"
            )
        return out.verdict()


class CliqueWitnessOracle:
    """A claimed ``(d+1)``-clique really is one: size, membership, adjacency."""

    name = "clique-witness"

    def check(self, *, graph, clique: Iterable[Vertex], size: int) -> Verdict:
        out = collector(self.name)
        witness = list(clique)
        out.saw()
        if len(set(witness)) != len(witness):
            out.fail(f"clique witness repeats vertices: {witness!r}")
        if len(witness) != size:
            out.fail(
                f"clique witness has {len(witness)} vertices, expected {size}"
            )
        for v in witness:
            out.saw()
            if v not in graph:
                out.fail(f"clique vertex {v!r} is not in the graph")
        members = [v for v in witness if v in graph]
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                out.saw()
                if u != v and not graph.has_edge(u, v):
                    out.fail(
                        f"clique pair ({u!r}, {v!r}) is not an edge of the graph"
                    )
        return out.verdict()


class DichotomyOracle:
    """Theorem 1.3's promise: exactly one of a coloring or a clique, valid.

    Accepts the :class:`~repro.core.sparse_coloring.SparseColoringResult`
    of one driver run: either the coloring is a complete, proper,
    list-respecting ``d``-list-coloring, or the clique is a genuine
    ``(d+1)``-clique (in which case no ``d``-coloring exists at all).
    """

    name = "theorem13-dichotomy"

    def check(
        self,
        *,
        graph,
        result: Any,
        d: int,
        lists: ListAssignment | None = None,
    ) -> Verdict:
        out = collector(self.name)
        out.saw()
        has_coloring = result.coloring is not None
        has_clique = result.clique is not None
        if has_coloring == has_clique:
            out.fail(
                "result must carry exactly one of coloring/clique, got "
                f"coloring={'set' if has_coloring else 'None'} "
                f"clique={'set' if has_clique else 'None'}"
            )
            return out.verdict()
        if has_clique:
            sub = CliqueWitnessOracle().check(
                graph=graph, clique=result.clique, size=d + 1
            )
        elif lists is not None:
            sub = ListColoringOracle().check(
                graph=graph, coloring=result.coloring, lists=lists
            )
        else:
            sub = ProperColoringOracle().check(
                graph=graph, coloring=result.coloring
            )
        out.saw(sub.checked)
        for diagnostic in sub.diagnostics:
            out.fail(f"[{sub.oracle}] {diagnostic}")
        out.failures += max(0, sub.failures - len(sub.diagnostics))
        if has_coloring and lists is None:
            # only plain d-coloring bounds the distinct colors by d; with
            # per-vertex lists the union of lists may exceed d colors even
            # though every vertex respects its own d-list
            budget = PaletteBudgetOracle().check(
                coloring=result.coloring, budget=d
            )
            out.saw(budget.checked)
            for diagnostic in budget.diagnostics:
                out.fail(f"[{budget.oracle}] {diagnostic}")
        return out.verdict()
