"""The locality auditor: Theorem 1.5's argument as an executable oracle.

The indistinguishability lower bounds of the paper (Theorem 1.5, Theorems
2.5/2.6) all rest on one fact about the LOCAL model: *the output of a node
after r rounds is a function of its radius-r ball* — the labelled induced
subgraph, the identifiers, the per-node inputs and the globally-known ``n``.
The auditor turns that fact into a conformance check of the round engine
and of every node program running on it:

1. run the algorithm on the full network; record the round count ``R`` and
   the per-node outputs;
2. for each audited vertex ``v``, extract the induced subgraph on the ball
   ``B(v, R + 1)`` — radius ``R`` plus one closure hop, so every vertex
   within distance ``R`` of ``v`` keeps its exact degree and port
   numbering (vertices at distance ``R + 1`` exist only to pad the border;
   their own truncated views never reach ``v`` within ``R`` rounds);
3. re-run the *same* program on that truncated network, preserving the
   original identifiers and the announced ``n``
   (:class:`~repro.local.network.Network`'s ``identifiers=`` /
   ``declared_n=``), for at most ``R`` rounds;
4. assert the truncated run reproduces ``v``'s output exactly.

A program that passes for every vertex is *locality-faithful*: it derives
nothing from global structure a message-passing node could not know.  A
program that cheats — reading the whole input array, deriving a schedule
from observed maxima, indexing beyond its fabric slice — produces a
different output on some truncated ball and is reported with the offending
vertex, radius and both outputs.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.graphs.frozen import freeze
from repro.graphs.graph import Vertex
from repro.local.network import Network
from repro.local.simulator import SimulationResult, SynchronousSimulator
from repro.verify.oracle import Verdict, collector

__all__ = ["LocalityViolation", "LocalityAuditReport", "audit_locality", "LocalityOracle"]


@dataclass
class LocalityViolation:
    """One audited vertex whose truncated re-run diverged."""

    vertex: Vertex
    radius: int
    full_output: Any
    truncated_output: Any
    ball_size: int


@dataclass
class LocalityAuditReport:
    """The outcome of one locality audit."""

    rounds: int
    audited: list[Vertex]
    violations: list[LocalityViolation] = field(default_factory=list)
    full_result: SimulationResult | None = None

    @property
    def ok(self) -> bool:
        return not self.violations


def audit_locality(
    graph,
    algorithm_factory: Callable[[], Any],
    inputs: Mapping[Vertex, Any] | None = None,
    *,
    vertices: list[Vertex] | None = None,
    max_rounds: int = 10_000,
    network: Network | None = None,
) -> LocalityAuditReport:
    """Audit a node program for locality-faithfulness on one instance.

    ``vertices`` selects the audited sample (default: every vertex —
    quadratic-ish in practice, so large instances should pass an explicit
    sample).  ``network=`` reuses a prebuilt full network; otherwise the
    graph is frozen here and the default identifier order applies.
    """
    frozen = freeze(graph)
    if network is None:
        network = Network(frozen)
    full = SynchronousSimulator(network).run(
        algorithm_factory, inputs=inputs, max_rounds=max_rounds, strict=True
    )
    radius = full.rounds
    audited = list(vertices) if vertices is not None else frozen.vertices()
    inputs = dict(inputs or {})

    report = LocalityAuditReport(
        rounds=radius, audited=audited, full_result=full
    )
    for v in audited:
        # radius + 1: the closure hop that keeps every distance-<=R vertex's
        # degree (hence initial state and port numbering) exactly as in the
        # full network
        ball = frozen.ball(v, radius + 1)
        sub = frozen.subgraph(ball)
        sub_network = Network(
            sub,
            identifiers={u: network.identifier_of[u] for u in ball},
            declared_n=network.declared_n,
        )
        truncated = SynchronousSimulator(sub_network).run(
            algorithm_factory,
            inputs={u: inputs.get(u) for u in ball},
            max_rounds=max(radius, 1),
            strict=False,
        )
        if truncated.outputs[v] != full.outputs[v]:
            report.violations.append(
                LocalityViolation(
                    vertex=v,
                    radius=radius,
                    full_output=full.outputs[v],
                    truncated_output=truncated.outputs[v],
                    ball_size=len(ball),
                )
            )
    return report


class LocalityOracle:
    """Oracle wrapper around :func:`audit_locality`."""

    name = "locality"

    def check(
        self,
        *,
        graph,
        algorithm_factory: Callable[[], Any],
        inputs: Mapping[Vertex, Any] | None = None,
        vertices: list[Vertex] | None = None,
        max_rounds: int = 10_000,
        network: Network | None = None,
    ) -> Verdict:
        out = collector(self.name)
        report = audit_locality(
            graph,
            algorithm_factory,
            inputs,
            vertices=vertices,
            max_rounds=max_rounds,
            network=network,
        )
        out.saw(len(report.audited))
        for violation in report.violations:
            out.fail(
                f"vertex {violation.vertex!r}: output on the full network is "
                f"{violation.full_output!r} but the radius-{violation.radius} "
                f"ball re-run ({violation.ball_size} vertices) produced "
                f"{violation.truncated_output!r} — the program reads beyond "
                "its r-ball"
            )
        return out.verdict()
