"""The BENCH-artifact oracle suite: replay conformance checks on artifacts.

A finished scenario run leaves a ``BENCH_<scenario>.json`` artifact; this
module re-checks such artifacts *after the fact* — the machinery behind
``python -m repro verify`` and the ``verify=`` axis of
:func:`repro.scenarios.base.run_scenario`:

* **schema** — the artifact conforms to schema version 1 (delegates to
  :mod:`repro.scenarios.schema`);
* **budget** — every row claiming ``colors``/``budget`` metrics stays
  within its paper budget, and ``valid`` flags are true;
* **variant-parity** — rows of the same instance whose algorithm labels
  differ only by a ``[variant]`` suffix (backend/engine axes) agree on
  every deterministic metric (``coloring_sha``, ``rounds``, ``messages``,
  ``colors``, ``palette``, ``layers``) — the artifact-level form of the
  parity promises;
* **round-envelope** — measured round totals of the known pipelines stay
  inside the statement envelopes of :mod:`repro.verify.rounds`;
* **recovery** — rows of the dynamic (E18) scenario recovered: every row
  carrying ``rounds_to_recovery`` reached a legal quiescent state within
  its declared round cap, with zero containment violations and a
  containment radius inside its declared bound.

The suite is generic over scenarios: oracles inspect whatever rows carry
the metrics they understand and skip the rest, so every registered
scenario can run with ``verify=`` enabled.
"""

from __future__ import annotations

import re
from typing import Any

from repro.verify.oracle import Verdict, collector
from repro.verify.rounds import RoundEnvelopeOracle

__all__ = ["verify_artifact_dict", "artifact_failures", "ARTIFACT_ORACLE_NAMES"]

ARTIFACT_ORACLE_NAMES = (
    "schema",
    "budget",
    "variant-parity",
    "round-envelope",
    "recovery",
)

#: deterministic metrics that must agree across backend/engine variants
_PARITY_METRICS = ("coloring_sha", "rounds", "messages", "colors", "palette", "layers")

_VARIANT_RE = re.compile(r"^(?P<base>.*?) \[(?P<variant>[^\]]+)\]$")
_PARAM_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)=(-?\d+)")
_REGULAR_RE = re.compile(r"^(\d+)-regular\b")


def _instance_params(instance: Any) -> dict[str, int]:
    """Parse ``key=value`` integers out of an instance label.

    The row-label convention (``n=40 d=4``, ``forest_union n=800 a=3``,
    ``4-regular n=60``) is the artifact's only carrier of per-row
    parameters, so the envelope oracle reads them back from the labels.
    """
    if not isinstance(instance, str):
        return {}
    params = {k: int(v) for k, v in _PARAM_RE.findall(instance)}
    regular = _REGULAR_RE.match(instance)
    if regular:
        params.setdefault("delta", int(regular.group(1)))
    return params


def _row_label(row: dict) -> str:
    """``instance / algorithm`` for diagnostics (tolerant of malformed rows)."""
    return f"{row.get('instance', '?')} / {row.get('algorithm', '?')}"


def _check_schema(artifact: dict, expected_name: str | None) -> Verdict:
    from repro.scenarios.schema import validate_artifact

    out = collector("schema")
    out.saw()
    for problem in validate_artifact(artifact, expected_name=expected_name):
        out.fail(problem)
    return out.verdict()


def _check_budgets(rows: list[dict]) -> Verdict:
    out = collector("budget")
    for row in rows:
        metrics = row.get("metrics")
        if not isinstance(metrics, dict):
            continue  # the schema oracle reports the malformed row
        if "colors" in metrics and "budget" in metrics:
            out.saw()
            if metrics["colors"] > metrics["budget"]:
                out.fail(
                    f"{_row_label(row)}: used {metrics['colors']} colors, "
                    f"budget {metrics['budget']}"
                )
        if "valid" in metrics:
            out.saw()
            if not metrics["valid"]:
                out.fail(f"{_row_label(row)}: verification flag is false")
    return out.verdict()


def _check_variant_parity(rows: list[dict]) -> Verdict:
    out = collector("variant-parity")
    groups: dict[tuple[str, str], list[dict]] = {}
    for row in rows:
        algorithm = row.get("algorithm")
        if not isinstance(algorithm, str):
            continue  # the schema oracle reports the malformed row
        match = _VARIANT_RE.match(algorithm)
        base = match.group("base") if match else algorithm
        groups.setdefault((str(row.get("instance", "")), base), []).append(row)
    for (instance, base), members in groups.items():
        if len(members) < 2:
            continue
        for metric in _PARITY_METRICS:
            values = {
                row.get("algorithm", "?"): row["metrics"][metric]
                for row in members
                if isinstance(row.get("metrics"), dict)
                and metric in row["metrics"]
            }
            if len(values) < 2:
                continue
            out.saw()
            if len(set(map(repr, values.values()))) > 1:
                shown = ", ".join(
                    f"{label}={value!r}" for label, value in sorted(values.items())
                )
                out.fail(
                    f"{instance} / {base}: {metric} diverges across "
                    f"variants ({shown})"
                )
    return out.verdict()


# scenario name -> row classifier returning (envelope kind, params) or None.
# Row labels carry most parameters (``n=40 d=4``); ``scenario_params`` (the
# artifact's metadata.params) fills in grid-wide ones the labels omit, like
# theorem13-rounds' single ``d``.
def _envelope_for(
    scenario: str, row: dict, scenario_params: dict[str, Any]
) -> tuple[str, dict[str, Any]] | None:
    algorithm = row.get("algorithm", "")
    if not isinstance(algorithm, str):
        return None
    metrics = row.get("metrics")
    if not isinstance(metrics, dict) or "rounds" not in metrics:
        return None
    params = _instance_params(row.get("instance", ""))
    n = params.get("n")
    if scenario in ("theorem13-colors", "theorem13-rounds"):
        d = params.get("d", scenario_params.get("d"))
        if n is None or not isinstance(d, int) or algorithm.startswith("greedy"):
            return None
        return "theorem13", {"n": n, "d": d}
    if scenario == "coloring":
        if n is None or "speedup" in algorithm:
            return None
        if algorithm.startswith("Barenboim-Elkin"):
            return "barenboim-elkin", {"n": n, "a": max(1, params.get("d", 2) // 2)}
        return "theorem13", {"n": n, "d": params.get("d", 4)}
    if scenario == "corollary14-arboricity":
        if n is None or "a" not in params:
            return None
        if algorithm.startswith("Barenboim-Elkin"):
            return "barenboim-elkin", {"n": n, "a": params["a"]}
        return "theorem13", {"n": n, "d": 2 * params["a"]}
    if scenario == "simulator":
        if n is None or "speedup" in algorithm:
            return None
        if algorithm.startswith("Cole-Vishkin"):
            return "cole-vishkin", {"n": n}
        if algorithm.startswith("greedy"):
            return "greedy", {"n": n}
        return None
    if scenario == "primitives":
        if n is None:
            return None
        if algorithm.startswith("Cole-Vishkin"):
            return "cole-vishkin", {"n": n}
        if algorithm.startswith("Linial"):
            return "linial", {"n": n, "delta": params.get("delta", 1)}
        match = re.search(r"alpha=(\d+)", algorithm)
        if match:
            return "ruling-forest", {"n": n, "alpha": int(match.group(1))}
        return None
    if scenario == "corollary21-brooks":
        if n is None or "delta" not in params:
            return None
        if algorithm.startswith("greedy"):
            return "greedy", {"n": n}
        return "theorem13", {"n": n, "d": params["delta"]}
    if scenario in ("corollary23-planar", "corollary211-genus"):
        if n is None or "budget" not in metrics:
            return None
        return "theorem13", {"n": n, "d": max(3, int(metrics["budget"]))}
    if scenario == "randomized":
        if n is None:
            return None
        if algorithm.startswith("randomized"):
            return "randomized", {"n": n}
        if algorithm.startswith("greedy"):
            return "greedy", {"n": n}
        return None
    return None


def _check_round_envelopes(
    scenario: str | None, rows: list[dict], scenario_params: dict[str, Any]
) -> Verdict:
    out = collector("round-envelope")
    oracle = RoundEnvelopeOracle()
    if scenario is None:
        return out.verdict()
    for row in rows:
        classified = _envelope_for(scenario, row, scenario_params)
        if classified is None:
            continue
        kind, params = classified
        verdict = oracle.check(kind=kind, rounds=row["metrics"]["rounds"], **params)
        out.saw(verdict.checked)
        for diagnostic in verdict.diagnostics:
            out.fail(f"{_row_label(row)}: {diagnostic}")
    return out.verdict()


def _check_recovery(rows: list[dict]) -> Verdict:
    """Audit dynamic-scenario rows: recovered, quiescent, contained."""
    out = collector("recovery")
    for row in rows:
        metrics = row.get("metrics")
        if not isinstance(metrics, dict) or "rounds_to_recovery" not in metrics:
            continue
        out.saw()
        if not metrics.get("recovered", True) or metrics["rounds_to_recovery"] < 0:
            out.fail(f"{_row_label(row)}: run never recovered a legal coloring")
        if not metrics.get("legal", False):
            out.fail(f"{_row_label(row)}: final coloring is not legal")
        if not metrics.get("quiescent", False):
            out.fail(f"{_row_label(row)}: run did not reach a silent state")
        if metrics.get("containment_violations", 0):
            out.fail(
                f"{_row_label(row)}: {metrics['containment_violations']} "
                "recolor(s) outside the perturbation's causal cone"
            )
        cap = metrics.get("recovery_cap")
        if cap is not None and metrics["rounds_to_recovery"] > cap:
            out.fail(
                f"{_row_label(row)}: rounds_to_recovery="
                f"{metrics['rounds_to_recovery']} exceeds the cap {cap}"
            )
        bound = metrics.get("containment_bound")
        radius = metrics.get("containment_radius")
        if bound is not None and radius is not None and radius > bound:
            out.fail(
                f"{_row_label(row)}: containment_radius={radius} exceeds "
                f"the declared bound {bound}"
            )
    return out.verdict()


def verify_artifact_dict(
    artifact: Any, expected_name: str | None = None
) -> list[Verdict]:
    """Run the full artifact oracle suite; one verdict per oracle."""
    verdicts = [_check_schema(artifact, expected_name)]
    if not isinstance(artifact, dict):
        return verdicts
    rows = artifact.get("rows")
    rows = [row for row in rows if isinstance(row, dict)] if isinstance(rows, list) else []
    scenario = None
    scenario_params: dict[str, Any] = {}
    metadata = artifact.get("metadata")
    if isinstance(metadata, dict):
        if isinstance(metadata.get("scenario"), dict):
            scenario = metadata["scenario"].get("name")
        if isinstance(metadata.get("params"), dict):
            scenario_params = metadata["params"]
    if scenario is None and isinstance(artifact.get("name"), str):
        scenario = artifact["name"]
    verdicts.append(_check_budgets(rows))
    verdicts.append(_check_variant_parity(rows))
    verdicts.append(_check_round_envelopes(scenario, rows, scenario_params))
    verdicts.append(_check_recovery(rows))
    return verdicts


def artifact_failures(artifact: Any, expected_name: str | None = None) -> list[str]:
    """Flat failure strings (empty = artifact passes the oracle suite)."""
    failures: list[str] = []
    for verdict in verify_artifact_dict(artifact, expected_name=expected_name):
        for diagnostic in verdict.diagnostics:
            failures.append(f"{verdict.oracle}: {diagnostic}")
        extra = verdict.failures - len(verdict.diagnostics)
        if extra > 0:
            failures.append(f"{verdict.oracle}: ... and {extra} more violation(s)")
    return failures
