"""Oracles for the randomized track (``repro.distributed.randomized``).

Two witnesses, two auditors:

* :class:`RandomizedRoundsOracle` — the per-round conflict-set trace of
  a randomized (Δ+1)-coloring run (the uncolored-frontier counts) must
  be legal — starts at ``n``, never grows, drains to zero — and the
  round total must sit inside the O(log n) concentration envelope
  (``ENVELOPES["randomized"]``, calibrated like the deterministic
  envelopes of :mod:`repro.verify.rounds`).

* :class:`ResampleLogOracle` — the Moser–Tardos record log is an
  *entropy-compression witness*: together with the seed it determines
  the whole run, so the auditor replays the resampler bit-for-bit and
  rejects any doctored log — an edited violated set, a truncated or
  padded step sequence, a swapped final coloring, a wrong seed.  The
  final coloring is additionally checked to be a proper list coloring
  on its own merits (a forged-but-consistent replay cannot smuggle in
  a monochromatic edge).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.verify.oracle import Verdict, collector
from repro.verify.rounds import round_envelope

__all__ = ["RandomizedRoundsOracle", "ResampleLogOracle"]


class RandomizedRoundsOracle:
    """Concentration envelope + frontier legality for randomized runs."""

    name = "randomized-rounds"

    def check(
        self,
        *,
        n: int,
        rounds: int,
        frontier: Iterable[int] | None = None,
        kind: str = "randomized",
    ) -> Verdict:
        out = collector(f"{self.name}[{kind}]")
        out.saw()
        budget = round_envelope(kind, n=n)
        if rounds > budget:
            out.fail(
                f"{rounds} rounds exceed the O(log n) envelope "
                f"{budget} at n={n}"
            )
        if frontier is not None:
            trace = [int(x) for x in frontier]
            if len(trace) != rounds:
                out.fail(
                    f"frontier trace has {len(trace)} entries "
                    f"for {rounds} rounds"
                )
            if trace and trace[0] != n:
                out.fail(
                    f"frontier starts at {trace[0]}, expected all "
                    f"n={n} vertices uncolored"
                )
            for r in range(1, len(trace)):
                if trace[r] > trace[r - 1]:
                    out.fail(
                        f"conflict set grew at round {r + 1}: "
                        f"{trace[r - 1]} -> {trace[r]}"
                    )
                    break
            if trace and trace[-1] != 0:
                out.fail(
                    f"frontier never drained: {trace[-1]} vertices "
                    "still uncolored at the last round"
                )
        return out.verdict()


class ResampleLogOracle:
    """Replay a Moser–Tardos record log and reject any doctored witness."""

    name = "resample-log"

    def check(
        self,
        *,
        graph,
        lists,
        seed: int,
        log,
        coloring: Mapping[Any, Any],
        backend: str = "flat",
    ) -> Verdict:
        from repro.coloring.palette import FlatListAssignment
        from repro.distributed.randomized import (
            ResampleLimitError,
            moser_tardos_list_coloring,
        )

        out = collector(self.name)
        out.saw()
        entries = list(log)
        try:
            replay = moser_tardos_list_coloring(
                graph, lists, seed=int(seed), backend=backend,
                max_steps=len(entries) + 8,
            )
        except ResampleLimitError:
            out.fail(
                f"replay does not converge within {len(entries)} recorded "
                "steps (+8 slack): the log is not this run's record"
            )
            return out.verdict()
        if len(replay.log) != len(entries):
            out.fail(
                f"log length {len(entries)} != replayed {len(replay.log)}"
            )
        for recorded, replayed in zip(entries, replay.log):
            r_step = getattr(recorded, "step", None)
            r_vertices = tuple(getattr(recorded, "vertices", ()))
            if r_step != replayed.step or r_vertices != replayed.vertices:
                out.fail(
                    f"step {replayed.step}: recorded violated set "
                    f"{r_vertices!r} != replayed {replayed.vertices!r}"
                )
                break
        if dict(coloring) != replay.coloring:
            out.fail("final coloring does not match the replayed run")
        # independent legality: proper + from-list, replay aside
        flat = (
            lists if isinstance(lists, FlatListAssignment)
            else FlatListAssignment(
                dict(lists.as_dict() if hasattr(lists, "as_dict") else lists)
            )
        )
        for v in graph.vertices():
            if v not in coloring:
                out.fail(f"vertex {v!r} is uncolored")
                break
            if coloring[v] not in flat.get(v, frozenset()):
                out.fail(
                    f"vertex {v!r} wears {coloring[v]!r}, not in its list"
                )
                break
        for u in graph.vertices():
            clash = next(
                (w for w in graph.neighbors(u) if coloring.get(w) == coloring.get(u)),
                None,
            )
            if clash is not None:
                out.fail(
                    f"monochromatic edge ({u!r}, {clash!r}) wears "
                    f"{coloring.get(u)!r}"
                )
                break
        return out.verdict()
