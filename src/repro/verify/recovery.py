"""Recovery oracles: legality after perturbation, measured and contained.

The witness is a :class:`~repro.faults.engine.StabilizationTrace` — a
*replayable* ledger: initial coloring + initial edges, then per round
the applied fault events and the (vertex, new color) deltas.  That
redundancy is the point: the oracles re-derive every per-round conflict
count and legality flag from the deltas alone and compare them against
what the run recorded, so a log that hides an illegal intermediate
coloring (or smuggles in an unrecorded recolor) is rejected — the
mutation tests pin this down.

Three consumers:

:class:`RecoveryOracle`
    Replays the trace; asserts the recorded conflict counts, legality
    flags, final coloring and quiescence claim are all consistent, and
    that a quiescent run ends in a *legal* palette coloring.
:class:`ContainmentOracle`
    The dynamic extension of the PR-5 locality auditor: information
    travels one hop per round, so a vertex recoloring at round ``r``
    must lie within distance ``r - p + 1`` of some perturbation applied
    at round ``p <= r``.  Distances are taken on the union topology
    (initial plus all inserted edges) — a supergraph only shortens
    distances, so the check never produces false alarms.
:func:`recovery_metrics`
    The scenario-facing measurement: rounds-to-recovery (rounds from
    the last applied fault until legality holds for good), recolored
    vertex count, containment radius, peak conflicts — the columns of
    ``BENCH_dynamic.json``.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.verify.oracle import Verdict, collector

__all__ = [
    "RecoveryOracle",
    "ContainmentOracle",
    "recovery_metrics",
    "measure_containment",
    "rounds_to_recovery",
]


# ---------------------------------------------------------------------------
# replay helpers
# ---------------------------------------------------------------------------


def _edge_key(u: Any, v: Any) -> tuple:
    return (u, v) if repr(u) <= repr(v) else (v, u)


class _Replay:
    """Steps a trace forward round by round, re-deriving legality."""

    def __init__(self, trace):
        self.adj: dict[Any, set] = {v: set() for v in trace.labels}
        for u, v in trace.initial_edges:
            self.adj[u].add(v)
            self.adj[v].add(u)
        self.coloring = dict(trace.initial_coloring)
        self.budget = trace.budget

    def apply(self, record) -> tuple[int, bool]:
        """Apply one record's faults + deltas; return (conflicts, legal)."""
        for fault in record.faults:
            if not fault.applied:
                continue
            if fault.kind == "edge-insert":
                u, v = fault.vertices
                self.adj[u].add(v)
                self.adj[v].add(u)
            elif fault.kind == "edge-delete":
                u, v = fault.vertices
                self.adj[u].discard(v)
                self.adj[v].discard(u)
        for vertex, color in record.changes:
            self.coloring[vertex] = color
        conflicts = self.conflicts()
        legal = conflicts == 0 and all(
            1 <= c <= self.budget for c in self.coloring.values()
        )
        return conflicts, legal

    def conflicts(self) -> int:
        seen: set[tuple] = set()
        count = 0
        for u, neighbours in self.adj.items():
            for v in neighbours:
                key = _edge_key(u, v)
                if key in seen:
                    continue
                seen.add(key)
                if self.coloring[u] == self.coloring[v]:
                    count += 1
        return count


# ---------------------------------------------------------------------------
# RecoveryOracle
# ---------------------------------------------------------------------------


class RecoveryOracle:
    """Replays a StabilizationTrace and audits its every recorded claim."""

    name = "recovery"

    def check(self, **subject: Any) -> Verdict:
        trace = subject["trace"]
        out = collector(self.name)
        replay = _Replay(trace)
        known = set(trace.labels)
        expected_round = 0
        for record in trace.records:
            expected_round += 1
            out.saw()
            if record.round != expected_round:
                out.fail(
                    f"round numbering broken: expected {expected_round}, "
                    f"record says {record.round}"
                )
            bad = [v for v, _c in record.changes if v not in known]
            if bad:
                out.fail(
                    f"round {record.round}: changes name unknown "
                    f"vertices {sorted(map(repr, bad))[:4]}"
                )
                continue
            conflicts, legal = replay.apply(record)
            if conflicts != record.conflicts:
                out.fail(
                    f"round {record.round}: recorded {record.conflicts} "
                    f"conflicting edge(s), replay finds {conflicts}"
                )
            if legal != record.legal:
                out.fail(
                    f"round {record.round}: recorded legal={record.legal}, "
                    f"replay says {legal} — the log misstates an "
                    "intermediate coloring"
                )
        out.saw()
        if trace.final_coloring != replay.coloring:
            diff = [
                v
                for v in trace.labels
                if trace.final_coloring.get(v) != replay.coloring.get(v)
            ]
            out.fail(
                f"final coloring disagrees with the replayed deltas on "
                f"{len(diff)} vertex(es), e.g. {sorted(map(repr, diff))[:4]}"
            )
        if trace.quiescent:
            out.saw()
            if trace.records and (
                trace.records[-1].changes
                or any(f.applied for f in trace.records[-1].faults)
            ):
                out.fail(
                    "quiescent=True but the final round still changed "
                    "state or applied faults"
                )
            out.saw()
            if trace.records and not trace.records[-1].legal:
                out.fail(
                    "quiescent=True but the final coloring is not a legal "
                    "palette coloring — the protocol stalled in an "
                    "illegitimate state"
                )
        return out.verdict()


# ---------------------------------------------------------------------------
# containment
# ---------------------------------------------------------------------------


def _union_adjacency(trace) -> dict[Any, set]:
    adj: dict[Any, set] = {v: set() for v in trace.labels}
    for u, v in trace.initial_edges:
        adj[u].add(v)
        adj[v].add(u)
    for fault in trace.applied_events():
        if fault.kind == "edge-insert":
            u, v = fault.vertices
            adj[u].add(v)
            adj[v].add(u)
    return adj


def _bfs_distances(adj: dict, sources: list) -> dict[Any, int]:
    dist = {s: 0 for s in sources if s in adj}
    queue = deque(dist)
    while queue:
        u = queue.popleft()
        for v in adj[u]:
            if v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def measure_containment(trace) -> tuple[int, list[str]]:
    """(containment radius, violations) of a trace's recolor pattern.

    Every (vertex, round) recolor must be reachable from some applied
    perturbation: distance at most ``round - p + 1`` from a fault
    applied at round ``p``.  (A fault applied before round ``p``'s sends
    is broadcast in round ``p`` and received the same round — the
    synchronous engine delivers within the round — so distance-1
    vertices may already react at round ``p``; each further hop costs a
    round.)  The radius is the largest seed distance any recolor
    attained — how far the damage spread before the protocol contained
    it.
    """
    adj = _union_adjacency(trace)
    waves = [
        (fault.round, _bfs_distances(adj, list(fault.vertices)))
        for fault in trace.applied_events()
    ]
    radius = 0
    violations: list[str] = []
    for record in trace.records:
        for vertex, _color in record.changes:
            admissible = [
                dist[vertex]
                for p, dist in waves
                if p <= record.round
                and vertex in dist
                and dist[vertex] <= record.round - p + 1
            ]
            if not admissible:
                violations.append(
                    f"vertex {vertex!r} recolored at round {record.round} "
                    "outside the causal cone of every applied perturbation"
                )
                continue
            radius = max(radius, min(admissible))
    return radius, violations


class ContainmentOracle:
    """Asserts recovery stayed local to the perturbation neighbourhoods."""

    name = "containment"

    def check(self, **subject: Any) -> Verdict:
        trace = subject["trace"]
        radius_bound = subject.get("radius_bound")
        out = collector(self.name)
        radius, violations = measure_containment(trace)
        out.saw(sum(len(record.changes) for record in trace.records) + 1)
        for violation in violations:
            out.fail(violation)
        if radius_bound is not None and radius > radius_bound:
            out.fail(
                f"containment radius {radius} exceeds the declared "
                f"bound {radius_bound}"
            )
        return out.verdict()


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


def rounds_to_recovery(trace) -> int | None:
    """Rounds from the last applied fault until legality holds for good.

    0 when the run was legal from the last fault onwards (or no fault
    applied at all); ``None`` when the run never (re-)establishes a
    suffix of legal rounds — i.e. it ended illegal.
    """
    records = trace.records
    if not records:
        return None
    suffix_start = None  # earliest index from which every record is legal
    for index in range(len(records) - 1, -1, -1):
        if not records[index].legal:
            break
        suffix_start = index
    if suffix_start is None:
        return None
    applied = trace.applied_events()
    if not applied:
        return 0
    last_fault = max(fault.round for fault in applied)
    first_legal_round = max(records[suffix_start].round, last_fault)
    return first_legal_round - last_fault


def recovery_metrics(trace) -> dict[str, Any]:
    """The per-row measurement block of the E18 scenario."""
    recovery = rounds_to_recovery(trace)
    radius, violations = measure_containment(trace)
    recolored = {v for record in trace.records for v, _c in record.changes}
    applied = trace.applied_events()
    log = trace.event_log()
    return {
        "rounds": trace.rounds,
        "quiescent": bool(trace.quiescent),
        "legal": bool(trace.records[-1].legal) if trace.records else False,
        "rounds_to_recovery": -1 if recovery is None else recovery,
        "recovered": recovery is not None,
        "recolored_vertices": len(recolored),
        "containment_radius": radius,
        "containment_violations": len(violations),
        "conflicts_peak": max(
            (record.conflicts for record in trace.records), default=0
        ),
        "faults_applied": len(applied),
        "faults_skipped": len(log) - len(applied),
        "messages": trace.messages_sent(),
    }
