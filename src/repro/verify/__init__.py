"""Conformance oracles: every reproduced theorem gets a machine-checked witness.

This package is the repo's reliability substrate (see
``docs/verification.md``): a first-class :class:`~repro.verify.oracle.Oracle`
protocol plus concrete oracles for every statement the repo reproduces —

* coloring validity, list legality and palette budgets
  (:mod:`repro.verify.coloring`), including Theorem 1.3's
  clique-or-coloring dichotomy;
* H-partition and ruling-forest legality with their distance/domination
  invariants (:mod:`repro.verify.structures`);
* round-count envelopes from the paper's complexity formulas
  (:mod:`repro.verify.rounds`);
* the **locality auditor** (:mod:`repro.verify.locality`) — Theorem 1.5's
  indistinguishability argument turned into an executable check that node
  programs on the round engine depend only on their r-balls;
* the **recovery oracles** (:mod:`repro.verify.recovery`) — replay-based
  legality and fault-containment checks over the stabilization traces of
  :mod:`repro.faults`, the locality auditor's dynamic counterpart;
* substrate parity (:mod:`repro.verify.parity`) and the BENCH-artifact
  suite behind ``python -m repro verify`` (:mod:`repro.verify.artifact`).

Oracles return :class:`~repro.verify.oracle.Verdict` objects with precise
diagnostics; the mutation tests prove each oracle rejects at least one
corrupted witness.
"""

from repro.verify.oracle import Oracle, Verdict, combine, failed, passed
from repro.verify.coloring import (
    CliqueWitnessOracle,
    DichotomyOracle,
    ListColoringOracle,
    PaletteBudgetOracle,
    ProperColoringOracle,
)
from repro.verify.structures import HPartitionOracle, RulingForestOracle
from repro.verify.rounds import ENVELOPES, RoundEnvelopeOracle, round_envelope
from repro.verify.parity import (
    ColoringParityOracle,
    SimulationParityOracle,
    assert_simulation_parity,
    coloring_digest,
)
from repro.verify.locality import (
    LocalityAuditReport,
    LocalityOracle,
    LocalityViolation,
    audit_locality,
)
from repro.verify.randomized import RandomizedRoundsOracle, ResampleLogOracle
from repro.verify.recovery import (
    ContainmentOracle,
    RecoveryOracle,
    measure_containment,
    recovery_metrics,
    rounds_to_recovery,
)
from repro.verify.artifact import (
    ARTIFACT_ORACLE_NAMES,
    artifact_failures,
    verify_artifact_dict,
)

__all__ = [
    "Oracle",
    "Verdict",
    "combine",
    "passed",
    "failed",
    "ProperColoringOracle",
    "ListColoringOracle",
    "PaletteBudgetOracle",
    "CliqueWitnessOracle",
    "DichotomyOracle",
    "HPartitionOracle",
    "RulingForestOracle",
    "RoundEnvelopeOracle",
    "round_envelope",
    "ENVELOPES",
    "SimulationParityOracle",
    "ColoringParityOracle",
    "assert_simulation_parity",
    "coloring_digest",
    "LocalityOracle",
    "LocalityAuditReport",
    "LocalityViolation",
    "audit_locality",
    "RandomizedRoundsOracle",
    "ResampleLogOracle",
    "RecoveryOracle",
    "ContainmentOracle",
    "measure_containment",
    "recovery_metrics",
    "rounds_to_recovery",
    "ARTIFACT_ORACLE_NAMES",
    "artifact_failures",
    "verify_artifact_dict",
]
