"""The conformance oracle protocol.

Every reproduced statement of the paper owns a machine-checked *oracle*: an
object that inspects a witness (a coloring, a clique, an H-partition, a
ruling forest, a round total, a simulation result) and returns a
:class:`Verdict` — pass/fail plus precise diagnostics naming the violated
invariant and the offending vertices/edges.  Oracles never assert silently:
a failing verdict always carries at least one diagnostic, and the mutation
tests (``tests/test_verify_oracles.py``) prove each oracle rejects at least
one corrupted witness, guarding against vacuously-passing verifiers.

The protocol is deliberately tiny:

* an :class:`Oracle` has a ``name`` and a ``check(**subject)`` method
  returning a :class:`Verdict`;
* :meth:`Verdict.raise_if_failed` converts a failing verdict into a
  :class:`~repro.errors.VerificationError` carrying the verdict, which is
  how pipeline code (scenario tasks, the drivers' ``verify=True`` paths)
  consumes oracles;
* :func:`combine` merges sub-verdicts so composite oracles (e.g. the
  Theorem 1.3 dichotomy) report every violated invariant at once.

Concrete oracles live in the sibling modules: :mod:`repro.verify.coloring`
(validity, budgets, clique witnesses), :mod:`repro.verify.structures`
(H-partitions, ruling forests), :mod:`repro.verify.rounds` (complexity
envelopes), :mod:`repro.verify.locality` (the Theorem 1.5 auditor) and
:mod:`repro.verify.artifact` (the BENCH-artifact suite behind
``python -m repro verify``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

from repro.errors import VerificationError

__all__ = ["Verdict", "Oracle", "combine", "passed", "failed"]

#: cap on diagnostics retained per verdict, so an oracle scanning a large
#: corrupted object stays readable (the count still reports every failure)
MAX_DIAGNOSTICS = 20


@dataclass
class Verdict:
    """The outcome of one oracle run.

    Attributes
    ----------
    oracle:
        Name of the oracle that produced the verdict.
    ok:
        Whether the witness passed every invariant.
    diagnostics:
        Human-readable violation descriptions (empty iff ``ok``); capped at
        ``MAX_DIAGNOSTICS`` entries, with ``failures`` recording the true
        count.
    checked:
        How many elementary facts the oracle inspected (edges, vertices,
        rows); a passing verdict with ``checked == 0`` means the oracle had
        nothing to say, which callers may want to treat as suspicious.
    failures:
        Total number of violations found (>= ``len(diagnostics)``).
    """

    oracle: str
    ok: bool
    diagnostics: list[str] = field(default_factory=list)
    checked: int = 0
    failures: int = 0

    def raise_if_failed(self) -> "Verdict":
        """Return ``self`` when passing; raise :class:`VerificationError` otherwise."""
        if not self.ok:
            shown = "\n  ".join(self.diagnostics)
            extra = self.failures - len(self.diagnostics)
            if extra > 0:
                shown += f"\n  ... and {extra} more"
            raise VerificationError(
                f"oracle {self.oracle!r} rejected the witness "
                f"({self.failures} violation(s)):\n  {shown}",
                verdict=self,
            )
        return self

    def __bool__(self) -> bool:
        return self.ok


@runtime_checkable
class Oracle(Protocol):
    """The oracle surface: a name plus a keyword-argument ``check``."""

    name: str

    def check(self, **subject: Any) -> Verdict: ...


class _Collector:
    """Accumulates diagnostics for one verdict (cap-aware)."""

    def __init__(self, oracle: str):
        self.oracle = oracle
        self.diagnostics: list[str] = []
        self.checked = 0
        self.failures = 0

    def saw(self, count: int = 1) -> None:
        self.checked += count

    def fail(self, message: str) -> None:
        self.failures += 1
        if len(self.diagnostics) < MAX_DIAGNOSTICS:
            self.diagnostics.append(message)

    def verdict(self) -> Verdict:
        return Verdict(
            oracle=self.oracle,
            ok=self.failures == 0,
            diagnostics=self.diagnostics,
            checked=self.checked,
            failures=self.failures,
        )


def collector(oracle: str) -> _Collector:
    """A fresh diagnostic collector (the idiom concrete oracles build on)."""
    return _Collector(oracle)


def passed(oracle: str, checked: int = 0) -> Verdict:
    """A passing verdict."""
    return Verdict(oracle=oracle, ok=True, checked=checked)


def failed(oracle: str, *diagnostics: str, checked: int = 0) -> Verdict:
    """A failing verdict from explicit diagnostics."""
    return Verdict(
        oracle=oracle,
        ok=False,
        diagnostics=list(diagnostics)[:MAX_DIAGNOSTICS],
        checked=checked,
        failures=len(diagnostics),
    )


def combine(oracle: str, verdicts: list[Verdict]) -> Verdict:
    """Merge sub-verdicts into one (diagnostics prefixed by their oracle)."""
    out = collector(oracle)
    for verdict in verdicts:
        out.saw(verdict.checked)
        out.failures += max(0, verdict.failures - len(verdict.diagnostics))
        for diagnostic in verdict.diagnostics:
            out.fail(f"[{verdict.oracle}] {diagnostic}")
    return out.verdict()
