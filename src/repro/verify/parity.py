"""Parity oracles: two substrates must produce *identical* results.

The repo's performance story rests on exact parity promises — the
flat-array engine equals the seed engine, batched node programs equal
their per-node twins, the flat palette backend equals the dict backend.
These oracles centralize the comparisons that used to live as ad-hoc
assert blocks in the parity test suites and scenario checks, reporting
every diverging field instead of stopping at the first.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping
from typing import Any

from repro.verify.oracle import Verdict, collector

__all__ = [
    "coloring_digest",
    "SimulationParityOracle",
    "ColoringParityOracle",
    "assert_simulation_parity",
]


def coloring_digest(coloring: Mapping[Any, Any]) -> str:
    """Order-independent SHA-256 digest of a coloring (parity comparisons).

    The shared fingerprint used by the ``coloring`` scenario rows, the
    golden corpus tests and the artifact parity oracle: two substrates
    produced the same coloring iff their digests match.
    """
    h = hashlib.sha256()
    for pair in sorted(f"{v!r}\x1f{c!r}" for v, c in coloring.items()):
        h.update(pair.encode())
        h.update(b"\x1e")
    return h.hexdigest()[:16]


class SimulationParityOracle:
    """Two :class:`~repro.local.simulator.SimulationResult`\\ s are identical."""

    name = "simulation-parity"

    def check(self, *, result_a, result_b, labels=("a", "b")) -> Verdict:
        out = collector(self.name)
        la, lb = labels
        for field in ("rounds", "messages_sent", "finished", "per_round_messages"):
            out.saw()
            va, vb = getattr(result_a, field), getattr(result_b, field)
            if va != vb:
                out.fail(f"{field} diverge: {la}={va!r} vs {lb}={vb!r}")
        out.saw()
        if result_a.outputs != result_b.outputs:
            diffs = [
                v for v in result_a.outputs
                if result_a.outputs[v] != result_b.outputs.get(v)
            ]
            diffs += [v for v in result_b.outputs if v not in result_a.outputs]
            for v in diffs[:5]:
                out.fail(
                    f"output of {v!r} diverges: {la}={result_a.outputs.get(v)!r} "
                    f"vs {lb}={result_b.outputs.get(v)!r}"
                )
            if len(diffs) > 5:
                out.failures += len(diffs) - 5
        return out.verdict()


class ColoringParityOracle:
    """Two colorings (and optional round totals) are bit-identical."""

    name = "coloring-parity"

    def check(
        self,
        *,
        coloring_a: Mapping[Any, Any],
        coloring_b: Mapping[Any, Any],
        rounds_a: int | None = None,
        rounds_b: int | None = None,
        labels=("a", "b"),
    ) -> Verdict:
        out = collector(self.name)
        la, lb = labels
        out.saw()
        if coloring_digest(coloring_a) != coloring_digest(coloring_b):
            diffs = [
                v for v in coloring_a if coloring_a[v] != coloring_b.get(v)
            ]
            diffs += [v for v in coloring_b if v not in coloring_a]
            for v in diffs[:5]:
                out.fail(
                    f"color of {v!r} diverges: {la}={coloring_a.get(v)!r} "
                    f"vs {lb}={coloring_b.get(v)!r}"
                )
            if len(diffs) > 5:
                out.failures += len(diffs) - 5
        if rounds_a is not None or rounds_b is not None:
            out.saw()
            if rounds_a != rounds_b:
                out.fail(f"round totals diverge: {la}={rounds_a} vs {lb}={rounds_b}")
        return out.verdict()


def assert_simulation_parity(result_a, result_b, labels=("a", "b")) -> None:
    """Raise :class:`~repro.errors.VerificationError` unless results match."""
    SimulationParityOracle().check(
        result_a=result_a, result_b=result_b, labels=labels
    ).raise_if_failed()
