"""Round-count envelope oracles from the paper's complexity formulas.

The reproduction *charges* rounds to ledgers; these oracles turn the
paper's asymptotic statements into executable envelopes with explicit
(generous) constants, so a refactor that silently blows up a pipeline's
round complexity fails loudly instead of drifting:

=====================  ==========================================
envelope               statement
=====================  ==========================================
``theorem13``          Theorem 1.3: ``O(d^4 log^3 n)``
``cole-vishkin``       ``O(log* n)`` (Cole–Vishkin / GPS)
``linial``             ``O(log* n + Delta^2)`` (Linial + reduction)
``barenboim-elkin``    ``O(a log n)`` classes x slot sweeps
``greedy``             ``O(n)`` (longest decreasing-id path)
``ruling-forest``      ``O(alpha log n)`` probes + ``beta`` growth
=====================  ==========================================

The constants are deliberately loose (an envelope, not a fit): they must
accept every legitimate run of the shipped pipelines while still rejecting
order-of-magnitude regressions.  The golden tests additionally pin *exact*
round totals for the standard corpus, so the two layers catch drift at
different granularities.
"""

from __future__ import annotations

import math

from repro.verify.oracle import Verdict, collector

__all__ = ["round_envelope", "RoundEnvelopeOracle", "ENVELOPES"]


def _log2ceil(n: int) -> int:
    return max(1, math.ceil(math.log2(max(2, n))))


def _log_star(n: int) -> int:
    value, steps = max(2, n), 0
    while value > 2:
        value = math.log2(value)
        steps += 1
    return max(1, steps)


def _theorem13(n: int, d: int = 4, **_ignored) -> int:
    # O(d^3 log n) peeling layers, each extension O(d log^2 n): the paper's
    # O(d^4 log^3 n) with an explicit constant absorbing the charged
    # ball-collection and ruling-probe terms of the implementation (the
    # measured constant of the shipped driver is ~0.25; 6 leaves a wide
    # margin while still catching an order-of-magnitude regression)
    return 6 * max(3, d) ** 4 * _log2ceil(n) ** 3 + 600


def _cole_vishkin(n: int, **_ignored) -> int:
    # discover + iterated bit reduction + three shift/recolor pairs
    return 4 * _log_star(n) + 24


def _linial(n: int, delta: int = 1, **_ignored) -> int:
    # O(log* n) Linial iterations, then one round per retired color class
    # (the O(Delta^2) palette of the last iteration; q <= next prime above
    # d*Delta squared over the final m, bounded by ~(3 Delta)^2 in practice)
    q = 12 * max(1, delta) ** 2 + 96
    return 4 * _log_star(n) + q + 16


def _barenboim_elkin(n: int, a: int = 1, epsilon: float = 1.0, **_ignored) -> int:
    # O(log n) classes; each pays one peel round, one within-class
    # (Delta+1)-coloring at Delta <= (2+eps)a, and one round per slot
    classes = 8 * _log2ceil(n) + 8
    per_class = _linial(n, delta=int((2 + epsilon) * a) + 1) + int((2 + epsilon) * a) + 2
    return classes * per_class


def _greedy(n: int, **_ignored) -> int:
    return max(2, n) + 1


def _ruling_forest(n: int, alpha: int = 2, **_ignored) -> int:
    bits = _log2ceil(n)
    return alpha * bits + 4 * alpha * bits + 4  # probes + tree growth slack


def _randomized(n: int, **_ignored) -> int:
    # trial-color + conflict-retreat (Δ+1): each uncolored vertex keeps
    # its draw with probability >= 1/4 per round, so the frontier decays
    # geometrically and O(log n) rounds suffice whp; the constant leaves
    # a wide concentration margin, plus slack for the final-broadcast
    # round and tiny-n noise
    return 16 * _log2ceil(n) + 48


ENVELOPES = {
    "theorem13": _theorem13,
    "cole-vishkin": _cole_vishkin,
    "linial": _linial,
    "barenboim-elkin": _barenboim_elkin,
    "greedy": _greedy,
    "ruling-forest": _ruling_forest,
    "randomized": _randomized,
}


def round_envelope(kind: str, **params) -> int:
    """The round budget of the named envelope for the given parameters."""
    try:
        formula = ENVELOPES[kind]
    except KeyError:
        raise ValueError(
            f"unknown round envelope {kind!r}; known: {sorted(ENVELOPES)}"
        ) from None
    return formula(**params)


class RoundEnvelopeOracle:
    """Measured rounds stay inside the statement's complexity envelope."""

    name = "round-envelope"

    def check(self, *, kind: str, rounds: int, **params) -> Verdict:
        out = collector(f"{self.name}[{kind}]")
        out.saw()
        budget = round_envelope(kind, **params)
        if rounds < 0:
            out.fail(f"negative round count {rounds}")
        if rounds > budget:
            shown = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
            out.fail(
                f"{rounds} rounds exceed the {kind} envelope {budget} ({shown})"
            )
        return out.verdict()
