"""Entry point for ``python -m repro`` (see :mod:`repro.cli`).

The ``__main__`` guard is load-bearing: on spawn-start platforms the
process-pool workers re-import the parent's main module, and an
unconditional ``main()`` here would re-run the CLI inside every worker.
"""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
