"""Zero-copy fan-out of frozen CSR graphs to process-pool workers.

The batch engine used to pickle every task's graph into every worker — at
n = 10^6 that is hundreds of megabytes serialized per task and a full CSR
copy resident per worker.  This module replaces the payload with a
content-addressed :class:`SharedGraphHandle`, a few dozen bytes that
travel through the normal task pickling while the CSR arrays move
out-of-band:

* the parent freezes the graph once and :func:`publish`\\ es it — the CSR
  pair is copied into one ``multiprocessing.shared_memory`` block (or, if
  shared memory is unavailable and the instance has an npz cache file,
  the handle points at that file instead);
* workers :func:`attach` by handle: ``np.frombuffer`` over the shared
  block (or a memory-map of the npz member) reconstructs an
  identity-labelled :class:`FrozenGraph` without copying a byte, cached
  per process by digest;
* the parent :func:`release`\\ s the blocks when the run finishes —
  :func:`repro.scenarios.base.run_scenario` calls :func:`release_all` in
  a ``finally``, so teardown also happens when the pool dies mid-run
  (``BrokenExecutor``), and an ``atexit`` hook backstops interpreter
  exit.

The same-process path (inline fallback when the sandbox cannot fork, and
the parent's own checks) resolves through a local registry and never
touches the shared block, so publish/attach is safe to use
unconditionally.
"""

from __future__ import annotations

import ast
import atexit
import json
import os
from dataclasses import dataclass
from typing import Any

from repro.errors import GraphError
from repro.graphs.frozen import HAS_NUMPY, FrozenGraph

if HAS_NUMPY:
    import numpy as _np

__all__ = [
    "SharedGraphHandle",
    "publish",
    "local_handle",
    "attach",
    "release",
    "release_all",
    "detach_all",
    "published_digests",
]

_INT64 = 8  # bytes per CSR entry


@dataclass(frozen=True)
class SharedGraphHandle:
    """A picklable, content-addressed reference to a published graph.

    ``kind`` selects the transport: ``"shm"`` (POSIX shared memory block
    named ``location``), ``"npz"`` (memory-mapped npz file at
    ``location``) or ``"local"`` (same-process registry only — the inline
    fallback).  ``digest`` is the :func:`repro.corpus.graph_digest`
    content address; ``n`` and ``num_slots`` (= 2m) fix the array
    geometry so attachment needs no header parsing.
    """

    kind: str
    digest: str
    n: int
    num_slots: int
    location: str = ""
    graph_name: str = ""
    metadata_json: str = "{}"


class _Publication:
    """Parent-side bookkeeping for one published graph."""

    __slots__ = ("handle", "block")

    def __init__(self, handle: SharedGraphHandle, block) -> None:
        self.handle = handle
        self.block = block


#: parent-side: digest -> publication (owns the shm block, if any)
_PUBLISHED: dict[str, _Publication] = {}
#: same-process registry: digest -> the original frozen graph
_LOCAL: dict[str, FrozenGraph] = {}
#: per-process attachment cache: digest -> (graph, shm block or None)
_ATTACHED: dict[str, tuple[FrozenGraph, Any]] = {}


def _encode_metadata(metadata: dict[str, Any]) -> str:
    safe: dict[str, str] = {}
    for key, value in metadata.items():
        try:
            if ast.literal_eval(repr(value)) == value:
                safe[str(key)] = repr(value)
        except (ValueError, SyntaxError):
            continue
    return json.dumps(safe, sort_keys=True)


def _decode_metadata(payload: str) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, encoded in json.loads(payload).items():
        try:
            out[key] = ast.literal_eval(encoded)
        except (ValueError, SyntaxError):
            continue
    return out


def publish(
    graph: FrozenGraph,
    *,
    digest: str | None = None,
    npz_path: str | os.PathLike | None = None,
) -> SharedGraphHandle:
    """Publish ``graph`` for zero-copy worker attachment; returns its handle.

    Idempotent per content digest: republishing an already-published graph
    returns the existing handle.  Requires identity labels and the numpy
    backend for the shared transports; anything else degrades to a
    ``"local"`` handle (same-process resolution only).  ``npz_path`` — an
    existing :meth:`FrozenGraph.save_npz` file, e.g. the corpus npz
    cache — is the fallback transport when shared memory cannot be
    created, and the digest fast-path means computing ``digest`` ahead of
    time is cheap; pass it when already known.
    """
    if digest is None:
        from repro.corpus import graph_digest

        digest = graph_digest(graph)
    existing = _PUBLISHED.get(digest)
    if existing is not None:
        _LOCAL.setdefault(digest, graph)
        return existing.handle

    _LOCAL[digest] = graph
    n = len(graph)
    offsets, neighbors = graph.csr_arrays()
    num_slots = len(neighbors)
    common = {
        "digest": digest,
        "n": n,
        "num_slots": num_slots,
        "graph_name": graph.name,
        "metadata_json": _encode_metadata(graph.metadata),
    }
    npz_location = os.fspath(npz_path) if npz_path is not None else None

    block = None
    if HAS_NUMPY and graph.identity_labels:
        try:
            from multiprocessing import shared_memory

            nbytes = max(1, (n + 1 + num_slots) * _INT64)
            block = shared_memory.SharedMemory(create=True, size=nbytes)
            buf = _np.frombuffer(block.buf, dtype=_np.int64, count=n + 1 + num_slots)
            buf[: n + 1] = offsets
            buf[n + 1 :] = neighbors
            del buf  # release the exported buffer view before any close()
            handle = SharedGraphHandle(kind="shm", location=block.name, **common)
        except (ImportError, OSError, PermissionError):
            block = None
            handle = None  # type: ignore[assignment]
    else:
        handle = None  # type: ignore[assignment]
    if block is None:
        if npz_location is not None and os.path.exists(npz_location):
            handle = SharedGraphHandle(kind="npz", location=npz_location, **common)
        else:
            handle = SharedGraphHandle(kind="local", **common)
    _PUBLISHED[digest] = _Publication(handle, block)
    return handle


def local_handle(graph: FrozenGraph, *, digest: str | None = None) -> SharedGraphHandle:
    """A same-process handle for ``graph`` — no shared block is created.

    The zero-copy handoff for executors that stay in the parent process
    (thread pools, inline retries, the coloring service at
    ``--workers 1``): :func:`attach` resolves the handle through the
    local registry to the *original object*, so handing work to an
    executor costs a few dozen bytes regardless of graph size.  Release
    with :func:`release` like any publication.
    """
    if digest is None:
        from repro.corpus import graph_digest

        digest = graph_digest(graph)
    existing = _PUBLISHED.get(digest)
    if existing is not None:
        _LOCAL.setdefault(digest, graph)
        return existing.handle
    _LOCAL[digest] = graph
    try:
        num_slots = len(graph.csr_arrays()[1])
    except (GraphError, TypeError):
        num_slots = 2 * graph.number_of_edges()
    handle = SharedGraphHandle(
        kind="local",
        digest=digest,
        n=len(graph),
        num_slots=num_slots,
        graph_name=graph.name,
        metadata_json=_encode_metadata(graph.metadata),
    )
    _PUBLISHED[digest] = _Publication(handle, None)
    return handle


def _open_shared_block(name: str):
    """Attach an existing shared-memory block without claiming ownership.

    Python < 3.13 has no ``track=False``, and the resource tracker of a
    pool worker would otherwise unlink the parent's block (and warn) at
    worker exit — unregister the attachment so cleanup stays with the
    publishing parent.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python 3.11/3.12
        block = shared_memory.SharedMemory(name=name, create=False)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(block._name, "shared_memory")
        except Exception:  # noqa: BLE001 - tracker internals vary; best effort
            pass
        return block


def attach(handle: SharedGraphHandle) -> FrozenGraph:
    """Materialize the graph a handle refers to (cached per process).

    Resolution order: the same-process registry (the publishing parent and
    the inline fallback hit this — literally the original object), then
    the shared-memory block or npz memory-map named by the handle.  The
    reconstructed graph is identity-labelled and its CSR arrays alias the
    shared buffer — zero copies, read-only.
    """
    graph = _LOCAL.get(handle.digest)
    if graph is not None:
        return graph
    cached = _ATTACHED.get(handle.digest)
    if cached is not None:
        return cached[0]

    if handle.kind == "shm":
        if not HAS_NUMPY:
            raise GraphError("attaching a shared-memory graph requires numpy")
        block = _open_shared_block(handle.location)
        n, num_slots = handle.n, handle.num_slots
        offsets = _np.frombuffer(block.buf, dtype=_np.int64, count=n + 1)
        neighbors = _np.frombuffer(
            block.buf, dtype=_np.int64, count=num_slots, offset=(n + 1) * _INT64
        )
        offsets.flags.writeable = False
        neighbors.flags.writeable = False
        graph = FrozenGraph(
            range(n),
            offsets,
            neighbors,
            name=handle.graph_name,
            metadata=_decode_metadata(handle.metadata_json),
        )
        _ATTACHED[handle.digest] = (graph, block)
        return graph
    if handle.kind == "npz":
        graph = FrozenGraph.load_npz(handle.location, mmap=True)
        from repro.corpus import graph_digest

        if graph_digest(graph) != handle.digest:
            raise GraphError(
                f"npz file {handle.location!r} does not match the published "
                f"digest {handle.digest} (stale or corrupted cache)"
            )
        _ATTACHED[handle.digest] = (graph, None)
        return graph
    raise GraphError(
        f"cannot attach graph {handle.digest}: published as {handle.kind!r} "
        "in another process and no shared transport is available"
    )


def detach_all() -> None:
    """Drop this process's attachments and close their shared blocks.

    Worker-side cleanup (tests use it; pool workers may simply exit — the
    parent's unlink plus process death releases the mappings anyway).
    """
    while _ATTACHED:
        digest, (graph, block) = _ATTACHED.popitem()
        del graph
        if block is not None:
            try:
                block.close()
            except (OSError, BufferError):
                pass


def release(digest: str) -> None:
    """Parent-side teardown of one publication (close + unlink its block)."""
    publication = _PUBLISHED.pop(digest, None)
    _LOCAL.pop(digest, None)
    if publication is not None and publication.block is not None:
        for closer in (publication.block.close, publication.block.unlink):
            try:
                closer()
            except (OSError, FileNotFoundError, BufferError):
                pass


def release_all() -> None:
    """Tear down every publication (idempotent; safe with nothing published)."""
    for digest in list(_PUBLISHED):
        release(digest)


def published_digests() -> list[str]:
    """Digests currently published by this process (diagnostics/tests)."""
    return sorted(_PUBLISHED)


atexit.register(release_all)
