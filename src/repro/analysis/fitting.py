"""Fitting round-complexity curves.

The paper's claims are asymptotic (``O(d^4 log^3 n)``, ``O(log^3 n)``,
``O(log* n)``); the experiments check the *shape* of the measured curves by
fitting ``rounds ~ a * (log2 n)^p`` and reporting the exponent ``p``
(ordinary least squares on the log-log transformed data), or by reporting
the ratio ``rounds / log2(n)^3`` across the sweep (it should stay bounded).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["PolylogFit", "fit_polylog", "normalized_by_polylog"]


@dataclass(frozen=True)
class PolylogFit:
    """Result of fitting ``rounds = a * (log2 n)^p``."""

    coefficient: float
    exponent: float
    residual: float

    def predict(self, n: float) -> float:
        return self.coefficient * (math.log2(max(n, 2.0)) ** self.exponent)


def fit_polylog(ns: Sequence[float], rounds: Sequence[float]) -> PolylogFit:
    """Least-squares fit of ``log(rounds) = log(a) + p * log(log2 n)``."""
    if len(ns) != len(rounds) or len(ns) < 2:
        raise ValueError("need at least two (n, rounds) pairs")
    xs = np.array([math.log(math.log2(max(n, 2.0))) for n in ns])
    ys = np.array([math.log(max(r, 1.0)) for r in rounds])
    design = np.vstack([np.ones_like(xs), xs]).T
    solution, residuals, _rank, _sv = np.linalg.lstsq(design, ys, rcond=None)
    intercept, slope = solution
    residual = float(residuals[0]) if len(residuals) else 0.0
    return PolylogFit(
        coefficient=float(math.exp(intercept)),
        exponent=float(slope),
        residual=residual,
    )


def normalized_by_polylog(
    ns: Sequence[float], rounds: Sequence[float], power: int = 3
) -> list[float]:
    """``rounds / (log2 n)^power`` — should stay bounded if the claim holds."""
    return [
        r / (math.log2(max(n, 2.0)) ** power) for n, r in zip(ns, rounds)
    ]
