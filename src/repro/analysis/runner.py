"""Experiment harness: parameter sweeps producing rows for the report tables.

The benchmarks of this repository (one per experiment in EXPERIMENTS.md) all
follow the same shape: generate a family of graphs over a parameter sweep,
run one or more algorithms on each instance, verify the outputs, and print a
table of colors / rounds / sizes.  :class:`ExperimentRunner` centralizes the
bookkeeping so each benchmark file stays a thin declaration of its sweep.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any

__all__ = ["ExperimentRow", "ExperimentRunner"]


@dataclass
class ExperimentRow:
    """One (instance, algorithm) measurement."""

    instance: str
    algorithm: str
    metrics: dict[str, Any] = field(default_factory=dict)
    seconds: float = 0.0


class ExperimentRunner:
    """Collects measurement rows and renders them as a text table."""

    def __init__(self, name: str):
        self.name = name
        self.rows: list[ExperimentRow] = []

    def run(
        self,
        instance: str,
        algorithm: str,
        fn: Callable[[], Mapping[str, Any]],
    ) -> ExperimentRow:
        """Execute ``fn`` (returning a metric mapping) and record a row."""
        start = time.perf_counter()
        metrics = dict(fn())
        elapsed = time.perf_counter() - start
        row = ExperimentRow(
            instance=instance, algorithm=algorithm, metrics=metrics, seconds=elapsed
        )
        self.rows.append(row)
        return row

    def add(self, instance: str, algorithm: str, **metrics: Any) -> ExperimentRow:
        row = ExperimentRow(instance=instance, algorithm=algorithm, metrics=metrics)
        self.rows.append(row)
        return row

    def metric_columns(self) -> list[str]:
        columns: list[str] = []
        for row in self.rows:
            for key in row.metrics:
                if key not in columns:
                    columns.append(key)
        return columns

    def to_table(self) -> str:
        """Render all rows as an aligned text table."""
        columns = ["instance", "algorithm", *self.metric_columns(), "seconds"]
        data: list[list[str]] = [columns]
        for row in self.rows:
            data.append(
                [
                    row.instance,
                    row.algorithm,
                    *[_fmt(row.metrics.get(c, "")) for c in self.metric_columns()],
                    f"{row.seconds:.3f}",
                ]
            )
        widths = [max(len(line[i]) for line in data) for i in range(len(columns))]
        lines = []
        for index, line in enumerate(data):
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
            if index == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)

    def print_table(self) -> None:
        print(f"\n== {self.name} ==")
        print(self.to_table())

    def metric_series(self, algorithm: str, metric: str) -> list[Any]:
        return [
            row.metrics.get(metric)
            for row in self.rows
            if row.algorithm == algorithm and metric in row.metrics
        ]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def sweep(values: Iterable[Any]) -> list[Any]:
    """Convenience helper so benchmark files read declaratively."""
    return list(values)
