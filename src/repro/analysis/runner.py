"""Experiment harness: parameter sweeps producing rows for the report tables.

The benchmarks of this repository (one per experiment in EXPERIMENTS.md) all
follow the same shape: generate a family of graphs over a parameter sweep,
run one or more algorithms on each instance, verify the outputs, and print a
table of colors / rounds / sizes.  :class:`ExperimentRunner` centralizes the
bookkeeping so each benchmark file stays a thin declaration of its sweep.

Two execution modes are provided:

* :meth:`ExperimentRunner.run` — run one measurement inline (the seed-era
  API, still used for quick ad-hoc rows);
* :meth:`ExperimentRunner.run_batch` — declare the whole sweep as a list of
  :class:`BatchTask` and fan it out over a ``concurrent.futures`` process
  pool.  Each task gets a *deterministic* seed derived from the batch's
  ``base_seed`` and the task index (stable across runs, worker counts and
  scheduling order), so parallel results are reproducible bit-for-bit.

Finished runners export a machine-readable ``BENCH_<name>.json`` artifact
(:meth:`ExperimentRunner.export_json`) so the performance trajectory of the
repository can be tracked across PRs instead of living in scrollback.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import re
import sys
import time
from collections.abc import Callable, Iterable, Mapping
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "ExperimentRow",
    "ExperimentRunner",
    "BatchTask",
    "derive_seed",
]

JSON_SCHEMA_VERSION = 1
#: minor revisions add optional fields without breaking schema-v1 readers:
#: 1 = generated_at_iso on artifacts, peak_rss_bytes on rows
JSON_SCHEMA_MINOR = 1


def _peak_rss_bytes() -> int | None:
    """Lifetime peak resident-set size of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux but bytes on macOS; ``None`` when the
    platform has no ``resource`` module (Windows).  Note this is a process
    high-water mark, so it is monotone across rows — comparable across runs,
    not across rows of one run.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak if sys.platform == "darwin" else peak * 1024


@dataclass
class ExperimentRow:
    """One (instance, algorithm) measurement."""

    instance: str
    algorithm: str
    metrics: dict[str, Any] = field(default_factory=dict)
    seconds: float = 0.0

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "instance": self.instance,
            "algorithm": self.algorithm,
            "metrics": _jsonify(self.metrics),
            "seconds": self.seconds,
        }


@dataclass
class BatchTask:
    """One unit of a batched sweep: a picklable callable plus its arguments.

    ``fn`` must be defined at module top level (process-pool workers import
    it by qualified name).  It is called as ``fn(*args, **kwargs)`` and must
    return a metric mapping.  When the batch has a ``base_seed`` and
    ``seed_arg`` is not ``None``, the runner injects the task's derived seed
    as ``kwargs[seed_arg]`` — generators and randomized algorithms stay
    reproducible without the benchmark wiring seeds by hand.

    ``seed_group`` keys the derivation: by default every task derives from
    its position in the list, but tasks sharing a group string (typically
    the instance label) receive the *same* seed — how the backend/engine
    A/B scenarios guarantee that every variant row of an instance measures
    the same generated graph while ``--seed`` still reseeds the whole
    sweep.
    """

    instance: str
    algorithm: str
    fn: Callable[..., Mapping[str, Any]]
    args: tuple = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    seed_arg: str | None = "seed"
    seed_group: str | None = None


def derive_seed(base_seed: int, key: "int | str") -> int:
    """Deterministic 63-bit per-task seed, stable across runs and platforms.

    ``key`` is the task's position in the batch, or its ``seed_group``
    string when one is declared.
    """
    digest = hashlib.sha256(f"{base_seed}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _pool_probe() -> None:
    """No-op run in a worker to prove the process pool can execute at all."""


def _execute_batch_task(
    payload: tuple[int, BatchTask],
) -> tuple[int, dict[str, Any] | None, float, Exception | None]:
    """Worker body (module-level so process pools can pickle it).

    Task exceptions are *returned*, not raised: only pool-infrastructure
    failures may escape, so the caller can tell "the sandbox cannot fork"
    (fall back to inline execution) from "the task is buggy" (re-raise,
    never silently re-run the batch).
    """
    index, task = payload
    start = time.perf_counter()
    try:
        metrics = dict(task.fn(*task.args, **task.kwargs))
    except Exception as exc:  # noqa: BLE001 - transported to the parent
        return index, None, time.perf_counter() - start, exc
    peak = _peak_rss_bytes()
    if peak is not None:
        # setdefault: a task that measured a more specific figure wins
        metrics.setdefault("peak_rss_bytes", peak)
    return index, metrics, time.perf_counter() - start, None


class ExperimentRunner:
    """Collects measurement rows and renders them as a text table."""

    def __init__(self, name: str, metadata: Mapping[str, Any] | None = None):
        self.name = name
        self.rows: list[ExperimentRow] = []
        self.metadata: dict[str, Any] = dict(metadata or {})

    def run(
        self,
        instance: str,
        algorithm: str,
        fn: Callable[[], Mapping[str, Any]],
    ) -> ExperimentRow:
        """Execute ``fn`` (returning a metric mapping) and record a row."""
        start = time.perf_counter()
        metrics = dict(fn())
        elapsed = time.perf_counter() - start
        peak = _peak_rss_bytes()
        if peak is not None:
            metrics.setdefault("peak_rss_bytes", peak)
        row = ExperimentRow(
            instance=instance, algorithm=algorithm, metrics=metrics, seconds=elapsed
        )
        self.rows.append(row)
        return row

    def add(self, instance: str, algorithm: str, **metrics: Any) -> ExperimentRow:
        row = ExperimentRow(instance=instance, algorithm=algorithm, metrics=metrics)
        self.rows.append(row)
        return row

    # ------------------------------------------------------------------
    # Batched parallel execution
    # ------------------------------------------------------------------
    def run_batch(
        self,
        tasks: Iterable[BatchTask],
        *,
        max_workers: int | None = None,
        base_seed: int | None = None,
        parallel: bool = True,
    ) -> list[ExperimentRow]:
        """Fan ``tasks`` out over a process pool and record a row per task.

        Rows are appended in task order regardless of completion order.
        Determinism: task ``i`` receives ``derive_seed(base_seed, i)`` in
        ``kwargs[task.seed_arg]`` (when both are set), which depends only on
        ``base_seed`` and the position in the list — not on worker count or
        scheduling.  Falls back to inline execution when the platform cannot
        spawn worker processes (sandboxes, restricted CI) or when
        ``parallel=False``.
        """
        prepared: list[tuple[int, BatchTask]] = []
        for index, task in enumerate(tasks):
            if base_seed is not None and task.seed_arg is not None:
                key = index if task.seed_group is None else task.seed_group
                task = BatchTask(
                    instance=task.instance,
                    algorithm=task.algorithm,
                    fn=task.fn,
                    args=task.args,
                    kwargs={**task.kwargs, task.seed_arg: derive_seed(base_seed, key)},
                    seed_arg=task.seed_arg,
                    seed_group=task.seed_group,
                )
            prepared.append((index, task))

        results: list[tuple[int, dict[str, Any] | None, float, Exception | None]] = []
        if parallel and len(prepared) > 1:
            pool_proven = False
            try:
                with ProcessPoolExecutor(max_workers=max_workers) as pool:
                    # probe with a no-op before running real work: once the
                    # probe succeeds, a later pool failure means a task
                    # killed its worker (segfault, OOM) — that must surface,
                    # not trigger a silent inline re-run of completed tasks
                    pool.submit(_pool_probe).result()
                    pool_proven = True
                    results = list(pool.map(_execute_batch_task, prepared))
            except (OSError, BrokenExecutor, ImportError):
                if pool_proven:
                    raise
                # the pool itself is unavailable (sandboxes that cannot
                # fork); nothing ran, so inline execution is a retry of
                # nothing.  Task-level exceptions never land here — workers
                # return them as values.
                results = []
        if not results:
            results = [_execute_batch_task(item) for item in prepared]

        results.sort()
        for index, _metrics, _elapsed, error in results:
            if error is not None:
                raise error
        rows: list[ExperimentRow] = []
        for index, metrics, elapsed, _error in results:
            task = prepared[index][1]
            row = ExperimentRow(
                instance=task.instance,
                algorithm=task.algorithm,
                metrics=metrics,
                seconds=elapsed,
            )
            rows.append(row)
        self.rows.extend(rows)
        return rows

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def metric_columns(self) -> list[str]:
        columns: list[str] = []
        for row in self.rows:
            for key in row.metrics:
                if key not in columns:
                    columns.append(key)
        return columns

    def to_table(self) -> str:
        """Render all rows as an aligned text table."""
        columns = ["instance", "algorithm", *self.metric_columns(), "seconds"]
        data: list[list[str]] = [columns]
        for row in self.rows:
            data.append(
                [
                    row.instance,
                    row.algorithm,
                    *[_fmt(row.metrics.get(c, "")) for c in self.metric_columns()],
                    f"{row.seconds:.3f}",
                ]
            )
        widths = [max(len(line[i]) for line in data) for i in range(len(columns))]
        lines = []
        for index, line in enumerate(data):
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
            if index == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)

    def print_table(self) -> None:
        print(f"\n== {self.name} ==")
        print(self.to_table())

    def metric_series(self, algorithm: str, metric: str) -> list[Any]:
        return [
            row.metrics.get(metric)
            for row in self.rows
            if row.algorithm == algorithm and metric in row.metrics
        ]

    # ------------------------------------------------------------------
    # JSON artifact export
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict[str, Any]:
        """The machine-readable form of this runner (schema-versioned)."""
        now = time.time()
        stamp = datetime.datetime.fromtimestamp(now, tz=datetime.timezone.utc)
        return {
            "schema_version": JSON_SCHEMA_VERSION,
            "schema_minor": JSON_SCHEMA_MINOR,
            "name": self.name,
            "generated_at": now,
            "generated_at_iso": stamp.isoformat(timespec="seconds"),
            "metadata": _jsonify(self.metadata),
            "rows": [row.to_json_dict() for row in self.rows],
        }

    def export_json(self, path: str | Path | None = None) -> Path:
        """Write the ``BENCH_<slug>.json`` artifact and return its path.

        The default filename is derived from the runner's name; pass an
        explicit ``path`` to control the location (benchmarks use the
        repository root so successive PRs diff the perf trajectory).
        """
        if path is None:
            path = Path(f"BENCH_{self.slug()}.json")
        path = Path(path)
        path.write_text(json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n")
        return path

    def slug(self) -> str:
        """A filesystem-safe identifier derived from the runner name."""
        slug = re.sub(r"[^A-Za-z0-9]+", "_", self.name).strip("_")
        return slug or "experiment"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _jsonify(value: Any) -> Any:
    """Best-effort conversion to JSON-encodable values (repr as last resort)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = list(value)
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return [_jsonify(v) for v in items]
    return repr(value)


def sweep(values: Iterable[Any]) -> list[Any]:
    """Convenience helper so benchmark files read declaratively."""
    return list(values)
