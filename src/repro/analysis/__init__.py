"""Experiment harness and curve fitting used by the benchmarks."""

from repro.analysis.fitting import PolylogFit, fit_polylog, normalized_by_polylog
from repro.analysis.runner import (
    BatchTask,
    ExperimentRow,
    ExperimentRunner,
    derive_seed,
)

__all__ = [
    "PolylogFit",
    "fit_polylog",
    "normalized_by_polylog",
    "ExperimentRow",
    "ExperimentRunner",
    "BatchTask",
    "derive_seed",
]
