"""Experiment harness, zero-copy graph fan-out and curve fitting."""

from repro.analysis import shared
from repro.analysis.fitting import PolylogFit, fit_polylog, normalized_by_polylog
from repro.analysis.runner import (
    BatchTask,
    ExperimentRow,
    ExperimentRunner,
    derive_seed,
)
from repro.analysis.shared import SharedGraphHandle

__all__ = [
    "PolylogFit",
    "fit_polylog",
    "normalized_by_polylog",
    "ExperimentRow",
    "ExperimentRunner",
    "BatchTask",
    "derive_seed",
    "SharedGraphHandle",
    "shared",
]
