"""Wave 2-coloring of a rooted path: the Ω(n) lower-bound workload.

Observation 2.4 / Theorem 1.5 territory: 2-coloring a path (and
4-coloring a planar graph) needs Ω(n) rounds, so any experiment that
wants to *show* the linear-round regime needs a protocol whose round
count genuinely is ``n`` — and a simulator that can afford n = 10^5
rounds.  The wave protocol is the minimal such workload: the root
colors itself 0 and broadcasts once; a node that first hears a color
``c`` at distance ``d`` adopts ``1 - c`` (i.e. ``d mod 2``) and
broadcasts once the next round.  The wavefront advances one hop per
round: exactly ``n`` rounds and one broadcast per node (``2(n-1)``
directed messages on a path) to 2-color the whole path.

Per-round work is O(frontier), not O(n): the batched program runs in
the engine's ``"active"`` exchange mode (:mod:`repro.local.node`),
sending only the frontier's slots, which is what makes an Ω(n)-round
simulation at n = 10^5 tractable — the per-node twin (and the seed
engine) spend Θ(n) per round just asking silent nodes for messages, so
the ``simulator`` scenario runs the large-n lower-bound rows on the
batched engine only, with cross-engine parity pinned at small n by the
test suite.

The protocol works on any tree (colors = distance parity from the
root); nodes unreachable from a root never finish, exactly like a
quiescence property should fail on a disconnected instance.
"""

from __future__ import annotations

from typing import Any

from repro.local.node import BatchContext, BatchNodeAlgorithm, NodeAlgorithm, NodeContext

__all__ = ["WaveTwoColoring", "BatchWaveTwoColoring"]


class WaveTwoColoring(NodeAlgorithm):
    """Per-node wave program.

    Input: truthy marks the root(s).  Output: color in ``{0, 1}``.
    A node broadcasts its color exactly once, in the round after it was
    colored; on multiple simultaneous deliveries the lowest port wins
    (the batched twin replays the same tie-break).
    """

    def initialize(self, context: NodeContext) -> None:
        super().initialize(context)
        root = bool(context.input)
        self.color: int = 0 if root else -1
        self.pending: bool = root  # colored, broadcast still owed
        self.spoke: bool = False  # the one broadcast has happened

    def send(self, round_number: int) -> dict[int, Any]:
        if not self.pending:
            return {}
        return {port: self.color for port in range(self.context.degree)}

    def receive(self, round_number: int, messages: dict[int, Any]) -> None:
        if self.pending:
            self.pending = False
            self.spoke = True
        if self.color < 0 and messages:
            self.color = 1 - messages[min(messages)]
            self.pending = True

    def is_finished(self) -> bool:
        return self.color >= 0 and self.spoke and not self.pending

    def result(self) -> int:
        return self.color


class BatchWaveTwoColoring(BatchNodeAlgorithm):
    """Batched wave in ``"active"`` exchange mode.

    ``send_batch`` returns only the frontier's ``(slots, values)``; the
    engine charges ``len(slots)`` messages and hands the destinations to
    :meth:`receive_active`.  Rounds, per-round message counts and colors
    are identical to the per-node program.
    """

    fallback = WaveTwoColoring
    exchange_mode = "active"

    def initialize_batch(self, context: BatchContext) -> None:
        import numpy as np

        super().initialize_batch(context)
        self._np = np
        n = context.n
        inputs = context.inputs
        if isinstance(inputs, np.ndarray):
            roots = np.flatnonzero(inputs != 0)
        else:
            roots = np.array(
                [i for i, x in enumerate(inputs) if x], dtype=np.int64
            )
        self.colors = np.full(n, -1, dtype=np.int64)
        self.colors[roots] = 0
        self._front = roots
        self._uncolored = n - roots.size
        self.done = n == 0

    def _front_slots(self, front):
        """The frontier's outgoing ``(slots, values)`` pair."""
        np = self._np
        offsets = self.context.offsets
        degrees = self.context.degrees
        starts = offsets[front]
        counts = degrees[front]
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        bounds = np.cumsum(counts)
        slots = np.repeat(starts - (bounds - counts), counts)
        slots += np.arange(total, dtype=np.int64)
        values = np.repeat(self.colors[front], counts)
        return slots, values

    def send_batch(self, round_number: int):
        if self._front.size == 0:
            return None
        return self._front_slots(self._front)

    def receive_active(self, round_number: int, dest_slots, values) -> None:
        np = self._np
        if dest_slots is None or len(dest_slots) == 0:
            newly = np.empty(0, dtype=np.int64)
        else:
            # inbox slots of a node are contiguous and port-ordered, so
            # sorting by destination slot groups receivers and puts the
            # lowest port first — the per-node tie-break
            order = np.argsort(dest_slots, kind="stable")
            receivers = self.context.sources[dest_slots[order]]
            arriving = values[order]
            first = np.ones(receivers.size, dtype=bool)
            first[1:] = receivers[1:] != receivers[:-1]
            take = first & (self.colors[receivers] < 0)
            newly = receivers[take]
            self.colors[newly] = 1 - arriving[take]
        self._front = newly
        self._uncolored -= newly.size
        self.done = newly.size == 0 and self._uncolored == 0

    def is_finished_batch(self) -> bool:
        return self.done

    def results_batch(self) -> list[int]:
        return self.colors.tolist()
