"""Cole–Vishkin 3-coloring of rooted forests in O(log* n) rounds.

This is the classical symmetry-breaking primitive (used by
Goldberg–Plotkin–Shannon and by every forest-decomposition-based coloring
algorithm).  Each node knows the identifier of its parent (roots know they
are roots); the algorithm first reduces the colors to {0,...,5} by the
iterated bit trick and then removes colors 5, 4 and 3 by shift-down +
recolor steps.

The number of bit-reduction iterations is computed from ``n`` by every node
identically (they all know ``n``), so no global coordination is needed for
termination.
"""

from __future__ import annotations

from typing import Any

from repro.graphs.frozen import GraphLike, freeze
from repro.graphs.graph import Vertex
from repro.local.node import (
    BatchContext,
    BatchNodeAlgorithm,
    NodeAlgorithm,
    NodeContext,
    segment_reduce,
)
from repro.local.simulator import SimulationResult, run_node_algorithm

__all__ = [
    "ColeVishkinForestColoring",
    "BatchColeVishkinForestColoring",
    "color_rooted_forest",
    "cole_vishkin_iterations",
]


def _bit_length_colors(value: int) -> int:
    return max(value.bit_length(), 1)


def cole_vishkin_iterations(n: int) -> int:
    """Number of bit-reduction iterations needed to reach colors < 6 from IDs in [n].

    One Cole–Vishkin step maps a proper coloring with colors in ``[0, m)``
    (``b = bit_length(m-1)`` bits) to a proper coloring with colors in
    ``[0, 2b)``; iterating from ``m = n + 1`` until the bound reaches 6
    takes ``O(log* n)`` steps.
    """
    colors = max(n + 1, 2)
    iterations = 0
    while colors > 6:
        colors = 2 * _bit_length_colors(colors - 1)
        iterations += 1
        if iterations > 64:  # defensive: log* of anything representable is tiny
            break
    return iterations + 2  # two extra iterations to absorb rounding slack


def _cole_vishkin_step(own: int, parent: int) -> int:
    """One CV step: index of the lowest differing bit, concatenated with that bit."""
    diff = own ^ parent
    index = (diff & -diff).bit_length() - 1
    bit = (own >> index) & 1
    return 2 * index + bit


class ColeVishkinForestColoring(NodeAlgorithm):
    """Node program: 3-color a rooted forest.

    Input (per node): the identifier of its parent, or ``None`` for roots.
    Output: a color in ``{0, 1, 2}``.

    Protocol:
      round 1           — neighbours exchange identifiers (port discovery);
      rounds 2..T+1     — iterated Cole–Vishkin reduction to colors < 6;
      then, for c in (5, 4, 3): two rounds each — a shift-down round (every
      node adopts its parent's color, roots rotate their own) followed by a
      recolor round in which nodes holding color ``c`` pick a free color
      from {0, 1, 2} (their parent and all their children use at most two
      distinct colors after the shift-down).
    """

    def initialize(self, context: NodeContext) -> None:
        super().initialize(context)
        self.parent_id: int | None = context.input
        self.color: int = context.identifier
        self.port_ids: dict[int, int] = {}
        self.parent_port: int | None = None
        self.neighbor_colors: dict[int, int] = {}
        self.cv_iterations = cole_vishkin_iterations(context.n)
        self.phase = "discover"
        self.cv_done = 0
        self.reduction_target = 5
        self.reduction_stage = "shift"
        self.done = False

    # -- helpers --------------------------------------------------------
    def _parent_color(self) -> int | None:
        if self.parent_port is None:
            return None
        return self.neighbor_colors.get(self.parent_port)

    # -- protocol -------------------------------------------------------
    def send(self, round_number: int) -> dict[int, Any]:
        if self.phase == "discover":
            return {
                port: ("id", self.context.identifier)
                for port in range(self.context.degree)
            }
        return {
            port: ("color", self.color) for port in range(self.context.degree)
        }

    def receive(self, round_number: int, messages: dict[int, Any]) -> None:
        if self.phase == "discover":
            for port, (_, identifier) in messages.items():
                self.port_ids[port] = identifier
                if self.parent_id is not None and identifier == self.parent_id:
                    self.parent_port = port
            self.phase = "cv"
            return

        for port, (_, color) in messages.items():
            self.neighbor_colors[port] = color

        if self.phase == "cv":
            parent_color = self._parent_color()
            if parent_color is None:
                # roots pretend their parent has a color differing in bit 0
                parent_color = self.color ^ 1
            self.color = _cole_vishkin_step(self.color, parent_color)
            self.cv_done += 1
            if self.cv_done >= self.cv_iterations:
                self.phase = "reduce"
                self.reduction_stage = "shift"
            return

        if self.phase == "reduce":
            if self.reduction_stage == "shift":
                parent_color = self._parent_color()
                if parent_color is None:
                    # roots rotate within {0,1,2,...}: pick a different small color
                    self.color = (self.color + 1) % 3 if self.color < 3 else 0
                else:
                    self.color = parent_color
                self.reduction_stage = "recolor"
                return
            # recolor stage: nodes with the target color pick a free color < 3
            if self.color == self.reduction_target:
                used = set(self.neighbor_colors.values())
                for candidate in (0, 1, 2):
                    if candidate not in used:
                        self.color = candidate
                        break
            if self.reduction_target > 3:
                self.reduction_target -= 1
                self.reduction_stage = "shift"
            else:
                self.done = True
                self.phase = "finished"

    def is_finished(self) -> bool:
        return self.done

    def result(self) -> int:
        return self.color


class BatchColeVishkinForestColoring(BatchNodeAlgorithm):
    """Batched port of :class:`ColeVishkinForestColoring`.

    One instance drives all nodes over the routing fabric, replaying the
    exact per-node phase machine (discover, ``T`` Cole–Vishkin iterations,
    three shift-down + recolor pairs) with one numpy array operation per
    step, so rounds, message counts and outputs are bit-identical to the
    per-node run — the parity tests assert this.  Every round broadcasts one
    integer per directed edge slot, exactly like the per-node protocol.

    The program runs in ``"broadcast"`` exchange mode: ``send_batch``
    returns the per-node value and the engine's fused kernel delivers it.
    ``receive_broadcast`` consumes the per-node array directly — a node
    only ever reads its parent's broadcast (one gather by the precomputed
    parent index) except in the recolor rounds, which reduce over the full
    neighbourhood; ``receive_batch`` keeps the historical per-slot inbox
    path alive as the unfused reference (``reference_exchange=True``).
    """

    fallback = ColeVishkinForestColoring
    exchange_mode = "broadcast"

    def initialize_batch(self, context: BatchContext) -> None:
        import numpy as np

        super().initialize_batch(context)
        n = context.n
        self._np = np
        self._src = context.sources
        self.colors = context.identifiers.copy()
        # 0 encodes "root" (identifiers start at 1)
        inputs = context.inputs
        if isinstance(inputs, np.ndarray):
            self.parent_ids = inputs.astype(np.int64, copy=False)
        else:
            self.parent_ids = np.fromiter(
                (0 if p is None else int(p) for p in inputs),
                dtype=np.int64,
                count=n,
            )
        self.parent_slot = np.full(n, -1, dtype=np.int64)
        self._has_parent = None
        self._parent_index = None
        self._root_index = None
        # reduceat starts when no segment is empty (the common case); the
        # general segment_reduce handles isolated vertices
        self._reduce_starts = (
            context.offsets[:-1]
            if n and int(context.degrees.min()) > 0
            else None
        )
        # colors are < 6 throughout the reduce phase: shift-down rotation
        # ((c + 1) % 3 if c < 3 else 0) as one table gather
        self._rotate = np.array([1, 2, 0, 0, 0, 0], dtype=np.int64)
        # the iteration count must come from the *announced* n (known_n), not
        # the array length: on a truncated r-ball network the two differ and
        # every node must still run the schedule of the full network
        self.cv_iterations = cole_vishkin_iterations(context.known_n)
        self.phase = "discover"
        self.cv_done = 0
        self.reduction_target = 5
        self.reduction_stage = "shift"
        self.done = n == 0
        # used-color mask (3 bits) -> smallest free color in {0, 1, 2}
        self._free_color = np.array([0, 1, 0, 2, 0, 1, 0, 0], dtype=np.int64)

    def send_batch(self, round_number: int):
        if self.phase == "discover":
            return self.context.identifiers
        return self.colors

    def _finish_discover(self) -> None:
        np = self._np
        self._has_parent = self.parent_slot >= 0
        # node index of each node's parent (0 where rootless; masked by
        # _has_parent / _root_index everywhere it is read)
        self._parent_index = self.context.endpoints[
            np.maximum(self.parent_slot, 0)
        ]
        self._root_index = np.flatnonzero(~self._has_parent)
        self.phase = "cv"

    def _parent_colors(self, inbox):
        """Per-node parent color; roots pretend bit 0 of their own differs."""
        np = self._np
        pretend = self.colors ^ 1
        if inbox.size == 0:  # edgeless network: everyone is a root
            return pretend
        return np.where(
            self._has_parent, inbox[np.maximum(self.parent_slot, 0)], pretend
        )

    def _parent_colors_from_nodes(self, node_colors):
        """Like :meth:`_parent_colors`, but one gather by parent node index.

        ``inbox[parent_slot] == node_colors[endpoints[parent_slot]]`` — the
        per-slot inbox never needs to exist to read the parent's broadcast.
        Roots (typically a handful) are patched in place instead of paying
        a full-width ``where``.
        """
        if self.context.num_slots == 0:  # edgeless: everyone is a root
            return self.colors ^ 1
        parent = node_colors[self._parent_index]
        roots = self._root_index
        if roots.size:
            parent[roots] = self.colors[roots] ^ 1
        return parent

    def receive_broadcast(self, round_number: int, node_values) -> None:
        np = self._np
        if self.phase == "discover":
            inbox = node_values[self.context.endpoints]
            hits = np.flatnonzero(inbox == self.parent_ids[self._src])
            self.parent_slot[self._src[hits]] = hits
            self._finish_discover()
            return
        if self.phase == "cv":
            self._cv_step(self._parent_colors_from_nodes(node_values))
            return
        if self.reduction_stage == "shift":
            self._shift_step(self._parent_colors_from_nodes(node_values))
            return
        self._recolor_step(node_values[self.context.endpoints])

    def receive_batch(self, round_number: int, inbox, delivered) -> None:
        np = self._np
        if self.phase == "discover":
            hits = np.flatnonzero(inbox == self.parent_ids[self._src])
            self.parent_slot[self._src[hits]] = hits
            self._finish_discover()
            return
        if self.phase == "cv":
            self._cv_step(self._parent_colors(inbox))
            return
        if self.reduction_stage == "shift":
            self._shift_step(self._parent_colors(inbox))
            return
        self._recolor_step(inbox)

    def _cv_step(self, parent) -> None:
        np = self._np
        diff = self.colors ^ parent
        low = diff & -diff  # diff >= 1: the coloring stays proper
        index = np.log2(low.astype(np.float64)).astype(np.int64)
        self.colors = 2 * index + ((self.colors >> index) & 1)
        self.cv_done += 1
        if self.cv_done >= self.cv_iterations:
            self.phase = "reduce"
            self.reduction_stage = "shift"

    def _shift_step(self, parent) -> None:
        roots = self._root_index
        if roots.size == self.colors.size:
            self.colors = self._rotate[self.colors]
        else:
            colors = parent if parent is not self.colors else parent.copy()
            if roots.size:
                colors[roots] = self._rotate[self.colors[roots]]
            self.colors = colors
        self.reduction_stage = "recolor"

    def _recolor_step(self, inbox) -> None:
        np = self._np
        starts = self._reduce_starts
        if starts is not None:
            used = np.bitwise_or.reduceat(1 << inbox, starts)
        else:
            used = segment_reduce(
                np.bitwise_or, 1 << inbox, self.context.offsets, empty=0
            )
        free = self._free_color[used & 7]
        self.colors = np.where(
            self.colors == self.reduction_target, free, self.colors
        )
        if self.reduction_target > 3:
            self.reduction_target -= 1
            self.reduction_stage = "shift"
        else:
            self.done = True
            self.phase = "finished"

    def is_finished_batch(self) -> bool:
        return self.done

    def results_batch(self) -> list[int]:
        return self.colors.tolist()


def color_rooted_forest(
    graph: GraphLike,
    parents: dict[Vertex, Vertex | None],
    batched: bool = True,
) -> SimulationResult:
    """Run Cole–Vishkin on a forest given the parent pointer of every vertex.

    ``parents[v]`` is the parent vertex of ``v`` or ``None`` for roots; the
    forest must be consistent with ``graph`` (every non-root's parent is a
    neighbour).  Returns the simulation result; outputs are colors in
    ``{0, 1, 2}``.

    ``batched=True`` (the default) runs the vectorized
    :class:`BatchColeVishkinForestColoring` program, which produces the
    same result and falls back to the per-node program when numpy is
    unavailable; pass ``batched=False`` to force the per-node path.
    """
    from repro.local.network import Network

    network = Network(freeze(graph))
    inputs: dict[Vertex, int | None] = {}
    for v in graph:
        parent = parents.get(v)
        inputs[v] = None if parent is None else network.identifier_of[parent]
    algorithm = (
        BatchColeVishkinForestColoring if batched else ColeVishkinForestColoring
    )
    return run_node_algorithm(
        graph,
        algorithm,
        inputs=inputs,
        max_rounds=10 * cole_vishkin_iterations(graph.number_of_vertices()) + 30,
        network=network,
    )
