"""(α, β)-ruling sets and ruling forests (Awerbuch, Goldberg, Luby, Plotkin).

Given a graph ``H`` and a vertex subset ``U``, an *(α, β)-ruling forest*
with respect to ``U`` is a family of vertex-disjoint rooted trees such that

1. every vertex of ``U`` belongs to some tree,
2. the roots are pairwise at distance at least ``α`` in ``H``, and
3. every tree has depth at most ``β``.

The paper (proof of Lemma 3.2) uses a ``(k, k log n)``-ruling forest with
``k = 2 c log n`` computed in ``O(k log n)`` rounds.  We implement the
classical deterministic construction based on identifier bits:

* split the candidate set by the highest identifier bit, recursively
  compute ruling sets for both halves, and keep a vertex of the second half
  only if it is at distance at least ``k`` from every kept vertex of the
  first half;
* each of the ``ceil(log2 n)`` recursion levels costs ``k`` communication
  rounds (a distance-``k`` probe), giving ``O(k log n)`` rounds in total and
  a domination radius of ``k * ceil(log2 n)``;
* every vertex of ``U`` then joins the tree of a nearest ruling vertex via
  a multi-source BFS of depth at most the domination radius.

The implementation is *phase-structured*: the computation itself is
centralized (it only uses information available within the probed radii)
and the rounds are charged to a :class:`~repro.local.ledger.RoundLedger`
following the analysis above.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.graphs.frozen import FrozenGraph
from repro.graphs.graph import Graph, Vertex
from repro.local.ledger import RoundLedger

__all__ = ["RulingForest", "ruling_set", "ruling_forest"]


@dataclass
class RulingForest:
    """The output of the ruling-forest construction.

    Attributes
    ----------
    roots:
        The ruling vertices (pairwise at distance >= ``alpha``).
    parent:
        Parent pointer of every tree vertex (roots map to ``None``).
    depth:
        Distance of every tree vertex from its root within its tree.
    tree_of:
        The root owning each tree vertex.
    alpha, beta:
        The parameters achieved by the construction.
    rounds:
        Rounds charged for building the forest.
    """

    roots: list[Vertex]
    parent: dict[Vertex, Vertex | None]
    depth: dict[Vertex, int]
    tree_of: dict[Vertex, Vertex]
    alpha: int
    beta: int
    rounds: int
    ledger: RoundLedger = field(default_factory=RoundLedger)

    def vertices(self) -> set[Vertex]:
        return set(self.parent)

    def tree_members(self) -> dict[Vertex, list[Vertex]]:
        members: dict[Vertex, list[Vertex]] = {root: [] for root in self.roots}
        for v, root in self.tree_of.items():
            members[root].append(v)
        return members


def _distance_at_most(
    graph: Graph, sources: set[Vertex], targets: set[Vertex], limit: int
) -> set[Vertex]:
    """The subset of ``targets`` within distance ``limit`` of ``sources``."""
    if not sources or not targets:
        return set()
    distances: dict[Vertex, int] = {s: 0 for s in sources}
    queue = deque(sources)
    reached: set[Vertex] = set(sources) & targets
    while queue:
        u = queue.popleft()
        if distances[u] >= limit:
            continue
        for w in graph.neighbors(u):
            if w not in distances:
                distances[w] = distances[u] + 1
                if w in targets:
                    reached.add(w)
                queue.append(w)
    return reached


def _component_info(graph: FrozenGraph) -> tuple[list[int], list[int]]:
    """Per-index component id plus per-component size (one O(n+m) sweep)."""
    offsets, neighbors = graph.csr_lists()
    n = len(graph)
    comp_id = [-1] * n
    sizes: list[int] = []
    for start in range(n):
        if comp_id[start] >= 0:
            continue
        cid = len(sizes)
        comp_id[start] = cid
        stack = [start]
        count = 0
        while stack:
            u = stack.pop()
            count += 1
            for k in range(offsets[u], offsets[u + 1]):
                w = neighbors[k]
                if comp_id[w] < 0:
                    comp_id[w] = cid
                    stack.append(w)
        sizes.append(count)
    return comp_id, sizes


def _make_csr_probe(graph: FrozenGraph):
    """A :func:`_distance_at_most` twin specialized to one frozen graph.

    Precomputes the connected components once and then answers each probe
    per component: a target sharing a component of at most ``limit + 1``
    vertices with some source is trivially within distance ``limit``
    (every path inside the component fits), components without a source
    contribute nothing, and only oversized components run an actual
    depth-bounded BFS — with an early exit once all their targets are
    reached.  Same result set as the label walk, a fraction of the work at
    the paper's ``alpha ~ log n`` probe radii.
    """
    offsets, neighbors = graph.csr_lists()
    index = graph._index
    labels = graph.vertices()
    comp_id, comp_sizes = _component_info(graph)

    def probe(
        _graph, sources: set[Vertex], targets: set[Vertex], limit: int
    ) -> set[Vertex]:
        if not sources or not targets:
            return set()
        targets_by_comp: dict[int, set[Vertex]] = {}
        for t in targets:
            targets_by_comp.setdefault(comp_id[index[t]], set()).add(t)
        sources_by_comp: dict[int, list[int]] = {}
        for s in sources:
            i = index[s]
            sources_by_comp.setdefault(comp_id[i], []).append(i)
        reached: set[Vertex] = set()
        for cid, comp_targets in targets_by_comp.items():
            comp_sources = sources_by_comp.get(cid)
            if comp_sources is None:
                continue
            if comp_sizes[cid] <= limit + 1:
                reached |= comp_targets
                continue
            # oversized component: depth-bounded BFS, early exit on the
            # last target
            missing = set(comp_targets)
            visited = set(comp_sources)
            frontier = sorted(comp_sources)
            for i in frontier:
                v = labels[i]
                if v in missing:
                    missing.discard(v)
                    reached.add(v)
            depth = 0
            while frontier and missing and depth < limit:
                depth += 1
                nxt = []
                for u in frontier:
                    for k in range(offsets[u], offsets[u + 1]):
                        w = neighbors[k]
                        if w not in visited:
                            visited.add(w)
                            nxt.append(w)
                            v = labels[w]
                            if v in missing:
                                missing.discard(v)
                                reached.add(v)
                frontier = nxt
        return reached

    return probe


def ruling_set(
    graph: Graph,
    subset: set[Vertex],
    alpha: int,
    identifiers: dict[Vertex, int] | None = None,
    ledger: RoundLedger | None = None,
    engine: str = "labels",
) -> tuple[set[Vertex], int]:
    """Compute an (alpha, alpha*ceil(log2 n))-ruling set of ``subset``.

    Returns ``(ruling_vertices, rounds_charged)``.  Every vertex of
    ``subset`` is within ``alpha * ceil(log2 n)`` of the ruling set (in
    ``graph``), and ruling vertices are pairwise at distance >= ``alpha``.
    ``engine="csr"`` (frozen graphs only) runs the distance probes on the
    CSR index arrays instead of label dicts; the result is identical.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    if not subset:
        return set(), 0
    if identifiers is None:
        identifiers = {v: i + 1 for i, v in enumerate(graph.vertices())}
    probe = (
        _make_csr_probe(graph)
        if engine == "csr" and isinstance(graph, FrozenGraph)
        else _distance_at_most
    )
    n = graph.number_of_vertices()
    bits = max(1, (max(identifiers[v] for v in subset)).bit_length())

    def recurse(candidates: set[Vertex], bit: int) -> set[Vertex]:
        if not candidates:
            return set()
        if len(candidates) == 1 or bit < 0:
            # all identifiers identical on the remaining bits: keep one per
            # connected cluster greedily (they are pairwise far by induction
            # except possibly duplicates, which cannot happen with unique IDs)
            return set(candidates)
        zeros = {v for v in candidates if not (identifiers[v] >> bit) & 1}
        ones = candidates - zeros
        kept_zero = recurse(zeros, bit - 1)
        kept_one = recurse(ones, bit - 1)
        ledger.charge(
            "ruling set: distance probe",
            alpha,
            reference="Awerbuch et al. [3], level merge",
        )
        close = probe(graph, kept_zero, kept_one, alpha - 1)
        return kept_zero | (kept_one - close)

    result = recurse(set(subset), bits - 1)
    rounds = alpha * bits
    del n
    return result, rounds


def _grow_trees_labels(
    graph: Graph, roots: list[Vertex], beta: int
) -> tuple[dict, dict, dict]:
    """Depth-bounded BFS tree growth over label dicts."""
    parent: dict[Vertex, Vertex | None] = {r: None for r in roots}
    depth: dict[Vertex, int] = {r: 0 for r in roots}
    tree_of: dict[Vertex, Vertex] = {r: r for r in roots}
    queue = deque(roots)
    while queue:
        u = queue.popleft()
        if depth[u] >= beta:
            continue
        for w in graph.neighbors(u):
            if w not in parent:
                parent[w] = u
                depth[w] = depth[u] + 1
                tree_of[w] = tree_of[u]
                queue.append(w)
    return parent, depth, tree_of


def _grow_trees_csr(
    graph: FrozenGraph, roots: list[Vertex], beta: int
) -> tuple[dict, dict, dict]:
    """CSR-index twin of :func:`_grow_trees_labels`.

    Replays the same FIFO traversal (roots in order, neighbours in CSR
    order) on flat arrays and materializes the label dicts in discovery
    order, so parents, depths and dict iteration order all match the label
    engine exactly.
    """
    offsets, neighbors = graph.csr_lists()
    labels = graph.vertices()
    index = graph._index
    n = len(labels)
    parent_idx = [-2] * n  # -2 unvisited, -1 root
    depth_idx = [0] * n
    tree_idx = [0] * n
    order: list[int] = []
    queue: deque[int] = deque()
    for r in roots:
        i = index[r]
        parent_idx[i] = -1
        tree_idx[i] = i
        order.append(i)
        queue.append(i)
    while queue:
        u = queue.popleft()
        du = depth_idx[u]
        if du >= beta:
            continue
        tu = tree_idx[u]
        for k in range(offsets[u], offsets[u + 1]):
            w = neighbors[k]
            if parent_idx[w] == -2:
                parent_idx[w] = u
                depth_idx[w] = du + 1
                tree_idx[w] = tu
                order.append(w)
                queue.append(w)
    parent = {
        labels[i]: (None if parent_idx[i] == -1 else labels[parent_idx[i]])
        for i in order
    }
    depth = {labels[i]: depth_idx[i] for i in order}
    tree_of = {labels[i]: labels[tree_idx[i]] for i in order}
    return parent, depth, tree_of


def ruling_forest(
    graph: Graph,
    subset: set[Vertex],
    alpha: int,
    identifiers: dict[Vertex, int] | None = None,
    engine: str = "labels",
) -> RulingForest:
    """Compute an (alpha, alpha*ceil(log2 n))-ruling forest with respect to ``subset``.

    The roots form an ``alpha``-ruling set of ``subset``; every vertex of
    ``subset`` joins a BFS tree of a nearest root.  Trees may also contain
    vertices outside ``subset`` (the connecting paths), matching the usage
    in Lemma 3.2 where tree vertices of ``S`` get uncolored.
    ``engine="csr"`` (frozen graphs only) runs both the ruling-set probes
    and the tree growth on the CSR index arrays; the forest — roots,
    parents, depths — is identical to the label engine's.
    """
    ledger = RoundLedger()
    roots_set, set_rounds = ruling_set(
        graph, subset, alpha, identifiers, ledger, engine=engine
    )
    roots = sorted(roots_set, key=repr)
    n = max(graph.number_of_vertices(), 2)
    bits = max(1, (n - 1).bit_length())
    beta = alpha * bits

    if engine == "csr" and isinstance(graph, FrozenGraph):
        parent, depth, tree_of = _grow_trees_csr(graph, roots, beta)
    else:
        parent, depth, tree_of = _grow_trees_labels(graph, roots, beta)
    uncovered = [v for v in subset if v not in parent]
    if uncovered:
        # The domination radius analysis guarantees coverage; growing the
        # BFS further (and charging the extra rounds) keeps the construction
        # total even in degenerate corner cases.
        queue = deque(v for v in parent)
        extra = 0
        while uncovered:
            extra += 1
            frontier = [v for v, dist in depth.items() if dist == beta + extra - 1]
            progressed = False
            for u in frontier:
                for w in graph.neighbors(u):
                    if w not in parent:
                        parent[w] = u
                        depth[w] = depth[u] + 1
                        tree_of[w] = tree_of[u]
                        progressed = True
            uncovered = [v for v in subset if v not in parent]
            if not progressed and uncovered:
                raise RuntimeError(
                    "ruling forest failed to cover the subset; "
                    "is the subset contained in the graph?"
                )
        beta += extra
    tree_growth_rounds = beta
    ledger.charge(
        "ruling forest: BFS tree growth",
        tree_growth_rounds,
        reference="Lemma 3.2 (trees of depth k log n)",
    )
    total_rounds = set_rounds + tree_growth_rounds
    return RulingForest(
        roots=roots,
        parent=parent,
        depth=depth,
        tree_of=tree_of,
        alpha=alpha,
        beta=beta,
        rounds=total_rounds,
        ledger=ledger,
    )
