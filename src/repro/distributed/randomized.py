"""Randomized track: Moser–Tardos list coloring + O(log n) randomized Δ+1.

Two randomized counterparts to the deterministic Theorem 1.3 pipeline,
grounded in "A local lemma via entropy compression" (Alves–Procacci–
Sanchis, PAPERS.md):

* :func:`moser_tardos_list_coloring` — the entropy-compression resampler
  for list coloring.  Every vertex samples a color from its
  :class:`~repro.coloring.palette.FlatListAssignment` mask; violated
  events (monochromatic edges) are detected vectorized over the CSR, the
  violated vertex set is resampled, and the *record log* — the sequence
  of resampled sets — is returned as a replayable witness.  The
  entropy-compression argument is exactly that this log plus the final
  state determine the random bits consumed, so an auditor
  (:class:`repro.verify.randomized.ResampleLogOracle`) can replay the
  run bit-for-bit and reject any doctored log.

* :class:`RandomizedDeltaPlusOne` / :class:`BatchRandomizedDeltaPlusOne`
  — the classic O(log n)-round trial-color + conflict-retreat (Δ+1)-
  coloring as a genuine node program.  Each round every uncolored vertex
  draws a uniform color from its remaining palette and keeps it unless a
  neighbour announced the same value; committed vertices broadcast their
  final color once and fall silent.  The batched twin runs in the
  engine's sparse ``"active"`` exchange mode, so per-round cost tracks
  the geometrically shrinking uncolored frontier.

**Counter-based randomness.**  All draws come from a vectorized
Philox-4x64-10 keyed by ``(seed, node_id)`` with the round (or resample
step) as the counter — bit-identical to ``numpy.random.Philox`` (the
parity is pinned by the test suite).  Because the bits depend only on
``(seed, node_id, round)`` and never on iteration order, the dict and
flat backends and the per-node and batched engines all consume the same
randomness and therefore produce bit-identical colorings, round counts
and resample logs from the same seed — the four-engine parity discipline
of ``tests/test_kernel_parity.py`` extended to randomized programs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.coloring.palette import (
    FlatListAssignment,
    ListAssignmentError,
)
from repro.graphs.frozen import GraphLike, freeze
from repro.local.network import Network
from repro.local.node import (
    BatchContext,
    BatchNodeAlgorithm,
    NodeAlgorithm,
    NodeContext,
)
from repro.local.simulator import run_node_algorithm

__all__ = [
    "philox4x64",
    "counter_rng",
    "counter_rng_one",
    "RandomizedDeltaPlusOne",
    "BatchRandomizedDeltaPlusOne",
    "RandomizedColoringResult",
    "randomized_delta_plus_one_coloring",
    "ResampleStep",
    "ResampleLimitError",
    "MoserTardosResult",
    "moser_tardos_list_coloring",
    "resample_log_digest",
]


# -- counter-based RNG kernel ---------------------------------------------

_PHILOX_M0 = 0xD2E7470EE14C6C93
_PHILOX_M1 = 0xCA5A826395121157
_PHILOX_W0 = 0x9E3779B97F4A7C15
_PHILOX_W1 = 0xBB67AE8584CAA73B
_MASK64 = 0xFFFFFFFFFFFFFFFF
#: second key word: a fixed domain-separation salt so repo streams never
#: collide with other Philox users of the same seed
KEY_SALT = 0x726570726F2D7231  # b"repro-r1"


def _mulhilo(a, b, np):
    """128-bit product of two uint64 arrays as a ``(hi, lo)`` pair."""
    mask32 = np.uint64(0xFFFFFFFF)
    s32 = np.uint64(32)
    lo = a * b
    a_lo = a & mask32
    a_hi = a >> s32
    b_lo = b & mask32
    b_hi = b >> s32
    t = a_lo * b_lo
    mid1 = a_hi * b_lo
    mid2 = a_lo * b_hi
    carry = ((t >> s32) + (mid1 & mask32) + (mid2 & mask32)) >> s32
    hi = a_hi * b_hi + (mid1 >> s32) + (mid2 >> s32) + carry
    return hi, lo


def philox4x64(counter0, counter1, counter2, counter3, key0, key1):
    """Vectorized Philox-4x64 (10 rounds) over uint64 arrays.

    Bit-identical to the block function of ``numpy.random.Philox`` (numpy
    pre-increments the counter before its first block, which the parity
    test accounts for).  All inputs broadcast; returns the four output
    lanes as uint64 arrays.
    """
    import numpy as np

    with np.errstate(over="ignore"):
        x0 = np.asarray(counter0, dtype=np.uint64)
        x1 = np.asarray(counter1, dtype=np.uint64)
        x2 = np.asarray(counter2, dtype=np.uint64)
        x3 = np.asarray(counter3, dtype=np.uint64)
        k0 = np.asarray(key0, dtype=np.uint64)
        k1 = np.asarray(key1, dtype=np.uint64)
        m0 = np.uint64(_PHILOX_M0)
        m1 = np.uint64(_PHILOX_M1)
        w0 = np.uint64(_PHILOX_W0)
        w1 = np.uint64(_PHILOX_W1)
        for i in range(10):
            if i > 0:
                k0 = k0 + w0
                k1 = k1 + w1
            hi0, lo0 = _mulhilo(m0, x0, np)
            hi1, lo1 = _mulhilo(m1, x2, np)
            x0, x1, x2, x3 = hi1 ^ x1 ^ k0, lo1, hi0 ^ x3 ^ k1, lo0
        return x0, x1, x2, x3


def counter_rng(seed: int, node_ids, round_number: int):
    """One uint64 per node for ``(seed, node_id, round_number)``.

    Key = ``(seed, salt)``, counter = ``(round, node_id, 0, 0)``: a pure
    function of the triple, so any engine — per-node or batched, in any
    visitation order — derives the identical draw for a node and round.
    """
    import numpy as np

    ids = np.asarray(node_ids, dtype=np.uint64)
    zero = np.zeros_like(ids)
    c0 = np.full_like(ids, np.uint64(round_number & _MASK64))
    lane0, _, _, _ = philox4x64(
        c0, ids, zero, zero,
        np.uint64(int(seed) & _MASK64), np.uint64(KEY_SALT),
    )
    return lane0


def counter_rng_one(seed: int, node_id: int, round_number: int) -> int:
    """Scalar convenience form of :func:`counter_rng` (a Python int)."""
    return int(counter_rng(seed, [int(node_id)], round_number)[0])


def _kth_set_bit_scalar(mask: int, k: int) -> int:
    """Index of the ``k``-th (0-based, ascending) set bit of ``mask``."""
    for _ in range(k):
        mask &= mask - 1
    low = mask & -mask
    return low.bit_length() - 1


def _kth_set_bit(masks, k, np):
    """Vectorized :func:`_kth_set_bit_scalar` over int64 masks."""
    m = masks.astype(np.uint64)
    remaining = k.astype(np.int64).copy()
    one = np.uint64(1)
    while True:
        active = remaining > 0
        if not active.any():
            break
        m[active] &= m[active] - one
        remaining[active] -= 1
    low = m & (np.uint64(0) - m)
    return np.bitwise_count(low - one).astype(np.int64)


# -- randomized (Δ+1)-coloring: trial-color + conflict-retreat ------------


class RandomizedDeltaPlusOne(NodeAlgorithm):
    """Per-node randomized (Δ+1)-coloring.

    Input (per node): ``(seed, delta)``.  Output: a color in
    ``{1..Δ+1}``.  Protocol per round, for an uncolored node: draw a
    uniform color from the remaining palette (bits keyed by
    ``(seed, identifier, round)``), announce it on every port, and keep
    it unless any neighbour announced the same |value| this round.  A
    node that keeps its color announces ``-color`` once the next round
    (so neighbours prune their palettes) and then terminates.  Retreat is
    symmetric — two clashing neighbours both redraw — so the committed
    partial coloring is proper by construction.
    """

    def initialize(self, context: NodeContext) -> None:
        super().initialize(context)
        seed, delta = context.input
        self.seed = int(seed)
        self.delta = int(delta)
        # colors are bit indices 1..delta+1 (bit 0 unused, matching the
        # {1..Δ+1} palette convention of the deterministic baselines)
        self.avail = ((1 << (self.delta + 1)) - 1) << 1
        self.color = 0
        self.trial = 0
        self.pending = False  # colored; the one final broadcast still owed
        self.done = False
        self.colored_round: int | None = None

    def send(self, round_number: int) -> dict[int, Any]:
        if self.done:
            return {}
        degree = self.context.degree
        if self.pending:
            return {port: -self.color for port in range(degree)}
        bits = counter_rng_one(self.seed, self.context.identifier, round_number)
        count = self.avail.bit_count()
        self.trial = _kth_set_bit_scalar(self.avail, bits % count)
        return {port: self.trial for port in range(degree)}

    def receive(self, round_number: int, messages: dict[int, Any]) -> None:
        if self.done:
            return
        if self.pending:
            self.pending = False
            self.done = True
            return
        values = messages.values()
        conflict = False
        for value in values:
            if value < 0:
                self.avail &= ~(1 << -value)
            if abs(value) == self.trial:
                conflict = True
        if conflict:
            return  # retreat: redraw from the (possibly pruned) palette
        self.color = self.trial
        self.colored_round = round_number
        self.pending = True

    def is_finished(self) -> bool:
        return self.done

    def result(self) -> int:
        return self.color


class BatchRandomizedDeltaPlusOne(BatchNodeAlgorithm):
    """Batched twin of :class:`RandomizedDeltaPlusOne` (``"active"`` mode).

    ``send_batch`` routes only the frontier's slots — the uncolored
    vertices plus the just-committed ones owing their final broadcast —
    so per-round cost (and the engine's message ledger) tracks the
    shrinking frontier exactly like the per-node program's.  The palette
    bit trick needs ``Δ + 2 < 63``; wider instances decline
    :meth:`can_run` and fall back per-node transparently.

    ``frontier_log[r-1]`` records the uncolored count at round ``r``'s
    send — the conflict-set trace consumed by
    :class:`repro.verify.randomized.RandomizedRoundsOracle`.
    """

    fallback = RandomizedDeltaPlusOne
    exchange_mode = "active"

    def can_run(self, context: BatchContext) -> bool:
        try:
            import numpy as np  # noqa: F401
        except ImportError:  # pragma: no cover - numpy is baked in
            return False
        delta = self._input_delta(context.inputs)
        return delta is not None and delta + 2 < 63

    @staticmethod
    def _input_delta(inputs) -> int | None:
        for item in inputs:
            if item is not None:
                return int(item[1])
        return None

    def initialize_batch(self, context: BatchContext) -> None:
        import numpy as np

        super().initialize_batch(context)
        self._np = np
        n = context.n
        seed = delta = 0
        for item in context.inputs:
            if item is not None:
                seed, delta = int(item[0]), int(item[1])
                break
        self.seed = seed
        self.delta = delta
        full = ((1 << (delta + 1)) - 1) << 1
        self.avail = np.full(n, full, dtype=np.int64)
        self.colors = np.zeros(n, dtype=np.int64)
        self.trial = np.zeros(n, dtype=np.int64)
        self.pending = np.zeros(n, dtype=bool)
        self.done_mask = np.zeros(n, dtype=bool)
        self.done = n == 0
        self.frontier_log: list[int] = []

    def send_batch(self, round_number: int):
        np = self._np
        context = self.context
        uncolored = self.colors == 0
        self.frontier_log.append(int(uncolored.sum()))
        front = np.flatnonzero(uncolored | self.pending)
        if front.size == 0:
            return None
        unc = np.flatnonzero(uncolored)
        if unc.size:
            bits = counter_rng(self.seed, context.identifiers[unc], round_number)
            counts = np.bitwise_count(self.avail[unc].astype(np.uint64))
            k = (bits % counts).astype(np.int64)
            self.trial[unc] = _kth_set_bit(self.avail[unc], k, np)
        node_values = np.where(self.pending, -self.colors, self.trial)
        starts = context.offsets[front]
        counts_f = context.degrees[front]
        total = int(counts_f.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        bounds = np.cumsum(counts_f)
        slots = np.repeat(starts - (bounds - counts_f), counts_f)
        slots += np.arange(total, dtype=np.int64)
        values = np.repeat(node_values[front], counts_f)
        return slots, values

    def receive_active(self, round_number: int, dest_slots, values) -> None:
        np = self._np
        context = self.context
        was_pending = np.flatnonzero(self.pending)
        uncolored = (self.colors == 0) & ~self.done_mask
        conflict = np.zeros(context.n, dtype=bool)
        if dest_slots is not None and len(dest_slots):
            receivers = context.sources[dest_slots]
            negative = values < 0
            if negative.any():
                clear = np.zeros(context.n, dtype=np.int64)
                np.bitwise_or.at(
                    clear, receivers[negative],
                    np.int64(1) << -values[negative],
                )
                self.avail &= ~clear
            hit = np.abs(values) == self.trial[receivers]
            np.logical_or.at(conflict, receivers[hit], True)
        commit = np.flatnonzero(uncolored & ~conflict)
        self.colors[commit] = self.trial[commit]
        self.pending[commit] = True
        self.pending[was_pending] = False
        self.done_mask[was_pending] = True
        self.done = bool(self.done_mask.all())

    def is_finished_batch(self) -> bool:
        return self.done

    def results_batch(self) -> list[int]:
        return self.colors.tolist()


@dataclass(frozen=True)
class RandomizedColoringResult:
    """Outcome of one randomized (Δ+1)-coloring run.

    ``frontier[r-1]`` is the number of uncolored vertices entering round
    ``r`` — the per-round conflict-set trace the rounds oracle audits
    (non-increasing, drains to 0, O(log n) length).
    """

    coloring: dict[Any, int]
    rounds: int
    messages: int
    palette_size: int
    frontier: tuple[int, ...]
    seed: int


def default_round_cap(n: int) -> int:
    """A generous non-termination guard: far above the whp O(log n)."""
    return 48 * max(1, int(n).bit_length()) + 96


def randomized_delta_plus_one_coloring(
    graph: GraphLike,
    *,
    seed: int,
    batched: bool = True,
    network: Network | None = None,
    max_rounds: int | None = None,
    reference_exchange: bool = False,
) -> RandomizedColoringResult:
    """Run the randomized (Δ+1)-coloring and return coloring + trace.

    ``batched=False`` forces the per-node program; both paths reconstruct
    the same frontier trace and — by the counter-based RNG contract —
    the same coloring, rounds and message counts for the same ``seed``.
    """
    if graph.number_of_vertices() == 0:
        return RandomizedColoringResult({}, 0, 0, 1, (), int(seed))
    if network is None:
        graph = freeze(graph)
        network = Network(graph)
    else:
        graph = network.graph
    delta = max(1, graph.max_degree())
    if max_rounds is None:
        max_rounds = default_round_cap(graph.number_of_vertices())
    inputs = {v: (int(seed), delta) for v in graph}
    captured: list[Any] = []
    use_batch = batched and delta + 2 < 63

    def factory():
        algorithm = (
            BatchRandomizedDeltaPlusOne() if use_batch
            else RandomizedDeltaPlusOne()
        )
        captured.append(algorithm)
        return algorithm

    run = run_node_algorithm(
        graph,
        factory,
        inputs=inputs,
        max_rounds=max_rounds,
        network=network,
        reference_exchange=reference_exchange,
    )
    if use_batch:
        programs = [a for a in captured if getattr(a, "frontier_log", None)]
        frontier = tuple(programs[0].frontier_log) if programs else ()
    else:
        nodes = [a for a in captured if getattr(a, "context", None) is not None]
        frontier = tuple(
            sum(
                1
                for a in nodes
                if a.colored_round is None or a.colored_round >= r
            )
            for r in range(1, run.rounds + 1)
        )
    return RandomizedColoringResult(
        coloring=dict(run.outputs),
        rounds=run.rounds,
        messages=run.messages_sent,
        palette_size=delta + 1,
        frontier=frontier,
        seed=int(seed),
    )


# -- Moser–Tardos entropy-compression resampler ---------------------------


class ResampleLimitError(RuntimeError):
    """The resampler exceeded its step budget without converging."""


@dataclass(frozen=True)
class ResampleStep:
    """One entry of the entropy-compression record log.

    ``vertices`` are positions in the frozen graph's vertex order — the
    violated set (every endpoint of a monochromatic edge) resampled at
    this step.
    """

    step: int
    vertices: tuple[int, ...]


def resample_log_digest(log: Iterable[ResampleStep], *, seed: int) -> str:
    """Canonical digest of a resample log (seed + every violated set)."""
    h = hashlib.sha256()
    h.update(f"seed={int(seed)}".encode())
    for entry in log:
        h.update(
            f"|{entry.step}:{','.join(str(v) for v in entry.vertices)}".encode()
        )
    return h.hexdigest()[:16]


@dataclass(frozen=True)
class MoserTardosResult:
    """Final coloring plus the replayable entropy-compression witness."""

    coloring: dict[Any, Any]
    steps: int
    log: tuple[ResampleStep, ...]
    seed: int
    backend: str

    def log_digest(self) -> str:
        return resample_log_digest(self.log, seed=self.seed)


def _as_flat_lists(lists) -> FlatListAssignment:
    if isinstance(lists, FlatListAssignment):
        return lists
    if hasattr(lists, "as_dict"):
        lists = lists.as_dict()
    return FlatListAssignment(dict(lists))


def moser_tardos_list_coloring(
    graph: GraphLike,
    lists,
    *,
    seed: int,
    backend: str = "flat",
    max_steps: int | None = None,
) -> MoserTardosResult:
    """Moser–Tardos resampling until no monochromatic edge remains.

    Step 0 samples every vertex independently and uniformly from its
    list; step ``t >= 1`` recomputes the violated set (all endpoints of
    monochromatic edges), records it in the log, and resamples exactly
    those vertices with fresh ``(seed, node_id, t)`` bits.  ``backend``
    picks the vectorized CSR path (``"flat"``) or the pure-Python
    reference (``"dict"``); both consume identical randomness and emit
    bit-identical colorings and logs.
    """
    if backend not in ("flat", "dict"):
        raise ValueError(f"unknown backend {backend!r}")
    graph = freeze(graph)
    n = graph.number_of_vertices()
    flat = _as_flat_lists(lists)
    if n == 0:
        # zero-vertex instance: a vacuous success, and the well-defined
        # minimum_size(default=...) keeps the precondition below vacuous
        return MoserTardosResult({}, 0, (), int(seed), backend)
    if not flat.covers(graph):
        missing = next(v for v in graph if v not in flat)
        raise ListAssignmentError(f"vertex {missing!r} has no list")
    vertices = graph.vertices()
    masks = [flat.mask_of(v) for v in vertices]
    # minimum_size(default=1) keeps the precondition vacuous on the
    # zero-vertex restriction while still rejecting genuinely empty lists
    if flat.restrict(vertices).minimum_size(default=1) < 1:
        empty_at = next(v for v, m in zip(vertices, masks) if m == 0)
        raise ListAssignmentError(f"vertex {empty_at!r} has an empty list")
    if max_steps is None:
        max_steps = 64 + 16 * n
    use_flat = backend == "flat"
    if use_flat:
        try:
            import numpy as np  # noqa: F401
        except ImportError:  # pragma: no cover - numpy is baked in
            use_flat = False
    if use_flat and max(masks).bit_length() > 62:
        use_flat = False  # >62-bit universes stay on the int reference path
    if use_flat:
        colors, log = _mt_flat(graph, masks, int(seed), max_steps)
    else:
        colors, log = _mt_dict(graph, masks, int(seed), max_steps)
    color_of = flat.universe.color_of
    coloring = {v: color_of(int(bit)) for v, bit in zip(vertices, colors)}
    return MoserTardosResult(
        coloring=coloring,
        steps=len(log),
        log=tuple(log),
        seed=int(seed),
        backend=backend,
    )


def _mt_dict(graph, masks, seed, max_steps):
    """Pure-Python Moser–Tardos core (the dict-backend reference)."""
    n = graph.number_of_vertices()
    vertices = graph.vertices()
    index = {v: i for i, v in enumerate(vertices)}
    nbrs = [[index[u] for u in graph.neighbors(v)] for v in vertices]

    def draw(i, step):
        bits = counter_rng_one(seed, i + 1, step)
        mask = masks[i]
        return _kth_set_bit_scalar(mask, bits % mask.bit_count())

    colors = [draw(i, 0) for i in range(n)]
    log = []
    step = 0
    while True:
        violated = sorted(
            {i for i in range(n) for j in nbrs[i] if colors[i] == colors[j]}
        )
        if not violated:
            return colors, log
        step += 1
        if step > max_steps:
            raise ResampleLimitError(
                f"no proper list coloring after {max_steps} resample steps"
            )
        log.append(ResampleStep(step, tuple(violated)))
        for i in violated:
            colors[i] = draw(i, step)


def _mt_flat(graph, masks, seed, max_steps):
    """Vectorized Moser–Tardos core over the frozen CSR."""
    import numpy as np

    n = graph.number_of_vertices()
    offsets, endpoints = graph.csr_arrays()
    offsets = np.asarray(offsets, dtype=np.int64)
    endpoints = np.asarray(endpoints, dtype=np.int64)
    sources = np.repeat(np.arange(n, dtype=np.int64), np.diff(offsets))
    masks_arr = np.array(masks, dtype=np.int64)
    counts = np.bitwise_count(masks_arr.astype(np.uint64))

    def draw(idx, step):
        bits = counter_rng(seed, (idx + 1).astype(np.uint64), step)
        k = (bits % counts[idx]).astype(np.int64)
        return _kth_set_bit(masks_arr[idx], k, np)

    everyone = np.arange(n, dtype=np.int64)
    colors = draw(everyone, 0)
    log = []
    step = 0
    while True:
        mono = colors[sources] == colors[endpoints]
        violated = np.unique(sources[mono])
        if violated.size == 0:
            return colors.tolist(), log
        step += 1
        if step > max_steps:
            raise ResampleLimitError(
                f"no proper list coloring after {max_steps} resample steps"
            )
        log.append(ResampleStep(step, tuple(int(v) for v in violated)))
        colors[violated] = draw(violated, step)
