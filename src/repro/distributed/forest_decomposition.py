"""H-partition and forest decomposition (Barenboim–Elkin).

The *H-partition* of a graph of arboricity ``a`` with parameter ``ε``
partitions the vertices into ``ℓ = O(log n)`` classes ``H_1, ..., H_ℓ``
such that every vertex of ``H_i`` has at most ``(2+ε) a`` neighbours in
``H_i ∪ ... ∪ H_ℓ``.  It is computed by repeatedly peeling the vertices of
degree at most ``(2+ε) a`` (at least an ``ε/(2+ε)`` fraction of the
remaining vertices qualifies, by a counting argument on the number of
edges), one peeling step per communication round.

From the partition one obtains an acyclic orientation of out-degree at most
``(2+ε)a`` (orient every edge towards the endpoint in the later class,
breaking ties by identifier), and hence a decomposition of the edges into
at most ``floor((2+ε)a)`` forests (edge ``(u -> v)`` joins forest ``i`` if
``v`` is the ``i``-th out-neighbour of ``u``).  These are the ingredients
of the Barenboim–Elkin coloring baseline reproduced in
:mod:`repro.distributed.barenboim_elkin`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.graphs.graph import Graph, Vertex
from repro.local.ledger import RoundLedger

__all__ = ["HPartition", "h_partition", "orientation_from_partition"]


@dataclass
class HPartition:
    """An H-partition together with its measured parameters."""

    classes: list[set[Vertex]]
    class_of: dict[Vertex, int]
    degree_bound: float
    rounds: int
    ledger: RoundLedger = field(default_factory=RoundLedger)

    @property
    def number_of_classes(self) -> int:
        return len(self.classes)


def h_partition(
    graph: Graph, arboricity: int, epsilon: float = 1.0, max_iterations: int | None = None
) -> HPartition:
    """Compute the H-partition with degree bound ``(2 + epsilon) * arboricity``.

    Raises :class:`SimulationError` if the peeling stalls, which only
    happens when ``arboricity`` underestimates the true arboricity of the
    graph (the counting argument then fails).
    """
    if arboricity < 1:
        raise ValueError("arboricity must be at least 1")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    threshold = (2.0 + epsilon) * arboricity
    ledger = RoundLedger()
    remaining = set(graph.vertices())
    degrees = {v: graph.degree(v) for v in graph}
    classes: list[set[Vertex]] = []
    class_of: dict[Vertex, int] = {}
    limit = max_iterations if max_iterations is not None else 4 * graph.number_of_vertices() + 8
    iteration = 0
    while remaining:
        iteration += 1
        if iteration > limit:
            raise SimulationError(
                "H-partition did not converge; the arboricity parameter "
                f"({arboricity}) is probably an underestimate"
            )
        peeled = {v for v in remaining if degrees[v] <= threshold}
        if not peeled:
            raise SimulationError(
                "H-partition stalled: no vertex of degree at most "
                f"{threshold:.1f} remains; the arboricity parameter "
                f"({arboricity}) is an underestimate"
            )
        index = len(classes)
        classes.append(peeled)
        for v in peeled:
            class_of[v] = index
        remaining -= peeled
        for v in peeled:
            for u in graph.neighbors(v):
                if u in remaining:
                    degrees[u] -= 1
        ledger.charge(
            "H-partition: peel one class",
            1,
            reference="Barenboim–Elkin [4], Procedure Partition",
        )
    return HPartition(
        classes=classes,
        class_of=class_of,
        degree_bound=threshold,
        rounds=len(classes),
        ledger=ledger,
    )


def orientation_from_partition(
    graph: Graph, partition: HPartition
) -> dict[Vertex, list[Vertex]]:
    """Orient every edge towards the later class (ties broken by repr of label).

    Returns the out-neighbour lists; the maximum out-degree is at most the
    partition's degree bound.
    """
    out: dict[Vertex, list[Vertex]] = {v: [] for v in graph}
    for u, v in graph.edges():
        cu, cv = partition.class_of[u], partition.class_of[v]
        if (cu, repr(u)) <= (cv, repr(v)):
            out[u].append(v)
        else:
            out[v].append(u)
    return out
