"""Goldberg–Plotkin–Shannon 7-coloring of planar graphs in O(log n) rounds.

This is the previous state of the art that Corollary 2.3(1) improves from 7
to 6 colors (at the price of O(log^3 n) instead of O(log n) rounds).  The
algorithm exploits the fact that a planar graph has average degree below 6,
hence at least ``n/7`` vertices of degree at most 6:

1. repeatedly peel the set of vertices of degree at most 6 — O(log n)
   peeling layers;
2. process the layers in reverse; the subgraph induced by one layer has
   maximum degree at most 6, so a distributed (Δ+1)-coloring assigns at
   most 7 "slots" to it;
3. iterate over the slots: the vertices of a slot (a stable set) pick a
   free color from {1..7} simultaneously — at most 6 of their neighbours
   (those in the same or later layers) can be colored already.

More generally the same procedure colors any graph of maximum average
degree < ``d`` with ``d + 1`` colors in ``O(d log n)``-ish rounds; the
generalization is exposed through the ``degree_threshold`` parameter and is
used as a baseline for the non-planar experiments as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.coloring.assignment import Color
from repro.errors import ColoringError
from repro.graphs.graph import Graph, Vertex
from repro.local.ledger import RoundLedger
from repro.distributed.linial import delta_plus_one_coloring

__all__ = ["GPSResult", "gps_coloring", "peel_low_degree_layers"]


@dataclass
class GPSResult:
    """Coloring and round accounting of the GPS baseline."""

    coloring: dict[Vertex, Color]
    colors_used: int
    palette_size: int
    rounds: int
    layers: list[set[Vertex]]
    ledger: RoundLedger = field(default_factory=RoundLedger)


def peel_low_degree_layers(
    graph: Graph, degree_threshold: int
) -> tuple[list[set[Vertex]], RoundLedger]:
    """Repeatedly remove all vertices of degree <= ``degree_threshold``.

    Returns the peeling layers and a ledger charging one round per layer.
    Raises :class:`ColoringError` if the peeling stalls (the graph then has
    a subgraph of minimum degree above the threshold, i.e. its maximum
    average degree exceeds the threshold).
    """
    ledger = RoundLedger()
    remaining = set(graph.vertices())
    degrees = {v: graph.degree(v) for v in graph}
    layers: list[set[Vertex]] = []
    while remaining:
        peeled = {v for v in remaining if degrees[v] <= degree_threshold}
        if not peeled:
            raise ColoringError(
                f"peeling stalled: a subgraph of minimum degree > {degree_threshold} "
                "exists (the degree threshold is below the graph's mad)"
            )
        layers.append(peeled)
        remaining -= peeled
        for v in peeled:
            for u in graph.neighbors(v):
                if u in remaining:
                    degrees[u] -= 1
        ledger.charge(
            "GPS: peel one low-degree layer",
            1,
            reference="Goldberg–Plotkin–Shannon [17]",
        )
    return layers, ledger


def gps_coloring(graph: Graph, degree_threshold: int = 6) -> GPSResult:
    """Color ``graph`` with ``degree_threshold + 1`` colors (GPS-style).

    With the default threshold 6 and a planar input this is the classical
    7-coloring in O(log n) rounds.
    """
    ledger = RoundLedger()
    if graph.number_of_vertices() == 0:
        return GPSResult({}, 0, degree_threshold + 1, 0, [], ledger)
    layers, peel_ledger = peel_low_degree_layers(graph, degree_threshold)
    ledger.extend(peel_ledger)
    palette = list(range(1, degree_threshold + 2))
    coloring: dict[Vertex, Color] = {}
    total_rounds = len(layers)
    for layer in reversed(layers):
        layer_graph = graph.subgraph(layer)
        slots = delta_plus_one_coloring(layer_graph)
        ledger.charge(
            "GPS: slot coloring of one layer",
            slots.rounds,
            reference="within-layer (Δ+1)-coloring",
        )
        total_rounds += slots.rounds
        slot_count = max(slots.coloring.values(), default=0) + 1
        for slot in range(slot_count):
            for v in layer:
                if slots.coloring.get(v) != slot:
                    continue
                used = {coloring[u] for u in graph.neighbors(v) if u in coloring}
                free = [color for color in palette if color not in used]
                if not free:
                    raise ColoringError(
                        "GPS ran out of colors; the degree threshold "
                        f"({degree_threshold}) is below the graph's degeneracy"
                    )
                coloring[v] = free[0]
            ledger.charge("GPS: one slot selects colors", 1)
            total_rounds += 1
    return GPSResult(
        coloring=coloring,
        colors_used=len(set(coloring.values())),
        palette_size=degree_threshold + 1,
        rounds=total_rounds,
        layers=layers,
        ledger=ledger,
    )
