"""The Barenboim–Elkin arboricity-based coloring baseline.

Barenboim and Elkin [4] color graphs of arboricity ``a`` with
``floor((2+ε)a) + 1`` colors in ``O(a log n)`` rounds (for constant ε).
This is the algorithm that Corollary 1.4 of the paper improves upon (the
paper achieves ``2a`` colors — at least one fewer — at the cost of a larger
polylogarithmic round complexity).  We reproduce it so that the experiment
tables can report the color counts and round costs of both sides.

Procedure:

1. compute the H-partition ``H_1, ..., H_ℓ`` (``ℓ = O(log n)``) with degree
   bound ``A = (2+ε) a``;
2. process classes from ``H_ℓ`` down to ``H_1``; within a class, the induced
   subgraph has maximum degree at most ``A``, so the distributed
   (Δ+1)-coloring of :func:`repro.distributed.linial.delta_plus_one_coloring`
   assigns "slots" ``0..A`` to the class vertices;
3. iterate over the slots: all vertices of the current slot pick, at the
   same time, a free color from ``{1, ..., floor(A)+1}`` — a free color
   exists because each such vertex has at most ``A`` neighbours in its own
   and later classes, and only those can be colored already.

Rounds are charged per phase to a ledger: the measured rounds of the slot
coloring runs plus one round per slot per class plus the partition rounds.

Two substrates implement the procedure:

* ``backend="dict"`` — the historical per-vertex loops (H-partition over
  label sets, sequential slot sweeps);
* ``backend="flat"`` — the same schedule on the flat machinery: a
  vectorized peel for the H-partition, the batched Linial/color-reduction
  ports for the per-class slots, and :class:`BatchSlotColorSelection` — a
  genuine :class:`~repro.local.node.BatchNodeAlgorithm` that runs the
  whole slot phase on the flat round engine, one numpy array per round.
  On a frozen input graph both backends produce the identical coloring and
  charge identical rounds (identifier assignment follows the CSR vertex
  order either way); on a mutable graph the class subgraph orderings — and
  hence the exact colors — may differ while palette and validity are
  unchanged.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field

from repro.coloring.assignment import Color
from repro.errors import ColoringError, SimulationError
from repro.graphs.frozen import HAS_NUMPY, freeze
from repro.graphs.graph import Graph, Vertex
from repro.local.ledger import RoundLedger
from repro.local.node import (
    BatchContext,
    BatchNodeAlgorithm,
    lowest_free_bit,
    segment_reduce,
)
from repro.local.simulator import run_node_algorithm
from repro.distributed.forest_decomposition import HPartition, h_partition
from repro.distributed.linial import delta_plus_one_coloring

__all__ = [
    "BarenboimElkinResult",
    "BatchSlotColorSelection",
    "barenboim_elkin_coloring",
]


@dataclass
class BarenboimElkinResult:
    """Coloring, palette size and round accounting of the baseline."""

    coloring: dict[Vertex, Color]
    colors_used: int
    palette_size: int
    rounds: int
    partition: HPartition
    ledger: RoundLedger = field(default_factory=RoundLedger)


class BatchSlotColorSelection(BatchNodeAlgorithm):
    """The slot phase of Barenboim–Elkin as a batched node program.

    Input (per node): ``(class_index, slot, palette_size, slot_counts)``
    where ``slot_counts`` is the per-class tuple of slot-cohort sizes.  The
    last two fields are the same for every node — like ``n``, they are
    global knowledge the driver announces to all nodes — so the global
    schedule (classes in decreasing order, slots ``0..slot_counts[c]-1``
    within each class) is a deterministic function of each node's *own*
    input.  Deriving it from the observed maxima instead would silently
    read global structure no message-passing node could know, which the
    locality auditor of :mod:`repro.verify.locality` flags.  In round ``r``
    the scheduled ``(class, slot)`` cohort — a stable set, the slots being
    a proper coloring of their class — simultaneously picks the smallest
    palette color not used by a colored neighbour, while all nodes
    broadcast their current color (0 encodes "uncolored").  This is
    exactly the sequential sweep of the dict backend; one simulator round
    per (class, slot) pair keeps the charged-round accounting identical.

    The free-color pick uses an int64 bit trick, so ``palette_size < 63``
    is required; the real Barenboim–Elkin palettes (``(2+ε)a + 1``) are
    far below that.  There is no per-node fallback — the dict backend *is*
    the fallback, and :func:`barenboim_elkin_coloring` routes to it when
    numpy is unavailable.
    """

    fallback = None

    def can_run(self, context: BatchContext) -> bool:
        inputs = context.inputs
        if not inputs:
            return False
        palettes = {p for (_c, _s, p, _sc) in inputs}
        schedules = {sc for (_c, _s, _p, sc) in inputs}
        # < 62, not < 63: on an underestimated arboricity a node can see
        # all palette colors used, and lowest_free_bit needs bit 62 clear
        # in that saturated mask to report the out-of-palette overflow
        return len(palettes) == 1 and len(schedules) == 1 and max(palettes) < 62

    def initialize_batch(self, context: BatchContext) -> None:
        import numpy as np

        super().initialize_batch(context)
        self._np = np
        inputs = context.inputs
        self.class_of = np.asarray([c for (c, _s, _p, _sc) in inputs], dtype=np.int64)
        self.slot_of = np.asarray([s for (_c, s, _p, _sc) in inputs], dtype=np.int64)
        self.palette_size = int(inputs[0][2]) if inputs else 0
        # schedule: classes from the last down to 0, slots ascending within
        # each class, sized by the announced per-class slot counts
        slot_counts = tuple(inputs[0][3]) if inputs else ()
        schedule: list[tuple[int, int]] = []
        for class_index in range(len(slot_counts) - 1, -1, -1):
            schedule.extend(
                (class_index, slot) for slot in range(slot_counts[class_index])
            )
        self.schedule = schedule
        self.step = 0
        self.colors = np.zeros(context.n, dtype=np.int64)  # 0 = uncolored
        self._src = context.sources

    def send_batch(self, round_number: int):
        return self.colors[self._src]

    def receive_batch(self, round_number: int, inbox, delivered) -> None:
        np = self._np
        class_index, slot = self.schedule[self.step]
        self.step += 1
        scheduled = (self.class_of == class_index) & (self.slot_of == slot)
        if scheduled.any():
            bits = np.where(inbox > 0, np.int64(1) << inbox.clip(0, 62), 0)
            used = segment_reduce(
                np.bitwise_or, bits, self.context.offsets, empty=0
            )
            used |= 1  # color 0 is "uncolored", never pickable
            free = lowest_free_bit(used)
            if bool((scheduled & (free > self.palette_size)).any()):
                raise ColoringError(
                    "Barenboim–Elkin ran out of colors; the arboricity "
                    "parameter is an underestimate"
                )
            self.colors = np.where(scheduled, free, self.colors)

    def is_finished_batch(self) -> bool:
        return self.step >= len(self.schedule)

    def results_batch(self) -> list[int]:
        return [int(c) for c in self.colors]


def _h_partition_flat(graph, arboricity: int, epsilon: float) -> HPartition:
    """Vectorized H-partition peel over a frozen graph's CSR arrays.

    Same classes, class indices and charged rounds as
    :func:`~repro.distributed.forest_decomposition.h_partition` — only the
    per-iteration work is one degree threshold test plus one segmented
    count instead of per-vertex set walks.
    """
    import numpy as np

    if arboricity < 1:
        raise ValueError("arboricity must be at least 1")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    threshold = (2.0 + epsilon) * arboricity
    ledger = RoundLedger()
    labels = graph.vertices()
    n = len(labels)
    offsets, neighbors = graph.csr_arrays()
    degrees = np.diff(offsets).astype(np.int64)
    remaining = np.ones(n, dtype=bool)
    classes: list[set[Vertex]] = []
    class_of: dict[Vertex, int] = {}
    limit = 4 * n + 8
    iteration = 0
    while bool(remaining.any()):
        iteration += 1
        if iteration > limit:
            raise SimulationError(
                "H-partition did not converge; the arboricity parameter "
                f"({arboricity}) is probably an underestimate"
            )
        peeled = remaining & (degrees <= threshold)
        if not bool(peeled.any()):
            raise SimulationError(
                "H-partition stalled: no vertex of degree at most "
                f"{threshold:.1f} remains; the arboricity parameter "
                f"({arboricity}) is an underestimate"
            )
        index = len(classes)
        peeled_idx = np.flatnonzero(peeled)
        members = {labels[int(i)] for i in peeled_idx}
        classes.append(members)
        for v in members:
            class_of[v] = index
        remaining &= ~peeled
        # degree update: every remaining vertex loses its peeled neighbours
        degrees -= segment_reduce(
            np.add, peeled[neighbors].astype(np.int64), offsets, empty=0
        )
        ledger.charge(
            "H-partition: peel one class",
            1,
            reference="Barenboim–Elkin [4], Procedure Partition",
        )
    return HPartition(
        classes=classes,
        class_of=class_of,
        degree_bound=threshold,
        rounds=len(classes),
        ledger=ledger,
    )


def barenboim_elkin_coloring(
    graph: Graph, arboricity: int, epsilon: float = 1.0, backend: str = "flat",
    *, strict_backend: bool = False,
) -> BarenboimElkinResult:
    """Color ``graph`` with ``floor((2+ε)a) + 1`` colors (Barenboim–Elkin).

    ``backend="flat"`` runs the H-partition, the per-class slot coloring
    and the slot-selection phase on the flat substrate (see the module
    docstring).  When the flat path cannot run — numpy is missing, or the
    palette ``floor((2+ε)a)+1`` is too wide for the int64 slot kernel —
    the dict backend takes over with a :class:`RuntimeWarning` so perf
    measurements never silently compare the wrong substrate; pass
    ``strict_backend=True`` to get a :class:`ValueError` instead.
    """
    if backend not in ("dict", "flat"):
        raise ValueError(f"unknown backend {backend!r}; use 'dict' or 'flat'")
    if backend == "flat" and (
        not HAS_NUMPY
        or int(math.floor((2.0 + epsilon) * arboricity)) + 1 >= 62
    ):
        reason = (
            "numpy is not available"
            if not HAS_NUMPY
            else (
                f"palette floor((2+{epsilon:g})*{arboricity})+1 = "
                f"{int(math.floor((2.0 + epsilon) * arboricity)) + 1} "
                "exceeds the int64 slot kernel's 61-color limit"
            )
        )
        if strict_backend:
            raise ValueError(
                f"backend='flat' cannot run: {reason}; pass backend='dict' "
                "or drop strict_backend"
            )
        warnings.warn(
            f"barenboim_elkin_coloring: falling back to backend='dict' "
            f"({reason})",
            RuntimeWarning,
            stacklevel=2,
        )
        backend = "dict"
    ledger = RoundLedger()
    if graph.number_of_vertices() == 0:
        return BarenboimElkinResult({}, 0, 0, 0, HPartition([], {}, 0, 0), ledger)
    if backend == "flat":
        return _barenboim_elkin_flat(freeze(graph), arboricity, epsilon, ledger)
    partition = h_partition(graph, arboricity, epsilon)
    ledger.extend(partition.ledger)
    palette_size = int(math.floor((2.0 + epsilon) * arboricity)) + 1
    palette = list(range(1, palette_size + 1))

    coloring: dict[Vertex, Color] = {}
    total_rounds = partition.rounds
    for class_index in range(len(partition.classes) - 1, -1, -1):
        members = partition.classes[class_index]
        class_graph = graph.subgraph(members)
        slots = delta_plus_one_coloring(class_graph)
        ledger.charge(
            "Barenboim–Elkin: slot coloring of one class",
            slots.rounds,
            reference="within-class (Δ+1)-coloring",
        )
        total_rounds += slots.rounds
        slot_count = max(slots.coloring.values(), default=0) + 1
        for slot in range(slot_count):
            slot_vertices = [v for v in members if slots.coloring.get(v) == slot]
            for v in slot_vertices:
                used = {coloring[u] for u in graph.neighbors(v) if u in coloring}
                free = [color for color in palette if color not in used]
                if not free:
                    raise ColoringError(
                        "Barenboim–Elkin ran out of colors; the arboricity "
                        f"parameter ({arboricity}) is an underestimate"
                    )
                coloring[v] = free[0]
            ledger.charge(
                "Barenboim–Elkin: one slot selects colors",
                1,
                reference="greedy selection within a stable slot",
            )
            total_rounds += 1
    return BarenboimElkinResult(
        coloring=coloring,
        colors_used=len(set(coloring.values())),
        palette_size=palette_size,
        rounds=total_rounds,
        partition=partition,
        ledger=ledger,
    )


def _barenboim_elkin_flat(
    frozen, arboricity: int, epsilon: float, ledger: RoundLedger
) -> BarenboimElkinResult:
    """Flat-substrate Barenboim–Elkin on a frozen graph."""
    partition = _h_partition_flat(frozen, arboricity, epsilon)
    ledger.extend(partition.ledger)
    palette_size = int(math.floor((2.0 + epsilon) * arboricity)) + 1
    total_rounds = partition.rounds

    # per-class slot colorings, processed (and charged) last class first —
    # the same order the dict backend sweeps them
    slot_of: dict[Vertex, tuple[int, int]] = {}
    slot_counts = [1] * len(partition.classes)
    for class_index in range(len(partition.classes) - 1, -1, -1):
        members = partition.classes[class_index]
        class_graph = frozen.subgraph(members)
        slots = delta_plus_one_coloring(class_graph, batched=True)
        ledger.charge(
            "Barenboim–Elkin: slot coloring of one class",
            slots.rounds,
            reference="within-class (Δ+1)-coloring",
        )
        total_rounds += slots.rounds
        slot_counts[class_index] = max(slots.coloring.values(), default=0) + 1
        for v in members:
            slot_of[v] = (class_index, slots.coloring[v])

    # the schedule constants are broadcast to every node as part of its
    # input (global knowledge, like n), so the batched program can derive
    # the cohort schedule without peeking at the whole input array
    announced = tuple(slot_counts)
    slot_inputs = {
        v: (class_index, slot, palette_size, announced)
        for v, (class_index, slot) in slot_of.items()
    }

    run = run_node_algorithm(
        frozen,
        BatchSlotColorSelection,
        inputs=slot_inputs,
        max_rounds=len(frozen) * (palette_size + 2) + 8,
        strict=True,
    )
    slot_rounds = run.rounds
    ledger.charge(
        "Barenboim–Elkin: one slot selects colors",
        slot_rounds,
        reference="greedy selection within a stable slot (batched engine)",
    )
    total_rounds += slot_rounds
    coloring = {v: int(c) for v, c in run.outputs.items()}
    return BarenboimElkinResult(
        coloring=coloring,
        colors_used=len(set(coloring.values())),
        palette_size=palette_size,
        rounds=total_rounds,
        partition=partition,
        ledger=ledger,
    )
