"""The Barenboim–Elkin arboricity-based coloring baseline.

Barenboim and Elkin [4] color graphs of arboricity ``a`` with
``floor((2+ε)a) + 1`` colors in ``O(a log n)`` rounds (for constant ε).
This is the algorithm that Corollary 1.4 of the paper improves upon (the
paper achieves ``2a`` colors — at least one fewer — at the cost of a larger
polylogarithmic round complexity).  We reproduce it so that the experiment
tables can report the color counts and round costs of both sides.

Procedure:

1. compute the H-partition ``H_1, ..., H_ℓ`` (``ℓ = O(log n)``) with degree
   bound ``A = (2+ε) a``;
2. process classes from ``H_ℓ`` down to ``H_1``; within a class, the induced
   subgraph has maximum degree at most ``A``, so the distributed
   (Δ+1)-coloring of :func:`repro.distributed.linial.delta_plus_one_coloring`
   assigns "slots" ``0..A`` to the class vertices;
3. iterate over the slots: all vertices of the current slot pick, at the
   same time, a free color from ``{1, ..., floor(A)+1}`` — a free color
   exists because each such vertex has at most ``A`` neighbours in its own
   and later classes, and only those can be colored already.

Rounds are charged per phase to a ledger: the measured rounds of the slot
coloring runs plus one round per slot per class plus the partition rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.coloring.assignment import Color
from repro.errors import ColoringError
from repro.graphs.graph import Graph, Vertex
from repro.local.ledger import RoundLedger
from repro.distributed.forest_decomposition import HPartition, h_partition
from repro.distributed.linial import delta_plus_one_coloring

__all__ = ["BarenboimElkinResult", "barenboim_elkin_coloring"]


@dataclass
class BarenboimElkinResult:
    """Coloring, palette size and round accounting of the baseline."""

    coloring: dict[Vertex, Color]
    colors_used: int
    palette_size: int
    rounds: int
    partition: HPartition
    ledger: RoundLedger = field(default_factory=RoundLedger)


def barenboim_elkin_coloring(
    graph: Graph, arboricity: int, epsilon: float = 1.0
) -> BarenboimElkinResult:
    """Color ``graph`` with ``floor((2+ε)a) + 1`` colors (Barenboim–Elkin)."""
    ledger = RoundLedger()
    if graph.number_of_vertices() == 0:
        return BarenboimElkinResult({}, 0, 0, 0, HPartition([], {}, 0, 0), ledger)
    partition = h_partition(graph, arboricity, epsilon)
    ledger.extend(partition.ledger)
    palette_size = int(math.floor((2.0 + epsilon) * arboricity)) + 1
    palette = list(range(1, palette_size + 1))

    coloring: dict[Vertex, Color] = {}
    total_rounds = partition.rounds
    for class_index in range(len(partition.classes) - 1, -1, -1):
        members = partition.classes[class_index]
        class_graph = graph.subgraph(members)
        slots = delta_plus_one_coloring(class_graph)
        ledger.charge(
            "Barenboim–Elkin: slot coloring of one class",
            slots.rounds,
            reference="within-class (Δ+1)-coloring",
        )
        total_rounds += slots.rounds
        slot_count = max(slots.coloring.values(), default=0) + 1
        for slot in range(slot_count):
            slot_vertices = [v for v in members if slots.coloring.get(v) == slot]
            for v in slot_vertices:
                used = {coloring[u] for u in graph.neighbors(v) if u in coloring}
                free = [color for color in palette if color not in used]
                if not free:
                    raise ColoringError(
                        "Barenboim–Elkin ran out of colors; the arboricity "
                        f"parameter ({arboricity}) is an underestimate"
                    )
                coloring[v] = free[0]
            ledger.charge(
                "Barenboim–Elkin: one slot selects colors",
                1,
                reference="greedy selection within a stable slot",
            )
            total_rounds += 1
    return BarenboimElkinResult(
        coloring=coloring,
        colors_used=len(set(coloring.values())),
        palette_size=palette_size,
        rounds=total_rounds,
        partition=partition,
        ledger=ledger,
    )
