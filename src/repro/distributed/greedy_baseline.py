"""Distributed greedy (Δ+1)-coloring baseline ("local maxima pick first").

In every round, each uncolored vertex whose identifier is the largest among
its uncolored neighbours picks the smallest color of ``{1..Δ+1}`` not used
by its colored neighbours.  The round complexity is the length of the
longest decreasing identifier path — O(n) in the worst case and O(log n) in
expectation for random identifiers — which makes it a useful "no cleverness"
baseline to compare the structured algorithms against.  It is implemented
as a genuine node program on the synchronous simulator, in both the
per-node form (:class:`GreedyLocalMaximaAlgorithm`) and the vectorized
batched form (:class:`BatchGreedyLocalMaximaAlgorithm`).
"""

from __future__ import annotations

from typing import Any

from repro.graphs.frozen import GraphLike, freeze
from repro.local.network import Network
from repro.local.node import (
    BatchContext,
    BatchNodeAlgorithm,
    NodeAlgorithm,
    NodeContext,
    lowest_free_bit,
    segment_reduce,
)
from repro.local.simulator import run_node_algorithm
from repro.distributed.linial import DistributedColoringResult

__all__ = [
    "GreedyLocalMaximaAlgorithm",
    "BatchGreedyLocalMaximaAlgorithm",
    "greedy_distributed_coloring",
]


class GreedyLocalMaximaAlgorithm(NodeAlgorithm):
    """Node program for the local-maxima greedy coloring.

    Input (per node): the maximum degree Δ (int).  Output: a color in
    ``{1..Δ+1}``.
    """

    def initialize(self, context: NodeContext) -> None:
        super().initialize(context)
        self.max_degree = int(context.input)
        self.color: int | None = None
        self.neighbor_state: dict[int, tuple[int, int | None]] = {}

    def send(self, round_number: int) -> dict[int, Any]:
        payload = (self.context.identifier, self.color)
        return {port: payload for port in range(self.context.degree)}

    def receive(self, round_number: int, messages: dict[int, Any]) -> None:
        self.neighbor_state = dict(messages)
        if self.color is not None:
            return
        uncolored_neighbor_ids = [
            identifier
            for identifier, color in self.neighbor_state.values()
            if color is None
        ]
        if any(identifier > self.context.identifier for identifier in uncolored_neighbor_ids):
            return
        used = {
            color for _id, color in self.neighbor_state.values() if color is not None
        }
        for candidate in range(1, self.max_degree + 2):
            if candidate not in used:
                self.color = candidate
                return

    def is_finished(self) -> bool:
        return self.color is not None

    def result(self) -> int | None:
        return self.color


class BatchGreedyLocalMaximaAlgorithm(BatchNodeAlgorithm):
    """Batched port of :class:`GreedyLocalMaximaAlgorithm`.

    Every round all nodes broadcast their color (0 encodes "uncolored";
    neighbour identifiers are read off the fabric, which is exactly the
    information the per-node protocol re-broadcasts every round), and the
    per-node decision rule is replayed with segmented numpy reductions: an
    uncolored node whose identifier beats the max uncolored-neighbour id
    takes the lowest bit absent from the OR of its neighbours' color bits.
    Rounds, message counts and outputs match the per-node run exactly.

    The color-set bit trick needs ``Δ + 1 < 63``; wider palettes decline
    :meth:`can_run` and fall back to the per-node program transparently.

    The program runs in ``"broadcast"`` exchange mode and
    ``receive_broadcast`` adds *active-set compaction*: only uncolored
    nodes can change state, so once fewer than half the nodes remain
    uncolored the rival/used reductions run over just the active nodes'
    slots (:func:`repro.local.kernels.compact_segments`) instead of the
    whole fabric.  The decision rule — and hence every output, round and
    message count — is identical to the dense path, which
    ``receive_batch`` keeps alive as the unfused reference.
    """

    fallback = GreedyLocalMaximaAlgorithm
    exchange_mode = "broadcast"

    def can_run(self, context: BatchContext) -> bool:
        import numpy as np

        inputs = context.inputs
        if isinstance(inputs, np.ndarray):
            max_degree = int(inputs.max()) if inputs.size else 0
        else:
            max_degree = max(
                (int(x) for x in inputs if x is not None), default=0
            )
        return max_degree + 1 < 63

    def initialize_batch(self, context: BatchContext) -> None:
        import numpy as np

        super().initialize_batch(context)
        self._np = np
        self._src = context.sources
        self.colors = np.zeros(context.n, dtype=np.int64)  # 0 = uncolored
        self.nbr_ids = context.identifiers[context.endpoints]
        self.done = context.n == 0
        self._active = None  # uncolored node indices once compaction kicks in

    def send_batch(self, round_number: int):
        return self.colors

    def _commit(self, active, eligible, free) -> None:
        """Color the eligible active nodes and refresh the active set."""
        winners = active[eligible]
        self.colors[winners] = free[eligible]
        remaining = active[~eligible]
        self._active = remaining
        self.done = remaining.size == 0

    def receive_broadcast(self, round_number: int, node_values) -> None:
        from repro.local import kernels

        np = self._np
        context = self.context
        active = self._active
        if active is None and 2 * int((self.colors == 0).sum()) > context.n:
            # dense round: reduce over the whole fabric (same arithmetic as
            # receive_batch, minus the inbox materialization)
            inbox = node_values[context.endpoints]
            uncolored = self.colors == 0
            rival = segment_reduce(
                np.maximum,
                np.where(inbox == 0, self.nbr_ids, 0),
                context.offsets,
                empty=0,
            )
            eligible_mask = uncolored & (context.identifiers > rival)
            used = segment_reduce(
                np.bitwise_or,
                np.where(inbox > 0, 1 << inbox, 0),
                context.offsets,
                empty=0,
            ) | 1
            free = lowest_free_bit(used)
            self.colors = np.where(eligible_mask, free, self.colors)
            still = np.flatnonzero(self.colors == 0)
            if 2 * still.size <= context.n:
                self._active = still
            self.done = still.size == 0
            return
        if active is None:
            active = np.flatnonzero(self.colors == 0)
        # compact round: gather only the active nodes' neighbourhoods
        slots, compact_offsets = kernels.compact_segments(
            context.offsets, active
        )
        nbr_colors = node_values[context.endpoints[slots]]
        rival = segment_reduce(
            np.maximum,
            np.where(nbr_colors == 0, self.nbr_ids[slots], 0),
            compact_offsets,
            empty=0,
        )
        eligible = context.identifiers[active] > rival
        used = segment_reduce(
            np.bitwise_or,
            np.where(nbr_colors > 0, 1 << nbr_colors, 0),
            compact_offsets,
            empty=0,
        ) | 1
        free = lowest_free_bit(used)
        self._commit(active, eligible, free)

    def receive_batch(self, round_number: int, inbox, delivered) -> None:
        np = self._np
        offsets = self.context.offsets
        uncolored = self.colors == 0
        # max identifier among *uncolored* neighbours (0 when none)
        rival = segment_reduce(
            np.maximum, np.where(inbox == 0, self.nbr_ids, 0), offsets, empty=0
        )
        eligible = uncolored & (self.context.identifiers > rival)
        # lowest color >= 1 outside the OR of colored neighbours' bits
        used = segment_reduce(
            np.bitwise_or,
            np.where(inbox > 0, 1 << inbox, 0),
            offsets,
            empty=0,
        ) | 1
        free = lowest_free_bit(used)
        self.colors = np.where(eligible, free, self.colors)
        self.done = bool((self.colors > 0).all())

    def is_finished_batch(self) -> bool:
        return self.done

    def results_batch(self) -> list[int]:
        return self.colors.tolist()


def greedy_distributed_coloring(
    graph: GraphLike,
    batched: bool = True,
    network: Network | None = None,
) -> DistributedColoringResult:
    """Run the local-maxima greedy baseline and return coloring + rounds.

    The graph is frozen at the boundary (pass a prebuilt ``network=`` to
    amortize that across repeated runs); ``batched=False`` forces the
    per-node program.
    """
    if graph.number_of_vertices() == 0:
        return DistributedColoringResult({}, 0, 0, 1)
    if network is None:
        graph = freeze(graph)
        network = Network(graph)
    else:
        graph = network.graph
    delta = max(1, graph.max_degree())
    algorithm = (
        BatchGreedyLocalMaximaAlgorithm if batched else GreedyLocalMaximaAlgorithm
    )
    run = run_node_algorithm(
        graph,
        algorithm,
        inputs={v: delta for v in graph},
        max_rounds=graph.number_of_vertices() + 2,
        network=network,
    )
    return DistributedColoringResult(
        coloring=dict(run.outputs),
        rounds=run.rounds,
        messages=run.messages_sent,
        palette_size=delta + 1,
    )
