"""Distributed greedy (Δ+1)-coloring baseline ("local maxima pick first").

In every round, each uncolored vertex whose identifier is the largest among
its uncolored neighbours picks the smallest color of ``{1..Δ+1}`` not used
by its colored neighbours.  The round complexity is the length of the
longest decreasing identifier path — O(n) in the worst case and O(log n) in
expectation for random identifiers — which makes it a useful "no cleverness"
baseline to compare the structured algorithms against.  It is implemented
as a genuine node program on the synchronous simulator.
"""

from __future__ import annotations

from typing import Any

from repro.graphs.graph import Graph, Vertex
from repro.local.node import NodeAlgorithm, NodeContext
from repro.local.simulator import run_node_algorithm
from repro.distributed.linial import DistributedColoringResult

__all__ = ["GreedyLocalMaximaAlgorithm", "greedy_distributed_coloring"]


class GreedyLocalMaximaAlgorithm(NodeAlgorithm):
    """Node program for the local-maxima greedy coloring.

    Input (per node): the maximum degree Δ (int).  Output: a color in
    ``{1..Δ+1}``.
    """

    def initialize(self, context: NodeContext) -> None:
        super().initialize(context)
        self.max_degree = int(context.input)
        self.color: int | None = None
        self.neighbor_state: dict[int, tuple[int, int | None]] = {}

    def send(self, round_number: int) -> dict[int, Any]:
        payload = (self.context.identifier, self.color)
        return {port: payload for port in range(self.context.degree)}

    def receive(self, round_number: int, messages: dict[int, Any]) -> None:
        self.neighbor_state = dict(messages)
        if self.color is not None:
            return
        uncolored_neighbor_ids = [
            identifier
            for identifier, color in self.neighbor_state.values()
            if color is None
        ]
        if any(identifier > self.context.identifier for identifier in uncolored_neighbor_ids):
            return
        used = {
            color for _id, color in self.neighbor_state.values() if color is not None
        }
        for candidate in range(1, self.max_degree + 2):
            if candidate not in used:
                self.color = candidate
                return

    def is_finished(self) -> bool:
        return self.color is not None

    def result(self) -> int | None:
        return self.color


def greedy_distributed_coloring(graph: Graph) -> DistributedColoringResult:
    """Run the local-maxima greedy baseline and return coloring + rounds."""
    if graph.number_of_vertices() == 0:
        return DistributedColoringResult({}, 0, 0, 1)
    delta = max(1, graph.max_degree())
    run = run_node_algorithm(
        graph,
        GreedyLocalMaximaAlgorithm,
        inputs={v: delta for v in graph},
        max_rounds=graph.number_of_vertices() + 2,
    )
    return DistributedColoringResult(
        coloring=dict(run.outputs),
        rounds=run.rounds,
        messages=run.messages_sent,
        palette_size=delta + 1,
    )
