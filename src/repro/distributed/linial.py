"""Linial's O(Δ²)-coloring in O(log* n) rounds, plus color reduction to Δ+1.

Linial's algorithm repeatedly shrinks a proper coloring using polynomial
hash families: with the current color space of size ``m`` and a prime ``q``
with ``q^(d+1) >= m`` and ``q > d * Δ``, every color is interpreted as a
polynomial of degree at most ``d`` over GF(q); a vertex picks an evaluation
point ``x`` on which its polynomial differs from the polynomials of all its
neighbours (at most ``d Δ < q`` points are excluded), and its new color is
the pair ``(x, p(x))`` — a value in a space of size ``q²``.  Iterating
O(log* n) times brings the number of colors down to O(Δ²).

The schedule of parameters ``(q, d, m)`` is a deterministic function of
``(n, Δ)``, so all nodes compute it locally and terminate simultaneously
without coordination.

:class:`ColorReductionAlgorithm` then removes one color class per round
(highest color first), each vertex of the class picking a free color in
``{0..Δ}``; composing the two yields the standard (Δ+1)-coloring in
``O(log* n + Δ²)`` rounds used as the "partition into d+1 stable sets"
subroutine of Lemma 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.graphs.graph import Graph, Vertex
from repro.local.node import (
    BatchContext,
    BatchNodeAlgorithm,
    NodeAlgorithm,
    NodeContext,
    lowest_free_bit,
    segment_reduce,
)
from repro.local.simulator import run_node_algorithm

__all__ = [
    "linial_schedule",
    "LinialColoringAlgorithm",
    "BatchLinialColoringAlgorithm",
    "ColorReductionAlgorithm",
    "BatchColorReductionAlgorithm",
    "delta_plus_one_coloring",
    "DistributedColoringResult",
]


def _next_prime(value: int) -> int:
    """The smallest prime strictly greater than ``value``."""
    candidate = max(2, value + 1)
    while True:
        if all(candidate % p for p in range(2, int(candidate**0.5) + 1)):
            return candidate
        candidate += 1


def _iteration_parameters(m: int, max_degree: int) -> tuple[int, int]:
    """Choose ``(q, d)`` with ``q`` prime, ``q^(d+1) >= m`` and ``q > d*Δ``."""
    delta = max(1, max_degree)
    q = _next_prime(delta)
    while True:
        # smallest degree that lets polynomials over GF(q) encode m colors
        d = 1
        while q ** (d + 1) < m:
            d += 1
        if q > d * delta:
            return q, d
        q = _next_prime(d * delta)


def linial_schedule(n: int, max_degree: int) -> list[tuple[int, int, int]]:
    """The deterministic sequence of ``(m, q, d)`` parameter triples.

    Starts from the identifier space of size ``n`` and stops when an
    iteration would not shrink the color space any further.
    """
    schedule: list[tuple[int, int, int]] = []
    m = max(n, 2)
    for _ in range(64):  # log* of anything representable
        q, d = _iteration_parameters(m, max_degree)
        new_m = q * q
        if new_m >= m:
            break
        schedule.append((m, q, d))
        m = new_m
    return schedule


def _polynomial_value(color: int, x: int, q: int, degree: int) -> int:
    """Evaluate the base-q-digit polynomial of ``color`` at ``x`` over GF(q)."""
    value = 0
    remaining = color
    power = 1
    for _ in range(degree + 1):
        coefficient = remaining % q
        remaining //= q
        value = (value + coefficient * power) % q
        power = (power * x) % q
    return value


class LinialColoringAlgorithm(NodeAlgorithm):
    """Node program computing an O(Δ²)-coloring in O(log* n) rounds.

    Input (per node): the maximum degree Δ of the graph (an ``int``).
    Output: ``(color, palette_size)`` where ``color < palette_size`` and the
    coloring is proper.
    """

    def initialize(self, context: NodeContext) -> None:
        super().initialize(context)
        max_degree = int(context.input)
        self.max_degree = max_degree
        self.schedule = linial_schedule(context.n, max_degree)
        self.step = 0
        self.color = context.identifier - 1  # colors live in [0, n)
        self.palette = max(context.n, 2)

    def send(self, round_number: int) -> dict[int, Any]:
        if self.step >= len(self.schedule):
            return {}
        return {port: self.color for port in range(self.context.degree)}

    def receive(self, round_number: int, messages: dict[int, Any]) -> None:
        if self.step >= len(self.schedule):
            return
        _m, q, d = self.schedule[self.step]
        neighbor_colors = list(messages.values())
        own = self.color
        chosen_x = None
        for x in range(q):
            own_value = _polynomial_value(own, x, q, d)
            if all(
                _polynomial_value(other, x, q, d) != own_value
                for other in neighbor_colors
                if other != own
            ):
                chosen_x = x
                break
        if chosen_x is None:  # cannot happen when q > d * Δ; defensive
            chosen_x = 0
        self.color = chosen_x * q + _polynomial_value(own, chosen_x, q, d)
        self.palette = q * q
        self.step += 1

    def is_finished(self) -> bool:
        return self.step >= len(self.schedule)

    def result(self) -> tuple[int, int]:
        return self.color, self.palette


class BatchLinialColoringAlgorithm(BatchNodeAlgorithm):
    """Batched port of :class:`LinialColoringAlgorithm` (one array per round).

    All nodes share the same ``(n, Δ)`` schedule, so one program instance
    replays the per-node protocol with dense linear algebra: the base-``q``
    digit polynomials of all current colors are evaluated on all of GF(q)
    at once (an ``(n, q)`` matrix), the per-slot conflicts are reduced to
    an ``(n, q)`` "excluded evaluation point" table with one segmented OR,
    and every node picks its first admissible point.  Rounds, message
    counts and outputs are identical to the per-node run (the parity tests
    assert this), which keeps the charged-round accounting of Lemma 3.2
    unchanged when the flat backend swaps this port in.
    """

    fallback = LinialColoringAlgorithm

    def can_run(self, context: BatchContext) -> bool:
        # the batched replay needs every node to run the same schedule
        inputs = context.inputs
        return bool(inputs) and all(x == inputs[0] for x in inputs)

    def initialize_batch(self, context: BatchContext) -> None:
        import numpy as np

        super().initialize_batch(context)
        self._np = np
        self.max_degree = int(context.inputs[0]) if context.inputs else 1
        # schedule and initial palette come from the announced n and the
        # identifiers, never from the array length — this keeps the batched
        # port locality-faithful on truncated r-ball networks
        self.schedule = linial_schedule(context.known_n, self.max_degree)
        self.step = 0
        self.colors = np.asarray(context.identifiers, dtype=np.int64) - 1
        self.palette = max(context.known_n, 2)
        self._src = context.sources
        self._endpoints = context.endpoints

    def send_batch(self, round_number: int):
        return self.colors[self._src]

    def receive_batch(self, round_number: int, inbox, delivered) -> None:
        np = self._np
        _m, q, d = self.schedule[self.step]
        n = self.context.n
        colors = self.colors
        # base-q digits of every color: (n, d+1)
        digits = np.empty((n, d + 1), dtype=np.int64)
        remaining = colors.copy()
        for k in range(d + 1):
            digits[:, k] = remaining % q
            remaining //= q
        # powers[x, k] = x^k mod q: (q, d+1)
        xs = np.arange(q, dtype=np.int64)
        powers = np.ones((q, d + 1), dtype=np.int64)
        for k in range(1, d + 1):
            powers[:, k] = (powers[:, k - 1] * xs) % q
        values = (digits @ powers.T) % q  # (n, q): p_v(x) for every v, x
        # a point x is excluded for v when some neighbour u with a
        # *different* color satisfies p_u(x) == p_v(x)
        src, endpoints = self._src, self._endpoints
        conflicting = (inbox != colors[src])[:, None] & (
            values[endpoints] == values[src]
        )
        offsets = self.context.offsets
        excluded = np.zeros((n, q), dtype=bool)
        starts = offsets[:-1]
        nonempty = np.flatnonzero(starts != offsets[1:])
        if nonempty.size:
            excluded[nonempty] = np.logical_or.reduceat(
                conflicting, starts[nonempty], axis=0
            )
        chosen = np.argmax(~excluded, axis=1)  # first admissible x (0 if none)
        self.colors = chosen * q + values[np.arange(n), chosen]
        self.palette = q * q
        self.step += 1

    def is_finished_batch(self) -> bool:
        return self.step >= len(self.schedule)

    def results_batch(self) -> list[tuple[int, int]]:
        palette = self.palette
        return [(int(c), palette) for c in self.colors]


class ColorReductionAlgorithm(NodeAlgorithm):
    """Reduce a proper coloring with ``m`` colors to ``Δ+1`` colors.

    Input (per node): ``(initial_color, m, Δ)``.  One color class is removed
    per round, from color ``m-1`` down to ``Δ+1``; vertices of the scheduled
    class pick the smallest color in ``{0..Δ}`` unused by their neighbours.
    Output: the final color (an ``int`` in ``{0..Δ}``).
    """

    def initialize(self, context: NodeContext) -> None:
        super().initialize(context)
        color, palette, max_degree = context.input
        self.color = int(color)
        self.palette = int(palette)
        self.max_degree = int(max_degree)
        self.target = self.palette - 1
        self.neighbor_colors: dict[int, int] = {}

    def send(self, round_number: int) -> dict[int, Any]:
        if self.target <= self.max_degree:
            return {}
        return {port: self.color for port in range(self.context.degree)}

    def receive(self, round_number: int, messages: dict[int, Any]) -> None:
        if self.target <= self.max_degree:
            return
        self.neighbor_colors = dict(messages)
        if self.color == self.target:
            used = set(self.neighbor_colors.values())
            for candidate in range(self.max_degree + 1):
                if candidate not in used:
                    self.color = candidate
                    break
        self.target -= 1

    def is_finished(self) -> bool:
        return self.target <= self.max_degree

    def result(self) -> int:
        return self.color


class BatchColorReductionAlgorithm(BatchNodeAlgorithm):
    """Batched port of :class:`ColorReductionAlgorithm`.

    One color class is retired per round exactly as in the per-node
    protocol; the "smallest free color in ``{0..Δ}``" selection runs as a
    segmented OR of neighbour color bits plus a lowest-zero-bit extraction
    (which needs ``Δ + 1 < 63``; wider palettes decline :meth:`can_run`
    and fall back per node).
    """

    fallback = ColorReductionAlgorithm

    def can_run(self, context: BatchContext) -> bool:
        inputs = context.inputs
        if not inputs:
            return False
        palettes = {p for (_c, p, _d) in inputs}
        deltas = {d for (_c, _p, d) in inputs}
        return len(palettes) == 1 and len(deltas) == 1 and max(deltas) + 1 < 63

    def initialize_batch(self, context: BatchContext) -> None:
        import numpy as np

        super().initialize_batch(context)
        self._np = np
        inputs = context.inputs
        self.colors = np.asarray([int(c) for (c, _p, _d) in inputs], dtype=np.int64)
        self.palette = int(inputs[0][1])
        self.max_degree = int(inputs[0][2])
        self.target = self.palette - 1
        self._src = context.sources

    def send_batch(self, round_number: int):
        return self.colors[self._src]

    def receive_batch(self, round_number: int, inbox, delivered) -> None:
        np = self._np
        delta = self.max_degree
        bits = np.where(inbox <= delta, np.int64(1) << inbox.clip(0, 62), 0)
        used = segment_reduce(np.bitwise_or, bits, self.context.offsets, empty=0)
        free = lowest_free_bit(used)
        moving = (self.colors == self.target) & (free <= delta)
        self.colors = np.where(moving, free, self.colors)
        self.target -= 1

    def is_finished_batch(self) -> bool:
        return self.target <= self.max_degree

    def results_batch(self) -> list[int]:
        return [int(c) for c in self.colors]


@dataclass
class DistributedColoringResult:
    """Coloring plus measured round/message counts of a simulator run."""

    coloring: dict[Vertex, int]
    rounds: int
    messages: int
    palette_size: int


def delta_plus_one_coloring(
    graph: Graph, max_degree: int | None = None, batched: bool = False
) -> DistributedColoringResult:
    """(Δ+1)-coloring via Linial + color reduction, with measured rounds.

    This is the "partition H into d+1 stable sets" subroutine invoked by
    Lemma 3.2 (the paper quotes [17] with an ``O(d log n)`` bound; the
    Linial route used here costs ``O(log* n + Δ²)`` rounds, which is
    incomparable in general but simpler and fully message-passing).

    ``batched=True`` runs the vectorized
    :class:`BatchLinialColoringAlgorithm` /
    :class:`BatchColorReductionAlgorithm` ports on the flat round engine;
    rounds, messages and colors are identical to the per-node run (and the
    ports fall back per node transparently when numpy is unavailable).
    """
    from repro.graphs.frozen import freeze
    from repro.local.network import Network

    if graph.number_of_vertices() == 0:
        return DistributedColoringResult({}, 0, 0, 1)
    frozen = freeze(graph)
    # one network (and routing fabric) shared by both simulator passes
    network = Network(frozen)
    delta = frozen.max_degree() if max_degree is None else max_degree
    delta = max(1, delta)
    linial_run = run_node_algorithm(
        frozen,
        BatchLinialColoringAlgorithm if batched else LinialColoringAlgorithm,
        inputs={v: delta for v in frozen},
        network=network,
    )
    palette = max(p for (_c, p) in linial_run.outputs.values())
    reduction_inputs = {
        v: (color, palette, delta) for v, (color, _p) in linial_run.outputs.items()
    }
    reduction_run = run_node_algorithm(
        frozen,
        BatchColorReductionAlgorithm if batched else ColorReductionAlgorithm,
        inputs=reduction_inputs,
        max_rounds=palette + 5,
        network=network,
    )
    return DistributedColoringResult(
        coloring=dict(reduction_run.outputs),
        rounds=linial_run.rounds + reduction_run.rounds,
        messages=linial_run.messages_sent + reduction_run.messages_sent,
        palette_size=delta + 1,
    )
