"""Self-stabilizing recoloring protocols (min+1 and stabilizing greedy).

Unlike the terminating pipelines, a self-stabilizing protocol never
halts: every round each node re-examines its neighbourhood and repairs
its color register if it is in an *illegitimate* state, whatever
transient faults (corrupted colors, reboots, topology churn, lost or
duplicated messages) put it there.  Convergence is to a *silent legal
state*: a proper coloring within the palette, after which no node
changes state again until the next perturbation.  The run-until-
quiescent loop lives in :mod:`repro.faults.engine`; this module only
defines the node programs, in both the per-node and batched forms the
static engine uses (the dict/flat parity axis extends to recovery runs).

Two protocols, following the min+1 line of Dubois–Masuzawa–Tixeuil
(see PAPERS.md and docs/fault_tolerance.md):

:class:`MinPlusOneRecoloring`
    The min+1 repair rule with an identifier tie-break.  Nodes
    broadcast ``(id, color, dirty)`` where ``dirty`` flags a detected
    conflict or out-of-palette color.  A dirty node whose identifier
    beats every dirty neighbour recolors to the minimum palette color
    absent from its neighbourhood (the "min+1" choice).  Movers of one
    round form an independent set, so each repair is final with respect
    to the state it observed and the dirty set shrinks monotonically
    between perturbations — conflicts never spread past the nodes that
    detect them, which is the containment property the
    :class:`~repro.verify.recovery` auditor measures.

:class:`StabilizingGreedyAlgorithm`
    The stabilizing variant of the batched greedy Δ+1 baseline: a node
    that detects a conflict (or an out-of-range color) *drops* to
    uncolored, and uncolored local maxima repick greedily exactly as in
    :mod:`repro.distributed.greedy_baseline`.  Started from the all-
    uncolored state on a static graph it reproduces the baseline's
    trajectory; after a fault it re-runs greedy only on the damaged
    region.

Both per-node programs deliberately keep *no port-indexed state across
rounds* — topology edits renumber ports between rounds, so any decision
uses only the messages of the current round.  Both report
``is_finished() == False`` forever (stabilizing protocols have no
terminal state); they are driven by the faults engine's quiescence
detector, not by the static engine's active-set termination.
"""

from __future__ import annotations

from typing import Any

from repro.local.node import (
    BatchContext,
    BatchNodeAlgorithm,
    NodeAlgorithm,
    NodeContext,
    lowest_free_bit,
    segment_reduce,
)

__all__ = [
    "StabilizingNodeAlgorithm",
    "MinPlusOneRecoloring",
    "BatchMinPlusOneRecoloring",
    "StabilizingGreedyAlgorithm",
    "BatchStabilizingGreedy",
    "STABILIZING_PROTOCOLS",
]


def _unpack_input(value: Any) -> tuple[int, int]:
    """Normalize the per-node input ``(budget, initial_color)``."""
    if isinstance(value, tuple):
        budget, color = value
        return int(budget), int(color or 0)
    return int(value), 0


class StabilizingNodeAlgorithm(NodeAlgorithm):
    """Shared surface of per-node stabilizing programs.

    The faults engine drives these through three extra duck-typed hooks:
    :meth:`corrupt` / :meth:`reset` inject state faults, and
    :meth:`snapshot` exposes the *full* protocol state (not just the
    output color) so quiescence detection cannot stop while invisible
    state — a dirty flag, say — is still evolving.
    """

    def initialize(self, context: NodeContext) -> None:
        super().initialize(context)
        self.budget, self.color = _unpack_input(context.input)

    def corrupt(self, value: int) -> None:
        self.color = int(value)

    def reset(self) -> None:
        self.color = 0

    def snapshot(self) -> tuple:
        return (self.color,)

    def is_finished(self) -> bool:
        return False

    def result(self) -> int:
        return self.color


class MinPlusOneRecoloring(StabilizingNodeAlgorithm):
    """Min+1 repair with identifier tie-break; broadcasts (id, color, dirty)."""

    def initialize(self, context: NodeContext) -> None:
        super().initialize(context)
        self.dirty = False

    def reset(self) -> None:
        super().reset()
        self.dirty = False

    def snapshot(self) -> tuple:
        return (self.color, self.dirty)

    def send(self, round_number: int) -> dict[int, Any]:
        payload = (self.context.identifier, self.color, self.dirty)
        return {port: payload for port in range(self.context.degree)}

    def receive(self, round_number: int, messages: dict[int, Any]) -> None:
        neighbours = list(messages.values())
        illegal = not 1 <= self.color <= self.budget
        rival = max(
            (ident for ident, _color, dirty in neighbours if dirty), default=0
        )
        if self.dirty and self.context.identifier > rival:
            # enabled: movers form an independent set (every dirty
            # neighbour sees this bigger dirty id and stays put), so the
            # min free color is conflict-free against what was observed
            used = {color for _ident, color, _dirty in neighbours}
            for candidate in range(1, self.budget + 1):
                if candidate not in used:
                    self.color = candidate
                    self.dirty = False
                    return
            self.dirty = True  # no free color (cannot happen within budget)
            return
        conflict = any(
            color == self.color and color != 0
            for _ident, color, _dirty in neighbours
        )
        self.dirty = illegal or conflict


class BatchMinPlusOneRecoloring(BatchNodeAlgorithm):
    """Batched port of :class:`MinPlusOneRecoloring`.

    Messages pack ``color * 2 + dirty`` into one int64 per slot
    (identifiers are read off the fabric, as in the greedy baseline
    port); the repair rule is replayed with segmented reductions.  The
    used-color bit trick needs the palette below 62, hence
    :meth:`can_run`; injected colors are clamped non-negative by the
    plan, so the packing stays order-preserving.

    Broadcast exchange mode: ``send_batch`` returns the packed per-node
    value and the engines deliver it with the fused endpoint gather
    (``values[sources][reverse_slot] == values[endpoints]``); the faults
    engine still materializes the per-slot inbox so drops and
    duplications can edit individual slots before :meth:`receive_batch`.
    """

    fallback = MinPlusOneRecoloring
    exchange_mode = "broadcast"

    def can_run(self, context: BatchContext) -> bool:
        budget = max(
            (_unpack_input(x)[0] for x in context.inputs if x is not None), default=0
        )
        return budget < 62

    def initialize_batch(self, context: BatchContext) -> None:
        import numpy as np

        super().initialize_batch(context)
        self._np = np
        pairs = [_unpack_input(x) for x in context.inputs]
        self.budget = max((b for b, _c in pairs), default=1)
        self.colors = np.asarray([c for _b, c in pairs], dtype=np.int64)
        self.dirty = np.zeros(context.n, dtype=np.int64)
        self._bind_topology(context)

    def _bind_topology(self, context: BatchContext) -> None:
        self.context = context
        self._src = context.sources
        self.nbr_ids = context.identifiers[context.endpoints]

    def on_topology_change(self, context: BatchContext) -> None:
        self._bind_topology(context)

    def corrupt_batch(self, index: int, value: int) -> None:
        self.colors[index] = int(value)

    def reset_batch(self, index: int) -> None:
        self.colors[index] = 0
        self.dirty[index] = 0

    def snapshot(self) -> tuple:
        return (self.colors.tobytes(), self.dirty.tobytes())

    def send_batch(self, round_number: int):
        return self.colors * 2 + self.dirty

    def receive_batch(self, round_number: int, inbox, delivered) -> None:
        np = self._np
        offsets = self.context.offsets
        # a dropped slot behaves exactly like a (color 0, clean) message:
        # no id contribution, no conflict, no used color — zero it out
        values = inbox if delivered is None else np.where(delivered, inbox, 0)
        nbr_color = values >> 1
        nbr_dirty = values & 1
        own = self.colors[self._src]
        rival = segment_reduce(
            np.maximum, self.nbr_ids * nbr_dirty, offsets, empty=0
        )
        conflict_slot = (nbr_color == own) & (nbr_color != 0)
        conflict = (
            segment_reduce(
                np.maximum, conflict_slot.astype(np.int64), offsets, empty=0
            )
            > 0
        )
        illegal = (self.colors < 1) | (self.colors > self.budget)
        enabled = (self.dirty > 0) & (self.context.identifiers > rival)
        in_palette = (nbr_color >= 1) & (nbr_color <= self.budget)
        used = segment_reduce(
            np.bitwise_or,
            np.where(in_palette, 1 << np.where(in_palette, nbr_color, 0), 0),
            offsets,
            empty=0,
        ) | 1
        free = lowest_free_bit(used)
        self.colors = np.where(enabled, free, self.colors)
        self.dirty = np.where(enabled, 0, (illegal | conflict).astype(np.int64))

    def is_finished_batch(self) -> bool:
        return False

    def results_batch(self) -> list[int]:
        return self.colors.tolist()


class StabilizingGreedyAlgorithm(StabilizingNodeAlgorithm):
    """Drop-then-repick: conflicted nodes uncolor, greedy repairs the hole."""

    def send(self, round_number: int) -> dict[int, Any]:
        payload = (self.context.identifier, self.color)
        return {port: payload for port in range(self.context.degree)}

    def receive(self, round_number: int, messages: dict[int, Any]) -> None:
        neighbours = list(messages.values())
        illegal = self.color < 0 or self.color > self.budget
        conflict = any(
            color == self.color and color != 0 for _ident, color in neighbours
        )
        if illegal or conflict:
            self.color = 0  # drop now, repick once the neighbourhood sees it
            return
        if self.color != 0:
            return
        rival = max(
            (ident for ident, color in neighbours if color == 0), default=0
        )
        if self.context.identifier <= rival:
            return
        used = {color for _ident, color in neighbours if color != 0}
        for candidate in range(1, self.budget + 1):
            if candidate not in used:
                self.color = candidate
                return


class BatchStabilizingGreedy(BatchNodeAlgorithm):
    """Batched port of :class:`StabilizingGreedyAlgorithm`.

    Raw colors travel on the slots (0 = uncolored); dropped slots are
    encoded as -1 so a lost message is distinguishable from a genuine
    "I am uncolored" broadcast — losing that broadcast is precisely how
    message faults perturb the greedy repair.  Broadcast exchange mode,
    like :class:`BatchMinPlusOneRecoloring`.
    """

    fallback = StabilizingGreedyAlgorithm
    exchange_mode = "broadcast"

    def can_run(self, context: BatchContext) -> bool:
        budget = max(
            (_unpack_input(x)[0] for x in context.inputs if x is not None), default=0
        )
        return budget < 62

    def initialize_batch(self, context: BatchContext) -> None:
        import numpy as np

        super().initialize_batch(context)
        self._np = np
        pairs = [_unpack_input(x) for x in context.inputs]
        self.budget = max((b for b, _c in pairs), default=1)
        self.colors = np.asarray([c for _b, c in pairs], dtype=np.int64)
        self._bind_topology(context)

    def _bind_topology(self, context: BatchContext) -> None:
        self.context = context
        self._src = context.sources
        self.nbr_ids = context.identifiers[context.endpoints]

    def on_topology_change(self, context: BatchContext) -> None:
        self._bind_topology(context)

    def corrupt_batch(self, index: int, value: int) -> None:
        self.colors[index] = int(value)

    def reset_batch(self, index: int) -> None:
        self.colors[index] = 0

    def snapshot(self) -> tuple:
        return (self.colors.tobytes(),)

    def send_batch(self, round_number: int):
        return self.colors

    def receive_batch(self, round_number: int, inbox, delivered) -> None:
        np = self._np
        offsets = self.context.offsets
        values = inbox if delivered is None else np.where(delivered, inbox, -1)
        own = self.colors[self._src]
        conflict_slot = (values == own) & (own != 0)
        conflict = (
            segment_reduce(
                np.maximum, conflict_slot.astype(np.int64), offsets, empty=0
            )
            > 0
        )
        illegal = (self.colors < 0) | (self.colors > self.budget)
        rival = segment_reduce(
            np.maximum, np.where(values == 0, self.nbr_ids, 0), offsets, empty=0
        )
        pick = (
            ~illegal
            & ~conflict
            & (self.colors == 0)
            & (self.context.identifiers > rival)
        )
        in_palette = (values >= 1) & (values <= self.budget)
        used = segment_reduce(
            np.bitwise_or,
            np.where(in_palette, 1 << np.where(in_palette, values, 0), 0),
            offsets,
            empty=0,
        ) | 1
        free = lowest_free_bit(used)
        self.colors = np.where(
            illegal | conflict, 0, np.where(pick, free, self.colors)
        )

    def is_finished_batch(self) -> bool:
        return False

    def results_batch(self) -> list[int]:
        return self.colors.tolist()


#: protocol name -> (per-node factory, batched factory); the scenario's
#: protocol axis and the faults engine resolve through this table.
STABILIZING_PROTOCOLS = {
    "min-plus-one": (MinPlusOneRecoloring, BatchMinPlusOneRecoloring),
    "stabilizing-greedy": (StabilizingGreedyAlgorithm, BatchStabilizingGreedy),
}
