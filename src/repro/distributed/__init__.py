"""Distributed primitives and baseline algorithms (LOCAL model).

The building blocks the paper's algorithm is assembled from, plus the
prior-work baselines its bounds are compared against:

* :mod:`repro.distributed.cole_vishkin` — 3-coloring rooted forests in
  ``O(log* n)`` rounds (the engine of every tree-coloring step);
* :mod:`repro.distributed.linial` — Linial's coloring and the
  ``Delta+1`` reduction;
* :mod:`repro.distributed.ruling` — the ``(k, k log n)``-ruling forests
  of Awerbuch et al. that Lemma 3.2 builds its stable partition on;
* :mod:`repro.distributed.forest_decomposition` — the H-partition /
  forest decomposition underlying the arboricity reductions;
* :mod:`repro.distributed.gps` — Goldberg–Plotkin–Shannon 7-coloring of
  planar graphs (the Corollary 2.3 baseline);
* :mod:`repro.distributed.barenboim_elkin` — ``floor((2+eps)a)+1``
  coloring of arboricity-``a`` graphs (the Corollary 1.4 baseline);
* :mod:`repro.distributed.greedy_baseline` — the local-maxima greedy
  ``Delta+1`` baseline.

Round counts are *charged* to the shared ledger of :mod:`repro.local`,
so every result reports the rounds a true LOCAL execution would need;
the ``primitives`` scenario of ``python -m repro`` tracks the measured
counts against the known bounds.
"""

from repro.distributed.barenboim_elkin import (
    BarenboimElkinResult,
    barenboim_elkin_coloring,
)
from repro.distributed.cole_vishkin import (
    BatchColeVishkinForestColoring,
    ColeVishkinForestColoring,
    cole_vishkin_iterations,
    color_rooted_forest,
)
from repro.distributed.forest_decomposition import (
    HPartition,
    h_partition,
    orientation_from_partition,
)
from repro.distributed.gps import GPSResult, gps_coloring, peel_low_degree_layers
from repro.distributed.greedy_baseline import (
    BatchGreedyLocalMaximaAlgorithm,
    GreedyLocalMaximaAlgorithm,
    greedy_distributed_coloring,
)
from repro.distributed.linial import (
    BatchColorReductionAlgorithm,
    BatchLinialColoringAlgorithm,
    ColorReductionAlgorithm,
    DistributedColoringResult,
    LinialColoringAlgorithm,
    delta_plus_one_coloring,
    linial_schedule,
)
from repro.distributed.randomized import (
    BatchRandomizedDeltaPlusOne,
    MoserTardosResult,
    RandomizedColoringResult,
    RandomizedDeltaPlusOne,
    ResampleStep,
    counter_rng,
    moser_tardos_list_coloring,
    randomized_delta_plus_one_coloring,
    resample_log_digest,
)
from repro.distributed.ruling import RulingForest, ruling_forest, ruling_set

__all__ = [
    "BarenboimElkinResult",
    "barenboim_elkin_coloring",
    "BatchColeVishkinForestColoring",
    "ColeVishkinForestColoring",
    "cole_vishkin_iterations",
    "color_rooted_forest",
    "HPartition",
    "h_partition",
    "orientation_from_partition",
    "GPSResult",
    "gps_coloring",
    "peel_low_degree_layers",
    "BatchGreedyLocalMaximaAlgorithm",
    "GreedyLocalMaximaAlgorithm",
    "greedy_distributed_coloring",
    "BatchColorReductionAlgorithm",
    "BatchLinialColoringAlgorithm",
    "ColorReductionAlgorithm",
    "DistributedColoringResult",
    "LinialColoringAlgorithm",
    "delta_plus_one_coloring",
    "linial_schedule",
    "BatchRandomizedDeltaPlusOne",
    "MoserTardosResult",
    "RandomizedColoringResult",
    "RandomizedDeltaPlusOne",
    "ResampleStep",
    "counter_rng",
    "moser_tardos_list_coloring",
    "randomized_delta_plus_one_coloring",
    "resample_log_digest",
    "RulingForest",
    "ruling_forest",
    "ruling_set",
]
