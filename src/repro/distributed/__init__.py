"""Distributed primitives and baseline algorithms (LOCAL model)."""

from repro.distributed.barenboim_elkin import (
    BarenboimElkinResult,
    barenboim_elkin_coloring,
)
from repro.distributed.cole_vishkin import (
    ColeVishkinForestColoring,
    cole_vishkin_iterations,
    color_rooted_forest,
)
from repro.distributed.forest_decomposition import (
    HPartition,
    h_partition,
    orientation_from_partition,
)
from repro.distributed.gps import GPSResult, gps_coloring, peel_low_degree_layers
from repro.distributed.greedy_baseline import (
    GreedyLocalMaximaAlgorithm,
    greedy_distributed_coloring,
)
from repro.distributed.linial import (
    ColorReductionAlgorithm,
    DistributedColoringResult,
    LinialColoringAlgorithm,
    delta_plus_one_coloring,
    linial_schedule,
)
from repro.distributed.ruling import RulingForest, ruling_forest, ruling_set

__all__ = [
    "BarenboimElkinResult",
    "barenboim_elkin_coloring",
    "ColeVishkinForestColoring",
    "cole_vishkin_iterations",
    "color_rooted_forest",
    "HPartition",
    "h_partition",
    "orientation_from_partition",
    "GPSResult",
    "gps_coloring",
    "peel_low_degree_layers",
    "GreedyLocalMaximaAlgorithm",
    "greedy_distributed_coloring",
    "ColorReductionAlgorithm",
    "DistributedColoringResult",
    "LinialColoringAlgorithm",
    "delta_plus_one_coloring",
    "linial_schedule",
    "RulingForest",
    "ruling_forest",
    "ruling_set",
]
