"""The scenario catalog: every paper experiment as a registry entry.

One :func:`~repro.scenarios.registry.register` call per experiment, in the
order the statements appear in the paper.  Each entry declares its
parameter grid (``defaults``), the reduced grid used by ``--smoke`` / CI /
the test suite (``smoke_overrides``), the reference values claimed by the
paper, and a ``check`` turning the load-bearing claims into assertions on
the finished :class:`~repro.analysis.runner.ExperimentRunner`.

``docs/experiments.md`` documents every entry; keep the two in sync.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.analysis import BatchTask, ExperimentRunner, fit_polylog, normalized_by_polylog
from repro.scenarios import tasks
from repro.scenarios.base import Scenario
from repro.scenarios.registry import register

__all__ = ["CAMPAIGNS"]

Params = Mapping[str, Any]


def _budget_failures(runner: ExperimentRunner, *, algorithms: list[str] | None = None) -> list[str]:
    """Rows whose ``colors`` exceed their ``budget`` (optionally filtered)."""
    failures = []
    for row in runner.rows:
        if algorithms is not None and row.algorithm not in algorithms:
            continue
        if "colors" in row.metrics and "budget" in row.metrics:
            if row.metrics["colors"] > row.metrics["budget"]:
                failures.append(
                    f"{row.instance} / {row.algorithm}: used {row.metrics['colors']} "
                    f"colors, budget {row.metrics['budget']}"
                )
    return failures


# ---------------------------------------------------------------------------
# E1 — theorem13-colors
# ---------------------------------------------------------------------------

def _backend_label(algorithm: str, backend: str) -> str:
    """Row label for a backend axis: dict rows keep the historical name."""
    return algorithm if backend == "dict" else f"{algorithm} [{backend}]"


def _build_theorem13_colors(params: Params, profile: bool) -> list[BatchTask]:
    built = []
    for d in params["ds"]:
        for n in params["sizes"]:
            instance = f"n={n} d={d}"
            for variant, algorithm in (
                ("uniform", "thm1.3 uniform lists"),
                ("random", "thm1.3 random lists"),
                ("greedy", "greedy baseline"),
            ):
                for backend in params["backends"]:
                    # seed_group = instance: every variant/backend row of an
                    # instance sees the same graph (the artifact parity
                    # oracle compares them), while --seed still reseeds
                    built.append(BatchTask(
                        instance, _backend_label(algorithm, backend),
                        tasks.theorem13_colors,
                        args=(n, d, variant, backend),
                        kwargs={"profile": profile},
                        seed_group=instance,
                    ))
    return built


def _check_theorem13_colors(runner: ExperimentRunner, params: Params) -> list[str]:
    failures = _budget_failures(runner, algorithms=[
        _backend_label("thm1.3 uniform lists", backend)
        for backend in params["backends"]
    ])
    failures += [
        f"{row.instance} / {row.algorithm}: verification failed"
        for row in runner.rows
        if not row.metrics.get("valid", True)
    ]
    return failures


register(Scenario(
    name="theorem13-colors",
    title="Theorem 1.3 — colors used vs. the budget d",
    paper_ref="Theorem 1.3",
    description=(
        "d-list-coloring of graphs with mad <= d (uniform and per-vertex "
        "random lists) against the degeneracy-greedy baseline, which needs "
        "one more color."
    ),
    build_tasks=_build_theorem13_colors,
    defaults={"sizes": (80, 160), "ds": (4, 6), "backends": ("dict", "flat")},
    smoke_overrides={"sizes": (40,), "ds": (4,)},
    reference={
        "colors": "<= d with uniform lists {1..d}",
        "baseline": "floor(mad)+1 colors (degeneracy greedy)",
    },
    size_param="sizes",
    check=_check_theorem13_colors,
))


# ---------------------------------------------------------------------------
# E2 — theorem13-rounds
# ---------------------------------------------------------------------------

def _build_theorem13_rounds(params: Params, profile: bool) -> list[BatchTask]:
    # seed_group (see _build_theorem13_colors): both backend rows of an
    # instance must measure the same graph for the parity oracle
    return [
        BatchTask(
            f"n={n}", _backend_label("thm1.3 (paper radius)", backend),
            tasks.theorem13_rounds,
            args=(n, params["d"], backend), kwargs={"profile": profile},
            seed_group=f"n={n}",
        )
        for n in params["sizes"]
        for backend in params["backends"]
    ]


def _round_series(
    runner: ExperimentRunner, backend: str = "flat"
) -> tuple[list[int], list[int]]:
    label = _backend_label("thm1.3 (paper radius)", backend)
    return (
        runner.metric_series(label, "n"),
        runner.metric_series(label, "rounds"),
    )


def _finalize_theorem13_rounds(runner: ExperimentRunner, params: Params) -> None:
    for backend in params["backends"]:
        ns, rounds = _round_series(runner, backend)
        if len(ns) >= 3:
            fit = fit_polylog(ns, rounds)
            key = "fit" if backend == "dict" else f"fit[{backend}]"
            runner.metadata[key] = {
                "model": "rounds ~ c * log2(n)^e",
                "coefficient": round(fit.coefficient, 3),
                "exponent": round(fit.exponent, 3),
            }


def _check_theorem13_rounds(runner: ExperimentRunner, params: Params) -> list[str]:
    failures = []
    for backend in params["backends"]:
        ns, rounds = _round_series(runner, backend)
        if len(ns) < 3:
            continue
        normalized = normalized_by_polylog(ns, rounds, power=3)
        if max(normalized) > 6 * min(normalized):
            failures.append(
                f"rounds/log^3 not bounded ({backend}): min {min(normalized):.3f}, "
                f"max {max(normalized):.3f} (> 6x)"
            )
        fit = fit_polylog(ns, rounds)
        if fit.exponent > 4.0:
            failures.append(
                f"fitted polylog exponent ({backend}) {fit.exponent:.2f} > 4.0"
            )
    return failures


register(Scenario(
    name="theorem13-rounds",
    title="Theorem 1.3 — charged rounds vs n",
    paper_ref="Theorem 1.3",
    description=(
        "Round complexity of the Theorem 1.3 driver on unions of two random "
        "forests: the charged totals normalised by log2(n)^3 stay bounded "
        "as n grows, and the fitted polylog exponent stays <= 4."
    ),
    build_tasks=_build_theorem13_rounds,
    defaults={"sizes": (60, 120, 240, 480), "d": 4, "backends": ("dict", "flat")},
    smoke_overrides={"sizes": (40, 80)},
    reference={"rounds": "O(d^4 log^3 n), O(d^2 log^3 n) when max degree <= d"},
    size_param="sizes",
    finalize=_finalize_theorem13_rounds,
    check=_check_theorem13_rounds,
))


# ---------------------------------------------------------------------------
# E5 — corollary14-arboricity
# ---------------------------------------------------------------------------

def _build_corollary14(params: Params, profile: bool) -> list[BatchTask]:
    built = []
    for a in params["arboricities"]:
        for n in params["ns"]:
            instance = f"n={n} a={a}"
            # seed_group (see _build_theorem13_colors): the backend rows of
            # an instance must share the graph for the parity oracle
            for backend in params["backends"]:
                built.append(BatchTask(
                    instance, _backend_label("Cor 1.4 (2a colors)", backend),
                    tasks.corollary14_arboricity,
                    args=(n, a, "ours", backend), kwargs={"profile": profile},
                    seed_group=instance,
                ))
                built.append(BatchTask(
                    instance, _backend_label("Barenboim-Elkin", backend),
                    tasks.corollary14_arboricity,
                    args=(n, a, "barenboim-elkin", backend),
                    kwargs={"profile": profile},
                    seed_group=instance,
                ))
    return built


def _check_corollary14(runner: ExperimentRunner, params: Params) -> list[str]:
    failures = []
    for backend in params["backends"]:
        ours = runner.metric_series(
            _backend_label("Cor 1.4 (2a colors)", backend), "palette"
        )
        baseline = runner.metric_series(
            _backend_label("Barenboim-Elkin", backend), "palette"
        )
        for o, b in zip(ours, baseline):
            if o >= b:
                failures.append(
                    f"palette not strictly smaller ({backend}): "
                    f"ours {o} vs Barenboim-Elkin {b}"
                )
    return failures


register(Scenario(
    name="corollary14-arboricity",
    title="Corollary 1.4 vs Barenboim–Elkin",
    paper_ref="Corollary 1.4",
    description=(
        "2a-list-coloring of graphs with arboricity a >= 2 against "
        "Barenboim–Elkin's floor((2+eps)a)+1 colors — the paper's palette "
        "is strictly smaller on every instance."
    ),
    build_tasks=_build_corollary14,
    defaults={"ns": (120,), "arboricities": (2, 3), "backends": ("dict", "flat")},
    smoke_overrides={"ns": (60,), "arboricities": (2,)},
    reference={
        "palette": "2a colors in O(a^4 log^3 n) rounds",
        "baseline": "floor((2+eps)a)+1 colors in O(a log n) rounds",
    },
    size_param="ns",
    check=_check_corollary14,
))


# ---------------------------------------------------------------------------
# E7 — corollary21-brooks
# ---------------------------------------------------------------------------

def _build_corollary21(params: Params, profile: bool) -> list[BatchTask]:
    built = []
    for degree in params["degrees"]:
        for n in params["ns"]:
            if n * degree % 2:
                n += 1
            instance = f"{degree}-regular n={n}"
            for variant, algorithm in (
                ("brooks", "Cor 2.1 (Delta colors)"),
                ("greedy", "greedy (Delta+1)"),
                ("nice", "Thm 6.1 (nice lists)"),
            ):
                built.append(BatchTask(
                    instance, algorithm, tasks.corollary21_brooks,
                    args=(n, degree, variant), kwargs={"profile": profile},
                ))
    return built


def _check_budgets(runner: ExperimentRunner, params: Params) -> list[str]:
    return _budget_failures(runner)


register(Scenario(
    name="corollary21-brooks",
    title="Corollary 2.1 (Brooks) and Theorem 6.1 (nice lists)",
    paper_ref="Corollary 2.1 / Theorem 6.1",
    description=(
        "Δ-list-coloring of K_{Δ+1}-free graphs of maximum degree Δ >= 3 "
        "(one color better than greedy), plus the nice-list-assignment "
        "generalisation of Theorem 6.1."
    ),
    build_tasks=_build_corollary21,
    defaults={"ns": (60, 120), "degrees": (4, 5)},
    smoke_overrides={"ns": (40,), "degrees": (4,)},
    reference={"colors": "Delta colors in O(Delta^2 log^3 n) rounds"},
    size_param="ns",
    check=_check_budgets,
))


# ---------------------------------------------------------------------------
# E6 — corollary23-planar
# ---------------------------------------------------------------------------

def _build_corollary23(params: Params, profile: bool) -> list[BatchTask]:
    n = params["n"]
    cases = [
        ("triangulation", "cor23", f"planar triangulation n={n}", "Cor 2.3 (6 colors)"),
        ("triangulation", "gps", f"planar triangulation n={n}", "GPS (7 colors)"),
        ("triangle-free", "cor23", f"triangle-free planar n={n}", "Cor 2.3 (4 colors)"),
        ("high-girth", "cor23", f"girth>=6 planar n={n}", "Cor 2.3 (3 colors)"),
    ]
    return [
        BatchTask(
            instance, algorithm, tasks.corollary23_planar,
            args=(family, n, solver), kwargs={"profile": profile},
        )
        for family, solver, instance, algorithm in cases
    ]


register(Scenario(
    name="corollary23-planar",
    title="Corollary 2.3 on planar graphs vs GPS",
    paper_ref="Corollary 2.3",
    description=(
        "6-list-coloring of planar graphs, 4 for triangle-free and 3 for "
        "girth >= 6, all in O(log^3 n) rounds, against the 7 colors of "
        "Goldberg–Plotkin–Shannon in O(log n) rounds."
    ),
    build_tasks=_build_corollary23,
    defaults={"n": 150},
    smoke_overrides={"n": 60},
    reference={
        "planar": "6 colors", "triangle-free": "4 colors",
        "girth>=6": "3 colors", "GPS baseline": "7 colors",
    },
    size_param="n",
    check=_check_budgets,
))


# ---------------------------------------------------------------------------
# E8 — corollary211-genus
# ---------------------------------------------------------------------------

def _build_corollary211(params: Params, profile: bool) -> list[BatchTask]:
    built = []
    for k, length in params["sizes"]:
        instance = f"torus triangulation {k}x{length} (n={k * length})"
        for improved, algorithm in ((False, "H(g)=7 budget"), (True, "H(g)-1=6 budget")):
            built.append(BatchTask(
                instance, algorithm, tasks.corollary211_genus,
                args=(k, length, improved), kwargs={"profile": profile},
                seed_arg=None,
            ))
    return built


register(Scenario(
    name="corollary211-genus",
    title="Corollary 2.11 on toroidal triangulations (Euler genus 2)",
    paper_ref="Corollary 2.11",
    description=(
        "H(g)-list-coloring of graphs embedded on a fixed surface, and "
        "H(g)-1 colors when the Heawood mad bound is an integer and the "
        "graph is not K_{H(g)} — measured on 6-regular toroidal "
        "triangulations (Heawood number 7)."
    ),
    build_tasks=_build_corollary211,
    defaults={"sizes": ((6, 8), (8, 10))},
    smoke_overrides={"sizes": ((6, 6),)},
    reference={"budget": "H(g) colors, H(g)-1 in the improved regime"},
    # sizes are (k, l) torus dimensions, not a flat list — no --n mapping;
    # override with --set sizes="((8, 10),)" instead
    check=_check_budgets,
))


# ---------------------------------------------------------------------------
# E3 — lemma31-happy-fraction
# ---------------------------------------------------------------------------

def _build_lemma31(params: Params, profile: bool) -> list[BatchTask]:
    return [
        BatchTask(
            f"{family} n={n}", f"classification d={d}", tasks.lemma31_happy_fraction,
            args=(family, n, d), kwargs={"profile": profile},
        )
        for family, n, d in params["cases"]
    ]


def _check_lemma31(runner: ExperimentRunner, params: Params) -> list[str]:
    return [
        f"{row.instance}: happy fraction {row.metrics['happy_fraction']} below "
        f"paper bound {row.metrics['paper_bound']}"
        for row in runner.rows
        if row.metrics["happy_fraction"] < row.metrics["paper_bound"]
    ]


register(Scenario(
    name="lemma31-happy-fraction",
    title="Lemma 3.1 — happy fraction and peeling layers",
    paper_ref="Lemma 3.1",
    description=(
        "The happy set of the first peeling layer is a constant fraction "
        "of the graph (|A| >= n/(3d)^3, and n/(12d+1) without poor "
        "vertices), including the adversarial d-regular case."
    ),
    build_tasks=_build_lemma31,
    defaults={"cases": (("forest-union", 200, 4), ("planar", 200, 6), ("regular", 120, 4))},
    smoke_overrides={"cases": (("forest-union", 80, 4), ("planar", 80, 6), ("regular", 60, 4))},
    reference={
        "happy_fraction": ">= 1/(3d)^3, >= 1/(12d+1) without poor vertices",
        "layers": "O(d^3 log n), O(d log n) without poor vertices",
    },
    check=_check_lemma31,
))


# ---------------------------------------------------------------------------
# E4 — lemma32-extension
# ---------------------------------------------------------------------------

def _build_lemma32(params: Params, profile: bool) -> list[BatchTask]:
    return [
        BatchTask(
            f"{family} n={n}", f"extension d={d} r={radius}", tasks.lemma32_extension,
            args=(family, n, d, radius), kwargs={"profile": profile},
        )
        for family, n, d, radius in params["cases"]
    ]


def _check_lemma32(runner: ExperimentRunner, params: Params) -> list[str]:
    return [
        f"{row.instance}: extension charged no rounds"
        for row in runner.rows
        if row.metrics["rounds"] <= 0
    ]


register(Scenario(
    name="lemma32-extension",
    title="Lemma 3.2 — one extension step",
    paper_ref="Lemma 3.2",
    description=(
        "Extending a list-coloring of G - A to G with the ruling forest, "
        "the (d+1) stable partition and layered tree coloring; reports the "
        "roots, tree vertices and recolored sad vertices of the proof."
    ),
    build_tasks=_build_lemma32,
    defaults={"cases": (("planar", 120, 6, 3), ("planar", 240, 6, 4), ("forest-union", 200, 4, 4))},
    smoke_overrides={"cases": (("planar", 80, 6, 3),)},
    reference={"rounds": "O(d log^2 n) per extension step"},
    check=_check_lemma32,
))


# ---------------------------------------------------------------------------
# E9 — lowerbound-fisk
# ---------------------------------------------------------------------------

def _build_fisk(params: Params, profile: bool) -> list[BatchTask]:
    return [
        BatchTask(
            f"n={n}", "Observation 2.4 certificate", tasks.lowerbound_fisk,
            args=(n, rounds), kwargs={"profile": profile}, seed_arg=None,
        )
        for n, rounds in params["cases"]
    ]


def _check_fisk(runner: ExperimentRunner, params: Params) -> list[str]:
    rounds = runner.metric_series("Observation 2.4 certificate", "certified_rounds")
    ns = runner.metric_series("Observation 2.4 certificate", "obstruction_n")
    failures = []
    if rounds != sorted(rounds):
        failures.append(f"certified rounds not monotone: {rounds}")
    if len(rounds) >= 2 and rounds[-1] / ns[-1] < 0.5 * rounds[0] / ns[0]:
        failures.append(
            f"certified bound not linear in n: rounds/n fell from "
            f"{rounds[0] / ns[0]:.3f} to {rounds[-1] / ns[-1]:.3f}"
        )
    return failures


register(Scenario(
    name="lowerbound-fisk",
    title="Theorem 1.5 — 4-coloring planar graphs needs Omega(n) rounds",
    paper_ref="Theorem 1.5",
    description=(
        "Indistinguishability certificate: a locally planar toroidal "
        "triangulation with chromatic number 5 forces any algorithm that "
        "4-colors all planar graphs to spend Omega(n) rounds."
    ),
    build_tasks=_build_fisk,
    defaults={"cases": ((29, 3), (49, 6), (97, 14))},
    smoke_overrides={"cases": ((29, 3),)},
    reference={"certified_rounds": "grows linearly in n (Omega(n))"},
    check=_check_fisk,
))


# ---------------------------------------------------------------------------
# E10 — lowerbound-grids
# ---------------------------------------------------------------------------

def _build_grids(params: Params, profile: bool) -> list[BatchTask]:
    built = [
        BatchTask(
            f"G_5x{2 * length + 1}", "Thm 2.5 certificate", tasks.lowerbound_triangle_free,
            args=(length, rounds), kwargs={"profile": profile}, seed_arg=None,
        )
        for length, rounds in params["tf_cases"]
    ]
    built += [
        BatchTask(
            f"G_{2 * k + 1}x{2 * k + 1}", "Thm 2.6 certificate",
            tasks.lowerbound_bipartite_grid,
            args=(k, rounds), kwargs={"profile": profile}, seed_arg=None,
        )
        for k, rounds in params["bip_cases"]
    ]
    return built


def _check_grids(runner: ExperimentRunner, params: Params) -> list[str]:
    failures = []
    for algorithm in ("Thm 2.5 certificate", "Thm 2.6 certificate"):
        rounds = runner.metric_series(algorithm, "certified_rounds")
        if rounds != sorted(rounds):
            failures.append(f"{algorithm}: certified rounds not monotone: {rounds}")
    return failures


register(Scenario(
    name="lowerbound-grids",
    title="Theorems 2.5/2.6 — 3-coloring lower bounds from Klein-bottle grids",
    paper_ref="Theorems 2.5 and 2.6",
    description=(
        "No o(n)-round algorithm 3-colors every triangle-free planar graph "
        "(G_{5,2l+1}), and no o(sqrt(n))-round algorithm 3-colors every "
        "planar bipartite graph (G_{2k+1,2k+1})."
    ),
    build_tasks=_build_grids,
    defaults={"tf_cases": ((4, 2), (8, 6), (12, 10)), "bip_cases": ((4, 2), (6, 4), (8, 6))},
    smoke_overrides={"tf_cases": ((4, 2),), "bip_cases": ((4, 2),)},
    reference={
        "Thm 2.5": "certified rounds grow ~ n",
        "Thm 2.6": "certified rounds grow ~ sqrt(n)",
    },
    check=_check_grids,
))


# ---------------------------------------------------------------------------
# E11/E12/E13 — primitives
# ---------------------------------------------------------------------------

def _build_primitives(params: Params, profile: bool) -> list[BatchTask]:
    built = [
        BatchTask(
            f"path n={n}", "Cole-Vishkin (3 colors)", tasks.primitives_cole_vishkin,
            args=(n,), kwargs={"profile": profile}, seed_arg=None,
        )
        for n in params["cv_sizes"]
    ]
    built += [
        BatchTask(
            f"{params['dp1_degree']}-regular n={n}", "Linial + reduction (Delta+1)",
            tasks.primitives_delta_plus_one,
            args=(n, params["dp1_degree"]), kwargs={"profile": profile},
        )
        for n in params["dp1_sizes"]
    ]
    built += [
        BatchTask(
            f"grid n={n}", f"ruling forest (alpha={params['ruling_alpha']})",
            tasks.primitives_ruling_forest,
            args=(n, params["ruling_alpha"]), kwargs={"profile": profile}, seed_arg=None,
        )
        for n in params["ruling_sizes"]
    ]
    lb_n, lb_rounds = params["path_lb"]
    built.append(BatchTask(
        f"path n={lb_n}", "2-coloring lower bound (Omega(n))",
        tasks.primitives_path_lower_bound,
        args=(lb_n, lb_rounds), kwargs={"profile": profile}, seed_arg=None,
    ))

    # E13: the CSR speedup A/B shares one fixed seed across all four tasks
    # so the dict-of-sets and FrozenGraph timings see the same instance.
    n, a, radius, seed = (
        params["csr_n"], params["csr_arboricity"], params["csr_radius"], params["csr_seed"],
    )
    instance = f"forest_union n={n} a={a}"
    for backend in ("dict-of-sets", "CSR"):
        key = "dict" if backend == "dict-of-sets" else "csr"
        built.append(BatchTask(
            instance, f"degeneracy ordering ({backend})", tasks.primitives_degeneracy,
            args=(n, a, key), kwargs={"seed": seed, "profile": profile}, seed_arg=None,
        ))
        built.append(BatchTask(
            instance, f"ball collection r={radius} ({backend})", tasks.primitives_balls,
            args=(n, a, radius, key), kwargs={"seed": seed, "profile": profile},
            seed_arg=None,
        ))
    return built


def _finalize_primitives(runner: ExperimentRunner, params: Params) -> None:
    radius = params["csr_radius"]
    instance = f"forest_union n={params['csr_n']} a={params['csr_arboricity']}"
    for primitive in ("degeneracy ordering", f"ball collection r={radius}"):
        baseline = runner.metric_series(f"{primitive} (dict-of-sets)", "compute_seconds")
        csr = runner.metric_series(f"{primitive} (CSR)", "compute_seconds")
        if baseline and csr and csr[0] > 0:
            speedup = round(baseline[0] / csr[0], 2)
            runner.metadata[f"speedup[{primitive}]"] = speedup
            runner.add(instance, f"{primitive} speedup", speedup_x=speedup)


def _check_primitives(runner: ExperimentRunner, params: Params) -> list[str]:
    cv_rounds = runner.metric_series("Cole-Vishkin (3 colors)", "rounds")
    failures = []
    if len(cv_rounds) >= 2 and cv_rounds[-1] > cv_rounds[0] + 6:
        failures.append(
            f"Cole-Vishkin rounds grew from {cv_rounds[0]} to {cv_rounds[-1]} "
            "across the size sweep — not log*-like"
        )
    return failures


register(Scenario(
    name="primitives",
    title="E11/E12 primitives — measured rounds, plus the E13 CSR speedup tracker",
    paper_ref="Section 2 building blocks / Observation 2.4",
    description=(
        "Round counts of the distributed building blocks (Cole–Vishkin, "
        "Linial + reduction, ruling forests, the path 2-coloring lower "
        "bound) and the dict-of-sets vs FrozenGraph CSR timing A/B on "
        "degeneracy peeling and ball collection."
    ),
    build_tasks=_build_primitives,
    defaults={
        "cv_sizes": (50, 500, 5000),
        "dp1_sizes": (60, 240), "dp1_degree": 4,
        "ruling_sizes": (100, 400), "ruling_alpha": 4,
        "path_lb": (200, 20),
        "csr_n": 10_000, "csr_arboricity": 3, "csr_radius": 8, "csr_seed": 42,
    },
    smoke_overrides={
        "cv_sizes": (50, 200),
        "dp1_sizes": (60,),
        "ruling_sizes": (100,),
        "path_lb": (60, 5),
        "csr_n": 800, "csr_radius": 4,
    },
    reference={
        "Cole-Vishkin": "O(log* n) rounds (Linial: Omega(log* n) necessary)",
        "path lower bound": "2-coloring a path needs Omega(n) rounds",
    },
    serial_only=True,
    finalize=_finalize_primitives,
    check=_check_primitives,
))


# ---------------------------------------------------------------------------
# E14 — simulator (flat-array round engine A/B)
# ---------------------------------------------------------------------------

_SIM_ENGINES = ("seed", "flat", "batch")
_SIM_ALGORITHMS = (
    # (algorithm key, topology, row label)
    ("cole-vishkin", "path", "Cole-Vishkin"),
    ("greedy", "ring", "greedy"),
)


#: the Ω(n) lower-bound workload runs on the batched engine only: its round
#: count *is* n, and the per-node engines spend Θ(n) per round polling
#: silent nodes — Θ(n²) total — while the batched program's sparse
#: ``"active"`` exchange does O(frontier) work per round.  Cross-engine
#: parity for the wave protocol is pinned at small n by the test suite.
_SIM_WAVE_LABEL = "2-coloring wave (Omega n)"


def _build_simulator(params: Params, profile: bool) -> list[BatchTask]:
    built = []
    for key, topology, label in _SIM_ALGORITHMS:
        for n in params["sizes"]:
            for engine in params["engines"]:
                built.append(BatchTask(
                    f"{topology} n={n}", f"{label} [{engine}]",
                    tasks.simulator_throughput,
                    args=(n, topology, key, engine),
                    kwargs={"id_seed": params["id_seed"], "profile": profile},
                    seed_arg=None,
                ))
    for n in params["lowerbound_sizes"]:
        built.append(BatchTask(
            f"path n={n}", f"{_SIM_WAVE_LABEL} [batch]",
            tasks.simulator_throughput,
            args=(n, "path", "wave", "batch"),
            kwargs={"id_seed": params["id_seed"], "profile": profile},
            seed_arg=None,
        ))
    return built


def _finalize_simulator(runner: ExperimentRunner, params: Params) -> None:
    sizes = list(params["sizes"])
    for key, topology, label in _SIM_ALGORITHMS:
        baseline = runner.metric_series(f"{label} [seed]", "engine_seconds")
        for engine in params["engines"]:
            if engine == "seed":
                continue
            timed = runner.metric_series(f"{label} [{engine}]", "engine_seconds")
            for n, seed_s, engine_s in zip(sizes, baseline, timed):
                if engine_s > 0:
                    speedup = round(seed_s / engine_s, 2)
                    runner.metadata[f"speedup[{label}][{engine}][n={n}]"] = speedup
                    runner.add(
                        f"{topology} n={n}", f"{label} {engine} speedup",
                        n=n, speedup_x=speedup,
                    )


def _check_simulator(runner: ExperimentRunner, params: Params) -> list[str]:
    failures = []
    # the three engines must agree on the round/message counts — that is
    # the cross-engine parity contract the property tests assert in depth
    for _key, topology, label in _SIM_ALGORITHMS:
        for metric in ("rounds", "messages"):
            series = {
                engine: runner.metric_series(f"{label} [{engine}]", metric)
                for engine in params["engines"]
            }
            baseline = series.get("seed")
            for engine, values in series.items():
                if baseline is not None and values != baseline:
                    failures.append(
                        f"{label}: {metric} diverge between seed {baseline} "
                        f"and {engine} {values}"
                    )
    # the headline speedup: batched Cole-Vishkin vs the seed engine at the
    # largest size (>= 5x at benchmark sizes; a loose sanity floor on the
    # tiny smoke grid where constant overheads dominate)
    largest = max(params["sizes"])
    target = 5.0 if largest >= 50_000 else 1.0
    recorded = runner.metadata.get(f"speedup[Cole-Vishkin][batch][n={largest}]")
    if recorded is not None and recorded < target:
        failures.append(
            f"batched Cole-Vishkin speedup {recorded}x at n={largest} "
            f"below the {target}x target"
        )
    # the Ω(n) signature of the wave rows: exactly n rounds and one
    # broadcast per node (2(n-1) directed messages on a path)
    for row in runner.rows:
        if not row.algorithm.startswith(_SIM_WAVE_LABEL):
            continue
        n = row.metrics.get("n")
        if row.metrics.get("rounds") != n:
            failures.append(
                f"{row.instance}: wave rounds {row.metrics.get('rounds')} != n={n}"
            )
        if n and row.metrics.get("messages") != 2 * (n - 1):
            failures.append(
                f"{row.instance}: wave messages {row.metrics.get('messages')} "
                f"!= 2(n-1)={2 * (n - 1)}"
            )
    return failures


register(Scenario(
    name="simulator",
    title="LOCAL round engine throughput — seed vs flat-array vs batched",
    paper_ref="simulation infrastructure",
    description=(
        "Rounds/sec and messages/sec of the synchronous round engine on "
        "Cole-Vishkin (rooted path) and the greedy baseline (ring, random "
        "identifiers): the dict-routed seed engine against the flat-array "
        "per-node engine and the vectorized batched protocol, with "
        "cross-engine round/message parity checked on every instance.  "
        "The fused batched engine additionally runs the wave 2-coloring "
        "lower-bound workload (Observation 2.4: exactly n rounds on a "
        "rooted path) at n=10^5 — an Omega(n)-round simulation made "
        "tractable by the sparse active-set exchange mode."
    ),
    build_tasks=_build_simulator,
    defaults={
        "sizes": (10_000, 100_000), "lowerbound_sizes": (100_000,),
        "engines": _SIM_ENGINES, "id_seed": 7,
    },
    smoke_overrides={"sizes": (1_500,), "lowerbound_sizes": (1_500,)},
    reference={
        "parity": "identical rounds/messages on all engines",
        "speedup": ">= 5x rounds/sec for batched Cole-Vishkin at n=10^5",
        "lower bound": "wave 2-coloring spends exactly n rounds at n=10^5",
    },
    size_param="sizes",
    serial_only=True,
    finalize=_finalize_simulator,
    check=_check_simulator,
))


# ---------------------------------------------------------------------------
# E15 — coloring (flat palette A/B on the Theorem 1.3 pipeline)
# ---------------------------------------------------------------------------

_COLORING_ALGORITHMS = (
    # (task key, size param, row label)
    ("theorem13", "sizes", "Thm 1.3 pipeline"),
    ("barenboim-elkin", "be_sizes", "Barenboim-Elkin"),
)
_COLORING_BACKENDS = ("dict", "flat")


def _build_coloring(params: Params, profile: bool) -> list[BatchTask]:
    built = []
    d = params["d"]
    for key, size_key, label in _COLORING_ALGORITHMS:
        for n in params[size_key]:
            # one explicit seed per instance (not per task index), so the
            # dict and flat rows of an instance see the same graph and the
            # parity check can compare their colorings bit for bit
            seed = params["instance_seed"] + n
            for backend in params["backends"]:
                built.append(BatchTask(
                    f"{key} n={n} d={d}", f"{label} [{backend}]",
                    tasks.coloring_pipeline,
                    args=(n, d, key, backend),
                    kwargs={"seed": seed, "profile": profile},
                    seed_arg=None,
                ))
    return built


def _finalize_coloring(runner: ExperimentRunner, params: Params) -> None:
    d = params["d"]
    for key, size_key, label in _COLORING_ALGORITHMS:
        baseline = runner.metric_series(f"{label} [dict]", "solve_seconds")
        for backend in params["backends"]:
            if backend == "dict":
                continue
            timed = runner.metric_series(f"{label} [{backend}]", "solve_seconds")
            for n, dict_s, flat_s in zip(params[size_key], baseline, timed):
                if flat_s > 0:
                    speedup = round(dict_s / flat_s, 2)
                    runner.metadata[f"speedup[{label}][n={n}]"] = speedup
                    runner.add(
                        f"{key} n={n} d={d}", f"{label} {backend} speedup",
                        n=n, speedup_x=speedup,
                    )


def _check_coloring(runner: ExperimentRunner, params: Params) -> list[str]:
    failures = []
    # the backends must agree bit for bit: same coloring digest, same
    # charged-round total, same color count, on every parity instance
    for _key, size_key, label in _COLORING_ALGORITHMS:
        for metric in ("coloring_sha", "rounds", "colors"):
            series = {
                backend: runner.metric_series(f"{label} [{backend}]", metric)
                for backend in params["backends"]
            }
            baseline = series.get("dict")
            for backend, values in series.items():
                if baseline is not None and values != baseline:
                    failures.append(
                        f"{label}: {metric} diverge between dict {baseline} "
                        f"and {backend} {values}"
                    )
    # the headline: >= 5x for the Theorem 1.3 pipeline at n >= 10k (no
    # gate on small/smoke grids where constant overheads dominate)
    largest = max(params["sizes"])
    target = 5.0 if largest >= 10_000 else None
    recorded = runner.metadata.get(f"speedup[Thm 1.3 pipeline][n={largest}]")
    if target is not None and recorded is not None and recorded < target:
        failures.append(
            f"flat palette speedup {recorded}x at n={largest} below the "
            f"{target}x target"
        )
    return failures


register(Scenario(
    name="coloring",
    title="Flat palette core — Theorem 1.3 pipeline, dict vs flat backend",
    paper_ref="Theorem 1.3 / Corollary 1.4 (infrastructure)",
    description=(
        "Wall time of the full d-list-coloring pipeline (and the "
        "Barenboim-Elkin baseline) on the per-vertex dict substrate vs "
        "the flat palette substrate (interned color bitmasks, CSR "
        "kernels, batched Linial/color-reduction/slot-selection on the "
        "round engine), with bit-identical colorings and round-ledger "
        "totals asserted on every instance."
    ),
    build_tasks=_build_coloring,
    defaults={
        "sizes": (2_000, 10_000), "be_sizes": (10_000,), "d": 4,
        "backends": _COLORING_BACKENDS, "instance_seed": 1_000,
    },
    smoke_overrides={"sizes": (300,), "be_sizes": (300,)},
    reference={
        "parity": "identical colorings and charged rounds on both backends",
        "speedup": ">= 5x wall time for the Theorem 1.3 pipeline at n >= 10^4",
    },
    size_param="sizes",
    serial_only=True,
    finalize=_finalize_coloring,
    check=_check_coloring,
))


# ---------------------------------------------------------------------------
# E16 — scale (million-node tier: streaming generators + zero-copy fan-out)
# ---------------------------------------------------------------------------

def _build_scale(params: Params, profile: bool) -> list[BatchTask]:
    """Publish each instance once, then emit handle-only tasks.

    Generation and publication happen here in the parent — the tasks carry
    a few-dozen-byte :class:`~repro.analysis.shared.SharedGraphHandle`
    instead of a pickled graph, so worker fan-out is zero-copy.
    ``run_scenario`` releases the published buffers in a ``finally``.
    """
    from math import isqrt

    from repro.analysis import shared
    from repro.corpus import InstanceSpec, default_corpus

    corpus = default_corpus()
    k = params["degeneracy"]
    built = []
    for n in params["sizes"]:
        spec = InstanceSpec.of(
            "stream-degenerate", n=n, degeneracy=k, seed=params["instance_seed"]
        )
        handle = shared.publish(corpus.frozen(spec), npz_path=corpus.npz_path(spec))
        instance = f"stream-degenerate n={n} k={k}"
        built.append(BatchTask(
            instance, "degeneracy peel [shared]",
            tasks.scale_peel, args=(handle,),
            kwargs={"profile": profile}, seed_arg=None,
        ))
        if n <= params["roundtrip_max_n"]:
            built.append(BatchTask(
                instance, "npz round trip",
                tasks.scale_npz_roundtrip, args=(handle,),
                kwargs={"profile": profile}, seed_arg=None,
            ))
        side = isqrt(n)
        torus_spec = InstanceSpec.of("stream-torus", rows=side, cols=side)
        torus_handle = shared.publish(
            corpus.frozen(torus_spec), npz_path=corpus.npz_path(torus_spec)
        )
        built.append(BatchTask(
            f"stream-torus n={side * side}", "batched greedy Delta+1 [shared]",
            tasks.scale_coloring, args=(torus_handle,),
            kwargs={"profile": profile}, seed_arg=None,
        ))
    return built


def _check_scale(runner: ExperimentRunner, params: Params) -> list[str]:
    failures = []
    budget = params["rss_budget_mb"] * 1024 * 1024
    for row in runner.rows:
        if row.metrics.get("digest_ok") is False:
            failures.append(
                f"{row.instance} / {row.algorithm}: content digest diverged "
                "across the zero-copy transport"
            )
        if row.metrics.get("valid") is False:
            failures.append(f"{row.instance} / {row.algorithm}: validity check failed")
        peak = row.metrics.get("peak_rss_bytes")
        if isinstance(peak, int) and peak > budget:
            failures.append(
                f"{row.instance} / {row.algorithm}: peak RSS {peak / 2**20:.0f} MiB "
                f"over the {params['rss_budget_mb']} MiB budget"
            )
    return failures


register(Scenario(
    name="scale",
    title="Million-node tier — streaming instances, shared-memory fan-out",
    paper_ref="asymptotic claims of Thms 1.3/1.6 (infrastructure)",
    description=(
        "Degeneracy peel, npz round trip and batched (Delta+1)-coloring on "
        "streaming-generated instances at n=10^5..10^6: graphs are built "
        "as edge ndarrays (never dict-of-sets), published once by the "
        "parent, and attached zero-copy by pool workers via shared memory "
        "or npz memory-maps.  Every row reports peak_rss_bytes next to "
        "wall time; digests recomputed from attached buffers pin "
        "bit-identical transport."
    ),
    build_tasks=_build_scale,
    defaults={
        "sizes": (100_000, 1_000_000),
        "degeneracy": 3,
        "instance_seed": 1_000,
        "roundtrip_max_n": 100_000,
        "rss_budget_mb": 8_192,
    },
    smoke_overrides={
        "sizes": (10_000,),
        "roundtrip_max_n": 10_000,
        "rss_budget_mb": 4_096,
    },
    reference={
        "transport": "digest-identical graphs across shm/npz/local transports",
        "rss": "per-row peak RSS under the configured budget",
    },
    size_param="sizes",
    check=_check_scale,
))


# ---------------------------------------------------------------------------
# E17 — serve (coloring-as-a-service under synthetic load)
# ---------------------------------------------------------------------------

def _build_serve(params: Params, profile: bool) -> list[BatchTask]:
    """One row per workload; each task boots its own in-process service.

    The rows run serially in the parent (``serial_only``): the latency
    percentiles are the measurement, so they must not compete with sibling
    tasks for cores — and each task spins up its own event loop anyway.
    """
    built = []
    for workload in params["workloads"]:
        built.append(BatchTask(
            f"{workload} clients={params['clients']} requests={params['requests']}",
            "serve [inline]",
            tasks.serve_load,
            args=(
                workload, params["clients"], params["requests"],
                params["huge_n"], params["cache_max_bytes"],
                params["batch_window_ms"],
            ),
            kwargs={"profile": profile},
            seed_group=workload,
        ))
    return built


def _check_serve(runner: ExperimentRunner, params: Params) -> list[str]:
    failures = []
    for row in runner.rows:
        m = row.metrics
        if m.get("errors"):
            failures.append(
                f"{row.instance}: {m['errors']} request error(s), e.g. "
                f"{m.get('error_examples')!r}"
            )
        if not m.get("valid"):
            failures.append(
                f"{row.instance}: {m.get('invalid', '?')} response(s) failed "
                "the proper-coloring/palette-budget oracles"
            )
        if not m.get("digest_consistent"):
            failures.append(
                f"{row.instance}: {m.get('digest_mismatches')} coloring_digest "
                "mismatch(es) across cache hit/miss paths"
            )
        if m.get("requests", 0) > 2 * len(_SMALL_SERVE_KEYS) and (
            m.get("cache_hit_rate", 0.0) <= 0.0
        ):
            failures.append(f"{row.instance}: cache hit rate is zero under a hot workload")
    return failures


#: distinct (instance, algorithm) keys the small-query stream can emit —
#: above ~2x this many requests a hot workload must see cache hits
_SMALL_SERVE_KEYS = [
    (name, algo)
    for name in range(5)
    for algo in ("greedy", "delta-plus-one", "theorem13")
]


register(Scenario(
    name="serve",
    title="Coloring-as-a-service — latency/throughput under mixed load",
    paper_ref="ROADMAP north star (serving infrastructure)",
    description=(
        "The asyncio coloring service under synthetic traffic: N concurrent "
        "clients replay mixed workloads (many small planar/sparse queries "
        "with hot-key skew, a few huge streaming-sparse requests through "
        "the upload path, and a cold/warm replay pass) against an "
        "in-process server with the digest-keyed result cache and the "
        "micro-batching layer enabled.  Rows record p50/p95/p99 latency, "
        "throughput, cache hit rate and coalescing counts; every response "
        "is oracle-verified server-side and the check gate requires zero "
        "errors, zero invalid colorings and digest-consistent repeats."
    ),
    build_tasks=_build_serve,
    defaults={
        "workloads": ("small-hot", "mixed", "replay"),
        "clients": 8,
        "requests": 240,
        "huge_n": 50_000,
        "cache_max_bytes": 64 * 1024 * 1024,
        "batch_window_ms": 2.0,
    },
    smoke_overrides={"clients": 4, "requests": 48, "huge_n": 2_000},
    reference={
        "legality": "every served coloring passes the PR-5 oracles",
        "consistency": "hit and miss paths return bit-identical coloring_digests",
        "cache": "hot workloads achieve a nonzero cache hit rate",
    },
    serial_only=True,
    check=_check_serve,
))


# ---------------------------------------------------------------------------
# E18 — dynamic (fault injection + self-stabilizing recovery)
# ---------------------------------------------------------------------------

def _build_dynamic(params: Params, profile: bool) -> list[BatchTask]:
    built = []
    n = params["n"]
    for family in params["families"]:
        for faults in params["faults"]:
            instance = f"{family} n={n} faults={faults}"
            for protocol in params["protocols"]:
                # seed_group = instance: every protocol/backend row of an
                # instance perturbs the same graph with the same plan, so
                # the parity checks compare like with like
                for backend in params["backends"]:
                    built.append(BatchTask(
                        instance, f"{protocol} [{backend}]",
                        tasks.dynamic_recovery,
                        args=(family, n, faults, protocol, backend),
                        kwargs={
                            "events": params["events"],
                            "window": params["window"],
                            "max_rounds": params["max_rounds"],
                            "profile": profile,
                        },
                        seed_group=instance,
                    ))
    return built


#: per-row metrics that must be bit-identical across the backend axis
_DYNAMIC_PARITY = (
    "coloring_sha", "log_sha", "rounds", "messages",
    "rounds_to_recovery", "containment_radius",
)


def _check_dynamic(runner: ExperimentRunner, params: Params) -> list[str]:
    failures = []
    groups: dict[tuple[str, str], list] = {}
    for row in runner.rows:
        m = row.metrics
        if not m.get("recovered") or m.get("rounds_to_recovery", -1) < 0:
            failures.append(f"{row.instance} / {row.algorithm}: never recovered")
        if not m.get("legal"):
            failures.append(
                f"{row.instance} / {row.algorithm}: final coloring illegal"
            )
        if not m.get("quiescent"):
            failures.append(
                f"{row.instance} / {row.algorithm}: did not reach quiescence"
            )
        if m.get("containment_violations"):
            failures.append(
                f"{row.instance} / {row.algorithm}: "
                f"{m['containment_violations']} recolor(s) escaped the "
                "perturbation's causal cone"
            )
        base = row.algorithm.split(" [", 1)[0]
        groups.setdefault((row.instance, base), []).append(row)
    # the dynamic parity contract: dict and flat backends replay the same
    # plan to the same trace, fingerprint for fingerprint
    for (instance, base), members in groups.items():
        if len(members) < 2:
            continue
        for metric in _DYNAMIC_PARITY:
            values = {r.algorithm: r.metrics.get(metric) for r in members}
            if len(set(map(repr, values.values()))) > 1:
                failures.append(
                    f"{instance} / {base}: {metric} diverges across "
                    f"backends ({values})"
                )
    return failures


def _finalize_dynamic(runner: ExperimentRunner, params: Params) -> None:
    recoveries = [
        row.metrics["rounds_to_recovery"]
        for row in runner.rows
        if row.metrics.get("rounds_to_recovery", -1) >= 0
    ]
    if recoveries:
        runner.metadata["rounds_to_recovery"] = {
            "max": max(recoveries),
            "mean": round(sum(recoveries) / len(recoveries), 2),
        }
    radii = [
        row.metrics["containment_radius"]
        for row in runner.rows
        if "containment_radius" in row.metrics
    ]
    if radii:
        runner.metadata["containment_radius_max"] = max(radii)


register(Scenario(
    name="dynamic",
    title="E18 dynamic graphs — self-stabilizing recovery under injected faults",
    paper_ref="ROADMAP north star (dynamic graphs + fault tolerance)",
    description=(
        "Fault-injection sweep over the Lemma 3.1 graph families: a legally "
        "colored graph is perturbed by a seeded FaultPlan (color "
        "corruptions, node resets, edge churn, lossy/duplicated messages) "
        "while a self-stabilizing protocol (min+1 recoloring, or the "
        "stabilizing greedy Delta+1) runs until quiescence on the dict or "
        "flat PerturbableNetwork backend.  Every trace is replay-audited by "
        "the RecoveryOracle and the containment auditor before its row is "
        "written; rows carry rounds-to-recovery, recolored-vertex counts "
        "and the containment radius, and the two backends must agree "
        "fingerprint-for-fingerprint on every instance."
    ),
    build_tasks=_build_dynamic,
    defaults={
        "families": ("planar", "regular", "forest-union"),
        "n": 90,
        "faults": ("corrupt", "reset", "edge-churn", "message"),
        "protocols": ("min-plus-one", "stabilizing-greedy"),
        "backends": ("dict", "flat"),
        "events": 8,
        "window": 3,
        "max_rounds": 400,
    },
    smoke_overrides={
        "n": 36,
        "faults": ("corrupt", "edge-churn"),
        "protocols": ("min-plus-one",),
        "events": 3,
        "window": 2,
        "max_rounds": 200,
    },
    reference={
        "recovery": "every run re-establishes a legal coloring and quiesces",
        "containment": "recolors stay inside the perturbations' causal cones",
        "parity": "identical traces on the dict and flat backends",
    },
    size_param="n",
    finalize=_finalize_dynamic,
    check=_check_dynamic,
))


# ---------------------------------------------------------------------------
# E19 — randomized (Moser–Tardos lists + O(log n) randomized Δ+1)
# ---------------------------------------------------------------------------

def _build_randomized(params: Params, profile: bool) -> list[BatchTask]:
    built = []
    for family in params["families"]:
        for n in params["sizes"]:
            instance = f"{family} n={n}"
            # seed_group = instance: both engines (and the deterministic
            # comparators) draw the same derived seed, so the randomized
            # rows must replay the identical run and the deterministic
            # rows color the identical graph
            for engine in params["engines"]:
                built.append(BatchTask(
                    instance, f"randomized Delta+1 [{engine}]",
                    tasks.randomized_delta_plus_one,
                    args=(family, n, engine),
                    kwargs={"profile": profile},
                    seed_group=instance,
                ))
            for deterministic in params["deterministic"]:
                built.append(BatchTask(
                    instance, f"{deterministic} Delta+1 [batch]",
                    tasks.deterministic_delta_plus_one,
                    args=(family, n, deterministic),
                    kwargs={"profile": profile},
                    seed_group=instance,
                ))
        for n in params["mt_sizes"]:
            instance = f"{family} lists n={n}"
            for backend in params["backends"]:
                built.append(BatchTask(
                    instance, f"Moser-Tardos lists [{backend}]",
                    tasks.moser_tardos_lists,
                    args=(family, n, backend),
                    kwargs={"profile": profile},
                    seed_group=instance,
                ))
    return built


#: per-row metrics that must be bit-identical across the engine/backend axis
_RANDOMIZED_PARITY = ("coloring_sha", "rounds", "messages", "colors", "log_sha")


def _check_randomized(runner: ExperimentRunner, params: Params) -> list[str]:
    failures = []
    groups: dict[tuple[str, str], list] = {}
    for row in runner.rows:
        m = row.metrics
        if "frontier_monotone" in m and not m["frontier_monotone"]:
            failures.append(
                f"{row.instance} / {row.algorithm}: uncolored frontier grew"
            )
        if m.get("colors", 0) > m.get("budget", float("inf")):
            failures.append(
                f"{row.instance} / {row.algorithm}: palette budget exceeded"
            )
        base = row.algorithm.split(" [", 1)[0]
        groups.setdefault((row.instance, base), []).append(row)
    # the randomized parity contract: the same (seed, instance) replays
    # bit-for-bit on every engine — colorings, rounds, messages, logs
    for (instance, base), members in groups.items():
        if len(members) < 2:
            continue
        for metric in _RANDOMIZED_PARITY:
            values = {
                r.algorithm: r.metrics.get(metric)
                for r in members
                if metric in r.metrics
            }
            if len(set(map(repr, values.values()))) > 1:
                failures.append(
                    f"{instance} / {base}: {metric} diverges across "
                    f"engines ({values})"
                )
    return failures


def _finalize_randomized(runner: ExperimentRunner, params: Params) -> None:
    randomized_rounds = [
        row.metrics["rounds"]
        for row in runner.rows
        if row.algorithm.startswith("randomized") and "rounds" in row.metrics
    ]
    if randomized_rounds:
        runner.metadata["randomized_rounds_max"] = max(randomized_rounds)
    resamples = [
        row.metrics["resamples"]
        for row in runner.rows
        if "resamples" in row.metrics
    ]
    if resamples:
        runner.metadata["moser_tardos_resamples_max"] = max(resamples)
    runner.metadata["rng"] = "philox4x64 keyed by (seed, node_id, round)"


register(Scenario(
    name="randomized",
    title="E19 randomized track — Moser-Tardos lists + O(log n) randomized Delta+1",
    paper_ref=(
        "PAPERS.md: A local lemma via entropy compression "
        "(Alves-Procacci-Sanchis); randomized counterpart to Theorem 1.3"
    ),
    description=(
        "The randomized counterpart to the deterministic pipeline, on the "
        "fused active-mode engine: the trial-color + conflict-retreat "
        "randomized (Delta+1)-coloring (batch and per-node rows) against "
        "the deterministic greedy and Linial baselines on the same "
        "generated graphs, plus the Moser-Tardos entropy-compression "
        "resampler for list coloring (flat and dict backends).  All "
        "randomness is counter-based (Philox keyed by seed, node id and "
        "round), so every engine must replay the identical run: the "
        "variant-parity and scenario checks compare colorings, rounds, "
        "messages and resample-log digests fingerprint-for-fingerprint, "
        "the RandomizedRoundsOracle holds round totals inside the O(log n) "
        "concentration envelope, and every Moser-Tardos row replays its "
        "record log through the ResampleLogOracle before it is written."
    ),
    build_tasks=_build_randomized,
    defaults={
        "families": ("regular", "forest-union", "planar"),
        "sizes": (400, 1600),
        "mt_sizes": (300, 900),
        "engines": ("batch", "flat"),
        "backends": ("flat", "dict"),
        "deterministic": ("greedy", "linial"),
    },
    smoke_overrides={
        "families": ("regular",),
        "sizes": (120,),
        "mt_sizes": (90,),
        "deterministic": ("greedy",),
    },
    reference={
        "rounds": "randomized Delta+1 finishes in O(log n) rounds whp",
        "witness": "every resample log replays bit-for-bit from its seed",
        "parity": "identical runs on batch/flat engines and flat/dict backends",
    },
    size_param="sizes",
    finalize=_finalize_randomized,
    check=_check_randomized,
))


# ---------------------------------------------------------------------------
# Campaigns: named scenario sets for `python -m repro campaign`
# ---------------------------------------------------------------------------

from repro.scenarios.registry import scenario_names  # noqa: E402

CAMPAIGNS: dict[str, list[str]] = {
    "all": scenario_names(),
    "upperbounds": [
        "theorem13-colors", "theorem13-rounds", "corollary14-arboricity",
        "corollary21-brooks", "corollary23-planar", "corollary211-genus",
        "lemma31-happy-fraction", "lemma32-extension",
    ],
    "lowerbounds": ["lowerbound-fisk", "lowerbound-grids"],
    "perf": ["primitives", "simulator", "coloring"],
    "robustness": ["dynamic"],
}
