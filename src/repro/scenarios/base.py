"""Scenario machinery: declarative experiments executed by the batch engine.

A :class:`Scenario` is the declarative form of one paper experiment: which
graphs to generate (the parameter grid), which algorithms to run on them,
which quantities to measure, and which paper statement the numbers are
checked against.  Scenarios do not run anything themselves — they *build*
:class:`~repro.analysis.runner.BatchTask` lists, and :func:`run_scenario`
hands those to :meth:`ExperimentRunner.run_batch`, which fans them out over
a process pool with deterministic per-task seeding and exports a
schema-versioned ``BENCH_<scenario>.json`` artifact.

The registry of concrete scenarios lives in :mod:`repro.scenarios.catalog`;
the ``python -m repro`` CLI (:mod:`repro.cli`) is a thin shell around
:func:`run_scenario` / :func:`run_campaign`.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.analysis import BatchTask, ExperimentRunner

__all__ = [
    "PROFILE_STAGES",
    "Scenario",
    "ScenarioError",
    "ScenarioCheckError",
    "ScenarioRun",
    "CampaignRun",
    "StageProfile",
    "run_scenario",
    "run_campaign",
]

#: The canonical pipeline stages reported by ``--profile``.
PROFILE_STAGES = ("generate", "freeze", "solve", "verify")


class ScenarioError(Exception):
    """A scenario could not be resolved or executed."""


class ScenarioCheckError(ScenarioError):
    """A scenario ran, but its paper-reference checks failed."""

    def __init__(self, name: str, failures: Sequence[str]):
        self.failures = list(failures)
        super().__init__(
            f"scenario {name!r} failed {len(self.failures)} check(s):\n  "
            + "\n  ".join(self.failures)
        )


class StageProfile:
    """Per-stage wall-time accounting for ``--profile`` runs.

    Tasks wrap their pipeline stages in ``with prof("generate"): ...`` etc.
    and merge ``prof.metrics()`` into their metric mapping.  All four
    canonical stages are always present in the output (0.0 when a task has
    no such stage), so artifacts stay directly comparable across scenarios.
    When profiling is disabled, :meth:`metrics` is empty and the timing
    overhead is two clock reads per stage.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.seconds: dict[str, float] = dict.fromkeys(PROFILE_STAGES, 0.0)

    @contextmanager
    def __call__(self, stage: str):
        if stage not in self.seconds:
            raise ValueError(f"unknown profile stage {stage!r}; use one of {PROFILE_STAGES}")
        start = time.perf_counter()
        try:
            yield
        finally:
            self.seconds[stage] += time.perf_counter() - start

    def metrics(self) -> dict[str, Any]:
        if not self.enabled:
            return {}
        return {"stage_seconds": {k: round(v, 6) for k, v in self.seconds.items()}}


@dataclass(frozen=True)
class Scenario:
    """One paper experiment, declared: grid, tasks, references, checks.

    ``build_tasks(params, profile)`` must return :class:`BatchTask`\\ s whose
    ``fn`` is a module-level callable (process-pool workers pickle it by
    qualified name) — the workers live in :mod:`repro.scenarios.tasks`.
    ``reference`` records the paper values the measured quantities are read
    against (documented per scenario in ``docs/experiments.md``); ``check``
    turns the load-bearing ones into assertions on the finished runner.
    """

    name: str
    title: str
    paper_ref: str
    description: str
    build_tasks: Callable[[Mapping[str, Any], bool], list[BatchTask]]
    defaults: Mapping[str, Any] = field(default_factory=dict)
    smoke_overrides: Mapping[str, Any] = field(default_factory=dict)
    reference: Mapping[str, Any] = field(default_factory=dict)
    #: Name of the parameter the CLI's ``--n`` maps onto (None: no size knob).
    size_param: str | None = None
    #: Scenarios that time code inside tasks run serially so concurrent
    #: workers cannot skew the measurements.
    serial_only: bool = False
    #: Post-run hook computing derived rows/metadata (fits, speedups).
    finalize: Callable[[ExperimentRunner, Mapping[str, Any]], None] | None = None
    #: Post-run hook returning a list of failure strings (empty = pass).
    check: Callable[[ExperimentRunner, Mapping[str, Any]], list[str]] | None = None

    def params_for(
        self, *, smoke: bool = False, overrides: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        """Resolve the effective parameter grid (defaults < smoke < overrides)."""
        params = dict(self.defaults)
        if smoke:
            params.update(self.smoke_overrides)
        for key, value in (overrides or {}).items():
            if key not in params:
                raise ScenarioError(
                    f"scenario {self.name!r} has no parameter {key!r}; "
                    f"known parameters: {sorted(params)}"
                )
            params[key] = value
        return params

    def artifact_path(self, out: str | Path | None = None) -> Path:
        """Where :func:`run_scenario` writes the artifact (``BENCH_<name>.json``).

        ``out`` is a directory unless it names a ``.json`` file — so
        ``--out artifacts/`` works whether or not the directory exists yet.
        """
        if out is None:
            return Path(f"BENCH_{self.name}.json")
        path = Path(out)
        if path.suffix == ".json" and not path.is_dir():
            return path
        return path / f"BENCH_{self.name}.json"


@dataclass
class ScenarioRun:
    """The result of :func:`run_scenario`: the runner plus run bookkeeping."""

    scenario: Scenario
    params: dict[str, Any]
    runner: ExperimentRunner
    path: Path | None
    failures: list[str]
    seconds: float

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class CampaignRun:
    """The result of :func:`run_campaign`: one :class:`ScenarioRun` per member."""

    name: str
    runs: list[ScenarioRun]
    path: Path | None

    @property
    def ok(self) -> bool:
        return all(run.ok for run in self.runs)


def _resolve(scenario: "Scenario | str") -> Scenario:
    if isinstance(scenario, Scenario):
        return scenario
    from repro.scenarios.registry import get_scenario

    return get_scenario(scenario)


def _merge_repeats(rows, repeat_rows) -> None:
    """Fold repeated measurements into ``rows``: median-of-K wall times.

    Deterministic seeding makes the non-timing metrics identical across
    repeats, so only values that actually vary (wall times, the
    ``*_seconds`` / throughput metrics of timing scenarios) are replaced by
    their median — everything else keeps its first-run value and type.
    """
    import statistics

    def _median(values):
        if any(
            isinstance(v, bool) or not isinstance(v, (int, float))
            for v in values
        ):
            return None
        return statistics.median(values) if len(set(values)) > 1 else None

    for index, row in enumerate(rows):
        series = [row] + [extra[index] for extra in repeat_rows]
        row.seconds = statistics.median(r.seconds for r in series)
        for key, value in row.metrics.items():
            if key == "stage_seconds" and isinstance(value, dict):
                for stage in value:
                    median = _median(
                        [r.metrics.get(key, {}).get(stage) for r in series]
                    )
                    if median is not None:
                        value[stage] = median
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            median = _median([r.metrics.get(key) for r in series])
            if median is not None:
                row.metrics[key] = median


def run_scenario(
    scenario: "Scenario | str",
    *,
    smoke: bool = False,
    overrides: Mapping[str, Any] | None = None,
    seed: int = 0,
    workers: int | None = None,
    profile: bool = False,
    export: bool = True,
    out: str | Path | None = None,
    strict: bool = True,
    repeat: int = 1,
    verify: bool = False,
) -> ScenarioRun:
    """Execute one scenario through :meth:`ExperimentRunner.run_batch`.

    ``workers=1`` forces inline execution (no process pool) — the mode the
    test suite and ``--smoke`` CI job use; ``workers=None`` lets the pool
    pick one worker per core.  ``seed`` is the batch's ``base_seed``: every
    task receives a deterministic seed derived from it and the task index,
    so a scenario's artifact is reproducible bit-for-bit at any worker
    count.  With ``strict`` (the default) failing paper-reference checks
    raise :class:`ScenarioCheckError`; the failures are always recorded on
    the returned :class:`ScenarioRun` and in the artifact metadata.

    ``verify=True`` additionally replays the conformance oracle suite of
    :mod:`repro.verify.artifact` on the finished rows (schema, paper
    budgets, cross-variant parity, round-complexity envelopes — see
    ``docs/verification.md``); oracle failures are recorded under
    ``metadata.verify`` in the artifact and count as check failures.

    ``repeat=K`` runs the whole batch K times (same derived seeds) and
    reports the median wall time per row — both ``seconds`` and any
    numeric timing metrics that vary across repeats — so BENCH artifacts
    are stable enough to diff with ``tools/bench_diff.py``.  ``finalize``
    and ``check`` see the medianized rows.
    """
    scenario = _resolve(scenario)
    if repeat < 1:
        raise ScenarioError(f"repeat must be >= 1, got {repeat}")
    params = scenario.params_for(smoke=smoke, overrides=overrides)
    try:
        return _run_resolved(
            scenario,
            params,
            smoke=smoke,
            seed=seed,
            workers=workers,
            profile=profile,
            export=export,
            out=out,
            strict=strict,
            repeat=repeat,
            verify=verify,
        )
    finally:
        # graphs published for zero-copy fan-out (the scale scenario) must
        # not outlive the run, even when the pool breaks mid-batch
        from repro.analysis import shared

        shared.release_all()


def _run_resolved(
    scenario: Scenario,
    params: dict[str, Any],
    *,
    smoke: bool,
    seed: int,
    workers: int | None,
    profile: bool,
    export: bool,
    out: str | Path | None,
    strict: bool,
    repeat: int,
    verify: bool,
) -> ScenarioRun:
    tasks = scenario.build_tasks(params, profile)
    if not tasks:
        raise ScenarioError(f"scenario {scenario.name!r} built an empty task list")

    runner = ExperimentRunner(
        scenario.name,
        metadata={
            "scenario": {
                "name": scenario.name,
                "title": scenario.title,
                "paper_ref": scenario.paper_ref,
                "smoke": smoke,
                "profile": profile,
                "seed": seed,
                "workers": workers,
                "serial": scenario.serial_only or workers == 1,
                "repeat": repeat,
            },
            "params": params,
            "reference": dict(scenario.reference),
        },
    )
    parallel = not scenario.serial_only and workers != 1
    start = time.perf_counter()
    rows = runner.run_batch(tasks, max_workers=workers, base_seed=seed, parallel=parallel)
    repeat_rows = []
    for _ in range(repeat - 1):
        again = ExperimentRunner(scenario.name)
        repeat_rows.append(
            again.run_batch(
                scenario.build_tasks(params, profile),
                max_workers=workers, base_seed=seed, parallel=parallel,
            )
        )
    if repeat_rows:
        _merge_repeats(rows, repeat_rows)
    elapsed = time.perf_counter() - start
    from repro.analysis.runner import _peak_rss_bytes

    parent_peak = _peak_rss_bytes()
    if parent_peak is not None:
        # the zero-copy fan-out claim: this stays flat as --workers grows
        runner.metadata["parent_peak_rss_bytes"] = parent_peak

    if scenario.finalize is not None:
        scenario.finalize(runner, params)
    failures = list(scenario.check(runner, params)) if scenario.check is not None else []
    if verify:
        from repro.verify.artifact import artifact_failures

        oracle_failures = artifact_failures(
            runner.to_json_dict(), expected_name=scenario.name
        )
        runner.metadata["verify"] = {
            "enabled": True,
            "failures": oracle_failures,
        }
        failures += [f"verify: {failure}" for failure in oracle_failures]
    runner.metadata["check_failures"] = failures

    path: Path | None = None
    if export:
        from repro.scenarios.schema import assert_valid_artifact

        artifact = runner.to_json_dict()
        assert_valid_artifact(artifact, expected_name=scenario.name, profile=profile)
        path = scenario.artifact_path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        runner.export_json(path)

    run = ScenarioRun(
        scenario=scenario,
        params=params,
        runner=runner,
        path=path,
        failures=failures,
        seconds=elapsed,
    )
    if strict and failures:
        raise ScenarioCheckError(scenario.name, failures)
    return run


def run_campaign(
    names: Sequence[str],
    *,
    campaign: str = "campaign",
    smoke: bool = False,
    seed: int = 0,
    workers: int | None = None,
    profile: bool = False,
    out: str | Path | None = None,
    strict: bool = True,
    progress: Callable[[str], None] | None = None,
    verify: bool = False,
) -> CampaignRun:
    """Run a named set of scenarios and merge their artifacts.

    Each member scenario writes its own ``BENCH_<name>.json`` into ``out``
    (default: the current directory), and the campaign additionally writes a
    merged ``BENCH_campaign_<campaign>.json`` holding every member artifact
    plus a summary — one file that captures the whole run.
    """
    import json

    out_dir = Path(out) if out is not None else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)
    runs: list[ScenarioRun] = []
    for name in names:
        if progress is not None:
            progress(name)
        runs.append(
            run_scenario(
                name,
                smoke=smoke,
                seed=seed,
                workers=workers,
                profile=profile,
                out=out_dir,
                strict=strict,
                verify=verify,
            )
        )

    merged = {
        "schema_version": 1,
        "campaign": campaign,
        "smoke": smoke,
        "seed": seed,
        "summary": [
            {
                "scenario": run.scenario.name,
                "paper_ref": run.scenario.paper_ref,
                "rows": len(run.runner.rows),
                "seconds": round(run.seconds, 3),
                "check_failures": run.failures,
                "artifact": run.path.name if run.path else None,
            }
            for run in runs
        ],
        "scenarios": {run.scenario.name: run.runner.to_json_dict() for run in runs},
    }
    path = out_dir / f"BENCH_campaign_{campaign}.json"
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    return CampaignRun(name=campaign, runs=runs, path=path)
