"""Validation of the ``BENCH_<scenario>.json`` artifact schema (version 1).

The artifact is what downstream tooling (CI, perf-trajectory diffs, the
campaign merger) consumes, so its shape is checked *before* it is written:
:func:`validate_artifact` returns a list of problems, and
:func:`assert_valid_artifact` raises :class:`ArtifactSchemaError` on the
first invalid artifact.  Version 1 is the shape produced by
:meth:`ExperimentRunner.to_json_dict` plus the scenario metadata block that
:func:`~repro.scenarios.base.run_scenario` attaches.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.runner import JSON_SCHEMA_MINOR, JSON_SCHEMA_VERSION
from repro.scenarios.base import PROFILE_STAGES

__all__ = ["ArtifactSchemaError", "validate_artifact", "assert_valid_artifact"]


class ArtifactSchemaError(Exception):
    """A BENCH artifact does not conform to the schema."""


def validate_artifact(
    artifact: Any,
    *,
    expected_name: str | None = None,
    profile: bool | None = None,
) -> list[str]:
    """Return every way ``artifact`` deviates from schema version 1.

    ``expected_name`` additionally pins the artifact (and its scenario
    metadata) to one scenario; ``profile=True`` requires per-stage wall
    times (the ``--profile`` contract) on at least one row.
    """
    problems: list[str] = []
    if not isinstance(artifact, dict):
        return [f"artifact is {type(artifact).__name__}, expected dict"]

    version = artifact.get("schema_version")
    if not isinstance(version, int) or version < 1:
        problems.append(f"schema_version {version!r} is not a positive int")
    elif version > JSON_SCHEMA_VERSION:
        problems.append(f"schema_version {version} is newer than supported {JSON_SCHEMA_VERSION}")

    name = artifact.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"name {name!r} is not a non-empty string")
    elif expected_name is not None and name != expected_name:
        problems.append(f"name {name!r} != expected {expected_name!r}")

    if not isinstance(artifact.get("generated_at"), (int, float)):
        problems.append("generated_at is not a number")

    # minor-version fields are optional (old artifacts predate them) but
    # must be well-formed when present
    minor = artifact.get("schema_minor")
    if minor is not None:
        if not isinstance(minor, int) or minor < 0:
            problems.append(f"schema_minor {minor!r} is not a non-negative int")
        elif minor > JSON_SCHEMA_MINOR:
            problems.append(
                f"schema_minor {minor} is newer than supported {JSON_SCHEMA_MINOR}"
            )
    iso = artifact.get("generated_at_iso")
    if iso is not None:
        import datetime

        try:
            datetime.datetime.fromisoformat(str(iso))
        except ValueError:
            problems.append(f"generated_at_iso {iso!r} is not ISO-8601")

    metadata = artifact.get("metadata")
    if not isinstance(metadata, dict):
        problems.append("metadata is not a dict")
    else:
        scenario_meta = metadata.get("scenario")
        if not isinstance(scenario_meta, dict):
            problems.append("metadata.scenario missing (artifact not produced by run_scenario?)")
        else:
            for key in ("name", "paper_ref"):
                if not isinstance(scenario_meta.get(key), str):
                    problems.append(f"metadata.scenario.{key} is not a string")
            if expected_name is not None and scenario_meta.get("name") != expected_name:
                problems.append(
                    f"metadata.scenario.name {scenario_meta.get('name')!r} "
                    f"!= expected {expected_name!r}"
                )

    rows = artifact.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append("rows is not a non-empty list")
        rows = []
    profiled_rows = 0
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            problems.append(f"rows[{i}] is not a dict")
            continue
        for key, kind in (("instance", str), ("algorithm", str), ("metrics", dict)):
            if not isinstance(row.get(key), kind):
                problems.append(f"rows[{i}].{key} is not a {kind.__name__}")
        if not isinstance(row.get("seconds"), (int, float)):
            problems.append(f"rows[{i}].seconds is not a number")
        stages = row.get("metrics", {}).get("stage_seconds") if isinstance(row.get("metrics"), dict) else None
        if stages is not None:
            if not isinstance(stages, dict) or set(stages) != set(PROFILE_STAGES):
                problems.append(
                    f"rows[{i}].metrics.stage_seconds keys {sorted(stages) if isinstance(stages, dict) else stages!r} "
                    f"!= {sorted(PROFILE_STAGES)}"
                )
            else:
                profiled_rows += 1
    if profile and rows and not profiled_rows:
        problems.append("profile run produced no row with stage_seconds")
    return problems


def assert_valid_artifact(
    artifact: Any,
    *,
    expected_name: str | None = None,
    profile: bool | None = None,
) -> None:
    """Raise :class:`ArtifactSchemaError` listing every schema violation."""
    problems = validate_artifact(artifact, expected_name=expected_name, profile=profile)
    if problems:
        raise ArtifactSchemaError(
            "invalid BENCH artifact:\n  " + "\n  ".join(problems)
        )
