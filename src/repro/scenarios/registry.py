"""The scenario registry: name -> :class:`~repro.scenarios.base.Scenario`.

Scenarios are registered at import time by :mod:`repro.scenarios.catalog`
(one :func:`register` call per paper experiment).  Names are unique,
kebab-case, and double as the artifact basename: scenario ``foo`` exports
``BENCH_foo.json``.
"""

from __future__ import annotations

from repro.scenarios.base import Scenario, ScenarioError

__all__ = ["register", "get_scenario", "scenario_names", "all_scenarios"]

_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add ``scenario`` to the registry; duplicate names are a bug."""
    if scenario.name in _REGISTRY:
        raise ScenarioError(f"duplicate scenario name {scenario.name!r}")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name, with a helpful error on typos."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none registered>"
        raise ScenarioError(f"unknown scenario {name!r}; known scenarios: {known}") from None


def scenario_names() -> list[str]:
    """All registered names, in registration (paper) order."""
    return list(_REGISTRY)


def all_scenarios() -> list[Scenario]:
    """All registered scenarios, in registration (paper) order."""
    return list(_REGISTRY.values())
