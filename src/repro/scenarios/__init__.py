"""Declarative scenario registry driving the batched experiment engine.

Each paper experiment is a :class:`~repro.scenarios.base.Scenario`: a
parameter grid, a task builder producing picklable
:class:`~repro.analysis.runner.BatchTask` bodies, the paper's reference
values, and post-run checks.  :func:`~repro.scenarios.base.run_scenario`
executes one through :meth:`ExperimentRunner.run_batch` (process-pool
fan-out, deterministic seeding) and exports a schema-versioned
``BENCH_<scenario>.json``; :func:`~repro.scenarios.base.run_campaign` runs
a named set and merges the artifacts.  ``python -m repro`` is the CLI.

Importing this package registers the full catalog
(:mod:`repro.scenarios.catalog`).
"""

from repro.scenarios.base import (
    PROFILE_STAGES,
    CampaignRun,
    Scenario,
    ScenarioCheckError,
    ScenarioError,
    ScenarioRun,
    StageProfile,
    run_campaign,
    run_scenario,
)
from repro.scenarios.registry import (
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
)
from repro.scenarios.catalog import CAMPAIGNS  # noqa: E402 - populates the registry
from repro.scenarios.schema import (
    ArtifactSchemaError,
    assert_valid_artifact,
    validate_artifact,
)

__all__ = [
    "PROFILE_STAGES",
    "CAMPAIGNS",
    "ArtifactSchemaError",
    "CampaignRun",
    "Scenario",
    "ScenarioCheckError",
    "ScenarioError",
    "ScenarioRun",
    "StageProfile",
    "all_scenarios",
    "assert_valid_artifact",
    "get_scenario",
    "register",
    "run_campaign",
    "run_scenario",
    "scenario_names",
    "validate_artifact",
]
