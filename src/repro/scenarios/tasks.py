"""Module-level scenario workers (picklable for the process pool).

Every function here is one :class:`~repro.analysis.runner.BatchTask` body:
it generates its instance, runs one algorithm, verifies the output, and
returns a metric mapping.  The bodies are ports of the former standalone
``benchmarks/bench_*.py`` scripts — the scripts are now thin shims and the
single source of truth for "how experiment X is measured" lives here.

Conventions:

* ``seed`` is injected by :meth:`ExperimentRunner.run_batch` (derived from
  the batch ``base_seed`` and the task index) for every randomized
  generator; deterministic constructions take no seed.
* ``profile`` wires a :class:`~repro.scenarios.base.StageProfile` through
  the generate / freeze / solve / verify pipeline; the resulting
  ``stage_seconds`` land in the artifact so perf PRs can see where time
  goes.
* Graphs are frozen at the construction/computation boundary wherever the
  downstream driver runs on the CSR fast paths (Theorem 1.3 and friends);
  drivers that still operate on the mutable representation get the graph
  as built and report a zero ``freeze`` stage.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any

from repro.coloring import (
    degeneracy_greedy_coloring,
    random_lists,
    uniform_lists,
    verify_coloring,
    verify_list_coloring,
)
from repro.coloring.assignment import ListAssignment
from repro.coloring.greedy import greedy_list_coloring
from repro.core import (
    brooks_list_coloring,
    classify_vertices,
    color_bounded_arboricity_graph,
    color_embedded_graph,
    color_high_girth_planar_graph,
    color_planar_graph,
    color_sparse_graph,
    color_triangle_free_planar_graph,
    genus_color_budget,
    nice_list_coloring,
    peel_happy_layers,
)
from repro.core.extension import extend_coloring_to_happy_set
from repro.distributed import (
    barenboim_elkin_coloring,
    color_rooted_forest,
    delta_plus_one_coloring,
    gps_coloring,
    greedy_distributed_coloring,
    ruling_forest,
)
from repro.graphs.generators import classic, planar, sparse, surfaces
from repro.graphs.properties.cliques import is_clique
from repro.graphs.properties.degeneracy import (
    _degeneracy_ordering_sets,
    degeneracy_ordering,
)
from repro.local.ball_collection import collect_balls
from repro.lowerbounds import (
    bipartite_grid_lower_bound,
    log_star_floor,
    path_two_coloring_lower_bound,
    planar_four_coloring_lower_bound,
    triangle_free_lower_bound,
)
from repro.scenarios.base import StageProfile


# ---------------------------------------------------------------------------
# E1 — Theorem 1.3, colors
# ---------------------------------------------------------------------------

def theorem13_colors(
    n: int, d: int, variant: str, backend: str = "flat",
    seed: int | None = None, profile: bool = False,
) -> dict[str, Any]:
    """d-list-color a bounded-mad graph; ``variant``: uniform/random/greedy.

    ``backend`` selects the list-coloring substrate of the Theorem 1.3
    driver: ``dict`` (per-vertex set algebra) or ``flat`` (interned
    palette bitmasks + CSR kernels + the batched round engine).  Both
    produce bit-identical colorings and round totals; the ``coloring``
    scenario measures the wall-time gap.
    """
    prof = StageProfile(profile)
    with prof("generate"):
        graph = sparse.random_degenerate_graph(n, d // 2, seed=seed)
    if variant == "greedy":
        with prof("freeze"):
            solver_graph = graph.freeze() if backend == "flat" else graph
        with prof("solve"):
            coloring = degeneracy_greedy_coloring(solver_graph)
        return {
            "colors": len(set(coloring.values())), "budget": d,
            "rounds": 0, "valid": True, **prof.metrics(),
        }
    with prof("freeze"):
        frozen = graph.freeze()
    with prof("solve"):
        if variant == "uniform":
            lists = uniform_lists(frozen, d)
        elif variant == "random":
            lists = random_lists(frozen, d, palette_size=2 * d, seed=seed)
        else:
            raise ValueError(f"unknown variant {variant!r}")
        result = color_sparse_graph(frozen, d=d, lists=lists, backend=backend)
    with prof("verify"):
        verify_list_coloring(frozen, result.coloring, lists)
    # the distinct-color budget: d for the shared uniform palette, but the
    # whole 2d-color palette for per-vertex random lists (each vertex stays
    # within its own d-list; the union may legitimately use more than d)
    budget = d if variant == "uniform" else 2 * d
    return {
        "colors": result.colors_used(), "budget": budget,
        "rounds": result.rounds, "valid": True, **prof.metrics(),
    }


# ---------------------------------------------------------------------------
# E2 — Theorem 1.3, rounds
# ---------------------------------------------------------------------------

def theorem13_rounds(
    n: int, d: int, backend: str = "flat",
    seed: int | None = None, profile: bool = False,
) -> dict[str, Any]:
    """Charged rounds of the Theorem 1.3 driver on a union of forests."""
    prof = StageProfile(profile)
    with prof("generate"):
        graph = sparse.union_of_random_forests(n, 2, seed=seed)
    with prof("freeze"):
        frozen = graph.freeze()
    with prof("solve"):
        result = color_sparse_graph(frozen, d=d, backend=backend)
    with prof("verify"):
        assert result.succeeded
    return {
        "n": n,
        "rounds": result.rounds,
        "layers": result.peeling.number_of_layers,
        "rounds/log^3": result.rounds / (max(2, n).bit_length() ** 3),
        **prof.metrics(),
    }


# ---------------------------------------------------------------------------
# E15 — flat palette A/B: the Theorem 1.3 pipeline, dict vs flat backend
# ---------------------------------------------------------------------------

# the shared parity fingerprint (repro.verify.parity) — the same digest the
# golden corpus tests and the artifact parity oracle compare
from repro.verify.parity import coloring_digest as _coloring_digest  # noqa: E402


def coloring_pipeline(
    n: int, d: int, algorithm: str, backend: str,
    seed: int | None = None, profile: bool = False,
) -> dict[str, Any]:
    """Time one full list-coloring run on the dict or flat palette backend.

    ``algorithm`` is ``theorem13`` (the paper's driver on a random
    ``d/2``-degenerate graph) or ``barenboim-elkin`` (the Corollary 1.4
    baseline on a union of forests, arboricity ``d // 2``).  The graph is
    generated and frozen outside the timed section, so ``solve_seconds``
    measures the pipeline itself; ``coloring_sha`` and ``rounds`` let the
    scenario check assert bit-identical colorings and round-ledger totals
    between the backends on every instance.
    """
    prof = StageProfile(profile)
    with prof("generate"):
        if algorithm == "theorem13":
            graph = sparse.random_degenerate_graph(n, d // 2, seed=seed)
        elif algorithm == "barenboim-elkin":
            graph = sparse.union_of_random_forests(n, d // 2, seed=seed)
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}")
    with prof("freeze"):
        frozen = graph.freeze()
    with prof("solve"):
        start = time.perf_counter()
        if algorithm == "theorem13":
            result = color_sparse_graph(frozen, d=d, backend=backend)
            coloring, rounds = result.coloring, result.rounds
        else:
            result = barenboim_elkin_coloring(
                frozen, arboricity=d // 2, backend=backend
            )
            coloring, rounds = result.coloring, result.rounds
        elapsed = time.perf_counter() - start
    with prof("verify"):
        verify_coloring(frozen, coloring)
        if algorithm == "theorem13":
            verify_list_coloring(frozen, coloring, uniform_lists(frozen, d))
    return {
        "n": n,
        "backend": backend,
        "rounds": rounds,
        "colors": len(set(coloring.values())),
        "solve_seconds": round(elapsed, 6),
        "coloring_sha": _coloring_digest(coloring),
        **prof.metrics(),
    }


# ---------------------------------------------------------------------------
# E5 — Corollary 1.4 vs Barenboim–Elkin
# ---------------------------------------------------------------------------

def corollary14_arboricity(
    n: int, arboricity: int, algorithm: str, backend: str = "flat",
    seed: int | None = None, profile: bool = False,
) -> dict[str, Any]:
    """Color a union of ``arboricity`` forests; ``algorithm``: ours/barenboim-elkin.

    Both sides accept the ``backend`` axis so the Corollary 1.4 / baseline
    A/B runs on the same substrate: ``ours`` routes through the Theorem
    1.3 driver's backend, ``barenboim-elkin`` through the dict sweep or
    the batched slot-selection engine.  The graph is frozen at the
    boundary either way, which also pins the identifier assignment so the
    two backends color identically.
    """
    prof = StageProfile(profile)
    with prof("generate"):
        graph = sparse.union_of_random_forests(n, arboricity, seed=seed)
    with prof("freeze"):
        frozen = graph.freeze()
    if algorithm == "ours":
        with prof("solve"):
            result = color_bounded_arboricity_graph(
                frozen, arboricity=arboricity, backend=backend
            )
        with prof("verify"):
            verify_coloring(frozen, result.coloring)
        return {
            "colors": result.colors_used(), "palette": 2 * arboricity,
            "rounds": result.rounds, **prof.metrics(),
        }
    if algorithm == "barenboim-elkin":
        with prof("solve"):
            result = barenboim_elkin_coloring(
                frozen, arboricity=arboricity, epsilon=1.0, backend=backend
            )
        with prof("verify"):
            verify_coloring(frozen, result.coloring)
        return {
            "colors": result.colors_used, "palette": result.palette_size,
            "rounds": result.rounds, **prof.metrics(),
        }
    raise ValueError(f"unknown algorithm {algorithm!r}")


# ---------------------------------------------------------------------------
# E7 — Corollary 2.1 (Brooks) and Theorem 6.1 (nice lists)
# ---------------------------------------------------------------------------

def _nice_lists_for(graph) -> ListAssignment:
    """Theorem 6.1 "nice" assignment: deg(v) colors except where deg+1 is forced."""
    lists = {}
    for v in graph:
        degree = graph.degree(v)
        size = (
            degree + 1
            if degree <= 2 or is_clique(graph, graph.neighbors(v))
            else degree
        )
        lists[v] = frozenset(range(1, size + 1))
    return ListAssignment(lists)


def corollary21_brooks(
    n: int, degree: int, variant: str, seed: int | None = None, profile: bool = False
) -> dict[str, Any]:
    """Δ-list-color a random regular graph; ``variant``: brooks/greedy/nice."""
    prof = StageProfile(profile)
    with prof("generate"):
        if n * degree % 2:
            n += 1
        graph = classic.random_regular_graph(n, degree, seed=seed)
    if variant == "brooks":
        with prof("solve"):
            result = brooks_list_coloring(graph)
        with prof("verify"):
            verify_list_coloring(graph, result.coloring, uniform_lists(graph, degree))
        return {
            "colors": result.colors_used(), "budget": degree,
            "rounds": result.rounds, **prof.metrics(),
        }
    if variant == "greedy":
        with prof("solve"):
            result = greedy_distributed_coloring(graph)
        return {
            "colors": len(set(result.coloring.values())), "budget": degree + 1,
            "rounds": result.rounds, **prof.metrics(),
        }
    if variant == "nice":
        with prof("solve"):
            lists = _nice_lists_for(graph)
            result = nice_list_coloring(graph, lists)
        with prof("verify"):
            verify_list_coloring(graph, result.coloring, lists)
        return {
            "colors": len(set(result.coloring.values())), "budget": degree,
            "rounds": result.rounds, **prof.metrics(),
        }
    raise ValueError(f"unknown variant {variant!r}")


# ---------------------------------------------------------------------------
# E6 — Corollary 2.3 on planar families vs GPS
# ---------------------------------------------------------------------------

def corollary23_planar(
    family: str, n: int, algorithm: str, seed: int | None = None, profile: bool = False
) -> dict[str, Any]:
    """Color one planar family; ``algorithm``: cor23 (ours) or gps (baseline)."""
    prof = StageProfile(profile)
    with prof("generate"):
        if family == "triangulation":
            graph = planar.stacked_triangulation(n, seed=seed)
        elif family == "triangle-free":
            graph = planar.triangle_free_planar(n, seed=seed)
        elif family == "high-girth":
            graph = planar.high_girth_planar(n, seed=seed)
        else:
            raise ValueError(f"unknown family {family!r}")
    with prof("solve"):
        if algorithm == "gps":
            result = gps_coloring(graph, degree_threshold=6)
            colors, budget, rounds = result.colors_used, 7, result.rounds
        elif family == "triangulation":
            result = color_planar_graph(graph)
            colors, budget, rounds = result.colors_used(), 6, result.rounds
        elif family == "triangle-free":
            result = color_triangle_free_planar_graph(graph)
            colors, budget, rounds = result.colors_used(), 4, result.rounds
        else:
            result = color_high_girth_planar_graph(graph)
            colors, budget, rounds = result.colors_used(), 3, result.rounds
    with prof("verify"):
        verify_coloring(graph, result.coloring)
    return {"colors": colors, "budget": budget, "rounds": rounds, **prof.metrics()}


# ---------------------------------------------------------------------------
# E8 — Corollary 2.11 on toroidal triangulations
# ---------------------------------------------------------------------------

def corollary211_genus(
    k: int, length: int, improved: bool, profile: bool = False
) -> dict[str, Any]:
    """H(g)/H(g)-1 list-coloring of a toroidal triangular grid (genus 2)."""
    prof = StageProfile(profile)
    with prof("generate"):
        graph = surfaces.toroidal_triangular_grid(k, length)
    with prof("solve"):
        result = color_embedded_graph(graph, euler_genus=2, improved=improved)
    with prof("verify"):
        verify_coloring(graph, result.coloring)
    return {
        "colors": result.colors_used(),
        "budget": genus_color_budget(2, improved=improved),
        "rounds": result.rounds,
        **prof.metrics(),
    }


# ---------------------------------------------------------------------------
# E3 — Lemma 3.1, happy fraction and peeling layers
# ---------------------------------------------------------------------------

def _lemma_family_graph(family: str, n: int, seed: int | None):
    if family == "forest-union":
        return sparse.union_of_random_forests(n, 2, seed=seed)
    if family == "planar":
        return planar.stacked_triangulation(n, seed=seed)
    if family == "regular":
        return classic.random_regular_graph(n, 4, seed=seed)
    raise ValueError(f"unknown family {family!r}")


def lemma31_happy_fraction(
    family: str, n: int, d: int, seed: int | None = None, profile: bool = False
) -> dict[str, Any]:
    """Measure |A|/n of the first layer and the total number of peeling layers."""
    prof = StageProfile(profile)
    with prof("generate"):
        graph = _lemma_family_graph(family, n, seed)
    with prof("freeze"):
        frozen = graph.freeze()
    with prof("solve"):
        cls = classify_vertices(frozen, d=d)
        peeling = peel_happy_layers(frozen, d=d)
    fraction = len(cls.happy) / frozen.number_of_vertices()
    bound = 1 / (3 * d) ** 3
    no_poor_bound = 1 / (12 * d + 1) if not cls.poor else None
    return {
        "happy_fraction": round(fraction, 3),
        "paper_bound": round(bound, 5),
        "no_poor_bound": round(no_poor_bound, 4) if no_poor_bound else "-",
        "layers": peeling.number_of_layers,
        "poor": len(cls.poor),
        **prof.metrics(),
    }


# ---------------------------------------------------------------------------
# E4 — Lemma 3.2, one extension step
# ---------------------------------------------------------------------------

def lemma32_extension(
    family: str, n: int, d: int, radius: int, seed: int | None = None, profile: bool = False
) -> dict[str, Any]:
    """Extend a coloring of G - A to G; report the proof's quantities."""
    prof = StageProfile(profile)
    with prof("generate"):
        graph = _lemma_family_graph(family, n, seed)
    with prof("solve"):
        lists = uniform_lists(graph, d)
        cls = classify_vertices(graph, d=d, radius=radius)
        rest = [v for v in graph if v not in cls.happy]
        sub = graph.subgraph(rest)
        _, order = degeneracy_ordering(sub)
        base = greedy_list_coloring(sub, lists.restrict(rest), list(reversed(order)))
        coloring, report = extend_coloring_to_happy_set(
            graph, lists, happy=cls.happy, rich=cls.rich, coloring=base,
            radius=radius, d=d,
        )
    with prof("verify"):
        verify_list_coloring(graph, coloring, lists)
    return {
        "happy": len(cls.happy),
        "roots": report.roots,
        "tree_vertices": report.tree_vertices,
        "recolored_sad": report.recolored_sad_vertices,
        "rounds": report.rounds,
        **prof.metrics(),
    }


# ---------------------------------------------------------------------------
# E9 — Theorem 1.5 (Fisk-style planar 4-coloring lower bound)
# ---------------------------------------------------------------------------

def lowerbound_fisk(n: int, rounds: int, profile: bool = False) -> dict[str, Any]:
    """Certify the Omega(n) obstruction to 4-coloring planar graphs."""
    prof = StageProfile(profile)
    with prof("solve"):
        result = planar_four_coloring_lower_bound(n, rounds=rounds)
    cert = result.certificate
    return {
        "obstruction_n": cert.obstruction_vertices,
        "certified_rounds": cert.rounds,
        "colors_ruled_out": cert.colors,
        "chi_obstruction": cert.obstruction_chromatic_lower_bound,
        "rounds/n": round(cert.rounds / n, 3),
        **prof.metrics(),
    }


# ---------------------------------------------------------------------------
# E10 — Theorems 2.5 / 2.6 (Klein-bottle grid lower bounds)
# ---------------------------------------------------------------------------

def lowerbound_triangle_free(length: int, rounds: int, profile: bool = False) -> dict[str, Any]:
    """Certify the Omega(n) obstruction to 3-coloring triangle-free planar graphs."""
    prof = StageProfile(profile)
    with prof("solve"):
        result = triangle_free_lower_bound(length, rounds=rounds)
    cert = result.certificate
    return {
        "obstruction_n": cert.obstruction_vertices,
        "certified_rounds": cert.rounds,
        "colors_ruled_out": cert.colors,
        "target": "triangle-free planar",
        **prof.metrics(),
    }


def lowerbound_bipartite_grid(k: int, rounds: int, profile: bool = False) -> dict[str, Any]:
    """Certify the Omega(sqrt(n)) obstruction to 3-coloring planar bipartite graphs."""
    prof = StageProfile(profile)
    with prof("solve"):
        result = bipartite_grid_lower_bound(k, rounds=rounds)
    cert = result.certificate
    return {
        "obstruction_n": cert.obstruction_vertices,
        "certified_rounds": cert.rounds,
        "colors_ruled_out": cert.colors,
        "target": "planar bipartite (grid)",
        **prof.metrics(),
    }


# ---------------------------------------------------------------------------
# E11/E12/E13 — distributed primitives and the CSR speedup tracker
# ---------------------------------------------------------------------------

def _bfs_parents(graph, root):
    parents = {root: None}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for w in graph.neighbors(u):
            if w not in parents:
                parents[w] = u
                queue.append(w)
    return parents


def primitives_cole_vishkin(n: int, profile: bool = False) -> dict[str, Any]:
    """3-color a rooted path with Cole–Vishkin; rounds grow like log* n."""
    prof = StageProfile(profile)
    with prof("generate"):
        graph = classic.path(n)
    with prof("solve"):
        result = color_rooted_forest(graph, _bfs_parents(graph, 0))
    return {
        "rounds": result.rounds,
        "colors": len(set(result.outputs.values())),
        "log_star_n": log_star_floor(n),
        **prof.metrics(),
    }


def primitives_delta_plus_one(
    n: int, degree: int, seed: int | None = None, profile: bool = False
) -> dict[str, Any]:
    """(Δ+1)-color a random regular graph with Linial + color reduction."""
    prof = StageProfile(profile)
    with prof("generate"):
        graph = classic.random_regular_graph(n, degree, seed=seed)
    with prof("solve"):
        result = delta_plus_one_coloring(graph)
    return {
        "rounds": result.rounds,
        "colors": len(set(result.coloring.values())),
        "log_star_n": log_star_floor(len(graph)),
        **prof.metrics(),
    }


def primitives_ruling_forest(n: int, alpha: int, profile: bool = False) -> dict[str, Any]:
    """Build the (alpha, alpha log n)-ruling forest on a grid."""
    prof = StageProfile(profile)
    with prof("generate"):
        graph = classic.grid_2d(n // 10, 10)
    with prof("solve"):
        forest = ruling_forest(graph, set(graph.vertices()), alpha=alpha)
    return {
        "rounds": forest.rounds,
        "colors": len(forest.roots),
        "log_star_n": forest.beta,
        **prof.metrics(),
    }


def primitives_path_lower_bound(n: int, rounds: int, profile: bool = False) -> dict[str, Any]:
    """Observation 2.4 certificate: 2-coloring a path needs Omega(n) rounds."""
    prof = StageProfile(profile)
    with prof("solve"):
        result = path_two_coloring_lower_bound(n, rounds=rounds)
    return {
        "rounds": result.certificate.rounds, "colors": 2, "log_star_n": 0,
        **prof.metrics(),
    }


def simulator_throughput(
    n: int,
    topology: str,
    algorithm: str,
    engine: str,
    id_seed: int | None = None,
    profile: bool = False,
) -> dict[str, Any]:
    """Time one full simulation on the seed, flat or batched round engine.

    ``engine`` selects the data plane: ``seed`` is the dict-routed
    reference engine (:mod:`repro.local.reference`), ``flat`` the
    flat-array per-node engine and ``batch`` the vectorized
    :class:`~repro.local.node.BatchNodeAlgorithm` path.  ``algorithm`` is
    ``cole-vishkin`` (rooted path), ``greedy`` (ring with identifiers
    shuffled by ``id_seed`` so the decreasing-id chains stay logarithmic
    and every engine sees the same instance) or ``wave`` (rooted-path
    2-coloring whose round count is exactly ``n`` — the Ω(n) lower-bound
    workload; its batched program runs in the sparse ``"active"``
    exchange mode so large ``n`` stays tractable).  The network and its
    routing fabric are built during the ``freeze`` stage, so
    ``engine_seconds`` measures pure round throughput.  The batched
    engine receives index-aligned ndarray inputs (zero-copy through
    ``Network.inputs_list``); the per-node engines take the equivalent
    dict.
    """
    import random

    from repro.distributed.cole_vishkin import (
        BatchColeVishkinForestColoring,
        ColeVishkinForestColoring,
        cole_vishkin_iterations,
    )
    from repro.distributed.greedy_baseline import (
        BatchGreedyLocalMaximaAlgorithm,
        GreedyLocalMaximaAlgorithm,
    )
    from repro.distributed.wave import BatchWaveTwoColoring, WaveTwoColoring
    from repro.local.network import Network
    from repro.local.reference import ReferenceSimulator
    from repro.local.simulator import SynchronousSimulator

    import numpy as np

    prof = StageProfile(profile)
    with prof("generate"):
        if topology == "path":
            graph = classic.path(n)
        elif topology == "ring":
            graph = classic.cycle(n)
        else:
            raise ValueError(f"unknown topology {topology!r}")
    with prof("freeze"):
        frozen = graph.freeze()
        if algorithm == "greedy":
            order = frozen.vertices()
            random.Random(id_seed).shuffle(order)
            network = Network(frozen, identifier_order=order)
        else:
            network = Network(frozen)
        network.fabric  # build the routing table outside the timed engine run
        network.identifiers_np  # ... the identifier array the batch engine reads
        network.ports  # ... and the dict views the seed engine routes through
        network.port_of
    if algorithm == "cole-vishkin":
        # rooted path: parent of vertex i is i - 1; identifier 0 does not
        # exist, so it doubles as the batched "no parent" sentinel
        inputs: Any
        if engine == "batch":
            inputs = np.concatenate(
                ([0], network.identifiers_np[:-1])
            ) if n else np.zeros(0, dtype=np.int64)
        else:
            inputs = {
                v: None if v == 0 else network.identifier_of[v - 1]
                for v in frozen
            }
        per_node: Any = ColeVishkinForestColoring
        batched: Any = BatchColeVishkinForestColoring
        max_rounds = 10 * cole_vishkin_iterations(n) + 30
        palette = 3
    elif algorithm == "greedy":
        delta = max(1, frozen.max_degree())
        if engine == "batch":
            inputs = np.full(n, delta, dtype=np.int64)
        else:
            inputs = {v: delta for v in frozen}
        per_node = GreedyLocalMaximaAlgorithm
        batched = BatchGreedyLocalMaximaAlgorithm
        max_rounds = n + 2
        palette = delta + 1
    elif algorithm == "wave":
        if topology != "path":
            raise ValueError("the wave workload runs on the path topology")
        if engine == "batch":
            inputs = np.zeros(n, dtype=np.int64)
            if n:
                inputs[0] = 1
        else:
            inputs = {v: v == 0 for v in frozen}
        per_node = WaveTwoColoring
        batched = BatchWaveTwoColoring
        max_rounds = n + 2
        palette = 2
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")

    with prof("solve"):
        start = time.perf_counter()
        if engine == "seed":
            result = ReferenceSimulator(network).run(
                per_node, inputs=inputs, max_rounds=max_rounds, strict=True
            )
        elif engine == "flat":
            result = SynchronousSimulator(network).run(
                per_node, inputs=inputs, max_rounds=max_rounds, strict=True
            )
        elif engine == "batch":
            result = SynchronousSimulator(network).run(
                batched, inputs=inputs, max_rounds=max_rounds, strict=True
            )
        else:
            raise ValueError(f"unknown engine {engine!r}")
        elapsed = time.perf_counter() - start
    with prof("verify"):
        from repro.verify.coloring import PaletteBudgetOracle, ProperColoringOracle

        assert result.finished
        outputs = result.outputs
        offset = 1 if algorithm == "greedy" else 0
        if algorithm == "wave" and n:
            # the Ω(n) lower-bound signature: the wavefront advances one
            # hop per round, so a rooted path needs exactly n rounds and
            # one broadcast per node
            assert result.rounds == n, (result.rounds, n)
            assert result.messages_sent == 2 * (n - 1)
        ProperColoringOracle().check(
            graph=frozen, coloring=outputs
        ).raise_if_failed()
        PaletteBudgetOracle().check(
            coloring=outputs, budget=palette
        ).raise_if_failed()
        assert all(offset <= outputs[v] < palette + offset for v in frozen)
    return {
        "n": n,
        "rounds": result.rounds,
        "messages": result.messages_sent,
        "engine_seconds": elapsed,
        "rounds_per_sec": round(result.rounds / elapsed, 1) if elapsed > 0 else 0.0,
        "messages_per_sec": round(result.messages_sent / elapsed) if elapsed > 0 else 0,
        **prof.metrics(),
    }


def primitives_degeneracy(
    n: int, arboricity: int, backend: str, seed: int | None = None, profile: bool = False
) -> dict[str, Any]:
    """Time one degeneracy-ordering computation on the dict or CSR backend.

    The CSR timing is taken on a pre-frozen graph; the one-time freeze cost
    is reported separately (``freeze_seconds``) because it is paid once per
    graph and amortized over every primitive running on the frozen view.
    """
    prof = StageProfile(profile)
    with prof("generate"):
        graph = sparse.union_of_random_forests(n, arboricity, seed=seed)
    metrics: dict[str, Any] = {"n": n, "m": graph.number_of_edges()}
    if backend == "dict":
        with prof("solve"):
            start = time.perf_counter()
            value = _degeneracy_ordering_sets(graph)[0]
            metrics["compute_seconds"] = time.perf_counter() - start
    else:
        with prof("freeze"):
            start = time.perf_counter()
            frozen = graph.freeze()
            metrics["freeze_seconds"] = time.perf_counter() - start
        with prof("solve"):
            start = time.perf_counter()
            value = frozen.degeneracy_ordering()[0]
            metrics["compute_seconds"] = time.perf_counter() - start
    metrics["degeneracy"] = value
    metrics.update(prof.metrics())
    return metrics


def primitives_balls(
    n: int, arboricity: int, radius: int, backend: str,
    seed: int | None = None, profile: bool = False,
) -> dict[str, Any]:
    """Time one all-vertices ball collection on the dict or CSR backend."""
    prof = StageProfile(profile)
    with prof("generate"):
        graph = sparse.union_of_random_forests(n, arboricity, seed=seed)
    if backend != "dict":
        with prof("freeze"):
            graph = graph.freeze()
    with prof("solve"):
        start = time.perf_counter()
        balls = collect_balls(graph, radius)
        elapsed = time.perf_counter() - start
    return {
        "n": n,
        "radius": radius,
        "total_ball_members": sum(len(b) for b in balls.values()),
        "compute_seconds": elapsed,
        **prof.metrics(),
    }


# ---------------------------------------------------------------------------
# scale: million-node rows on zero-copy published graphs
# ---------------------------------------------------------------------------

def scale_peel(handle, profile: bool = False) -> dict[str, Any]:
    """Degeneracy-peel a published graph attached zero-copy by handle.

    ``handle`` is a :class:`~repro.analysis.shared.SharedGraphHandle`; the
    worker attaches to the parent's CSR buffers (shared memory or npz
    memory-map) instead of unpickling a copy, so the ``freeze`` stage times
    the attachment itself.  The verify stage recomputes the content digest
    from the attached arrays — the bit-identical-transport check.
    """
    from repro.analysis import shared
    from repro.corpus import graph_digest

    prof = StageProfile(profile)
    with prof("freeze"):
        start = time.perf_counter()
        graph = shared.attach(handle)
        attach_seconds = time.perf_counter() - start
    with prof("solve"):
        start = time.perf_counter()
        degeneracy = graph.degeneracy()
        peel_seconds = time.perf_counter() - start
    with prof("verify"):
        digest_ok = graph_digest(graph) == handle.digest
    return {
        "n": len(graph),
        "m": graph.number_of_edges(),
        "degeneracy": degeneracy,
        "transport": handle.kind,
        "attach_seconds": attach_seconds,
        "peel_seconds": peel_seconds,
        "digest_ok": digest_ok,
        "valid": digest_ok,
        **prof.metrics(),
    }


def scale_coloring(handle, profile: bool = False) -> dict[str, Any]:
    """(Delta+1)-color a published bounded-degree graph with the batch engine.

    Attaches zero-copy like :func:`scale_peel`, then runs the batched
    greedy local-maxima program through the synchronous simulator — the
    identity labels of the attached graph feed the flat fabric directly,
    so the engine never materializes a vertex dict.
    """
    from repro.analysis import shared
    from repro.distributed.greedy_baseline import BatchGreedyLocalMaximaAlgorithm
    from repro.local.network import Network
    from repro.local.simulator import SynchronousSimulator
    from repro.verify.coloring import PaletteBudgetOracle, ProperColoringOracle

    prof = StageProfile(profile)
    with prof("freeze"):
        start = time.perf_counter()
        graph = shared.attach(handle)
        attach_seconds = time.perf_counter() - start
        network = Network(graph)
        network.fabric
    delta = max(1, graph.max_degree())
    inputs = {v: delta for v in graph}
    with prof("solve"):
        start = time.perf_counter()
        result = SynchronousSimulator(network).run(
            BatchGreedyLocalMaximaAlgorithm,
            inputs=inputs,
            max_rounds=len(graph) + 2,
            strict=True,
        )
        engine_seconds = time.perf_counter() - start
    with prof("verify"):
        assert result.finished
        proper = ProperColoringOracle().check(graph=graph, coloring=result.outputs)
        budget = PaletteBudgetOracle().check(coloring=result.outputs, budget=delta + 1)
    return {
        "n": len(graph),
        "m": graph.number_of_edges(),
        "delta": delta,
        "colors": len(set(result.outputs.values())),
        "budget": delta + 1,
        "rounds": result.rounds,
        "messages": result.messages_sent,
        "transport": handle.kind,
        "attach_seconds": attach_seconds,
        "engine_seconds": engine_seconds,
        "valid": proper.ok and budget.ok,
        **prof.metrics(),
    }


def scale_npz_roundtrip(handle, profile: bool = False) -> dict[str, Any]:
    """Save/load parity: npz round trip of a published graph, mmap and not.

    Writes the attached graph with :meth:`FrozenGraph.save_npz`, reloads it
    both memory-mapped and materialized, and requires the content digest
    (and the degeneracy computed *from the memmap*) to match the original —
    the substrate-parity claim for the on-disk form.
    """
    import os as _os
    import tempfile

    from repro.analysis import shared
    from repro.corpus import graph_digest
    from repro.graphs.frozen import FrozenGraph

    prof = StageProfile(profile)
    with prof("freeze"):
        graph = shared.attach(handle)
    fd, path = tempfile.mkstemp(suffix=".npz")
    _os.close(fd)
    try:
        with prof("solve"):
            start = time.perf_counter()
            graph.save_npz(path)
            save_seconds = time.perf_counter() - start
            file_bytes = _os.path.getsize(path)
            start = time.perf_counter()
            mapped = FrozenGraph.load_npz(path, mmap=True)
            load_seconds = time.perf_counter() - start
            heap = FrozenGraph.load_npz(path, mmap=False)
        with prof("verify"):
            digest_ok = (
                graph_digest(mapped)
                == graph_digest(heap)
                == handle.digest
            )
            peel_ok = mapped.degeneracy() == graph.degeneracy()
    finally:
        _os.unlink(path)
    return {
        "n": len(graph),
        "file_bytes": file_bytes,
        "save_seconds": save_seconds,
        "load_seconds": load_seconds,
        "digest_ok": digest_ok,
        "valid": digest_ok and peel_ok,
        **prof.metrics(),
    }


def serve_load(
    workload: str,
    clients: int,
    requests: int,
    huge_n: int,
    cache_max_bytes: int,
    batch_window_ms: float,
    seed: int | None = None,
    profile: bool = False,
) -> dict[str, Any]:
    """One load-generator replay against an in-process coloring service.

    Boots :class:`repro.serve.server.ColoringService` on an ephemeral port
    inside this task's process, drives ``clients`` concurrent asyncio
    clients through the named workload, and returns the latency/throughput/
    cache metrics of :func:`repro.serve.loadgen.run_workload`.  Everything
    — server, batcher, compute — runs in-process, so the row measures the
    service stack itself, not fork overhead.
    """
    from repro.serve.loadgen import run_workload

    prof = StageProfile(profile)
    with prof("solve"):
        metrics = run_workload(
            workload,
            clients=clients,
            requests=requests,
            huge_n=huge_n,
            seed=seed,
            cache_max_bytes=cache_max_bytes,
            batch_window_ms=batch_window_ms,
        )
    return {**metrics, **prof.metrics()}


# ---------------------------------------------------------------------------
# E18 — dynamic graphs + fault injection (self-stabilizing recovery)
# ---------------------------------------------------------------------------

#: fault-kind mixes the E18 grid sweeps; the message mix includes a color
#: corruption so there is a perturbation whose recovery the lossy rounds
#: can actually delay (pure drops/dups never make a legal coloring illegal)
FAULT_MIXES: dict[str, tuple[str, ...]] = {
    "corrupt": ("corrupt-color",),
    "reset": ("node-reset",),
    "edge-churn": ("edge-insert", "edge-delete"),
    "message": ("corrupt-color", "message-drop", "message-duplicate"),
}


def dynamic_recovery(
    family: str,
    n: int,
    faults: str,
    protocol: str,
    backend: str,
    events: int = 6,
    window: int = 4,
    max_rounds: int = 400,
    seed: int | None = None,
    profile: bool = False,
) -> dict[str, Any]:
    """One dynamic run: perturb a legally colored graph, measure recovery.

    Generates a ``family`` graph (the Lemma 3.1 families), seeds it with a
    legal degeneracy-greedy coloring, draws a :class:`FaultPlan` from the
    ``faults`` mix (:data:`FAULT_MIXES`) and drives the named stabilizing
    ``protocol`` on the dict or flat :class:`PerturbableNetwork` backend
    until quiescence.  The trace is audited in-process by the
    :class:`RecoveryOracle` (replay conformance) and the
    :class:`ContainmentOracle` (causal-cone locality) before any metric is
    reported; the row carries ``rounds_to_recovery``/``containment_radius``
    for the artifact-level recovery oracle and ``coloring_sha``/``log_sha``
    for the cross-backend parity checks.
    """
    from repro.distributed.stabilizing import STABILIZING_PROTOCOLS
    from repro.faults import (
        FaultPlan,
        PerturbableNetwork,
        event_log_digest,
        palette_bound,
        run_stabilizing,
    )
    from repro.verify.recovery import (
        ContainmentOracle,
        RecoveryOracle,
        recovery_metrics,
    )

    prof = StageProfile(profile)
    with prof("generate"):
        graph = _lemma_family_graph(family, n, seed)
        # a small window clusters the events into a burst, so recovery has
        # to dig out of compounded damage rather than heal one fault at a
        # time — that is where rounds-to-recovery becomes a real measurement
        plan = FaultPlan.random(
            graph, seed=seed if seed is not None else 0,
            kinds=FAULT_MIXES[faults], events=events, window=window,
        )
        budget = palette_bound(graph, plan)
        initial = degeneracy_greedy_coloring(graph)
    with prof("freeze"):
        pnet = PerturbableNetwork(graph, backend=backend)
    per_node, batched = STABILIZING_PROTOCOLS[protocol]
    factory = batched if backend == "flat" else per_node
    with prof("solve"):
        start = time.perf_counter()
        trace = run_stabilizing(
            pnet, factory, plan=plan, budget=budget,
            initial_coloring=initial, max_rounds=max_rounds,
            protocol=protocol,
        )
        elapsed = time.perf_counter() - start
    with prof("verify"):
        RecoveryOracle().check(trace=trace).raise_if_failed()
        ContainmentOracle().check(trace=trace).raise_if_failed()
        metrics = recovery_metrics(trace)
    return {
        "n": n,
        "budget": budget,
        **metrics,
        # declared caps the artifact-level recovery oracle enforces
        "recovery_cap": max_rounds,
        "containment_bound": max_rounds,
        # parity fingerprints: final coloring and the applied-event ledger
        "coloring_sha": _coloring_digest(trace.final_coloring),
        "log_sha": event_log_digest(trace.event_log()),
        "solve_seconds": round(elapsed, 6),
        **prof.metrics(),
    }


# ---------------------------------------------------------------------------
# E19 — randomized track (Moser–Tardos lists + randomized Δ+1)
# ---------------------------------------------------------------------------

def randomized_delta_plus_one(
    family: str,
    n: int,
    engine: str,
    seed: int | None = None,
    profile: bool = False,
) -> dict[str, Any]:
    """One randomized (Δ+1)-coloring row on the ``batch`` or ``flat`` engine.

    The run is audited in-process before its row is written: the
    :class:`~repro.verify.randomized.RandomizedRoundsOracle` checks the
    uncolored-frontier trace (non-increasing, drains to zero) against the
    O(log n) concentration envelope, and the coloring itself must be
    proper and inside the Δ+1 budget.  ``coloring_sha`` plus the
    rounds/messages metrics feed the artifact-level variant-parity
    oracle: both engines must replay the identical run bit for bit
    (``seed_group`` hands them the same derived seed).
    """
    from repro.distributed.randomized import randomized_delta_plus_one_coloring
    from repro.local.network import Network
    from repro.verify import PaletteBudgetOracle, ProperColoringOracle
    from repro.verify.randomized import RandomizedRoundsOracle

    prof = StageProfile(profile)
    with prof("generate"):
        graph = _lemma_family_graph(family, n, seed)
    with prof("freeze"):
        frozen = graph.freeze()
        network = Network(frozen)
        network.fabric  # build the routing table outside the timed run
    with prof("solve"):
        start = time.perf_counter()
        result = randomized_delta_plus_one_coloring(
            frozen,
            seed=seed if seed is not None else 0,
            batched=engine == "batch",
            network=network,
        )
        elapsed = time.perf_counter() - start
    with prof("verify"):
        vertices = frozen.number_of_vertices()
        RandomizedRoundsOracle().check(
            n=vertices, rounds=result.rounds, frontier=result.frontier
        ).raise_if_failed()
        ProperColoringOracle().check(
            graph=frozen, coloring=result.coloring
        ).raise_if_failed()
        PaletteBudgetOracle().check(
            coloring=result.coloring, budget=result.palette_size
        ).raise_if_failed()
    return {
        "n": vertices,
        "rounds": result.rounds,
        "messages": result.messages,
        "colors": len(set(result.coloring.values())),
        "budget": result.palette_size,
        "frontier_rounds": len(result.frontier),
        "frontier_monotone": all(
            result.frontier[i + 1] <= result.frontier[i]
            for i in range(len(result.frontier) - 1)
        ),
        "coloring_sha": _coloring_digest(result.coloring),
        "solve_seconds": round(elapsed, 6),
        **prof.metrics(),
    }


def deterministic_delta_plus_one(
    family: str,
    n: int,
    algorithm: str,
    seed: int | None = None,
    profile: bool = False,
) -> dict[str, Any]:
    """The deterministic comparator row: greedy or Linial (Δ+1)-coloring.

    Shares the randomized rows' ``seed_group``, so it colors the *same*
    generated graph — the randomized-vs-deterministic rounds/colors
    comparison in ``BENCH_randomized.json`` is like for like.
    """
    from repro.distributed.greedy_baseline import greedy_distributed_coloring
    from repro.distributed.linial import delta_plus_one_coloring
    from repro.local.network import Network
    from repro.verify import PaletteBudgetOracle, ProperColoringOracle

    prof = StageProfile(profile)
    with prof("generate"):
        graph = _lemma_family_graph(family, n, seed)
    with prof("freeze"):
        frozen = graph.freeze()
        network = Network(frozen)
        network.fabric
    with prof("solve"):
        start = time.perf_counter()
        if algorithm == "greedy":
            result = greedy_distributed_coloring(
                frozen, batched=True, network=network
            )
        elif algorithm == "linial":
            result = delta_plus_one_coloring(frozen, batched=True)
        else:
            raise ValueError(f"unknown deterministic algorithm {algorithm!r}")
        elapsed = time.perf_counter() - start
    with prof("verify"):
        ProperColoringOracle().check(
            graph=frozen, coloring=result.coloring
        ).raise_if_failed()
        PaletteBudgetOracle().check(
            coloring=result.coloring, budget=result.palette_size
        ).raise_if_failed()
    return {
        "n": frozen.number_of_vertices(),
        "rounds": result.rounds,
        "messages": result.messages,
        "colors": len(set(result.coloring.values())),
        "budget": result.palette_size,
        "coloring_sha": _coloring_digest(result.coloring),
        "solve_seconds": round(elapsed, 6),
        **prof.metrics(),
    }


def moser_tardos_lists(
    family: str,
    n: int,
    backend: str,
    seed: int | None = None,
    profile: bool = False,
) -> dict[str, Any]:
    """One Moser–Tardos list-coloring row on the flat or dict backend.

    Per-vertex lists are distinct sliding windows of ``2Δ+2`` colors over
    a ``4Δ+4`` universe — a genuine list-coloring instance with enough
    LLL slack for the resampler to converge quickly.  The verify stage
    replays the entropy-compression record log through the
    :class:`~repro.verify.randomized.ResampleLogOracle`, so a row only
    exists if its witness survives the replay audit; ``log_sha`` and
    ``coloring_sha`` feed the cross-backend parity check.
    """
    from repro.distributed.randomized import moser_tardos_list_coloring
    from repro.verify.randomized import ResampleLogOracle

    prof = StageProfile(profile)
    with prof("generate"):
        graph = _lemma_family_graph(family, n, seed)
        frozen = graph.freeze()
        delta = max(1, frozen.max_degree())
        universe = 4 * delta + 4
        width = 2 * delta + 2
        lists = {
            v: [((i * 3 + j) % universe) + 1 for j in range(width)]
            for i, v in enumerate(frozen.vertices())
        }
    with prof("solve"):
        start = time.perf_counter()
        result = moser_tardos_list_coloring(
            frozen, lists,
            seed=seed if seed is not None else 0,
            backend=backend,
        )
        elapsed = time.perf_counter() - start
    with prof("verify"):
        ResampleLogOracle().check(
            graph=frozen, lists=lists, seed=result.seed,
            log=result.log, coloring=result.coloring, backend=backend,
        ).raise_if_failed()
    return {
        "n": frozen.number_of_vertices(),
        "resamples": result.steps,
        "colors": len(set(result.coloring.values())),
        "budget": universe,
        "list_size": width,
        "log_sha": result.log_digest(),
        "coloring_sha": _coloring_digest(result.coloring),
        "solve_seconds": round(elapsed, 6),
        **prof.metrics(),
    }
