"""The paper's contribution: Theorem 1.3 and its corollaries.

This package implements the pipeline of the upper-bound half of the
paper, bottom-up:

* :mod:`repro.core.happy` — the rich/poor/happy/sad vertex
  classification of Lemma 3.1 (with the paper's ``c log2 n`` rich-ball
  radius);
* :mod:`repro.core.peeling` — iterated happy-layer peeling, whose layer
  count the ``|A| >= n/(3d)^3`` bound controls;
* :mod:`repro.core.extension` — Lemma 3.2, extending a list-coloring of
  ``G - A`` to ``G`` via ruling forests and layered tree coloring;
* :mod:`repro.core.sparse_coloring` — the Theorem 1.3 driver
  (:func:`color_sparse_graph`) gluing the above together;
* :mod:`repro.core.arboricity_coloring`, :mod:`repro.core.brooks`,
  :mod:`repro.core.planar`, :mod:`repro.core.surfaces` — the corollaries
  (1.4, 2.1/6.1, 2.3, 2.11) as thin reductions to the driver.

All entry points accept either graph representation (the ``GraphLike``
protocol) and use the CSR fast paths when handed a frozen graph; the
``theorem13-*``, ``corollary*`` and ``lemma3*`` scenarios of
``python -m repro`` measure everything exported here against the paper's
claims.
"""

from repro.core.arboricity_coloring import color_bounded_arboricity_graph
from repro.core.brooks import (
    NiceListColoringResult,
    brooks_list_coloring,
    is_nice_list_assignment,
    nice_list_coloring,
)
from repro.core.extension import ExtensionReport, extend_coloring_to_happy_set
from repro.core.happy import (
    VertexClassification,
    classify_vertices,
    default_rich_ball_radius,
    paper_radius_constant,
)
from repro.core.peeling import PeelingLayer, PeelingResult, peel_happy_layers
from repro.core.planar import (
    color_high_girth_planar_graph,
    color_planar_graph,
    color_triangle_free_planar_graph,
    planar_color_budget,
)
from repro.core.sparse_coloring import SparseColoringResult, color_sparse_graph
from repro.core.surfaces import color_embedded_graph, genus_color_budget

__all__ = [
    "color_bounded_arboricity_graph",
    "NiceListColoringResult",
    "brooks_list_coloring",
    "is_nice_list_assignment",
    "nice_list_coloring",
    "ExtensionReport",
    "extend_coloring_to_happy_set",
    "VertexClassification",
    "classify_vertices",
    "default_rich_ball_radius",
    "paper_radius_constant",
    "PeelingLayer",
    "PeelingResult",
    "peel_happy_layers",
    "color_high_girth_planar_graph",
    "color_planar_graph",
    "color_triangle_free_planar_graph",
    "planar_color_budget",
    "SparseColoringResult",
    "color_sparse_graph",
    "color_embedded_graph",
    "genus_color_budget",
]
