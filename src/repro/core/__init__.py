"""The paper's contribution: Theorem 1.3 and its corollaries."""

from repro.core.arboricity_coloring import color_bounded_arboricity_graph
from repro.core.brooks import (
    NiceListColoringResult,
    brooks_list_coloring,
    is_nice_list_assignment,
    nice_list_coloring,
)
from repro.core.extension import ExtensionReport, extend_coloring_to_happy_set
from repro.core.happy import (
    VertexClassification,
    classify_vertices,
    default_rich_ball_radius,
    paper_radius_constant,
)
from repro.core.peeling import PeelingLayer, PeelingResult, peel_happy_layers
from repro.core.planar import (
    color_high_girth_planar_graph,
    color_planar_graph,
    color_triangle_free_planar_graph,
    planar_color_budget,
)
from repro.core.sparse_coloring import SparseColoringResult, color_sparse_graph
from repro.core.surfaces import color_embedded_graph, genus_color_budget

__all__ = [
    "color_bounded_arboricity_graph",
    "NiceListColoringResult",
    "brooks_list_coloring",
    "is_nice_list_assignment",
    "nice_list_coloring",
    "ExtensionReport",
    "extend_coloring_to_happy_set",
    "VertexClassification",
    "classify_vertices",
    "default_rich_ball_radius",
    "paper_radius_constant",
    "PeelingLayer",
    "PeelingResult",
    "peel_happy_layers",
    "color_high_girth_planar_graph",
    "color_planar_graph",
    "color_triangle_free_planar_graph",
    "planar_color_budget",
    "SparseColoringResult",
    "color_sparse_graph",
    "color_embedded_graph",
    "genus_color_budget",
]
