"""Theorem 1.3: d-list-coloring graphs of maximum average degree at most d.

This is the paper's main result and the top-level entry point of the
library:

    **Theorem 1.3.**  There is a deterministic distributed algorithm that,
    given an n-vertex graph G and an integer ``d >= max(3, mad(G))``, either
    finds a ``(d+1)``-clique in G or finds a d-list-coloring of G in
    ``O(d^4 log^3 n)`` rounds (``O(d^2 log^3 n)`` if every vertex has degree
    at most d).

The driver composes the two halves proved in Sections 4 and 5:

1. **Peeling** (Lemma 3.1): repeatedly remove the happy set of the current
   graph — ``O(d^3 log n)`` layers, each costing one rich-ball collection.
2. **Extension** (Lemma 3.2): starting from the empty graph, re-insert the
   layers in reverse order, each time extending the current list-coloring
   to the re-inserted happy set with ruling forests, a (d+1) stable
   partition, layered tree coloring, and Theorem 1.1 on the root balls.

Rounds are charged to a :class:`~repro.local.ledger.RoundLedger` with one
entry per phase; the grand total is the algorithm's round complexity, which
the benchmarks compare against ``d^4 log^3 n``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.coloring.assignment import Color, ListAssignment, uniform_lists
from repro.coloring.verification import verify_list_coloring
from repro.errors import ColoringError
from repro.graphs.frozen import GraphLike
from repro.graphs.graph import Vertex
from repro.graphs.properties.cliques import find_clique_of_size
from repro.local.ledger import RoundLedger
from repro.core.extension import ExtensionReport, extend_coloring_to_happy_set
from repro.core.peeling import PeelingResult, peel_happy_layers

__all__ = ["SparseColoringResult", "color_sparse_graph"]


@dataclass
class SparseColoringResult:
    """The outcome of Theorem 1.3 on one input.

    Exactly one of ``coloring`` / ``clique`` is non-``None``: either the
    algorithm produced a d-list-coloring, or it found a ``(d+1)``-clique
    (in which case no d-coloring exists at all and the promise of the
    theorem is the clique itself).
    """

    d: int
    coloring: dict[Vertex, Color] | None
    clique: tuple[Vertex, ...] | None
    rounds: int
    peeling: PeelingResult | None
    extensions: list[ExtensionReport] = field(default_factory=list)
    ledger: RoundLedger = field(default_factory=RoundLedger)

    @property
    def succeeded(self) -> bool:
        return self.coloring is not None

    def colors_used(self) -> int:
        if not self.coloring:
            return 0
        return len(set(self.coloring.values()))


def color_sparse_graph(
    graph: GraphLike,
    d: int,
    lists: ListAssignment | None = None,
    radius: int | None = None,
    verify: bool = True,
    clique_check: bool = True,
    backend: str = "flat",
) -> SparseColoringResult:
    """Run the Theorem 1.3 algorithm.

    Parameters
    ----------
    graph:
        The input graph (mutable or frozen; a
        :class:`~repro.graphs.frozen.FrozenGraph` keeps the peeling and the
        per-layer subgraphs on the CSR fast paths).  The promise is
        ``mad(graph) <= d``; it is the
        caller's responsibility (checking it exactly costs a max-flow; see
        :func:`repro.graphs.properties.mad.maximum_average_degree`).
    d:
        The color budget, at least 3.
    lists:
        A d-list-assignment; defaults to the uniform lists ``{1..d}`` (plain
        d-coloring).
    radius:
        Rich-ball radius override (defaults to the paper's ``c log2 n``).
    verify:
        Verify the final coloring (raises on any violation).
    clique_check:
        Search for a ``(d+1)``-clique first, exactly as the theorem's
        statement allows; disable when the caller already knows none exists.
    backend:
        ``"dict"`` runs the historical per-vertex set-algebra pipeline;
        ``"flat"`` runs classification, ruling, the stable partition and
        all list operations on the flat palette substrate (interned color
        bitmasks, CSR kernels, the batched round engine).  Both backends
        produce bit-identical colorings and charged-round totals — the
        ``coloring`` scenario measures the wall-time gap and asserts the
        parity on every instance.

    Returns
    -------
    SparseColoringResult
    """
    if d < 3:
        raise ValueError("Theorem 1.3 requires d >= 3")
    if backend not in ("dict", "flat"):
        raise ValueError(f"unknown backend {backend!r}; use 'dict' or 'flat'")
    if backend == "flat":
        from repro.graphs.frozen import freeze

        graph = freeze(graph)
    ledger = RoundLedger()
    if lists is None:
        lists = uniform_lists(graph, d)
    else:
        lists.require_minimum(graph, d)

    if graph.number_of_vertices() == 0:
        return SparseColoringResult(
            d=d, coloring={}, clique=None, rounds=0, peeling=None, ledger=ledger
        )

    if clique_check:
        ledger.charge(
            "clique detection",
            2,
            reference="Theorem 1.3 (a (d+1)-clique is visible within 2 rounds)",
        )
        clique = find_clique_of_size(graph, d + 1)
        if clique is not None:
            return SparseColoringResult(
                d=d,
                coloring=None,
                clique=clique,
                rounds=ledger.total(),
                peeling=None,
                ledger=ledger,
            )

    peeling = peel_happy_layers(graph, d, radius=radius, backend=backend)
    ledger.extend(peeling.ledger)

    # Rebuild the graphs G_1 superset G_2 superset ... seen by the peeling and
    # extend the coloring layer by layer, from the innermost (last removed)
    # back to the full graph.
    removed_prefix: list[set[Vertex]] = []
    remaining_vertices = set(graph.vertices())
    graphs_per_layer: list[GraphLike] = []
    for layer in peeling.layers:
        graphs_per_layer.append(graph.subgraph(remaining_vertices))
        removed_prefix.append(set(layer.removed))
        remaining_vertices = remaining_vertices - layer.removed

    coloring: dict[Vertex, Color] = {}
    extensions: list[ExtensionReport] = []
    for index in range(len(peeling.layers) - 1, -1, -1):
        layer = peeling.layers[index]
        current_graph = graphs_per_layer[index]
        coloring, report = extend_coloring_to_happy_set(
            current_graph,
            lists,
            happy=layer.classification.happy,
            rich=layer.classification.rich,
            coloring=coloring,
            radius=layer.radius_used,
            d=d,
            ledger=ledger,
            backend=backend,
        )
        extensions.append(report)

    if verify:
        try:
            verify_list_coloring(graph, coloring, lists)
        except ColoringError as exc:
            raise ColoringError(f"Theorem 1.3 produced an invalid coloring: {exc}") from exc

    return SparseColoringResult(
        d=d,
        coloring=coloring,
        clique=None,
        rounds=ledger.total(),
        peeling=peeling,
        extensions=extensions,
        ledger=ledger,
    )
