"""Corollary 2.3: coloring planar graphs with 6, 4 or 3 (listed) colors.

By Proposition 2.2 (a consequence of Euler's formula), an n-vertex planar
graph of girth at least ``g`` has maximum average degree less than
``2g / (g - 2)``:

* every planar graph (``g >= 3``) has ``mad < 6``            → 6 colors,
* every triangle-free planar graph (``g >= 4``) has ``mad < 4`` → 4 colors,
* every planar graph of girth at least 6 has ``mad < 3``      → 3 colors...

... except that Theorem 1.3 needs ``d >= 3``, so the third item also uses
``d = 3``.  None of the three families can contain a ``(d+1)``-clique
(``K_7`` and ``K_5`` are not planar, ``K_4`` contains a triangle), so the
algorithm always returns a coloring, in ``O(log^3 n)`` rounds.
"""

from __future__ import annotations

from repro.coloring.assignment import ListAssignment
from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.properties.girth import girth, has_triangle
from repro.graphs.properties.planarity import is_planar
from repro.core.sparse_coloring import SparseColoringResult, color_sparse_graph

__all__ = [
    "color_planar_graph",
    "color_triangle_free_planar_graph",
    "color_high_girth_planar_graph",
    "planar_color_budget",
]


def planar_color_budget(graph: Graph) -> int:
    """The number of colors Corollary 2.3 guarantees for this planar graph.

    6 in general, 4 for triangle-free graphs, 3 for girth at least 6.
    """
    if not has_triangle(graph):
        g = girth(graph)
        if g >= 6:
            return 3
        return 4
    return 6


def _check_planarity(graph: Graph, check: bool) -> None:
    if check and not is_planar(graph):
        raise GraphError("the input graph is not planar")


def color_planar_graph(
    graph: Graph,
    lists: ListAssignment | None = None,
    radius: int | None = None,
    verify: bool = True,
    check_planarity: bool = False,
) -> SparseColoringResult:
    """6-(list-)color a planar graph in polylog(n) charged rounds."""
    _check_planarity(graph, check_planarity)
    return color_sparse_graph(
        graph, d=6, lists=lists, radius=radius, verify=verify, clique_check=True
    )


def color_triangle_free_planar_graph(
    graph: Graph,
    lists: ListAssignment | None = None,
    radius: int | None = None,
    verify: bool = True,
    check_planarity: bool = False,
) -> SparseColoringResult:
    """4-(list-)color a triangle-free planar graph."""
    _check_planarity(graph, check_planarity)
    if check_planarity and has_triangle(graph):
        raise GraphError("the input graph contains a triangle")
    return color_sparse_graph(
        graph, d=4, lists=lists, radius=radius, verify=verify, clique_check=True
    )


def color_high_girth_planar_graph(
    graph: Graph,
    lists: ListAssignment | None = None,
    radius: int | None = None,
    verify: bool = True,
    check_planarity: bool = False,
) -> SparseColoringResult:
    """3-(list-)color a planar graph of girth at least 6."""
    _check_planarity(graph, check_planarity)
    if check_planarity and girth(graph) < 6:
        raise GraphError("the input graph has girth smaller than 6")
    return color_sparse_graph(
        graph, d=3, lists=lists, radius=radius, verify=verify, clique_check=True
    )
