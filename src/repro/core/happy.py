"""Rich, poor, happy and sad vertices (Section 3 of the paper).

Fix an integer ``d >= max(3, mad(G))`` and give every vertex a list of ``d``
colors.  The paper classifies the vertices of ``G`` as follows:

* a vertex is **rich** if its degree is at most ``d`` and **poor**
  otherwise (there are at most ``d n / (d+1)`` poor vertices);
* the **rich ball** of a rich vertex ``v`` is ``B_R(v)``, the ball of
  radius ``c log n`` around ``v`` *inside the subgraph induced by the rich
  vertices* (``c = 12 / log(6/5)``);
* a rich vertex is **happy** if its rich ball contains a vertex of degree
  at most ``d - 1`` (in ``G``) or induces a graph that is not a Gallai
  tree; the set of happy vertices is called ``A``;
* the remaining rich vertices are **sad** (set ``S``).

Lemma 3.1 shows ``|A| >= n / (3d)^3`` (and ``|A| >= n / (12 d + 1)`` when
there are no poor vertices), which drives the peeling of
:mod:`repro.core.peeling`.

Happiness is monotone in the radius (an induced subgraph of a Gallai tree
is a Gallai forest, and containing a low-degree vertex only gets easier),
so computing balls with a radius larger than the paper's constant never
hurts correctness; the classifier exploits this with a whole-component
shortcut for components that are certified sad.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.graphs.frozen import FrozenGraph, GraphLike
from repro.graphs.graph import Vertex
from repro.graphs.properties.gallai import is_gallai_forest

__all__ = [
    "paper_radius_constant",
    "default_rich_ball_radius",
    "VertexClassification",
    "classify_vertices",
]


def paper_radius_constant() -> float:
    """The constant ``c = 12 / log2(6/5)`` of Section 3."""
    return 12.0 / math.log2(6.0 / 5.0)


def default_rich_ball_radius(n: int) -> int:
    """The paper's rich-ball radius ``ceil(c log2 n)`` (at least 1)."""
    if n <= 1:
        return 1
    return max(1, math.ceil(paper_radius_constant() * math.log2(n)))


@dataclass
class VertexClassification:
    """The outcome of the rich/poor/happy/sad classification.

    Attributes
    ----------
    happy:
        The set ``A`` of happy vertices.
    sad:
        The set ``S`` of sad (rich but not happy) vertices.
    poor:
        The set ``P`` of vertices of degree greater than ``d``.
    rich:
        ``A ∪ S``.
    radius:
        The rich-ball radius used.
    ball_rounds:
        Rounds a LOCAL algorithm charges to perform the classification
        (collecting a ball of the given radius plus one round to learn
        neighbours' degrees).
    """

    happy: set[Vertex] = field(default_factory=set)
    sad: set[Vertex] = field(default_factory=set)
    poor: set[Vertex] = field(default_factory=set)
    radius: int = 0

    @property
    def rich(self) -> set[Vertex]:
        return self.happy | self.sad

    @property
    def ball_rounds(self) -> int:
        return self.radius + 1


def classify_vertices(
    graph: GraphLike,
    d: int,
    radius: int | None = None,
    slack_vertices: set[Vertex] | None = None,
    rich_vertices: set[Vertex] | None = None,
    engine: str = "scan",
) -> VertexClassification:
    """Classify the vertices of ``graph`` for the parameter ``d``.

    Parameters
    ----------
    graph:
        The input graph (the *current* graph of the peeling iteration);
        either representation works, and a
        :class:`~repro.graphs.frozen.FrozenGraph` input makes the rich
        subgraph, its components and every ball use the CSR fast paths.
    d:
        The color budget (Theorem 1.3's ``d``).
    radius:
        Rich-ball radius; defaults to the paper's ``ceil(c log2 n)``.
    slack_vertices:
        Overrides the set of "degree at most d-1" witnesses.  Theorem 6.1
        (nice list-assignments) passes the set of vertices whose list is
        strictly larger than their degree.
    rich_vertices:
        Overrides the rich set.  Theorem 6.1 passes all vertices.
    engine:
        ``"scan"`` (the historical per-vertex ball walk) or ``"flat"``
        (one multi-source BFS from the slack set over the rich subgraph's
        CSR arrays; Gallai-only corner cases keep the scan semantics).
        Both engines produce identical sets — the flat backend of the
        Theorem 1.3 driver relies on it.

    Returns
    -------
    VertexClassification
    """
    n = graph.number_of_vertices()
    if radius is None:
        radius = default_rich_ball_radius(n)
    degrees = graph.degrees()
    if rich_vertices is None:
        rich_vertices = {v for v, deg in degrees.items() if deg <= d}
    if slack_vertices is None:
        slack_vertices = {v for v, deg in degrees.items() if deg <= d - 1}
    poor = set(graph.vertices()) - rich_vertices

    classification = VertexClassification(poor=poor, radius=radius)
    rich_graph = graph.subgraph(rich_vertices)
    if engine == "flat" and isinstance(rich_graph, FrozenGraph):
        _classify_flat(rich_graph, slack_vertices, radius, classification)
        return classification
    if engine not in ("scan", "flat"):
        raise ValueError(f"unknown classification engine {engine!r}")

    for component in rich_graph.connected_components():
        component_graph = rich_graph.subgraph(component)
        has_witness = bool(component & slack_vertices) or not is_gallai_forest(
            component_graph
        )
        if not has_witness:
            # Shortcut: every ball inside the component is an induced
            # connected subgraph of a Gallai tree with no slack vertex, so
            # every vertex of the component is sad regardless of the radius.
            classification.sad |= component
            continue
        component_size = len(component)
        component_is_gallai: bool | None = None
        for v in component:
            ball = component_graph.ball(v, radius)
            if ball & slack_vertices:
                classification.happy.add(v)
                continue
            if len(ball) == component_size:
                # the ball is the whole component: reuse one Gallai check
                if component_is_gallai is None:
                    component_is_gallai = is_gallai_forest(component_graph)
                gallai = component_is_gallai
            else:
                gallai = is_gallai_forest(component_graph.subgraph(ball))
            if not gallai:
                classification.happy.add(v)
            else:
                classification.sad.add(v)
    return classification


def _classify_flat(
    rich_graph: FrozenGraph,
    slack_vertices: set[Vertex],
    radius: int,
    classification: VertexClassification,
) -> None:
    """Happy/sad split of the rich subgraph via one multi-source BFS.

    A rich vertex whose rich ball contains a slack witness is exactly a
    vertex at distance at most ``radius`` from the slack set *inside the
    rich subgraph* — one depth-limited multi-source BFS over the CSR
    arrays answers that for all vertices at once, replacing the per-vertex
    ball walks of the scan engine.  The vertices the BFS does not settle
    (no slack witness in reach) fall back to the scan engine's exact
    Gallai logic: a whole component without any witness is sad, and the
    rare leftover vertices get their individual ball's Gallai check.
    """
    labels = rich_graph.vertices()
    index_of = rich_graph._index
    sources = sorted(
        index_of[v] for v in slack_vertices if v in index_of
    )
    reached = bytearray(len(labels))
    for frontier in rich_graph.multi_source_levels(sources, radius):
        for i in frontier:
            reached[i] = 1
    happy = classification.happy
    sad = classification.sad
    unreached: list[Vertex] = []
    for i, v in enumerate(labels):
        if reached[i]:
            happy.add(v)
        else:
            unreached.append(v)
    if not unreached:
        return
    pending = set(unreached)
    for component in rich_graph.connected_components():
        leftover = component & pending
        if not leftover:
            continue
        component_graph = rich_graph.subgraph(component)
        has_slack = bool(component & slack_vertices)
        component_is_gallai: bool | None = None
        if not has_slack:
            component_is_gallai = is_gallai_forest(component_graph)
            if component_is_gallai:
                # certified-sad shortcut: every ball is an induced connected
                # subgraph of a Gallai tree with no slack vertex
                sad |= component
                continue
        component_size = len(component)
        for v in leftover:
            ball = component_graph.ball(v, radius)
            if len(ball) == component_size:
                gallai = component_is_gallai
                if gallai is None:
                    component_is_gallai = gallai = is_gallai_forest(component_graph)
            else:
                gallai = is_gallai_forest(component_graph.subgraph(ball))
            if not gallai:
                happy.add(v)
            else:
                sad.add(v)
