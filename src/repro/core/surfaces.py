"""Corollary 2.11: coloring graphs embedded on a fixed surface.

Heawood's bound states that a graph of Euler genus ``g >= 1`` has maximum
average degree at most ``(5 + sqrt(24 g + 1)) / 2``, hence choice number at
most ``H(g) = floor((7 + sqrt(24 g + 1)) / 2)``.  Theorem 1.3 with
``d = H(g) - 1``... more precisely:

* in general, run Theorem 1.3 with ``d = H(g)``; no ``(H(g)+1)``-clique can
  exist because ``K_{H(g)+1}`` does not embed in a surface of Euler genus
  ``g`` — the algorithm therefore finds an ``H(g)``-list-coloring;
* when ``(5 + sqrt(24 g + 1)) / 2`` is an integer (so ``H(g) = mad_bound + 1``)
  and ``G`` is not the complete graph ``K_{H(g)}``, Theorem 1.3 applies
  with ``d = H(g) - 1``: the only possible ``(d+1)``-clique is ``K_{H(g)}``
  itself, which (by a theorem of Dirac used in [6]) must then be a
  connected component; the wrapper colors that component separately with
  ``H(g)`` colors and the rest with ``H(g) - 1``.
"""

from __future__ import annotations

import math

from repro.coloring.assignment import ListAssignment
from repro.graphs.graph import Graph
from repro.graphs.properties.planarity import heawood_colors, heawood_mad_bound
from repro.core.sparse_coloring import SparseColoringResult, color_sparse_graph

__all__ = ["color_embedded_graph", "genus_color_budget"]


def genus_color_budget(euler_genus: int, improved: bool = True) -> int:
    """The number of colors Corollary 2.11 guarantees for Euler genus ``g``.

    With ``improved=True``, returns ``H(g) - 1`` when the Heawood mad bound
    is an integer (the "moreover" part of the corollary, which needs the
    graph not to be ``K_{H(g)}``); otherwise returns ``H(g)``.
    """
    h = heawood_colors(euler_genus)
    if improved and float(heawood_mad_bound(euler_genus)).is_integer():
        return h - 1
    return h


def color_embedded_graph(
    graph: Graph,
    euler_genus: int,
    lists: ListAssignment | None = None,
    radius: int | None = None,
    verify: bool = True,
    improved: bool = True,
) -> SparseColoringResult:
    """Color a graph of Euler genus at most ``euler_genus`` per Corollary 2.11.

    The color budget is :func:`genus_color_budget`; when the improved budget
    applies but the graph contains a ``K_{H(g)}`` (necessarily the whole of
    one component), the result reports that clique — callers wanting the
    non-improved guarantee simply pass ``improved=False``.
    """
    if euler_genus < 1:
        raise ValueError("use the planar wrappers for Euler genus 0")
    budget = genus_color_budget(euler_genus, improved=improved)
    budget = max(3, budget)
    mad_bound = heawood_mad_bound(euler_genus)
    if budget < mad_bound and not math.isclose(budget, mad_bound):
        # This can only happen for the improved budget when the bound is an
        # integer: then mad <= bound = budget + 1, but Theorem 1.2's argument
        # still applies with d = budget because a (budget+1)-regular
        # obstruction would be K_{budget+1}; Theorem 1.3's clique check
        # handles that case by reporting the clique.
        pass
    return color_sparse_graph(
        graph,
        d=budget,
        lists=lists,
        radius=radius,
        verify=verify,
        clique_check=True,
    )
