"""Iterative peeling of happy-vertex sets (proof of Theorem 1.3, first half).

The driver of Theorem 1.3 repeatedly computes the happy set ``A_i`` of the
current graph ``G_i`` and removes it, producing ``G_{i+1} = G_i - A_i``.
Lemma 3.1 guarantees ``|A_i| >= |V(G_i)| / (3d)^3`` (and
``>= |V(G_i)| / (12d+1)`` when ``G_i`` has no poor vertex), so the number
of layers is ``O(d^3 log n)`` (respectively ``O(d log n)``); each layer
costs ``O(log n)`` rounds (one rich-ball collection).

At the small graph sizes a Python simulation can handle, the paper's
rich-ball radius ``c log2 n`` usually exceeds the diameter, which makes
*more* vertices happy than the worst-case analysis needs (happiness is
monotone in the radius).  When the caller requests a smaller radius (to
observe the locality/progress trade-off), the peeling may stall — no vertex
is happy at that radius even though the graph is non-empty.  In that case
the radius is doubled and the extra rounds are charged, which preserves
both correctness and a polylogarithmic total.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ColoringError
from repro.graphs.frozen import FrozenGraph, GraphLike
from repro.graphs.graph import Vertex
from repro.local.ledger import RoundLedger
from repro.core.happy import VertexClassification, classify_vertices, default_rich_ball_radius

__all__ = ["PeelingLayer", "PeelingResult", "peel_happy_layers"]


@dataclass
class PeelingLayer:
    """One peeling iteration: the classification of ``G_i`` and the removed set."""

    index: int
    classification: VertexClassification
    removed: set[Vertex]
    graph_size: int
    radius_used: int


@dataclass
class PeelingResult:
    """All peeling layers plus round accounting."""

    layers: list[PeelingLayer] = field(default_factory=list)
    ledger: RoundLedger = field(default_factory=RoundLedger)

    @property
    def number_of_layers(self) -> int:
        return len(self.layers)

    def removed_sets(self) -> list[set[Vertex]]:
        return [layer.removed for layer in self.layers]

    def happy_fractions(self) -> list[float]:
        """``|A_i| / |V(G_i)|`` for every layer (the Lemma 3.1 quantity)."""
        return [
            len(layer.removed) / layer.graph_size
            for layer in self.layers
            if layer.graph_size
        ]


def peel_happy_layers(
    graph: GraphLike,
    d: int,
    radius: int | None = None,
    slack_fn=None,
    rich_fn=None,
    max_layers: int | None = None,
    backend: str = "flat",
) -> PeelingResult:
    """Peel happy sets until the graph is empty.

    Parameters
    ----------
    graph, d:
        The instance (``d >= max(3, mad(G))``).  A
        :class:`~repro.graphs.frozen.FrozenGraph` input keeps every layer
        on the CSR fast paths (each ``G_{i+1}`` is a vectorized induced
        subgraph instead of a mutate-in-place copy).
    radius:
        Initial rich-ball radius (defaults to the paper's constant).  If a
        peeling iteration finds no happy vertex, the radius is doubled and
        the iteration retried (see the module docstring).
    slack_fn, rich_fn:
        Optional callables ``(current_graph) -> set`` overriding the
        low-degree-witness and rich sets (used by Theorem 6.1).
    max_layers:
        Safety cap on the number of layers (defaults to ``4 n``).
    backend:
        ``"dict"`` classifies with the per-vertex scan engine; ``"flat"``
        uses the multi-source-BFS engine of
        :func:`~repro.core.happy.classify_vertices` (identical layers, the
        flat palette pipeline's fast path).

    Returns
    -------
    PeelingResult
    """
    n = graph.number_of_vertices()
    engine = "flat" if backend == "flat" else "scan"
    use_frozen = isinstance(graph, FrozenGraph)
    working = graph if use_frozen else graph.copy()
    result = PeelingResult()
    if n == 0:
        return result
    base_radius = radius if radius is not None else default_rich_ball_radius(n)
    cap = max_layers if max_layers is not None else 4 * n + 8
    index = 0
    while not working.is_empty():
        index += 1
        if index > cap:
            raise ColoringError(
                "peeling exceeded the layer cap; is d >= mad(G)?"
            )
        current_radius = base_radius
        while True:
            classification = classify_vertices(
                working,
                d,
                radius=current_radius,
                slack_vertices=slack_fn(working) if slack_fn else None,
                rich_vertices=rich_fn(working) if rich_fn else None,
                engine=engine,
            )
            result.ledger.charge(
                "Lemma 3.1: rich-ball collection",
                classification.ball_rounds,
                reference="happy-vertex detection",
            )
            if classification.happy:
                break
            if current_radius >= max(working.number_of_vertices(), 1):
                raise ColoringError(
                    "no happy vertex exists even with a whole-graph radius; "
                    "the promise d >= mad(G) (and no (d+1)-clique) is violated"
                )
            current_radius = min(
                max(2 * current_radius, 2), max(working.number_of_vertices(), 2)
            )
        layer = PeelingLayer(
            index=index,
            classification=classification,
            removed=set(classification.happy),
            graph_size=working.number_of_vertices(),
            radius_used=current_radius,
        )
        result.layers.append(layer)
        if use_frozen:
            working = working.subgraph(
                set(working.vertices()) - classification.happy
            )
        else:
            working.remove_vertices(classification.happy)
    return result
