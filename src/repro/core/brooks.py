"""Corollary 2.1 and Theorem 6.1: Brooks-type list-coloring.

* **Corollary 2.1** — for a graph of maximum degree ``Δ >= 3`` and any
  Δ-list-assignment, either find an L-list-coloring or report that none
  exists (which happens exactly when some connected component is a
  ``K_{Δ+1}`` whose lists make the coloring impossible — in the uniform
  case, whenever a ``K_{Δ+1}`` component exists).  This follows from
  Theorem 1.3 with ``d = Δ`` because ``mad(G) <= Δ`` always holds.

* **Theorem 6.1** — *nice* list-assignments: every vertex ``v`` has
  ``|L(v)| >= d(v)``, except that vertices with ``d(v) <= 2`` or whose
  neighbourhood is a clique must have ``|L(v)| >= d(v) + 1``.  The same
  peeling/extension machinery applies with per-vertex budgets: every vertex
  is rich, and the slack witnesses are the vertices whose list is strictly
  larger than their current degree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.coloring.assignment import Color, ListAssignment, uniform_lists
from repro.coloring.verification import verify_list_coloring
from repro.errors import ColoringError, ListAssignmentError
from repro.graphs.graph import Graph, Vertex
from repro.graphs.properties.cliques import find_clique_of_size, is_clique
from repro.local.ledger import RoundLedger
from repro.core.extension import extend_coloring_to_happy_set
from repro.core.peeling import peel_happy_layers
from repro.core.sparse_coloring import SparseColoringResult, color_sparse_graph

__all__ = [
    "brooks_list_coloring",
    "nice_list_coloring",
    "is_nice_list_assignment",
    "NiceListColoringResult",
]


def brooks_list_coloring(
    graph: Graph,
    max_degree: int | None = None,
    lists: ListAssignment | None = None,
    radius: int | None = None,
    verify: bool = True,
) -> SparseColoringResult:
    """Corollary 2.1: Δ-list-coloring of graphs of maximum degree Δ >= 3.

    Returns a :class:`SparseColoringResult`; when a ``K_{Δ+1}`` is present
    the result carries the clique instead of a coloring (with uniform lists
    this means no Δ-coloring exists; with general lists a coloring might
    still exist for that particular assignment, which the caller can check
    with the exact solver).
    """
    delta = graph.max_degree() if max_degree is None else max_degree
    if delta < 3:
        raise ValueError("Corollary 2.1 requires maximum degree at least 3")
    return color_sparse_graph(
        graph, d=delta, lists=lists, radius=radius, verify=verify, clique_check=True
    )


def is_nice_list_assignment(graph: Graph, lists: ListAssignment) -> bool:
    """Check the "nice" condition of Theorem 6.1.

    Every vertex ``v`` needs ``|L(v)| >= d(v)``; vertices of degree at most
    2 and vertices whose neighbourhood induces a clique need
    ``|L(v)| >= d(v) + 1``.
    """
    for v in graph:
        degree = graph.degree(v)
        needed = degree
        if degree <= 2 or is_clique(graph, graph.neighbors(v)):
            needed = degree + 1
        if len(lists.get(v)) < needed:
            return False
    return True


@dataclass
class NiceListColoringResult:
    """Outcome of the Theorem 6.1 algorithm."""

    coloring: dict[Vertex, Color]
    rounds: int
    ledger: RoundLedger = field(default_factory=RoundLedger)


def nice_list_coloring(
    graph: Graph,
    lists: ListAssignment,
    radius: int | None = None,
    verify: bool = True,
    check_nice: bool = True,
) -> NiceListColoringResult:
    """Theorem 6.1: L-list-color a graph with a nice list-assignment.

    Runs the peeling/extension machinery with per-vertex budgets: all
    vertices are rich, the slack witnesses of an iteration are the vertices
    whose list is strictly larger than their degree in the current graph,
    and the stable partition uses ``Δ + 1`` classes.
    """
    if check_nice and not is_nice_list_assignment(graph, lists):
        raise ListAssignmentError(
            "the list assignment is not nice (Theorem 6.1's hypothesis)"
        )
    ledger = RoundLedger()
    if graph.number_of_vertices() == 0:
        return NiceListColoringResult({}, 0, ledger)
    delta = max(3, graph.max_degree())

    def slack_fn(current: Graph) -> set[Vertex]:
        return {v for v in current if len(lists[v]) > current.degree(v)}

    def rich_fn(current: Graph) -> set[Vertex]:
        return set(current.vertices())

    peeling = peel_happy_layers(
        graph, d=delta, radius=radius, slack_fn=slack_fn, rich_fn=rich_fn
    )
    ledger.extend(peeling.ledger)

    remaining = set(graph.vertices())
    graphs_per_layer = []
    for layer in peeling.layers:
        graphs_per_layer.append(graph.subgraph(remaining))
        remaining -= layer.removed

    coloring: dict[Vertex, Color] = {}
    for index in range(len(peeling.layers) - 1, -1, -1):
        layer = peeling.layers[index]
        coloring, _report = extend_coloring_to_happy_set(
            graphs_per_layer[index],
            lists,
            happy=layer.classification.happy,
            rich=layer.classification.rich,
            coloring=coloring,
            radius=layer.radius_used,
            d=delta,
            ledger=ledger,
        )

    if verify:
        try:
            verify_list_coloring(graph, coloring, lists)
        except ColoringError as exc:
            raise ColoringError(
                f"Theorem 6.1 produced an invalid coloring: {exc}"
            ) from exc
    return NiceListColoringResult(
        coloring=coloring, rounds=ledger.total(), ledger=ledger
    )
