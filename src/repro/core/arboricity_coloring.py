"""Corollary 1.4: 2a-list-coloring of graphs of arboricity ``a >= 2``.

A graph of arboricity ``a`` has at most ``a (n - 1)`` edges in every
subgraph, hence maximum average degree at most ``2a``, and it cannot
contain a clique on ``2a + 1`` vertices (such a clique would have
arboricity ``ceil((2a+1)/2) = a + 1 > a``).  Theorem 1.3 with ``d = 2a``
therefore colors it from lists of size ``2a`` in ``O(a^4 log^3 n)`` rounds.
This improves the ``floor((2+eps) a) + 1``-color bound of Barenboim–Elkin
by at least one color.

The ``a = 1`` case (forests) is excluded: Linial's lower bound shows that
2-coloring a path takes ``Omega(n)`` rounds, so no polylogarithmic
algorithm can achieve ``2a`` colors there.
"""

from __future__ import annotations

from repro.coloring.assignment import ListAssignment
from repro.graphs.graph import Graph
from repro.core.sparse_coloring import SparseColoringResult, color_sparse_graph

__all__ = ["color_bounded_arboricity_graph"]


def color_bounded_arboricity_graph(
    graph: Graph,
    arboricity: int,
    lists: ListAssignment | None = None,
    radius: int | None = None,
    verify: bool = True,
    backend: str = "flat",
) -> SparseColoringResult:
    """Color a graph of arboricity ``a >= 2`` with ``2a`` (listed) colors.

    Parameters mirror :func:`repro.core.sparse_coloring.color_sparse_graph`;
    the color budget is ``d = 2 * arboricity``.  The clique check is kept
    on so that a violated promise (a graph of larger arboricity containing
    ``K_{2a+1}``) is reported as a clique rather than as a failure deep in
    the extension.
    """
    if arboricity < 2:
        raise ValueError(
            "Corollary 1.4 requires arboricity >= 2 "
            "(trees cannot be 2-colored in o(n) rounds; see Linial's bound)"
        )
    return color_sparse_graph(
        graph,
        d=2 * arboricity,
        lists=lists,
        radius=radius,
        verify=verify,
        clique_check=True,
        backend=backend,
    )
