"""Extending a partial list-coloring to the happy set (Lemma 3.2).

Given the graph ``G_i`` of a peeling iteration, its happy set ``A_i`` and a
list-coloring of ``G_i - A_i``, this module extends the coloring to all of
``G_i`` in ``O(d log^2 n)`` charged rounds, following the proof of
Lemma 3.2:

1. compute a ``(k, k log n)``-ruling forest of ``G_i[R_i]`` with respect to
   ``A_i`` (``k`` is twice the rich-ball radius, plus a small constant so
   that the rich balls of distinct roots are disjoint and non-adjacent);
2. let ``T`` be the union of the tree vertices; uncolor ``T ∩ S_i``; prune
   the list of every vertex of ``T`` by the colors of its neighbours
   outside ``T`` (Observation 5.1 keeps the lists at least as large as the
   uncolored degrees);
3. compute a proper ``(d+1)``-coloring of ``H = G_i[T]`` (the "stable
   partition" of the paper) with the distributed Linial + reduction
   subroutine;
4. color the tree vertices from the deepest layer towards the roots, one
   (depth, stable-class) pair at a time; every vertex still has its parent
   uncolored when its turn comes, so its pruned list has a free color;
5. the roots are happy: uncolor the whole rich ball of every root, prune
   lists by the colors outside the ball, and apply Theorem 1.1
   (:func:`repro.coloring.borodin_ert.degree_list_coloring`) to each ball —
   the ball contains a vertex with spare colors or is not a Gallai tree, so
   the constructive solver succeeds.

Every phase charges rounds to the shared ledger with a reference to the
paper's accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.coloring.assignment import Color, ListAssignment
from repro.coloring.borodin_ert import degree_list_coloring
from repro.coloring.palette import FlatListAssignment
from repro.errors import ColoringError, ListAssignmentError
from repro.graphs.frozen import FrozenGraph
from repro.graphs.graph import Graph, Vertex
from repro.local.ledger import RoundLedger
from repro.distributed.linial import delta_plus_one_coloring
from repro.distributed.ruling import ruling_forest

__all__ = ["ExtensionReport", "extend_coloring_to_happy_set"]


@dataclass
class ExtensionReport:
    """Bookkeeping of one extension step (useful for the Lemma 3.2 benchmarks)."""

    roots: int
    tree_vertices: int
    recolored_sad_vertices: int
    rounds: int
    ledger: RoundLedger = field(default_factory=RoundLedger)


def extend_coloring_to_happy_set(
    graph: Graph,
    lists: ListAssignment,
    happy: set[Vertex],
    rich: set[Vertex],
    coloring: dict[Vertex, Color],
    radius: int,
    d: int,
    ledger: RoundLedger | None = None,
    backend: str = "flat",
) -> tuple[dict[Vertex, Color], ExtensionReport]:
    """Extend ``coloring`` (defined on ``graph`` minus ``happy``) to all of ``graph``.

    Parameters
    ----------
    graph:
        The graph ``G_i`` of the peeling iteration.
    lists:
        The full list assignment (size ``d`` lists, or nice lists).
    happy, rich:
        The sets ``A_i`` and ``R_i`` computed by the classification of the
        same iteration (with the same ``radius``).
    coloring:
        A proper list-coloring of ``graph`` restricted to ``V - happy``.
        The returned coloring may change the colors of some sad vertices,
        exactly as in the paper.
    radius:
        The rich-ball radius used by the classification.
    d:
        The color budget (only used for the size of the stable partition).
    backend:
        ``"dict"`` runs the historical per-vertex set algebra; ``"flat"``
        (frozen graphs) runs the same phases on the flat substrate — CSR
        ruling probes, the batched Linial/color-reduction stable
        partition, and bitmask pruning/tie-breaks over the interned
        palette.  Colorings and charged rounds are identical between the
        two (the parity suite asserts it).

    Returns
    -------
    (new_coloring, report)
    """
    ledger = ledger if ledger is not None else RoundLedger()
    report = ExtensionReport(roots=0, tree_vertices=0, recolored_sad_vertices=0, rounds=0, ledger=ledger)
    if not happy:
        return dict(coloring), report
    use_flat = backend == "flat" and isinstance(graph, FrozenGraph)

    rich_graph = graph.subgraph(rich)
    # Roots must be far enough apart that their rich balls are disjoint and
    # non-adjacent: distance >= 2*radius + 2 suffices.
    alpha = 2 * radius + 2
    identifiers = {v: i + 1 for i, v in enumerate(graph.vertices())}
    forest = ruling_forest(
        rich_graph, set(happy), alpha, identifiers=identifiers,
        engine="csr" if use_flat else "labels",
    )
    ledger.charge(
        "Lemma 3.2: ruling forest",
        forest.rounds,
        reference="Awerbuch et al. (k, k log n)-ruling forest",
    )

    tree_vertices = forest.vertices()
    new_coloring = dict(coloring)
    uncolored: set[Vertex] = set()
    for v in tree_vertices:
        if v in happy:
            uncolored.add(v)
        elif v in new_coloring:
            # sad vertex swept into a tree: uncolor it (the paper allows
            # recoloring vertices of S)
            del new_coloring[v]
            uncolored.add(v)
            report.recolored_sad_vertices += 1
        else:
            uncolored.add(v)
    report.tree_vertices = len(tree_vertices)
    report.roots = len(forest.roots)

    tree_graph = graph.subgraph(tree_vertices)

    # Stable partition of H = G[T] into at most d+1 classes.
    stable = delta_plus_one_coloring(tree_graph, max_degree=d, batched=use_flat)
    ledger.charge(
        "Lemma 3.2: (d+1) stable partition of the trees",
        stable.rounds,
        reference="Linial + color reduction (paper quotes GPS [17])",
    )

    # The flat path tracks the coloring twice: the label dict (the public
    # result) and an interned color-index array over the CSR indices that
    # the mask kernels read and write.
    flat_state: _FlatColoringState | None = None
    if use_flat:
        flat_state = _FlatColoringState(graph, lists.flat, new_coloring)

    # Layered coloring: deepest tree layer first, one stable class at a time.
    max_depth = max(forest.depth.values(), default=0)
    layer_rounds = 0
    buckets: dict[tuple[int, int], list[Vertex]] | None = None
    if flat_state is not None:
        # one grouping pass instead of a tree scan per (depth, class) pair;
        # every vertex sits in exactly one bucket, so the batches (and
        # their order) match the scan
        buckets = {}
        for v in tree_vertices:
            if v in uncolored:
                key = (forest.depth[v], stable.coloring.get(v))
                buckets.setdefault(key, []).append(v)
    for depth in range(max_depth, 0, -1):
        for stable_class in range(d + 1):
            if buckets is not None:
                batch = buckets.get((depth, stable_class), [])
            else:
                batch = [
                    v
                    for v in tree_vertices
                    if forest.depth[v] == depth
                    and stable.coloring.get(v) == stable_class
                    and v in uncolored
                ]
            if batch:
                if flat_state is not None:
                    flat_state.color_batch(new_coloring, batch)
                else:
                    _color_batch(graph, lists, new_coloring, batch)
                for v in batch:
                    uncolored.discard(v)
            layer_rounds += 1
    ledger.charge(
        "Lemma 3.2: layered coloring of the trees",
        layer_rounds,
        reference="depth x (d+1) greedy sweeps",
    )

    # Roots: uncolor the whole rich ball and apply Theorem 1.1.
    ball_rounds = 0
    for root in forest.roots:
        ball = rich_graph.ball(root, radius)
        for v in ball:
            if v in new_coloring:
                del new_coloring[v]
                if flat_state is not None:
                    flat_state.uncolor(v)
                if v not in happy:
                    report.recolored_sad_vertices += 1
        if flat_state is not None:
            ball_lists = flat_state.pruned_ball_lists(ball)
        else:
            pruned: dict[Vertex, frozenset] = {}
            for v in ball:
                used = {
                    new_coloring[u]
                    for u in graph.neighbors(v)
                    if u in new_coloring and u not in ball
                }
                pruned[v] = lists[v] - used
            ball_lists = ListAssignment(pruned)
        ball_graph = graph.subgraph(ball)
        try:
            ball_coloring = degree_list_coloring(ball_graph, ball_lists)
        except ColoringError as exc:
            raise ColoringError(
                f"Theorem 1.1 extension failed on the rich ball of root {root!r}: {exc}"
            ) from exc
        new_coloring.update(ball_coloring)
        if flat_state is not None:
            for v, color in ball_coloring.items():
                flat_state.set_color(v, color)
        for v in ball:
            uncolored.discard(v)
        ball_rounds = max(ball_rounds, 2 * radius)
    ledger.charge(
        "Lemma 3.2: Theorem 1.1 on the root balls",
        ball_rounds,
        reference="Borodin / Erdős–Rubin–Taylor",
    )

    if uncolored:
        leftover = sorted(map(repr, uncolored))[:5]
        raise ColoringError(
            f"extension left {len(uncolored)} vertices uncolored, e.g. {leftover}"
        )
    report.rounds = ledger.total()
    return new_coloring, report


class _FlatColoringState:
    """Interned mirror of a partial coloring over a frozen graph's indices.

    Keeps ``color_index[i]`` (the palette-universe index of the color of
    the vertex at CSR index ``i``, or ``-1``) in sync with the label dict,
    so the hot kernels — layered tree coloring, Observation 5.1 pruning on
    the root balls — run as integer mask ops over the CSR arrays instead
    of per-vertex set algebra.  Tie-breaks read the lowest set bit, which
    by the universe's repr-sorted interning equals the dict pipeline's
    ``min(available, key=repr)``.
    """

    __slots__ = ("graph", "lists", "universe", "color_index",
                 "_offsets", "_neighbors", "_index")

    def __init__(
        self,
        graph: FrozenGraph,
        lists: FlatListAssignment,
        coloring: dict[Vertex, Color],
    ):
        self.graph = graph
        self.lists = lists
        self.universe = lists.universe
        self._offsets, self._neighbors = graph.csr_lists()
        self._index = graph._index
        get_index = self.universe.get_index
        self.color_index = [-1] * len(graph)
        for v, color in coloring.items():
            i = self._index.get(v)
            if i is not None:
                self.color_index[i] = get_index(color)

    def uncolor(self, v: Vertex) -> None:
        self.color_index[self._index[v]] = -1

    def set_color(self, v: Vertex, color: Color) -> None:
        self.color_index[self._index[v]] = self.universe.get_index(color)

    def _used_mask(self, i: int, skip=None) -> int:
        """OR of the color bits of ``i``'s colored neighbours (skipping a set)."""
        used = 0
        color_index = self.color_index
        neighbors = self._neighbors
        for k in range(self._offsets[i], self._offsets[i + 1]):
            j = neighbors[k]
            if skip is not None and j in skip:
                continue
            c = color_index[j]
            if c >= 0:
                used |= 1 << c
        return used

    def color_batch(
        self, coloring: dict[Vertex, Color], batch: list[Vertex]
    ) -> None:
        """Flat twin of :func:`_color_batch` (identical picks).

        The batch is a stable set, so the used masks of all members are
        independent and the picks go through the palette's
        :meth:`~repro.coloring.palette.FlatListAssignment.first_free_colors`
        batch kernel in one call.
        """
        index = self._index
        indices = [index[v] for v in batch]
        used = [self._used_mask(i) for i in indices]
        try:
            picks = self.lists.first_free_colors(batch, used)
        except ListAssignmentError as exc:
            raise ColoringError(
                f"layered tree coloring ran out of colors ({exc}); "
                "this indicates a violated invariant of Lemma 3.2"
            ) from exc
        get_index = self.universe.get_index
        for v, i, color in zip(batch, indices, picks):
            coloring[v] = color
            self.color_index[i] = get_index(color)

    def pruned_ball_lists(self, ball: set[Vertex]) -> ListAssignment:
        """Observation 5.1 pruning of a root ball, as mask operations."""
        index = self._index
        ball_idx = {index[v] for v in ball}
        vertices = []
        masks = []
        mask_of = self.lists.mask_of
        for v in ball:
            vertices.append(v)
            masks.append(mask_of(v) & ~self._used_mask(index[v], skip=ball_idx))
        return ListAssignment(
            FlatListAssignment.from_masks(self.universe, vertices, masks)
        )


def _color_batch(
    graph: Graph,
    lists: ListAssignment,
    coloring: dict[Vertex, Color],
    batch: list[Vertex],
) -> None:
    """Color a stable set of tree vertices greedily from their pruned lists."""
    for v in batch:
        used = {coloring[u] for u in graph.neighbors(v) if u in coloring}
        available = lists[v] - used
        if not available:
            raise ColoringError(
                f"layered tree coloring ran out of colors at vertex {v!r}; "
                "this indicates a violated invariant of Lemma 3.2"
            )
        coloring[v] = min(available, key=repr)
