"""Seeded, content-addressed instance corpus (see ``docs/verification.md``).

``repro.corpus`` gives every suite — tests, scenarios, benchmarks, the
locality audits — the *same* named instances instead of ad-hoc
regeneration: :class:`InstanceSpec` pins a generator family + parameters +
seed, :func:`graph_digest` fingerprints the generated graph, and
:class:`InstanceCorpus` materializes specs lazily with optional disk
caching (``REPRO_CORPUS_DIR``).  The golden seed-stability tests pin the
digests of :data:`STANDARD_INSTANCES` so generator drift fails loudly.
"""

from repro.corpus.instances import (
    FAMILIES,
    Family,
    InstanceCorpus,
    InstanceSpec,
    STANDARD_INSTANCES,
    default_corpus,
    graph_digest,
    standard_instance,
)

__all__ = [
    "FAMILIES",
    "Family",
    "InstanceCorpus",
    "InstanceSpec",
    "STANDARD_INSTANCES",
    "default_corpus",
    "graph_digest",
    "standard_instance",
]
