"""The content-addressed instance corpus.

Tests, scenarios and benchmarks used to regenerate graphs ad hoc, each with
its own seed conventions; the corpus replaces that with *named, seeded,
content-addressed* instances:

* an :class:`InstanceSpec` pins a generator family, its parameters and a
  seed; its canonical name (``family/k=v,...``) doubles as the cache key;
* :func:`graph_digest` fingerprints the *generated graph itself* (an
  order-independent SHA-256 over vertices and edges), so the golden tests
  can pin digests and any silent generator drift fails loudly;
* :class:`InstanceCorpus` materializes specs lazily, memoizes frozen views
  in memory, and (optionally) caches generated graphs on disk — keyed by
  the spec digest, validated against the content digest on load, and
  written atomically so parallel workers can share one cache directory.

The generator matrix (:data:`FAMILIES`) spans every family the paper's
experiments draw from: planar triangulations, bounded-mad/degenerate
graphs, forest unions, surface grids, k-trees, power-law graphs, plus the
deterministic classics (paths, grids, toruses) and the degenerate edge
cases (empty and single-vertex instances) that once lived only in bug
reports.  The ``stream-*`` families are the million-node tier: their
builders return identity-labelled :class:`FrozenGraph` objects directly
(see :mod:`repro.graphs.generators.streaming`), they are cached on disk
as memory-mappable npz files keyed by content digest, and
:func:`graph_digest` hashes their CSR arrays in vectorized passes instead
of walking a Python edge list.
"""

from __future__ import annotations

import ast
import hashlib
import itertools
import json
import os
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import GeneratorError, GraphError
from repro.graphs.frozen import HAS_NUMPY, FrozenGraph, freeze
from repro.graphs.graph import Graph
from repro.graphs.generators import classic, planar, sparse, streaming, surfaces

if HAS_NUMPY:
    import numpy as _np

__all__ = [
    "Family",
    "FAMILIES",
    "InstanceSpec",
    "graph_digest",
    "InstanceCorpus",
    "default_corpus",
    "STANDARD_INSTANCES",
    "standard_instance",
]

@dataclass(frozen=True)
class Family:
    """One generator family of the corpus matrix."""

    name: str
    builder: Callable[..., Graph]
    description: str
    #: whether the builder takes a ``seed`` keyword (deterministic
    #: constructions like grids and toruses do not)
    seeded: bool = True
    #: streaming families build FrozenGraphs directly from edge ndarrays
    #: and cache on disk as npz instead of JSON edge lists
    streaming: bool = False


FAMILIES: dict[str, Family] = {
    family.name: family
    for family in (
        Family("planar-tri", planar.stacked_triangulation,
               "stacked planar triangulation (Apollonian), mad < 6", True),
        Family("bounded-mad", sparse.random_degenerate_graph,
               "random k-degenerate graph, mad <= 2k", True),
        Family("forest-union", sparse.union_of_random_forests,
               "union of random spanning forests, arboricity <= a", True),
        Family("k-tree", sparse.random_k_tree,
               "random k-tree: maximal treewidth-k, (k+1)-clique witness", True),
        Family("power-law", sparse.preferential_attachment,
               "preferential attachment, heavy-tailed degrees, m-degenerate", True),
        Family("regular", classic.random_regular_graph,
               "random d-regular graph (configuration model)", True),
        Family("torus", surfaces.toroidal_triangular_grid,
               "6-regular toroidal triangular grid (Euler genus 2)", False),
        Family("klein", surfaces.klein_bottle_grid,
               "Klein-bottle grid of the lower-bound constructions", False),
        Family("grid", classic.grid_2d,
               "planar rectangular grid (bipartite, girth 4)", False),
        Family("path", classic.path, "path on n vertices", False),
        Family("empty", classic.empty_graph, "n isolated vertices", False),
        Family("stream-degenerate", streaming.stream_degenerate_graph,
               "streaming random k-degenerate graph (million-node tier)",
               True, True),
        Family("stream-forest", streaming.stream_forest_union,
               "streaming union of random spanning forests", True, True),
        Family("stream-k-tree", streaming.stream_k_tree,
               "streaming random k-tree (treewidth k)", True, True),
        Family("stream-power-law", streaming.stream_power_law,
               "streaming chunked preferential attachment", True, True),
        Family("stream-torus", streaming.stream_torus,
               "shuffled 6-regular toroidal grid, integer labels", False, True),
    )
}


@dataclass(frozen=True)
class InstanceSpec:
    """A generator family plus pinned parameters: one corpus instance.

    ``params`` are the builder's keyword arguments (the seed included, for
    seeded families).  The canonical ``name`` — ``family/k=v,...`` with
    keys sorted — is the corpus naming scheme documented in
    ``docs/verification.md``; ``spec_key`` is its SHA-256 prefix, used as
    the content address of the disk cache.
    """

    family: str
    params: tuple[tuple[str, Any], ...] = field(default=())

    @classmethod
    def of(cls, family: str, **params: Any) -> "InstanceSpec":
        if family not in FAMILIES:
            raise GeneratorError(
                f"unknown corpus family {family!r}; known: {sorted(FAMILIES)}"
            )
        return cls(family=family, params=tuple(sorted(params.items())))

    @property
    def name(self) -> str:
        inner = ",".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.family}/{inner}" if inner else self.family

    @property
    def spec_key(self) -> str:
        payload = json.dumps(
            {"family": self.family, "params": [[k, repr(v)] for k, v in self.params]},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def build(self) -> Graph:
        """Generate a fresh mutable graph for this spec."""
        return FAMILIES[self.family].builder(**dict(self.params))


def _decimal_lengths(x):
    """Digit count of every entry of a nonnegative int64 array."""
    lengths = _np.ones(len(x), dtype=_np.int64)
    if len(x) == 0:
        return lengths
    top = int(x.max())
    bound = 10
    while bound <= top:
        lengths += x >= bound
        bound *= 10
    return lengths


def _lex_composites(x, width):
    """Int64 keys whose numeric order equals the *string* order of ``str(x)``.

    ``str(a) < str(b)`` iff the zero-right-padded value of ``a`` (to
    ``width`` digits) is smaller, with digit count breaking the tie (the
    prefix rule: ``"1" < "10"``).  Both criteria packed into one int64 so
    string comparisons and sorts become integer ops — this is what makes
    the digest fast path fast.  Returns ``(composite, digit_lengths)``.
    """
    lengths = _decimal_lengths(x)
    padded = x * 10 ** (width - lengths)
    return padded * (width + 1) + lengths, lengths


def _pack_decimal_rows(prefix: int, seps, columns, lengths):
    """Concatenated ``prefix dec(col0) sep dec(col1) ...`` rows as uint8.

    Builds the exact byte stream the slow digest path would hash — decimal
    reprs of varying width — without creating a single Python string: row
    offsets come from a cumsum of digit counts and every digit position is
    one vectorized scatter.
    """
    rows = len(columns[0])
    row_w = _np.full(rows, 1 + len(seps), dtype=_np.int64)
    for col_lengths in lengths:
        row_w += col_lengths
    starts = _np.zeros(rows + 1, dtype=_np.int64)
    _np.cumsum(row_w, out=starts[1:])
    buf = _np.empty(int(starts[-1]), dtype=_np.uint8)
    pos = starts[:-1].copy()
    buf[pos] = prefix
    pos += 1
    for index, (col, col_lengths) in enumerate(zip(columns, lengths)):
        if index:
            buf[pos] = seps[index - 1]
            pos += 1
        end = pos + col_lengths
        power = 1
        for d in range(int(col_lengths.max()) if rows else 0):
            mask = col_lengths > d
            digit = (col[mask] // power) % 10
            buf[end[mask] - 1 - d] = digit + 48  # ord("0")
            power *= 10
        pos = end
    return buf


def _csr_digest(graph: FrozenGraph) -> str:
    """Digest fast path: hash the CSR arrays of an identity-labelled graph.

    Byte-for-byte the same hash stream as the slow path — vertex reprs in
    lexicographic order, then per-edge ``min/max`` repr pairs in
    lexicographic pair order — but assembled with integer numpy passes
    (see :func:`_lex_composites`).  Only valid for identity labels, where
    ``repr(label) == str(index)``.
    """
    h = hashlib.sha256()
    n = len(graph)
    offsets, neighbors = graph.csr_arrays()
    width = len(str(n - 1)) if n else 1
    ids = _np.arange(n, dtype=_np.int64)
    vkeys, vlengths = _lex_composites(ids, width)
    order = _np.argsort(vkeys)
    h.update(_pack_decimal_rows(ord("v"), (), [ids[order]], [vlengths[order]]))
    src = _np.repeat(ids, _np.diff(offsets))
    neighbors = _np.asarray(neighbors)
    keep = src < neighbors  # each undirected edge once
    a, b = src[keep], neighbors[keep]
    akeys, alengths = _lex_composites(a, width)
    bkeys, blengths = _lex_composites(b, width)
    swap = bkeys < akeys  # string min/max, e.g. "10" < "2"
    lo = _np.where(swap, b, a)
    hi = _np.where(swap, a, b)
    lo_lengths = _np.where(swap, blengths, alengths)
    hi_lengths = _np.where(swap, alengths, blengths)
    order = _np.lexsort(
        (_np.where(swap, akeys, bkeys), _np.where(swap, bkeys, akeys))
    )
    h.update(
        _pack_decimal_rows(
            ord("e"),
            (0x1F,),
            [lo[order], hi[order]],
            [lo_lengths[order], hi_lengths[order]],
        )
    )
    return h.hexdigest()[:16]


def graph_digest(graph) -> str:
    """Order-independent SHA-256 fingerprint of a graph's vertices and edges.

    Stable across vertex orderings, freezes and (de)serialization round
    trips — two graphs share a digest iff they have the same labelled
    vertex and edge sets.  This is the value the golden seed-stability
    tests pin per corpus instance.  Identity-labelled frozen graphs on the
    numpy backend (the streaming families) take a vectorized CSR fast path
    that produces the identical hash stream.
    """
    if (
        HAS_NUMPY
        and isinstance(graph, FrozenGraph)
        and graph._use_numpy
        and graph.identity_labels
        and len(graph) < 10**17  # composite sort keys must fit in int64
    ):
        return _csr_digest(graph)
    h = hashlib.sha256()
    for v in sorted(map(repr, graph.vertices())):
        h.update(b"v")
        h.update(v.encode())
    for u, v in sorted(
        tuple(sorted((repr(a), repr(b)))) for a, b in graph.edges()
    ):
        h.update(b"e")
        h.update(u.encode())
        h.update(b"\x1f")
        h.update(v.encode())
    return h.hexdigest()[:16]


def _roundtrippable(value: Any) -> bool:
    try:
        return ast.literal_eval(repr(value)) == value
    except (ValueError, SyntaxError):
        return False


def _encode_graph(spec: InstanceSpec, graph: Graph) -> dict[str, Any]:
    # name and metadata ride along so a warm-cache load is observably
    # identical to a cold generation (generators record certified bounds
    # like mad/arboricity in metadata); values that cannot survive the
    # repr/literal_eval round trip are dropped rather than corrupted
    return {
        "schema_version": 1,
        "spec": {"family": spec.family, "params": [[k, repr(v)] for k, v in spec.params]},
        "name": spec.name,
        "graph_name": graph.name,
        "metadata": {
            str(k): repr(v) for k, v in graph.metadata.items() if _roundtrippable(v)
        },
        "digest": graph_digest(graph),
        "vertices": sorted(map(repr, graph.vertices())),
        "edges": sorted(
            sorted((repr(a), repr(b))) for a, b in graph.edges()
        ),
    }


def _decode_graph(payload: Mapping[str, Any], name: str) -> Graph:
    graph = Graph(name=payload.get("graph_name", name))
    for encoded in payload["vertices"]:
        graph.add_vertex(ast.literal_eval(encoded))
    for encoded_u, encoded_v in payload["edges"]:
        graph.add_edge(ast.literal_eval(encoded_u), ast.literal_eval(encoded_v))
    for key, encoded in payload.get("metadata", {}).items():
        graph.metadata[key] = ast.literal_eval(encoded)
    return graph


class InstanceCorpus:
    """Lazy, memoizing, optionally disk-backed corpus of named instances.

    ``cache_dir`` enables the disk layer; it defaults to the
    ``REPRO_CORPUS_DIR`` environment variable and stays purely in-memory
    when neither is set.  Classic families cache one JSON edge list per
    spec (content-addressed by ``spec_key``); streaming families cache a
    memory-mappable npz per spec, named ``family-speckey-digest.npz`` so
    the content digest is readable without opening the file.  Cached files
    are validated against their content digest on load — a corrupted or
    stale file is silently regenerated, never trusted.

    ``max_bytes`` (default: the ``REPRO_CORPUS_MAX_BYTES`` environment
    variable) caps the on-disk footprint: after every store the least
    recently *used* files are evicted until the cache fits — loads touch
    mtimes, so hot instances survive.
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        max_bytes: int | None = None,
    ):
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CORPUS_DIR") or None
        if max_bytes is None:
            raw = os.environ.get("REPRO_CORPUS_MAX_BYTES", "")
            max_bytes = int(raw) if raw.strip().isdigit() else None
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_bytes = max_bytes
        self._frozen: dict[InstanceSpec, FrozenGraph] = {}

    # ------------------------------------------------------------------
    def build(self, spec: InstanceSpec) -> Graph:
        """A fresh *mutable* graph for the spec (cache-backed, never shared).

        Streaming specs have no mutable form — they return the (immutable)
        frozen view instead; mutation attempts raise ``GraphError``.
        """
        if FAMILIES[spec.family].streaming:
            return self.frozen(spec)
        cached = self._load(spec)
        if cached is not None:
            return cached
        graph = spec.build()
        self._store(spec, graph)
        return graph

    def frozen(self, spec: InstanceSpec) -> FrozenGraph:
        """The memoized frozen view of the spec (shared; treat as immutable)."""
        view = self._frozen.get(spec)
        if view is None:
            if FAMILIES[spec.family].streaming:
                view = self._load_npz(spec)
                if view is None:
                    view = spec.build()
                    self._store_npz(spec, view)
            else:
                view = freeze(self.build(spec))
            self._frozen[spec] = view
        return view

    def digest(self, spec: InstanceSpec) -> str:
        """The content digest of the spec's graph."""
        return graph_digest(self.frozen(spec))

    # ------------------------------------------------------------------
    def _path(self, spec: InstanceSpec) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{spec.family}-{spec.spec_key}.json"

    def _ensure_cache_dir(self) -> bool:
        """Create the cache directory if needed; ``False`` degrades to no-disk.

        ``os.makedirs(exist_ok=True)`` is atomic against concurrent creators
        (two processes warming the same family race benignly); any *other*
        OSError — permissions, a file squatting on the path, a read-only
        filesystem — turns the disk layer off for this store instead of
        failing the generation that triggered it.
        """
        if self.cache_dir is None:
            return False
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            return True
        except OSError:
            return False

    def _load(self, spec: InstanceSpec) -> Graph | None:
        path = self._path(spec)
        if path is None or not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            graph = _decode_graph(payload, spec.name)
            if graph_digest(graph) != payload.get("digest"):
                return None  # corrupted or stale: fall through to regenerate
            _touch(path)
            return graph
        except (OSError, ValueError, KeyError, SyntaxError):
            return None

    def _store(self, spec: InstanceSpec, graph: Graph) -> None:
        path = self._path(spec)
        if path is None or not self._ensure_cache_dir():
            return
        payload = json.dumps(_encode_graph(spec, graph), sort_keys=True) + "\n"
        tmp = _tmp_name(path)
        try:
            tmp.write_text(payload)
            os.replace(tmp, path)  # atomic: parallel workers race benignly
        except OSError:
            _discard(tmp)  # cache is best-effort; the graph is already built
            return
        self._enforce_cap()

    # ------------------------------------------------------------------
    # npz layer (streaming families)
    # ------------------------------------------------------------------
    def npz_path(self, spec: InstanceSpec) -> Path | None:
        """The existing npz cache file for a streaming spec, if any.

        Useful as the shared-memory fallback transport handed to
        :func:`repro.analysis.shared.publish`.
        """
        if self.cache_dir is None or not FAMILIES[spec.family].streaming:
            return None
        hits = sorted(self.cache_dir.glob(f"{spec.family}-{spec.spec_key}-*.npz"))
        return hits[0] if hits else None

    def _load_npz(self, spec: InstanceSpec) -> FrozenGraph | None:
        path = self.npz_path(spec)
        if path is None:
            return None
        try:
            graph = FrozenGraph.load_npz(path, mmap=True)
        except (OSError, ValueError, GraphError):
            return None
        expected = path.stem.rsplit("-", 1)[-1]
        if graph_digest(graph) != expected:
            return None  # stale or corrupted: regenerate
        _touch(path)
        return graph

    def _store_npz(self, spec: InstanceSpec, graph: FrozenGraph) -> None:
        if (
            self.cache_dir is None
            or not isinstance(graph, FrozenGraph)
            or not (HAS_NUMPY and graph._use_numpy)
        ):
            return
        if not self._ensure_cache_dir():
            return
        digest = graph_digest(graph)
        path = self.cache_dir / f"{spec.family}-{spec.spec_key}-{digest}.npz"
        tmp = _tmp_name(path)
        try:
            graph.save_npz(tmp)
            os.replace(tmp, path)
        except (OSError, GraphError):
            _discard(tmp)
            return
        self._enforce_cap()

    # ------------------------------------------------------------------
    # size cap / LRU eviction
    # ------------------------------------------------------------------
    def cache_files(self) -> list[Path]:
        """Every cache file on disk (JSON edge lists and npz instances)."""
        if self.cache_dir is None or not self.cache_dir.exists():
            return []
        return sorted(
            p
            for p in self.cache_dir.iterdir()
            if p.is_file() and p.suffix in (".json", ".npz")
        )

    def cache_size_bytes(self) -> int:
        """Total on-disk footprint of the cache."""
        total = 0
        for path in self.cache_files():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def prune(self, max_bytes: int | None = None) -> list[Path]:
        """Evict least-recently-used files until the cache fits; returns them.

        ``max_bytes`` defaults to the corpus cap; ``0`` empties the cache.
        A corpus with no cap configured prunes nothing unless one is given.
        """
        limit = self.max_bytes if max_bytes is None else max_bytes
        if limit is None:
            return []
        entries = []
        for path in self.cache_files():
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, path))
        total = sum(size for _, size, _ in entries)
        entries.sort(key=lambda e: (e[0], e[2].name))
        evicted: list[Path] = []
        for _mtime, size, path in entries:
            if total <= limit:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted.append(path)
        return evicted

    def _enforce_cap(self) -> None:
        if self.max_bytes is not None:
            self.prune()


def _touch(path: Path) -> None:
    """Best-effort LRU bookkeeping: a cache hit refreshes the file's mtime."""
    try:
        os.utime(path, None)
    except OSError:
        pass


_TMP_SERIAL = itertools.count()


def _tmp_name(path: Path) -> Path:
    """A collision-free temp sibling for the atomic-replace dance.

    The pid alone is not unique enough: the serving layer warms instances
    from executor threads, so one process can run two stores of the same
    spec concurrently — a per-process serial disambiguates them.
    """
    return path.with_suffix(f".tmp.{os.getpid()}.{next(_TMP_SERIAL)}")


def _discard(path: Path) -> None:
    try:
        path.unlink()
    except OSError:
        pass


_DEFAULT: InstanceCorpus | None = None


def default_corpus() -> InstanceCorpus:
    """The process-wide corpus (honours ``REPRO_CORPUS_DIR``)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = InstanceCorpus()
    return _DEFAULT


#: The standard named set: small instances every suite draws identically.
#: Golden tests pin each instance's content digest *and* per-algorithm
#: results, so a substrate refactor that silently changes outputs fails.
STANDARD_INSTANCES: dict[str, InstanceSpec] = {
    "planar-tri-60-s3": InstanceSpec.of("planar-tri", n_vertices=60, seed=3),
    "bounded-mad-64-k2-s5": InstanceSpec.of("bounded-mad", n=64, degeneracy=2, seed=5),
    "forest-union-80-a2-s1": InstanceSpec.of("forest-union", n=80, arboricity=2, seed=1),
    "k-tree-48-k3-s2": InstanceSpec.of("k-tree", n=48, k=3, seed=2),
    "power-law-72-m2-s4": InstanceSpec.of("power-law", n=72, m=2, seed=4),
    "regular-40-d4-s7": InstanceSpec.of("regular", n=40, d=4, seed=7),
    "torus-6x8": InstanceSpec.of("torus", k=6, l=8),
    "grid-6x10": InstanceSpec.of("grid", rows=6, cols=10),
    "path-33": InstanceSpec.of("path", n=33),
    "single-vertex": InstanceSpec.of("empty", n=1),
    "empty-0": InstanceSpec.of("empty", n=0),
}


def standard_instance(name: str) -> InstanceSpec:
    """Look up a standard instance by its corpus name."""
    try:
        return STANDARD_INSTANCES[name]
    except KeyError:
        raise GeneratorError(
            f"unknown standard instance {name!r}; known: {sorted(STANDARD_INSTANCES)}"
        ) from None
