"""The content-addressed instance corpus.

Tests, scenarios and benchmarks used to regenerate graphs ad hoc, each with
its own seed conventions; the corpus replaces that with *named, seeded,
content-addressed* instances:

* an :class:`InstanceSpec` pins a generator family, its parameters and a
  seed; its canonical name (``family/k=v,...``) doubles as the cache key;
* :func:`graph_digest` fingerprints the *generated graph itself* (an
  order-independent SHA-256 over vertices and edges), so the golden tests
  can pin digests and any silent generator drift fails loudly;
* :class:`InstanceCorpus` materializes specs lazily, memoizes frozen views
  in memory, and (optionally) caches generated graphs on disk — keyed by
  the spec digest, validated against the content digest on load, and
  written atomically so parallel workers can share one cache directory.

The generator matrix (:data:`FAMILIES`) spans every family the paper's
experiments draw from: planar triangulations, bounded-mad/degenerate
graphs, forest unions, surface grids, k-trees, power-law graphs, plus the
deterministic classics (paths, grids, toruses) and the degenerate edge
cases (empty and single-vertex instances) that once lived only in bug
reports.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import GeneratorError
from repro.graphs.frozen import FrozenGraph, freeze
from repro.graphs.graph import Graph
from repro.graphs.generators import classic, planar, sparse, surfaces

__all__ = [
    "Family",
    "FAMILIES",
    "InstanceSpec",
    "graph_digest",
    "InstanceCorpus",
    "default_corpus",
    "STANDARD_INSTANCES",
    "standard_instance",
]


@dataclass(frozen=True)
class Family:
    """One generator family of the corpus matrix."""

    name: str
    builder: Callable[..., Graph]
    description: str
    #: whether the builder takes a ``seed`` keyword (deterministic
    #: constructions like grids and toruses do not)
    seeded: bool = True


FAMILIES: dict[str, Family] = {
    family.name: family
    for family in (
        Family("planar-tri", planar.stacked_triangulation,
               "stacked planar triangulation (Apollonian), mad < 6", True),
        Family("bounded-mad", sparse.random_degenerate_graph,
               "random k-degenerate graph, mad <= 2k", True),
        Family("forest-union", sparse.union_of_random_forests,
               "union of random spanning forests, arboricity <= a", True),
        Family("k-tree", sparse.random_k_tree,
               "random k-tree: maximal treewidth-k, (k+1)-clique witness", True),
        Family("power-law", sparse.preferential_attachment,
               "preferential attachment, heavy-tailed degrees, m-degenerate", True),
        Family("regular", classic.random_regular_graph,
               "random d-regular graph (configuration model)", True),
        Family("torus", surfaces.toroidal_triangular_grid,
               "6-regular toroidal triangular grid (Euler genus 2)", False),
        Family("klein", surfaces.klein_bottle_grid,
               "Klein-bottle grid of the lower-bound constructions", False),
        Family("grid", classic.grid_2d,
               "planar rectangular grid (bipartite, girth 4)", False),
        Family("path", classic.path, "path on n vertices", False),
        Family("empty", classic.empty_graph, "n isolated vertices", False),
    )
}


@dataclass(frozen=True)
class InstanceSpec:
    """A generator family plus pinned parameters: one corpus instance.

    ``params`` are the builder's keyword arguments (the seed included, for
    seeded families).  The canonical ``name`` — ``family/k=v,...`` with
    keys sorted — is the corpus naming scheme documented in
    ``docs/verification.md``; ``spec_key`` is its SHA-256 prefix, used as
    the content address of the disk cache.
    """

    family: str
    params: tuple[tuple[str, Any], ...] = field(default=())

    @classmethod
    def of(cls, family: str, **params: Any) -> "InstanceSpec":
        if family not in FAMILIES:
            raise GeneratorError(
                f"unknown corpus family {family!r}; known: {sorted(FAMILIES)}"
            )
        return cls(family=family, params=tuple(sorted(params.items())))

    @property
    def name(self) -> str:
        inner = ",".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.family}/{inner}" if inner else self.family

    @property
    def spec_key(self) -> str:
        payload = json.dumps(
            {"family": self.family, "params": [[k, repr(v)] for k, v in self.params]},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def build(self) -> Graph:
        """Generate a fresh mutable graph for this spec."""
        return FAMILIES[self.family].builder(**dict(self.params))


def graph_digest(graph) -> str:
    """Order-independent SHA-256 fingerprint of a graph's vertices and edges.

    Stable across vertex orderings, freezes and (de)serialization round
    trips — two graphs share a digest iff they have the same labelled
    vertex and edge sets.  This is the value the golden seed-stability
    tests pin per corpus instance.
    """
    h = hashlib.sha256()
    for v in sorted(map(repr, graph.vertices())):
        h.update(b"v")
        h.update(v.encode())
    for u, v in sorted(
        tuple(sorted((repr(a), repr(b)))) for a, b in graph.edges()
    ):
        h.update(b"e")
        h.update(u.encode())
        h.update(b"\x1f")
        h.update(v.encode())
    return h.hexdigest()[:16]


def _roundtrippable(value: Any) -> bool:
    try:
        return ast.literal_eval(repr(value)) == value
    except (ValueError, SyntaxError):
        return False


def _encode_graph(spec: InstanceSpec, graph: Graph) -> dict[str, Any]:
    # name and metadata ride along so a warm-cache load is observably
    # identical to a cold generation (generators record certified bounds
    # like mad/arboricity in metadata); values that cannot survive the
    # repr/literal_eval round trip are dropped rather than corrupted
    return {
        "schema_version": 1,
        "spec": {"family": spec.family, "params": [[k, repr(v)] for k, v in spec.params]},
        "name": spec.name,
        "graph_name": graph.name,
        "metadata": {
            str(k): repr(v) for k, v in graph.metadata.items() if _roundtrippable(v)
        },
        "digest": graph_digest(graph),
        "vertices": sorted(map(repr, graph.vertices())),
        "edges": sorted(
            sorted((repr(a), repr(b))) for a, b in graph.edges()
        ),
    }


def _decode_graph(payload: Mapping[str, Any], name: str) -> Graph:
    graph = Graph(name=payload.get("graph_name", name))
    for encoded in payload["vertices"]:
        graph.add_vertex(ast.literal_eval(encoded))
    for encoded_u, encoded_v in payload["edges"]:
        graph.add_edge(ast.literal_eval(encoded_u), ast.literal_eval(encoded_v))
    for key, encoded in payload.get("metadata", {}).items():
        graph.metadata[key] = ast.literal_eval(encoded)
    return graph


class InstanceCorpus:
    """Lazy, memoizing, optionally disk-backed corpus of named instances.

    ``cache_dir`` enables the disk layer (one JSON file per spec,
    content-addressed by ``spec_key``); it defaults to the
    ``REPRO_CORPUS_DIR`` environment variable and stays purely in-memory
    when neither is set.  Cached files are validated against their stored
    content digest on load — a corrupted or stale file is silently
    regenerated, never trusted.
    """

    def __init__(self, cache_dir: str | Path | None = None):
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CORPUS_DIR") or None
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._frozen: dict[InstanceSpec, FrozenGraph] = {}

    # ------------------------------------------------------------------
    def build(self, spec: InstanceSpec) -> Graph:
        """A fresh *mutable* graph for the spec (cache-backed, never shared)."""
        cached = self._load(spec)
        if cached is not None:
            return cached
        graph = spec.build()
        self._store(spec, graph)
        return graph

    def frozen(self, spec: InstanceSpec) -> FrozenGraph:
        """The memoized frozen view of the spec (shared; treat as immutable)."""
        view = self._frozen.get(spec)
        if view is None:
            view = freeze(self.build(spec))
            self._frozen[spec] = view
        return view

    def digest(self, spec: InstanceSpec) -> str:
        """The content digest of the spec's graph."""
        return graph_digest(self.frozen(spec))

    # ------------------------------------------------------------------
    def _path(self, spec: InstanceSpec) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{spec.family}-{spec.spec_key}.json"

    def _load(self, spec: InstanceSpec) -> Graph | None:
        path = self._path(spec)
        if path is None or not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            graph = _decode_graph(payload, spec.name)
            if graph_digest(graph) != payload.get("digest"):
                return None  # corrupted or stale: fall through to regenerate
            return graph
        except (OSError, ValueError, KeyError, SyntaxError):
            return None

    def _store(self, spec: InstanceSpec, graph: Graph) -> None:
        path = self._path(spec)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(_encode_graph(spec, graph), sort_keys=True) + "\n"
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(payload)
        os.replace(tmp, path)  # atomic: parallel workers race benignly


_DEFAULT: InstanceCorpus | None = None


def default_corpus() -> InstanceCorpus:
    """The process-wide corpus (honours ``REPRO_CORPUS_DIR``)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = InstanceCorpus()
    return _DEFAULT


#: The standard named set: small instances every suite draws identically.
#: Golden tests pin each instance's content digest *and* per-algorithm
#: results, so a substrate refactor that silently changes outputs fails.
STANDARD_INSTANCES: dict[str, InstanceSpec] = {
    "planar-tri-60-s3": InstanceSpec.of("planar-tri", n_vertices=60, seed=3),
    "bounded-mad-64-k2-s5": InstanceSpec.of("bounded-mad", n=64, degeneracy=2, seed=5),
    "forest-union-80-a2-s1": InstanceSpec.of("forest-union", n=80, arboricity=2, seed=1),
    "k-tree-48-k3-s2": InstanceSpec.of("k-tree", n=48, k=3, seed=2),
    "power-law-72-m2-s4": InstanceSpec.of("power-law", n=72, m=2, seed=4),
    "regular-40-d4-s7": InstanceSpec.of("regular", n=40, d=4, seed=7),
    "torus-6x8": InstanceSpec.of("torus", k=6, l=8),
    "grid-6x10": InstanceSpec.of("grid", rows=6, cols=10),
    "path-33": InstanceSpec.of("path", n=33),
    "single-vertex": InstanceSpec.of("empty", n=1),
    "empty-0": InstanceSpec.of("empty", n=0),
}


def standard_instance(name: str) -> InstanceSpec:
    """Look up a standard instance by its corpus name."""
    try:
        return STANDARD_INSTANCES[name]
    except KeyError:
        raise GeneratorError(
            f"unknown standard instance {name!r}; known: {sorted(STANDARD_INSTANCES)}"
        ) from None
