"""Declarative fault plans: perturbation schedules keyed by round.

A :class:`FaultPlan` is an immutable, serializable list of
:class:`FaultEvent` records — *what* goes wrong and *when*, decided
before the run starts.  The engine (:mod:`repro.faults.engine`) applies
each round's events between the receive phase of the previous round and
the send phase of the current one, and logs what it actually did
(events can be inapplicable by the time they fire, e.g. deleting an
edge a previous event already removed — those are logged as skipped,
never silently dropped).

Plans are built either explicitly (tests) or through
:meth:`FaultPlan.random`, which derives every choice from a
``random.Random(seed)`` over the *initial* topology — the same seed on
the same graph always yields the same plan, which is what the
determinism property tests pin down (same seed ⇒ bit-identical event
logs and final colorings across backends and repeated runs).

Supported event kinds (:data:`FAULT_KINDS`):

``edge-insert`` / ``edge-delete``
    Topology churn: the edge ``(u, v)`` appears/disappears before the
    round's sends.  Port numberings renumber accordingly.
``corrupt-color``
    Byzantine-style state corruption: vertex ``v``'s color register is
    overwritten with ``value`` (possibly 0 or out of palette).
``node-reset``
    Crash-recover: vertex ``v`` reboots into its initial protocol state
    (color 0, nothing learned).
``message-drop`` / ``message-duplicate``
    Channel faults on one directed edge slot ``u -> v`` for one round:
    the message is lost, or re-delivered (stale) in the following round
    on top of the fresh one.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.errors import GraphError
from repro.graphs.frozen import GraphLike
from repro.graphs.graph import Vertex

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "event_log_digest",
    "palette_bound",
]

FAULT_KINDS = (
    "edge-insert",
    "edge-delete",
    "corrupt-color",
    "node-reset",
    "message-drop",
    "message-duplicate",
)

_EDGE_KINDS = ("edge-insert", "edge-delete")
_NODE_KINDS = ("corrupt-color", "node-reset")
_MESSAGE_KINDS = ("message-drop", "message-duplicate")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled perturbation.

    ``vertices`` is ``(u, v)`` for edge and message events (message
    events are *directed*: the message travelling ``u -> v``) and
    ``(v,)`` for node events; ``value`` carries the injected color of a
    ``corrupt-color`` event and is ``None`` otherwise.
    """

    round: int
    kind: str
    vertices: tuple[Vertex, ...]
    value: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        expected = 1 if self.kind in _NODE_KINDS else 2
        if len(self.vertices) != expected:
            raise ValueError(
                f"{self.kind} events take {expected} vertex(es), "
                f"got {self.vertices!r}"
            )
        if self.round < 1:
            raise ValueError(f"event rounds start at 1, got {self.round}")
        if self.kind == "corrupt-color":
            if self.value is None or int(self.value) < 0:
                raise ValueError("corrupt-color events need a value >= 0")

    def key(self) -> tuple:
        """Canonical tuple used by digests and the determinism tests."""
        return (self.round, self.kind, tuple(map(repr, self.vertices)), self.value)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of :class:`FaultEvent` records.

    Events are stored sorted by ``(round, kind, vertices)`` so two plans
    with the same content compare (and digest) equal regardless of
    construction order.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int | None = None
    _by_round: dict[int, list[FaultEvent]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=FaultEvent.key))
        object.__setattr__(self, "events", ordered)
        by_round: dict[int, list[FaultEvent]] = {}
        for event in ordered:
            by_round.setdefault(event.round, []).append(event)
        object.__setattr__(self, "_by_round", by_round)

    def events_for(self, round_number: int) -> list[FaultEvent]:
        return self._by_round.get(round_number, [])

    def last_round(self) -> int:
        """Round of the final scheduled event (0 for an empty plan)."""
        return max(self._by_round, default=0)

    def kinds(self) -> tuple[str, ...]:
        return tuple(sorted({event.kind for event in self.events}))

    def inserted_edges(self) -> list[tuple[Vertex, Vertex]]:
        return [e.vertices for e in self.events if e.kind == "edge-insert"]

    def digest(self) -> str:
        payload = json.dumps(
            [list(event.key()) for event in self.events], separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        graph: GraphLike,
        *,
        seed: int,
        kinds: Sequence[str] = FAULT_KINDS,
        events: int = 4,
        start_round: int = 2,
        window: int = 12,
        palette: int | None = None,
    ) -> "FaultPlan":
        """A deterministic random plan over ``graph``'s initial topology.

        ``events`` perturbations land on rounds drawn from
        ``[start_round, start_round + window)``; kinds cycle through a
        shuffled ``kinds`` sequence so every requested kind appears when
        ``events >= len(kinds)``.  Edge choices track the plan's own
        projected edits (an edge deleted earlier can be re-inserted
        later but not deleted twice).  ``palette`` bounds the injected
        corrupt colors (default: initial max degree + 2, so plans can
        inject both in-palette and out-of-palette garbage).
        """
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        if events < 0 or window < 1 or start_round < 1:
            raise ValueError("events >= 0, window >= 1, start_round >= 1 required")
        rng = random.Random(seed)
        vertices = list(graph.vertices())
        if not vertices:
            raise GraphError("cannot plan faults on an empty graph")
        if palette is None:
            palette = graph.max_degree() + 2
        # the plan's projection of the edge set as its own edits apply
        index = {v: i for i, v in enumerate(vertices)}
        present: set[tuple[int, int]] = set()
        for u in vertices:
            for w in graph.neighbors(u):
                i, j = index[u], index[w]
                if i < j:
                    present.add((i, j))
        rounds = sorted(
            rng.randrange(start_round, start_round + window) for _ in range(events)
        )
        schedule: list[str] = []
        while len(schedule) < events:
            batch = list(kinds)
            rng.shuffle(batch)
            schedule.extend(batch)
        out: list[FaultEvent] = []
        for event_round, kind in zip(rounds, schedule[:events]):
            built = cls._random_event(
                rng, kind, event_round, vertices, present, palette
            )
            if built is not None:
                out.append(built)
        return cls(events=tuple(out), seed=seed)

    @staticmethod
    def _random_event(
        rng: random.Random,
        kind: str,
        event_round: int,
        vertices: list,
        present: set[tuple[int, int]],
        palette: int,
    ) -> FaultEvent | None:
        n = len(vertices)
        if kind == "edge-insert":
            for _ in range(64):  # rejection-sample a non-edge
                i, j = rng.randrange(n), rng.randrange(n)
                if i == j:
                    continue
                key = (min(i, j), max(i, j))
                if key not in present:
                    present.add(key)
                    return FaultEvent(event_round, kind, (vertices[i], vertices[j]))
            return None  # dense graph: no non-edge found, drop the event
        if kind == "edge-delete":
            if not present:
                return None
            i, j = sorted(present)[rng.randrange(len(present))]
            present.discard((i, j))
            return FaultEvent(event_round, kind, (vertices[i], vertices[j]))
        if kind in _MESSAGE_KINDS:
            if not present:
                return None
            i, j = sorted(present)[rng.randrange(len(present))]
            if rng.random() < 0.5:
                i, j = j, i  # message direction
            return FaultEvent(event_round, kind, (vertices[i], vertices[j]))
        v = vertices[rng.randrange(n)]
        if kind == "corrupt-color":
            return FaultEvent(
                event_round, kind, (v,), value=rng.randrange(0, palette + 2)
            )
        return FaultEvent(event_round, kind, (v,))


def palette_bound(graph: GraphLike, plan: FaultPlan) -> int:
    """A palette size valid at every point of the dynamic run.

    Max degree of the *union* topology (initial edges plus every edge
    the plan may insert) plus one — an upper bound on Δ(G_t) + 1 for
    every round t, hence a palette within which the stabilizing
    protocols always find a free color.  Deterministic in (graph, plan),
    so both backends derive the same budget.
    """
    degrees: dict[Vertex, int] = {v: graph.degree(v) for v in graph.vertices()}
    seen: set[tuple] = set()
    for u, v in plan.inserted_edges():
        key = tuple(sorted((repr(u), repr(v))))
        if key in seen or (u in degrees and graph.has_edge(u, v)):
            continue
        seen.add(key)
        if u in degrees:
            degrees[u] += 1
        if v in degrees:
            degrees[v] += 1
    return max(degrees.values(), default=1) + 1


def event_log_digest(log: Iterable[Any]) -> str:
    """Order-sensitive sha256 over an applied-event log.

    Accepts :class:`~repro.faults.engine.AppliedFault` records (or
    anything exposing ``round``/``kind``/``vertices``/``value``/
    ``applied``) and is the quantity the dict/flat parity and
    determinism tests compare bit-for-bit.
    """
    rows = [
        [
            entry.round,
            entry.kind,
            [repr(v) for v in entry.vertices],
            entry.value,
            bool(entry.applied),
        ]
        for entry in log
    ]
    payload = json.dumps(rows, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()
