"""The run-until-quiescent round loop with fault application.

:func:`run_stabilizing` drives a stabilizing node program (per-node or
batched, see :mod:`repro.distributed.stabilizing`) on a
:class:`~repro.faults.network.PerturbableNetwork` while applying a
:class:`~repro.faults.plan.FaultPlan`.  Stabilizing protocols have no
terminal state, so the static engine's active-set termination does not
apply; instead the loop stops at *quiescence* — a round in which the
full protocol state (not just the output colors: invisible flags count)
did not change, no fault fired and none remains scheduled — or at the
round cap, which with ``strict=True`` raises the structured
:class:`~repro.errors.NonTerminationError`.

Per round, in order:

1. apply the plan's events for this round (topology edits first — the
   plan's canonical event order sorts edge edits before message faults,
   so a message fault is judged against the topology it will run on);
   rebuild the port tables and re-bind node contexts if edges changed;
2. the synchronous exchange on the *current* fabric, with this round's
   message drops filtered out of delivery and last round's captured
   duplicates re-delivered on top of (i.e. overwriting) the fresh
   message of the same slot — a stale duplicate is exactly "the
   receiver acts on outdated neighbour state";
3. record a :class:`RoundRecord`: what fired, which vertices changed
   color (with the new color — the trace is *replayable*, which is how
   the :class:`~repro.verify.recovery.RecoveryOracle` catches tampered
   logs), the number of conflicting edges and the legality flag.

Every record lands in a :class:`StabilizationTrace`, the single witness
object the recovery oracles, the containment auditor and the E18
scenario metrics all read.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import NonTerminationError, SimulationError
from repro.faults.network import PerturbableNetwork
from repro.faults.plan import FaultEvent, FaultPlan
from repro.graphs.frozen import HAS_NUMPY
from repro.graphs.graph import Vertex
from repro.local import kernels
from repro.local.node import BatchContext, BatchNodeAlgorithm, NodeContext

__all__ = [
    "AppliedFault",
    "RoundRecord",
    "StabilizationTrace",
    "run_stabilizing",
]


@dataclass(frozen=True)
class AppliedFault:
    """One plan event as the engine actually handled it."""

    round: int
    kind: str
    vertices: tuple[Vertex, ...]
    value: int | None
    applied: bool
    note: str = ""


@dataclass
class RoundRecord:
    """The ledger entry of one synchronous round."""

    round: int
    faults: tuple[AppliedFault, ...]
    changes: tuple[tuple[Vertex, int], ...]
    conflicts: int
    legal: bool
    messages: int


@dataclass
class StabilizationTrace:
    """A replayable record of one dynamic run (the oracle's witness)."""

    labels: list[Vertex]
    budget: int
    initial_coloring: dict[Vertex, int]
    initial_edges: list[tuple[Vertex, Vertex]]
    records: list[RoundRecord] = field(default_factory=list)
    final_coloring: dict[Vertex, int] = field(default_factory=dict)
    quiescent: bool = False
    backend: str = ""
    protocol: str = ""

    @property
    def rounds(self) -> int:
        return len(self.records)

    def event_log(self) -> list[AppliedFault]:
        """Every plan event in firing order, applied or skipped."""
        return [fault for record in self.records for fault in record.faults]

    def applied_events(self) -> list[AppliedFault]:
        return [fault for fault in self.event_log() if fault.applied]

    def messages_sent(self) -> int:
        return sum(record.messages for record in self.records)


# ---------------------------------------------------------------------------
# fault application helpers
# ---------------------------------------------------------------------------


def _slot_towards(fabric, dst: int, src: int) -> int | None:
    """The inbox slot of ``dst`` whose other endpoint is ``src`` (or None)."""
    lo, hi = fabric.offsets[dst], fabric.offsets[dst + 1]
    pos = bisect_left(fabric.endpoints, src, lo, hi)
    if pos < hi and fabric.endpoints[pos] == src:
        return pos
    return None


class _FaultState:
    """Per-round fault bookkeeping shared by both engine paths."""

    def __init__(self) -> None:
        self.drops: set[tuple[int, int]] = set()  # (src, dst) this round
        self.dup_pairs: set[tuple[int, int]] = set()  # capture this round
        self.pending_dups: list[tuple[int, int, Any]] = []  # deliver this round

    def next_round(self) -> None:
        self.drops.clear()
        self.dup_pairs.clear()


def _apply_events(
    events: list[FaultEvent],
    pnet: PerturbableNetwork,
    state: _FaultState,
    corrupt: Callable[[int, int], None],
    reset: Callable[[int], None],
) -> tuple[list[AppliedFault], bool]:
    """Apply one round's events; returns (log entries, topology changed)."""
    log: list[AppliedFault] = []
    topo_changed = False

    def done(event: FaultEvent, applied: bool, note: str = "") -> None:
        log.append(
            AppliedFault(
                event.round, event.kind, event.vertices, event.value, applied, note
            )
        )

    for event in events:
        kind = event.kind
        if kind == "edge-insert":
            applied = pnet.insert_edge(*event.vertices)
            topo_changed |= applied
            done(event, applied, "" if applied else "edge already present")
        elif kind == "edge-delete":
            applied = pnet.delete_edge(*event.vertices)
            topo_changed |= applied
            done(event, applied, "" if applied else "edge not present")
        elif kind in ("corrupt-color", "node-reset"):
            index = pnet.index_of(event.vertices[0])
            if index is None:
                done(event, False, "unknown vertex")
                continue
            if kind == "corrupt-color":
                corrupt(index, int(event.value))
            else:
                reset(index)
            done(event, True)
        else:  # message-drop / message-duplicate
            u, v = event.vertices
            i, j = pnet.index_of(u), pnet.index_of(v)
            if i is None or j is None or not pnet.has_edge(u, v):
                done(event, False, "edge not present")
                continue
            if kind == "message-drop":
                state.drops.add((i, j))
            else:
                state.dup_pairs.add((i, j))
            done(event, True)
    return log, topo_changed


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


def run_stabilizing(
    pnet: PerturbableNetwork,
    algorithm_factory: Callable[[], Any],
    *,
    plan: FaultPlan,
    budget: int,
    initial_coloring: Mapping[Vertex, int] | None = None,
    max_rounds: int = 500,
    strict: bool = False,
    protocol: str = "",
) -> StabilizationTrace:
    """Run a stabilizing protocol under ``plan`` until quiescence.

    ``initial_coloring`` seeds the color registers (vertices missing
    from the mapping start uncolored); ``budget`` is the palette bound
    handed to every node (use :func:`~repro.faults.plan.palette_bound`
    so it stays valid across the plan's insertions).  With
    ``strict=True`` a run that is still changing state at ``max_rounds``
    raises :class:`~repro.errors.NonTerminationError` whose ``active``
    field carries the number of vertices still involved in conflicts;
    otherwise the trace comes back with ``quiescent=False``.
    """
    if budget < 1:
        raise SimulationError(f"palette budget must be >= 1, got {budget}")
    if max_rounds < 1:
        raise SimulationError(f"max_rounds must be >= 1, got {max_rounds}")
    initial = {
        v: int((initial_coloring or {}).get(v, 0) or 0) for v in pnet.labels
    }
    trace = StabilizationTrace(
        labels=list(pnet.labels),
        budget=budget,
        initial_coloring=dict(initial),
        initial_edges=pnet.edges(),
        backend=pnet.backend,
        protocol=protocol,
    )
    probe = algorithm_factory()
    if isinstance(probe, BatchNodeAlgorithm):
        runner = _BatchedStabilizer(pnet, probe, budget, initial)
        if not runner.usable():
            fallback = type(probe).fallback
            if fallback is None:
                raise SimulationError(
                    f"{type(probe).__name__} cannot run batched here and "
                    "declares no per-node fallback"
                )
            runner = _PerNodeStabilizer(pnet, fallback, budget, initial)
    else:
        runner = _PerNodeStabilizer(pnet, algorithm_factory, budget, initial)

    state = _FaultState()
    last_event_round = plan.last_round()
    previous_snapshot = runner.snapshot()
    colors = runner.colors()

    for round_number in range(1, max_rounds + 1):
        state.next_round()
        log, topo_changed = _apply_events(
            plan.events_for(round_number), pnet, state, runner.corrupt, runner.reset
        )
        if topo_changed:
            runner.rebind_topology()
        messages = runner.exchange(round_number, state)
        new_colors = runner.colors()
        changes = tuple(
            (trace.labels[i], new_colors[i])
            for i in range(pnet.n)
            if new_colors[i] != colors[i]
        )
        conflicts, conflicted_vertices = runner.conflicts(new_colors)
        legal = conflicts == 0 and all(
            1 <= c <= budget for c in new_colors
        )
        trace.records.append(
            RoundRecord(
                round=round_number,
                faults=tuple(log),
                changes=changes,
                conflicts=conflicts,
                legal=legal,
                messages=messages,
            )
        )
        colors = new_colors
        snapshot = runner.snapshot()
        if (
            snapshot == previous_snapshot
            and not log
            and not state.pending_dups
            and round_number >= last_event_round
        ):
            trace.quiescent = True
            break
        previous_snapshot = snapshot
    else:
        if strict:
            raise NonTerminationError(
                f"stabilizing run hit max_rounds={max_rounds} without "
                f"quiescing ({conflicted_vertices} vertex(es) in conflict)",
                rounds=max_rounds,
                active=conflicted_vertices,
            )

    trace.final_coloring = dict(zip(trace.labels, colors))
    return trace


# ---------------------------------------------------------------------------
# per-node path
# ---------------------------------------------------------------------------


class _PerNodeStabilizer:
    """Drives one NodeAlgorithm instance per vertex (the dict backend)."""

    def __init__(self, pnet, factory, budget, initial):
        self.pnet = pnet
        self.nodes = []
        for i, label in enumerate(pnet.labels):
            node = factory()
            node.initialize(
                NodeContext(
                    identifier=i + 1,
                    n=pnet.n,
                    degree=pnet.degree_of_index(i),
                    input=(budget, initial[label]),
                )
            )
            self.nodes.append(node)
        self.fabric = pnet.network.fabric

    def usable(self) -> bool:
        return True

    def rebind_topology(self) -> None:
        self.fabric = self.pnet.network.fabric
        for i, node in enumerate(self.nodes):
            node.context.degree = self.fabric.degrees[i]

    def corrupt(self, index: int, value: int) -> None:
        self.nodes[index].corrupt(value)

    def reset(self, index: int) -> None:
        self.nodes[index].reset()

    def snapshot(self) -> tuple:
        return tuple(node.snapshot() for node in self.nodes)

    def colors(self) -> list[int]:
        return [int(node.result()) for node in self.nodes]

    def exchange(self, round_number: int, state: _FaultState) -> int:
        fabric = self.fabric
        offsets = fabric.offsets
        endpoints = fabric.endpoints
        reverse_slot = fabric.reverse_slot
        payloads: list[Any] = [None] * fabric.num_slots
        received: list[list[int]] = [[] for _ in range(len(self.nodes))]
        messages = 0
        next_dups: list[tuple[int, int, Any]] = []
        drops, dup_pairs = state.drops, state.dup_pairs
        for i, node in enumerate(self.nodes):
            out = node.send(round_number)
            if not out:
                continue
            base = offsets[i]
            for port, payload in out.items():
                slot = base + port
                j = endpoints[slot]
                if dup_pairs and (i, j) in dup_pairs:
                    next_dups.append((i, j, payload))
                if drops and (i, j) in drops:
                    continue
                dest = reverse_slot[slot]
                payloads[dest] = payload
                received[j].append(dest)
                messages += 1
        # stale duplicates captured last round land on top of (replace)
        # this round's fresh message on the same port
        for src, dst, payload in state.pending_dups:
            slot = _slot_towards(fabric, dst, src)
            if slot is None:
                continue  # the edge has gone away since the capture
            payloads[slot] = payload
            received[dst].append(slot)
            messages += 1
        state.pending_dups = next_dups
        for j, node in enumerate(self.nodes):
            slots = received[j]
            base = offsets[j]
            node.receive(
                round_number,
                {slot - base: payloads[slot] for slot in slots} if slots else {},
            )
        return messages

    def conflicts(self, colors: list[int]) -> tuple[int, int]:
        fabric = self.fabric
        offsets, endpoints = fabric.offsets, fabric.endpoints
        count = 0
        vertices: set[int] = set()
        for i in range(len(self.nodes)):
            ci = colors[i]
            for k in range(offsets[i], offsets[i + 1]):
                j = endpoints[k]
                if j > i and colors[j] == ci:
                    count += 1
                    vertices.add(i)
                    vertices.add(j)
        return count, len(vertices)


# ---------------------------------------------------------------------------
# batched path
# ---------------------------------------------------------------------------


class _BatchedStabilizer:
    """Drives one BatchNodeAlgorithm over the flat fabric arrays."""

    def __init__(self, pnet, program, budget, initial):
        self.pnet = pnet
        self.program = program
        self.budget = budget
        self.initial = initial
        self._ready = False
        if not HAS_NUMPY:
            return
        import numpy as np

        self._np = np
        context = self._context()
        if context is None or not program.can_run(context):
            return
        program.initialize_batch(context)
        self._ready = True

    def usable(self) -> bool:
        return self._ready

    def _context(self) -> BatchContext | None:
        network = self.pnet.network
        fabric = network.fabric
        if not fabric.has_numpy:
            return None
        return BatchContext(
            n=fabric.n,
            identifiers=network.identifiers_np,
            degrees=fabric.degrees_np,
            offsets=fabric.offsets_np,
            endpoints=fabric.endpoints_np,
            reverse_slot=fabric.reverse_np,
            sources=fabric.sources_np(),
            inputs=[(self.budget, self.initial[v]) for v in self.pnet.labels],
            network=network,
            declared_n=self.pnet.n,
        )

    def rebind_topology(self) -> None:
        self.program.on_topology_change(self._context())

    def corrupt(self, index: int, value: int) -> None:
        self.program.corrupt_batch(index, value)

    def reset(self, index: int) -> None:
        self.program.reset_batch(index)

    def snapshot(self) -> tuple:
        return self.program.snapshot()

    def colors(self) -> list[int]:
        return self.program.results_batch()

    def exchange(self, round_number: int, state: _FaultState) -> int:
        np = self._np
        fabric = self.pnet.network.fabric
        values = self.program.send_batch(round_number)
        if type(self.program).exchange_mode == "broadcast":
            # per-node broadcast values: the fused kernel delivers them in
            # one endpoint gather, and the payload of any (src, dst) pair
            # is just values[src] — no slot lookup needed for captures
            inbox = kernels.gather(values, fabric.endpoints_np)
            captured = lambda src, slot: int(values[src])  # noqa: E731
        else:
            inbox = kernels.deliver_slots(values, fabric.reverse_np)
            captured = lambda src, slot: int(  # noqa: E731
                values[fabric.reverse_slot[slot]]
            )
        delivered = None
        messages = fabric.num_slots
        next_dups: list[tuple[int, int, Any]] = []
        for src, dst in state.dup_pairs:
            slot = _slot_towards(fabric, dst, src)
            if slot is not None:
                next_dups.append((src, dst, captured(src, slot)))
        if state.drops or state.pending_dups:
            delivered = np.ones(fabric.num_slots, dtype=bool)
            for src, dst in state.drops:
                slot = _slot_towards(fabric, dst, src)
                if slot is not None:
                    delivered[slot] = False
                    messages -= 1
            for src, dst, payload in state.pending_dups:
                slot = _slot_towards(fabric, dst, src)
                if slot is None:
                    continue
                inbox[slot] = payload
                delivered[slot] = True
                messages += 1
        state.pending_dups = next_dups
        self.program.receive_batch(round_number, inbox, delivered)
        return messages

    def conflicts(self, colors: list[int]) -> tuple[int, int]:
        np = self._np
        fabric = self.pnet.network.fabric
        arr = np.asarray(colors, dtype=np.int64)
        src = fabric.sources_np()
        clash = arr[src] == arr[fabric.endpoints_np]
        count = int(clash.sum()) // 2
        vertices = int(np.union1d(src[clash], fabric.endpoints_np[clash]).size)
        return count, vertices
