"""The mutable-topology adapter over :class:`~repro.local.network.Network`.

A :class:`PerturbableNetwork` owns the ground-truth adjacency of a
dynamic run.  The vertex set (and hence the identifier assignment
``1..n`` in vertex order) is fixed at construction; edges come and go
between rounds.  After each batch of edits the engine reads
:attr:`PerturbableNetwork.network` and gets a fresh, consistent
port-numbered :class:`~repro.local.network.Network` whose routing
fabric reflects the current topology — ports renumber exactly as the
LOCAL model prescribes (neighbours enumerated by increasing
identifier).

Two backends build that fabric, mirroring the dict/flat split of the
static engine:

* ``dict`` — rebuild through :class:`Network`'s general path (python
  lists, per-slot bisection for ``reverse_slot``); the reference.
* ``flat`` — patch the edge-slot tables directly: the maintained
  per-node sorted adjacency is flattened into ``offsets``/``endpoints``
  int64 arrays and ``reverse_slot`` is recovered with one vectorized
  ``searchsorted`` over ``(src, dst)`` keys, the same trick the frozen
  CSR fast path uses.  Falls back to the dict build when numpy is
  unavailable.

The parity tests assert both backends produce identical tables after
identical edit sequences, which is what licenses the flat backend in
the benchmarked scenarios.
"""

from __future__ import annotations

from bisect import bisect_left, insort

from repro.errors import GraphError
from repro.graphs.frozen import HAS_NUMPY, FrozenGraph, GraphLike, freeze
from repro.graphs.graph import Graph, Vertex
from repro.local.network import Network, RoutingFabric, _reverse_slots_python

__all__ = ["PerturbableNetwork"]

BACKENDS = ("dict", "flat")


class PerturbableNetwork:
    """Fixed vertex set, editable edge set, rebuildable port tables."""

    def __init__(self, graph: GraphLike, *, backend: str = "flat"):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; known: {BACKENDS}")
        self.backend = backend
        self.labels: list[Vertex] = list(graph.vertices())
        if not self.labels:
            raise GraphError("PerturbableNetwork needs at least one vertex")
        self._index: dict[Vertex, int] = {v: i for i, v in enumerate(self.labels)}
        # ground truth: per-node neighbour indices, kept sorted ascending
        # (index order == identifier order, so slices are already in port
        # order and both fabric builds read them verbatim)
        self._adj: list[list[int]] = [
            sorted(self._index[u] for u in graph.neighbors(v)) for v in self.labels
        ]
        self.version = 0
        self._network: Network | None = None
        self._network_version = -1

    # ------------------------------------------------------------------
    # topology queries / edits
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.labels)

    def index_of(self, v: Vertex) -> int | None:
        return self._index.get(v)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        i, j = self._index.get(u), self._index.get(v)
        if i is None or j is None or i == j:
            return False
        return self._has_edge_idx(i, j)

    def _has_edge_idx(self, i: int, j: int) -> bool:
        row = self._adj[i]
        pos = bisect_left(row, j)
        return pos < len(row) and row[pos] == j

    def insert_edge(self, u: Vertex, v: Vertex) -> bool:
        """Insert ``{u, v}``; False when inapplicable (present, loop, unknown)."""
        i, j = self._index.get(u), self._index.get(v)
        if i is None or j is None or i == j or self._has_edge_idx(i, j):
            return False
        insort(self._adj[i], j)
        insort(self._adj[j], i)
        self.version += 1
        return True

    def delete_edge(self, u: Vertex, v: Vertex) -> bool:
        """Delete ``{u, v}``; False when the edge is not currently present."""
        i, j = self._index.get(u), self._index.get(v)
        if i is None or j is None or i == j or not self._has_edge_idx(i, j):
            return False
        self._adj[i].remove(j)
        self._adj[j].remove(i)
        self.version += 1
        return True

    def degree_of_index(self, i: int) -> int:
        return len(self._adj[i])

    def edge_count(self) -> int:
        return sum(len(row) for row in self._adj) // 2

    def edges(self) -> list[tuple[Vertex, Vertex]]:
        """Current edges as label pairs, canonically ordered by index."""
        return [
            (self.labels[i], self.labels[j])
            for i, row in enumerate(self._adj)
            for j in row
            if i < j
        ]

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def graph(self) -> Graph:
        """A mutable :class:`Graph` snapshot of the current topology."""
        return Graph(vertices=self.labels, edges=self.edges(), name="perturbed")

    def frozen(self) -> FrozenGraph:
        """A frozen CSR snapshot (oracle-side distance/legality checks)."""
        return freeze(self.graph())

    # ------------------------------------------------------------------
    # the Network view
    # ------------------------------------------------------------------
    @property
    def network(self) -> Network:
        """The current port-numbered network, rebuilt lazily after edits."""
        if self._network is None or self._network_version != self.version:
            self._network = self._build_network()
            self._network_version = self.version
        return self._network

    def _build_network(self) -> Network:
        network = Network(self.graph())
        if self.backend == "flat" and HAS_NUMPY:
            network._fabric = self._flat_fabric()
        else:
            network._fabric = self._dict_fabric()
        return network

    def _dict_fabric(self) -> RoutingFabric:
        offsets = [0] * (self.n + 1)
        endpoints: list[int] = []
        for i, row in enumerate(self._adj):
            endpoints.extend(row)
            offsets[i + 1] = len(endpoints)
        reverse = _reverse_slots_python(offsets, endpoints)
        return RoutingFabric(offsets, endpoints, reverse)

    def _flat_fabric(self) -> RoutingFabric:
        import numpy as np

        n = self.n
        degrees = np.fromiter(
            (len(row) for row in self._adj), dtype=np.int64, count=n
        )
        offsets_np = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets_np[1:])
        num_slots = int(offsets_np[-1])
        endpoints_np = np.fromiter(
            (j for row in self._adj for j in row), dtype=np.int64, count=num_slots
        )
        src = np.repeat(np.arange(n, dtype=np.int64), degrees)
        # slots are sorted by (src, dst); the reverse of slot k is the
        # position of key (dst, src) in that order
        keys = src * n + endpoints_np
        reverse_np = np.searchsorted(keys, endpoints_np * n + src)
        return RoutingFabric(
            offsets_np.tolist(),
            endpoints_np.tolist(),
            reverse_np.tolist(),
            offsets_np=offsets_np,
            endpoints_np=endpoints_np,
            reverse_np=reverse_np,
            sources_np=src,
        )
