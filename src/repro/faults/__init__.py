"""Fault injection and dynamic-topology support for the LOCAL simulator.

The static pipeline assumes a pristine network: fixed topology, honest
node state, lossless synchronous delivery.  This package is the fault
plane that relaxes all three, so the self-stabilizing protocols of
:mod:`repro.distributed.stabilizing` can be measured on their actual
job — recovering a legal coloring after a perturbation:

* :mod:`repro.faults.plan` — a declarative, deterministically seeded
  :class:`~repro.faults.plan.FaultPlan`: perturbation events keyed by
  round (edge insertions/deletions, corrupted colors, node resets,
  message drops/duplications on chosen edge slots);
* :mod:`repro.faults.network` — :class:`~repro.faults.network.
  PerturbableNetwork`, the mutable-topology adapter over
  :class:`~repro.local.network.Network` that patches the edge-slot
  tables between rounds (dict and flat backends, with parity);
* :mod:`repro.faults.engine` — :func:`~repro.faults.engine.
  run_stabilizing`, the run-until-quiescent round loop that applies the
  plan, drives a stabilizing protocol and records a replayable
  :class:`~repro.faults.engine.StabilizationTrace` for the recovery
  oracles of :mod:`repro.verify.recovery`.
"""

from repro.faults.engine import (
    AppliedFault,
    RoundRecord,
    StabilizationTrace,
    run_stabilizing,
)
from repro.faults.network import PerturbableNetwork
from repro.faults.plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    event_log_digest,
    palette_bound,
)

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "event_log_digest",
    "palette_bound",
    "PerturbableNetwork",
    "AppliedFault",
    "RoundRecord",
    "StabilizationTrace",
    "run_stabilizing",
]
