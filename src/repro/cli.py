"""``python -m repro`` — the reproduction's command line.

Five subcommands drive the scenario registry
(:mod:`repro.scenarios`) and the conformance oracles (:mod:`repro.verify`):

* ``list`` — show every registered scenario (name, paper statement,
  parameters) and the named campaigns;
* ``run <scenario>`` — execute one scenario through the batched process-pool
  engine and export its ``BENCH_<scenario>.json`` artifact;
* ``campaign [name]`` — run a named scenario set and merge the artifacts
  into one ``BENCH_campaign_<name>.json``;
* ``verify [artifacts...]`` — replay the conformance oracle suite (schema,
  paper budgets, cross-variant parity, round envelopes) against existing
  BENCH artifacts, or — with ``--smoke`` — against a freshly run smoke
  campaign.  This is the CI gate documented in ``docs/verification.md``;
* ``corpus`` — inspect the on-disk instance cache (``REPRO_CORPUS_DIR``)
  and prune it back under its size cap with ``--prune``;
* ``serve`` — run the always-on coloring service (JSONL over TCP,
  digest-keyed cache, request batching, oracle-verified responses; see
  ``docs/serving.md``).

Examples::

    python -m repro list
    python -m repro run theorem13-colors --smoke --verify
    python -m repro run theorem13-rounds --n 60,120,240 --seed 7 --profile
    python -m repro run scale --set sizes=1000000,
    python -m repro run serve --smoke --verify
    python -m repro campaign --smoke --out artifacts/
    python -m repro verify BENCH_coloring.json
    python -m repro verify --smoke --out ci-artifacts/
    python -m repro corpus --prune --max-bytes 2000000000
    python -m repro serve --port 4777 --workers 4
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from collections.abc import Sequence
from pathlib import Path
from typing import Any

from repro.scenarios import (
    CAMPAIGNS,
    ScenarioError,
    all_scenarios,
    get_scenario,
    run_campaign,
    run_scenario,
)

__all__ = ["main", "build_parser"]


def _parse_set(pairs: Sequence[str]) -> dict[str, Any]:
    """Parse ``--set key=value`` overrides (values via literal_eval, else str)."""
    overrides: dict[str, Any] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ScenarioError(f"--set expects key=value, got {pair!r}")
        try:
            overrides[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            overrides[key] = raw
    return overrides


def _parse_sizes(raw: str, current: Any) -> Any:
    """Parse ``--n`` against the scenario's current size parameter shape."""
    try:
        values = [int(part) for part in raw.split(",") if part]
    except ValueError:
        raise ScenarioError(
            f"--n expects a comma-separated list of ints, got {raw!r}"
        ) from None
    if not values:
        raise ScenarioError(f"--n expects a comma-separated list of ints, got {raw!r}")
    if isinstance(current, (list, tuple)):
        return tuple(values)
    if len(values) > 1:
        raise ScenarioError(
            f"this scenario's size parameter takes a single value, got {raw!r}"
        )
    return values[0]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the paper's experiments from the scenario registry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered scenarios and campaigns")
    p_list.add_argument("--json", action="store_true", help="machine-readable output")

    p_run = sub.add_parser("run", help="run one scenario and export its artifact")
    p_run.add_argument("scenario", help="registered scenario name (see `repro list`)")
    p_run.add_argument("--smoke", action="store_true",
                       help="use the reduced smoke grid (fast; what CI runs)")
    p_run.add_argument("--n", dest="sizes", metavar="N[,N...]",
                       help="override the scenario's size parameter")
    p_run.add_argument("--seed", type=int, default=0,
                       help="batch base seed (per-task seeds are derived; default 0)")
    p_run.add_argument("--workers", type=int, default=None,
                       help="process-pool size (1 = inline, default: one per core)")
    p_run.add_argument("--out", default=None,
                       help="artifact path or directory (default BENCH_<scenario>.json)")
    p_run.add_argument("--profile", action="store_true",
                       help="record per-stage wall time (generate/freeze/solve/verify)")
    p_run.add_argument("--repeat", type=int, default=1, metavar="K",
                       help="run the batch K times, report median-of-K wall times "
                            "(stabilizes BENCH artifacts for tools/bench_diff.py)")
    p_run.add_argument("--set", dest="overrides", metavar="KEY=VALUE",
                       action="append", default=[],
                       help="override any scenario parameter (repeatable)")
    p_run.add_argument("--no-check", action="store_true",
                       help="report paper-reference check failures without failing")
    p_run.add_argument("--verify", action="store_true",
                       help="replay the conformance oracle suite on the artifact")
    p_run.add_argument("--quiet", action="store_true", help="suppress the result table")

    p_camp = sub.add_parser("campaign", help="run a named scenario set, merge artifacts")
    p_camp.add_argument("name", nargs="?", default="all",
                        help=f"campaign name (default: all; known: {', '.join(CAMPAIGNS)})")
    p_camp.add_argument("--smoke", action="store_true",
                        help="use every scenario's reduced smoke grid")
    p_camp.add_argument("--seed", type=int, default=0)
    p_camp.add_argument("--workers", type=int, default=None)
    p_camp.add_argument("--out", default=".",
                        help="output directory for all artifacts (default: .)")
    p_camp.add_argument("--profile", action="store_true")
    p_camp.add_argument("--only", default=None, metavar="NAME[,NAME...]",
                        help="restrict the campaign to a subset of its scenarios")
    p_camp.add_argument("--no-check", action="store_true")
    p_camp.add_argument("--verify", action="store_true",
                        help="replay the conformance oracle suite on every artifact")

    p_verify = sub.add_parser(
        "verify",
        help="replay the conformance oracle suite on BENCH artifacts",
    )
    p_verify.add_argument(
        "artifacts", nargs="*",
        help="BENCH_*.json paths (campaign merges are unpacked); omit with --smoke",
    )
    p_verify.add_argument(
        "--smoke", action="store_true",
        help="first run the smoke campaign (inline) and verify its artifacts",
    )
    p_verify.add_argument("--out", default="verify-artifacts",
                          help="artifact directory for --smoke (default: verify-artifacts/)")
    p_verify.add_argument("--seed", type=int, default=0)
    p_verify.add_argument("--campaign", default="all", dest="campaign_name",
                          help="campaign to run under --smoke (default: all)")
    p_verify.add_argument("--quiet", action="store_true",
                          help="only report failures")

    p_corpus = sub.add_parser(
        "corpus",
        help="inspect or prune the on-disk instance cache",
    )
    p_corpus.add_argument("--dir", default=None,
                          help="cache directory (default: $REPRO_CORPUS_DIR)")
    p_corpus.add_argument("--prune", action="store_true",
                          help="evict least-recently-used files over the cap")
    p_corpus.add_argument("--max-bytes", type=int, default=None,
                          help="size cap for --prune "
                               "(default: $REPRO_CORPUS_MAX_BYTES; 0 empties)")

    p_serve = sub.add_parser(
        "serve",
        help="run the always-on coloring service (see docs/serving.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=4777,
                         help="TCP port (0 = ephemeral; the bound port is printed)")
    p_serve.add_argument("--workers", type=int, default=1,
                         help="process-pool size for batched compute "
                              "(1 = in-process; default 1)")
    p_serve.add_argument("--cache-bytes", type=int, default=64 * 1024 * 1024,
                         help="result-cache byte cap (0 disables caching)")
    p_serve.add_argument("--batch-window-ms", type=float, default=2.0,
                         help="micro-batch coalescing window in milliseconds")
    p_serve.add_argument("--max-upload-edges", type=int, default=2_000_000,
                         help="reject uploads with more edges than this")
    p_serve.add_argument("--fault-injection", action="store_true",
                         help="admit the 'crash' algorithm (test harnesses only)")
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    scenarios = all_scenarios()
    if args.json:
        payload = {
            "scenarios": [
                {
                    "name": s.name,
                    "title": s.title,
                    "paper_ref": s.paper_ref,
                    "params": {k: repr(v) for k, v in s.defaults.items()},
                    "artifact": f"BENCH_{s.name}.json",
                }
                for s in scenarios
            ],
            "campaigns": CAMPAIGNS,
        }
        print(json.dumps(payload, indent=2))
        return 0
    width = max(len(s.name) for s in scenarios)
    print(f"{len(scenarios)} registered scenarios:\n")
    for s in scenarios:
        print(f"  {s.name.ljust(width)}  {s.paper_ref:<28}  {s.title}")
    print("\ncampaigns:")
    for name, members in CAMPAIGNS.items():
        print(f"  {name}: {', '.join(members)}")
    print("\nrun one with:  python -m repro run <scenario> [--smoke] [--profile]")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    overrides = _parse_set(args.overrides)
    if args.sizes is not None:
        if scenario.size_param is None:
            raise ScenarioError(
                f"scenario {scenario.name!r} has no size parameter; use --set instead"
            )
        current = scenario.params_for(smoke=args.smoke)[scenario.size_param]
        overrides[scenario.size_param] = _parse_sizes(args.sizes, current)

    run = run_scenario(
        scenario,
        smoke=args.smoke,
        overrides=overrides or None,
        seed=args.seed,
        workers=args.workers,
        profile=args.profile,
        out=args.out,
        strict=False,
        repeat=args.repeat,
        verify=args.verify,
    )
    if not args.quiet:
        run.runner.print_table()
        print(f"\nparams: {run.params}")
        print(f"wall time: {run.seconds:.2f}s")
    if run.path is not None:
        print(f"wrote {run.path}")
    if run.failures:
        print(f"\n{len(run.failures)} check failure(s):", file=sys.stderr)
        for failure in run.failures:
            print(f"  {failure}", file=sys.stderr)
        if not args.no_check:
            return 1
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    try:
        members = CAMPAIGNS[args.name]
    except KeyError:
        raise ScenarioError(
            f"unknown campaign {args.name!r}; known campaigns: {', '.join(CAMPAIGNS)}"
        ) from None
    if args.only:
        wanted = [part for part in args.only.split(",") if part]
        unknown = sorted(set(wanted) - set(members))
        if unknown:
            raise ScenarioError(f"--only names not in campaign {args.name!r}: {unknown}")
        members = [name for name in members if name in wanted]

    campaign = run_campaign(
        members,
        campaign=args.name,
        smoke=args.smoke,
        seed=args.seed,
        workers=args.workers,
        profile=args.profile,
        out=args.out,
        strict=False,
        progress=lambda name: print(f"[campaign {args.name}] running {name} ..."),
        verify=args.verify,
    )
    print(f"\n{'scenario':<24} {'rows':>5} {'seconds':>8}  checks")
    for run in campaign.runs:
        status = "ok" if run.ok else f"{len(run.failures)} FAILED"
        print(f"{run.scenario.name:<24} {len(run.runner.rows):>5} {run.seconds:>8.2f}  {status}")
    print(f"\nwrote {campaign.path} (+ {len(campaign.runs)} per-scenario artifacts)")
    if not campaign.ok:
        for run in campaign.runs:
            for failure in run.failures:
                print(f"  {run.scenario.name}: {failure}", file=sys.stderr)
        if not args.no_check:
            return 1
    return 0


def _iter_artifacts(path: Path) -> list[tuple[str, dict]]:
    """Load one BENCH file; campaign merges unpack into their members."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ScenarioError(f"cannot read artifact {path}: {exc}") from None
    if isinstance(payload, dict) and isinstance(payload.get("scenarios"), dict):
        return [
            (f"{path.name}::{name}", artifact)
            for name, artifact in sorted(payload["scenarios"].items())
        ]
    return [(path.name, payload)]


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify.artifact import artifact_failures

    paths = [Path(p) for p in args.artifacts]
    if args.smoke:
        try:
            members = CAMPAIGNS[args.campaign_name]
        except KeyError:
            raise ScenarioError(
                f"unknown campaign {args.campaign_name!r}; "
                f"known campaigns: {', '.join(CAMPAIGNS)}"
            ) from None
        out_dir = Path(args.out)
        # verify=False here: the post-hoc replay below re-checks every
        # exported artifact anyway (the stronger, file-level check), so
        # running the suite inside the campaign too would be double work
        campaign = run_campaign(
            members,
            campaign=args.campaign_name,
            smoke=True,
            seed=args.seed,
            workers=1,
            out=out_dir,
            strict=False,
            progress=None if args.quiet else (
                lambda name: print(f"[verify --smoke] running {name} ...")
            ),
        )
        paths = [run.path for run in campaign.runs if run.path is not None] + paths
    if not paths:
        raise ScenarioError("verify needs artifact paths (or --smoke)")

    total_failures = 0
    checked = 0
    for path in paths:
        for label, artifact in _iter_artifacts(path):
            checked += 1
            failures = artifact_failures(artifact)
            total_failures += len(failures)
            if failures:
                print(f"FAIL {label}: {len(failures)} oracle failure(s)")
                for failure in failures:
                    print(f"  {failure}", file=sys.stderr)
            elif not args.quiet:
                print(f"ok   {label}")
    if not args.quiet:
        print(
            f"\nverified {checked} artifact(s): "
            + ("all oracles passed" if not total_failures
               else f"{total_failures} failure(s)")
        )
    return 1 if total_failures else 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.corpus import InstanceCorpus

    corpus = InstanceCorpus(cache_dir=args.dir, max_bytes=args.max_bytes)
    if corpus.cache_dir is None:
        raise ScenarioError(
            "no cache directory: pass --dir or set REPRO_CORPUS_DIR"
        )
    files = corpus.cache_files()
    total = corpus.cache_size_bytes()
    print(f"corpus cache {corpus.cache_dir} — {len(files)} file(s), "
          f"{total / 2**20:.1f} MiB"
          + (f", cap {corpus.max_bytes / 2**20:.1f} MiB"
             if corpus.max_bytes is not None else ", no cap"))
    for path in files:
        try:
            size = path.stat().st_size
        except OSError:
            continue
        print(f"  {size:>12}  {path.name}")
    if args.prune:
        if corpus.max_bytes is None:
            raise ScenarioError(
                "--prune needs a cap: pass --max-bytes or set "
                "REPRO_CORPUS_MAX_BYTES"
            )
        evicted = corpus.prune()
        print(f"pruned {len(evicted)} file(s), "
              f"{corpus.cache_size_bytes() / 2**20:.1f} MiB kept")
        for path in evicted:
            print(f"  evicted {path.name}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ColoringService, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_max_bytes=args.cache_bytes,
        batch_window_ms=args.batch_window_ms,
        max_upload_edges=args.max_upload_edges,
        fault_injection=args.fault_injection,
    )

    async def _serve() -> None:
        service = ColoringService(config)
        host, port = await service.start()
        # the e2e harness parses this line to find an ephemeral port
        print(f"repro-serve listening on {host}:{port}", flush=True)
        await service.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "verify":
            return _cmd_verify(args)
        if args.command == "corpus":
            return _cmd_corpus(args)
        if args.command == "serve":
            return _cmd_serve(args)
        return _cmd_campaign(args)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout was closed mid-print (e.g. `repro list | head`); exit quietly
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
