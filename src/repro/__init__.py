"""repro — reproduction of "Distributed coloring in sparse graphs with fewer colors".

Aboulker, Bonamy, Bousquet, Esperet (PODC 2018 / arXiv:1802.05582).

The most common entry points:

* :func:`repro.core.color_sparse_graph` — Theorem 1.3 (d-list-coloring of
  graphs with ``mad <= d``);
* :func:`repro.core.color_planar_graph` and friends — Corollary 2.3;
* :func:`repro.core.color_bounded_arboricity_graph` — Corollary 1.4;
* :func:`repro.core.brooks_list_coloring` / :func:`repro.core.nice_list_coloring`
  — Corollary 2.1 / Theorem 6.1;
* :mod:`repro.distributed` — the baselines (GPS, Barenboim–Elkin, Linial,
  Cole–Vishkin) and the LOCAL-model building blocks;
* :mod:`repro.lowerbounds` — the indistinguishability lower bounds
  (Theorems 1.5, 2.5, 2.6).
"""

from repro.graphs.graph import Graph

__version__ = "0.1.0"

__all__ = ["Graph", "__version__"]
