"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so that
callers can catch library-specific failures without masking programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class GraphError(ReproError):
    """Raised for structural problems with a graph (missing vertex, ...)."""


class ColoringError(ReproError):
    """Raised when a coloring cannot be produced or verified."""


class ListAssignmentError(ColoringError):
    """Raised when a list assignment is malformed or too small."""


class CliqueFoundError(ColoringError):
    """Raised (or returned as a result) when a forbidden clique is present.

    Theorem 1.3 of the paper either finds a ``(d+1)``-clique or a
    d-list-coloring.  The high-level API returns a result object instead of
    raising, but lower-level helpers use this exception to abort coloring
    when the promise ``K_{d+1} is not a subgraph`` is violated.
    """

    def __init__(self, clique, message: str | None = None):
        self.clique = tuple(clique)
        super().__init__(
            message
            or f"found a clique on {len(self.clique)} vertices: {self.clique!r}"
        )


class SimulationError(ReproError):
    """Raised when the LOCAL-model simulation is misused or diverges."""


class NonTerminationError(SimulationError):
    """Raised when a round-capped run ends with unfinished nodes.

    Carries the structured facts a driver needs to report or react:
    ``rounds`` is the number of rounds actually executed and ``active``
    the size of the still-unfinished set when the cap was hit (``None``
    when the engine does not track individual nodes, e.g. the batched
    path).  Subclasses :class:`SimulationError` so existing callers that
    catch the broad class keep working.
    """

    def __init__(self, message: str, *, rounds: int, active: int | None = None):
        self.rounds = rounds
        self.active = active
        super().__init__(message)


class LowerBoundError(ReproError):
    """Raised when a lower-bound certificate cannot be established."""


class VerificationError(ReproError):
    """Raised when a conformance oracle rejects a witness.

    Carries the failing :class:`repro.verify.oracle.Verdict` (when raised
    through :meth:`Verdict.raise_if_failed`) so callers can inspect the
    precise diagnostics programmatically.
    """

    def __init__(self, message: str, verdict=None):
        self.verdict = verdict
        super().__init__(message)


class GeneratorError(GraphError):
    """Raised when a graph generator is given inconsistent parameters."""
