"""Verification of (list-)colorings.

Every algorithm in the library is checked against these predicates in the
test suite and at the end of each benchmark run: a coloring is accepted only
if it is *complete* (every vertex colored), *proper* (no monochromatic
edge) and, in the list setting, *respects the lists*.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.coloring.assignment import Color, ListAssignment
from repro.errors import ColoringError
from repro.graphs.graph import Graph, Vertex

__all__ = [
    "is_proper_coloring",
    "respects_lists",
    "is_complete",
    "verify_coloring",
    "verify_list_coloring",
    "number_of_colors",
]


def is_complete(graph: Graph, coloring: Mapping[Vertex, Color]) -> bool:
    """Whether every vertex of ``graph`` has a color."""
    return all(v in coloring for v in graph)


def is_proper_coloring(graph: Graph, coloring: Mapping[Vertex, Color]) -> bool:
    """Whether no edge of ``graph`` is monochromatic (uncolored vertices ignored)."""
    for u, v in graph.edges():
        if u in coloring and v in coloring and coloring[u] == coloring[v]:
            return False
    return True


def respects_lists(
    coloring: Mapping[Vertex, Color], lists: ListAssignment
) -> bool:
    """Whether every colored vertex uses a color from its own list."""
    return all(color in lists.get(v) for v, color in coloring.items() if v in lists)


def number_of_colors(coloring: Mapping[Vertex, Color]) -> int:
    """The number of distinct colors used."""
    return len(set(coloring.values()))


def verify_coloring(graph: Graph, coloring: Mapping[Vertex, Color]) -> None:
    """Raise :class:`ColoringError` unless ``coloring`` is complete and proper."""
    if not is_complete(graph, coloring):
        missing = [v for v in graph if v not in coloring][:5]
        raise ColoringError(f"coloring is incomplete; e.g. missing {missing!r}")
    for u, v in graph.edges():
        if coloring[u] == coloring[v]:
            raise ColoringError(
                f"edge ({u!r}, {v!r}) is monochromatic with color {coloring[u]!r}"
            )


def verify_list_coloring(
    graph: Graph, coloring: Mapping[Vertex, Color], lists: ListAssignment
) -> None:
    """Raise unless the coloring is complete, proper, and within the lists."""
    verify_coloring(graph, coloring)
    for v, color in coloring.items():
        if v in lists and color not in lists[v]:
            raise ColoringError(
                f"vertex {v!r} uses color {color!r} outside its list {sorted(map(repr, lists[v]))}"
            )
