"""Verification of (list-)colorings.

Every algorithm in the library is checked against these predicates in the
test suite and at the end of each benchmark run: a coloring is accepted only
if it is *complete* (every vertex colored), *proper* (no monochromatic
edge) and, in the list setting, *respects the lists*.

On a :class:`~repro.graphs.frozen.FrozenGraph` the properness check runs
as one vectorized comparison over the CSR arrays (the per-edge loop is
kept for mutable graphs and for producing the exact offending edge in the
error message), and the list check reads the interned bitmasks of the
flat palette backend instead of materializing ``frozenset`` values.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.coloring.assignment import Color, ListAssignment
from repro.coloring.palette import FlatListAssignment
from repro.errors import ColoringError
from repro.graphs.frozen import HAS_NUMPY, FrozenGraph
from repro.graphs.graph import Graph, Vertex

if HAS_NUMPY:
    import numpy as _np
else:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

__all__ = [
    "is_proper_coloring",
    "respects_lists",
    "is_complete",
    "verify_coloring",
    "verify_list_coloring",
    "number_of_colors",
]

#: below this size the vectorized properness check costs more than it saves
_VECTORIZE_MIN_VERTICES = 128


def is_complete(graph: Graph, coloring: Mapping[Vertex, Color]) -> bool:
    """Whether every vertex of ``graph`` has a color."""
    return all(v in coloring for v in graph)


def _proper_fast(graph, coloring) -> bool | None:
    """Vectorized properness check; ``None`` when the fast path is off.

    Colors are interned to dense codes (uncolored vertices get a sentinel
    that never matches), and the edge test is one gather-and-compare over
    the CSR arrays.
    """
    if (
        _np is None
        or not isinstance(graph, FrozenGraph)
        or not graph._use_numpy
        or len(graph) < _VECTORIZE_MIN_VERTICES
    ):
        return None
    labels = graph.vertices()
    codes: dict[Color, int] = {}
    arr = _np.empty(len(labels), dtype=_np.int64)
    get = coloring.get
    for i, v in enumerate(labels):
        color = get(v)
        if color is None and v not in coloring:
            arr[i] = -1 - i  # unique sentinel: uncolored never conflicts
            continue
        code = codes.get(color)
        if code is None:
            code = len(codes)
            codes[color] = code
        arr[i] = code
    offsets, neighbors = graph.csr_arrays()
    degrees = _np.diff(offsets)
    src = _np.repeat(_np.arange(len(labels), dtype=_np.int64), degrees)
    return not bool((arr[src] == arr[neighbors]).any())


def is_proper_coloring(graph: Graph, coloring: Mapping[Vertex, Color]) -> bool:
    """Whether no edge of ``graph`` is monochromatic (uncolored vertices ignored)."""
    fast = _proper_fast(graph, coloring)
    if fast is not None:
        return fast
    for u, v in graph.edges():
        if u in coloring and v in coloring and coloring[u] == coloring[v]:
            return False
    return True


def respects_lists(
    coloring: Mapping[Vertex, Color], lists: ListAssignment
) -> bool:
    """Whether every colored vertex uses a color from its own list."""
    flat = _flat_of(lists)
    if flat is not None:
        get_index = flat.universe.get_index
        mask_of = flat.mask_of
        for v, color in coloring.items():
            if v not in flat:
                continue
            i = get_index(color)
            if i < 0 or not mask_of(v) >> i & 1:
                return False
        return True
    return all(color in lists.get(v) for v, color in coloring.items() if v in lists)


def _flat_of(lists) -> FlatListAssignment | None:
    if isinstance(lists, FlatListAssignment):
        return lists
    return getattr(lists, "flat", None)


def number_of_colors(coloring: Mapping[Vertex, Color]) -> int:
    """The number of distinct colors used."""
    return len(set(coloring.values()))


def verify_coloring(graph: Graph, coloring: Mapping[Vertex, Color]) -> None:
    """Raise :class:`ColoringError` unless ``coloring`` is complete and proper."""
    if not is_complete(graph, coloring):
        missing = [v for v in graph if v not in coloring][:5]
        raise ColoringError(f"coloring is incomplete; e.g. missing {missing!r}")
    if _proper_fast(graph, coloring):
        return  # the scan below only runs to name the offending edge
    for u, v in graph.edges():
        if coloring[u] == coloring[v]:
            raise ColoringError(
                f"edge ({u!r}, {v!r}) is monochromatic with color {coloring[u]!r}"
            )


def verify_list_coloring(
    graph: Graph, coloring: Mapping[Vertex, Color], lists: ListAssignment
) -> None:
    """Raise unless the coloring is complete, proper, and within the lists."""
    verify_coloring(graph, coloring)
    flat = _flat_of(lists)
    if flat is not None:
        get_index = flat.universe.get_index
        mask_of = flat.mask_of
        for v, color in coloring.items():
            if v not in flat:
                continue
            i = get_index(color)
            if i >= 0 and mask_of(v) >> i & 1:
                continue
            raise ColoringError(
                f"vertex {v!r} uses color {color!r} outside its list "
                f"{sorted(map(repr, lists[v]))}"
            )
        return
    for v, color in coloring.items():
        if v in lists and color not in lists[v]:
            raise ColoringError(
                f"vertex {v!r} uses color {color!r} outside its list {sorted(map(repr, lists[v]))}"
            )
