"""Sequential coloring toolkit: list assignments, greedy/exact solvers, Theorem 1.1.

The flat palette core (:mod:`repro.coloring.palette`) interns colors to
dense integers and backs every :class:`ListAssignment` with per-vertex
bitmasks; the algorithms' set algebra and ``min(..., key=repr)``
tie-breaks become integer mask operations with identical results.
"""

from repro.coloring.assignment import (
    Color,
    ListAssignment,
    random_lists,
    uniform_lists,
)
from repro.coloring.palette import FlatListAssignment, PaletteUniverse
from repro.coloring.borodin_ert import degree_list_coloring, extend_partial_coloring
from repro.coloring.exact import chromatic_number, is_k_colorable, list_coloring_search
from repro.coloring.greedy import (
    degeneracy_greedy_coloring,
    dsatur_coloring,
    greedy_coloring,
    greedy_list_coloring,
)
from repro.coloring.verification import (
    is_complete,
    is_proper_coloring,
    number_of_colors,
    respects_lists,
    verify_coloring,
    verify_list_coloring,
)

__all__ = [
    "Color",
    "FlatListAssignment",
    "ListAssignment",
    "PaletteUniverse",
    "random_lists",
    "uniform_lists",
    "degree_list_coloring",
    "extend_partial_coloring",
    "chromatic_number",
    "is_k_colorable",
    "list_coloring_search",
    "degeneracy_greedy_coloring",
    "dsatur_coloring",
    "greedy_coloring",
    "greedy_list_coloring",
    "is_complete",
    "is_proper_coloring",
    "number_of_colors",
    "respects_lists",
    "verify_coloring",
    "verify_list_coloring",
]
