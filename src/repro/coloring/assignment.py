"""List assignments and colorings.

The paper works in the *list-coloring* setting: every vertex ``v`` owns a
list ``L(v)`` of allowed colors and must pick its color from its own list.
A ``k``-list-assignment gives every vertex at least ``k`` colors.  Ordinary
coloring is the special case where all lists are ``{1, ..., k}``.

:class:`ListAssignment` is an immutable-by-convention mapping from vertices
to color sets with helpers for the operations the algorithms need
constantly: building uniform or random assignments, removing the colors of
already-colored neighbours (Observation 5.1), restricting to a vertex
subset, and validating sizes.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Mapping
from typing import Hashable

from repro.errors import ListAssignmentError
from repro.graphs.graph import Graph, Vertex

Color = Hashable

__all__ = ["Color", "ListAssignment", "uniform_lists", "random_lists"]


class ListAssignment:
    """A mapping from vertices to finite sets of allowed colors."""

    __slots__ = ("_lists",)

    def __init__(self, lists: Mapping[Vertex, Iterable[Color]]):
        self._lists: dict[Vertex, frozenset[Color]] = {
            v: frozenset(colors) for v, colors in lists.items()
        }

    # -- access ---------------------------------------------------------
    def __getitem__(self, v: Vertex) -> frozenset[Color]:
        try:
            return self._lists[v]
        except KeyError as exc:
            raise ListAssignmentError(f"vertex {v!r} has no list") from exc

    def __contains__(self, v: Vertex) -> bool:
        return v in self._lists

    def __iter__(self):
        return iter(self._lists)

    def __len__(self) -> int:
        return len(self._lists)

    def get(self, v: Vertex, default: frozenset[Color] = frozenset()) -> frozenset[Color]:
        return self._lists.get(v, default)

    def vertices(self) -> list[Vertex]:
        return list(self._lists)

    def as_dict(self) -> dict[Vertex, frozenset[Color]]:
        return dict(self._lists)

    def minimum_size(self) -> int:
        if not self._lists:
            return 0
        return min(len(colors) for colors in self._lists.values())

    def palette(self) -> frozenset[Color]:
        """The union of all lists."""
        result: set[Color] = set()
        for colors in self._lists.values():
            result |= colors
        return frozenset(result)

    # -- derivation -----------------------------------------------------
    def restrict(self, vertices: Iterable[Vertex]) -> "ListAssignment":
        """The assignment restricted to the given vertices (missing ones dropped)."""
        keep = set(vertices)
        return ListAssignment({v: c for v, c in self._lists.items() if v in keep})

    def without_colors(
        self, removals: Mapping[Vertex, Iterable[Color]]
    ) -> "ListAssignment":
        """Remove, per vertex, the given colors (e.g. colors of colored neighbours)."""
        new = dict(self._lists)
        for v, colors in removals.items():
            if v in new:
                new[v] = new[v] - frozenset(colors)
        return ListAssignment(new)

    def pruned_by_coloring(
        self, graph: Graph, coloring: Mapping[Vertex, Color]
    ) -> "ListAssignment":
        """Remove from each uncolored vertex the colors of its colored neighbours.

        This is Observation 5.1: if ``v`` has ``|L(v)| >= d`` and degree at
        most ``d`` in ``graph``, then after the pruning its list is at least
        as large as its number of uncolored neighbours.
        """
        new: dict[Vertex, frozenset[Color]] = {}
        for v, colors in self._lists.items():
            if v in coloring:
                continue
            used = {coloring[u] for u in graph.neighbors(v) if u in coloring}
            new[v] = colors - used
        return ListAssignment(new)

    def truncated(self, size: int) -> "ListAssignment":
        """Keep only ``size`` colors per list (deterministically, by sorted repr).

        Used to normalise lists to exactly the guaranteed size, which keeps
        the constructive Borodin–ERT case analysis tight.
        """
        new = {}
        for v, colors in self._lists.items():
            ordered = sorted(colors, key=repr)
            new[v] = frozenset(ordered[: max(size, 0)]) if len(ordered) > size else colors
        return ListAssignment(new)

    # -- validation -----------------------------------------------------
    def require_minimum(self, graph: Graph, k: int) -> None:
        """Raise unless every vertex of ``graph`` has a list of size >= k."""
        for v in graph:
            if len(self.get(v)) < k:
                raise ListAssignmentError(
                    f"vertex {v!r} has a list of size {len(self.get(v))} < {k}"
                )

    def covers(self, graph: Graph) -> bool:
        """Whether every vertex of ``graph`` has a (possibly empty) list."""
        return all(v in self._lists for v in graph)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = sorted(len(c) for c in self._lists.values())
        smallest = sizes[0] if sizes else 0
        return f"<ListAssignment |V|={len(self._lists)} min|L|={smallest}>"


def uniform_lists(graph: Graph, k: int, palette: Iterable[Color] | None = None) -> ListAssignment:
    """Every vertex gets the same list ``{1, ..., k}`` (or the given palette)."""
    colors = frozenset(palette) if palette is not None else frozenset(range(1, k + 1))
    if len(colors) < k:
        raise ListAssignmentError(f"palette has {len(colors)} colors, need {k}")
    return ListAssignment({v: colors for v in graph})


def random_lists(
    graph: Graph,
    k: int,
    palette_size: int | None = None,
    seed: int | None = None,
) -> ListAssignment:
    """Every vertex gets ``k`` colors drawn at random from a shared palette.

    ``palette_size`` defaults to ``2 k``, which makes lists overlap enough
    for the instances to be interesting but not identical.
    """
    if palette_size is None:
        palette_size = 2 * k
    if palette_size < k:
        raise ListAssignmentError("palette_size must be at least k")
    rng = random.Random(seed)
    palette = list(range(1, palette_size + 1))
    return ListAssignment(
        {v: frozenset(rng.sample(palette, k)) for v in graph}
    )
