"""List assignments and colorings.

The paper works in the *list-coloring* setting: every vertex ``v`` owns a
list ``L(v)`` of allowed colors and must pick its color from its own list.
A ``k``-list-assignment gives every vertex at least ``k`` colors.  Ordinary
coloring is the special case where all lists are ``{1, ..., k}``.

:class:`ListAssignment` is an immutable mapping from vertices to color sets
with helpers for the operations the algorithms need constantly: building
uniform or random assignments, removing the colors of already-colored
neighbours (Observation 5.1), restricting to a vertex subset, and
validating sizes.  Since the flat palette refactor it is a thin dict view
over :class:`~repro.coloring.palette.FlatListAssignment` — colors are
interned once into a :class:`~repro.coloring.palette.PaletteUniverse` and
every derivation runs on bitmasks; ``frozenset`` values are materialized
lazily (and cached) only for callers that ask for them.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Mapping
from typing import Hashable

from repro.errors import ListAssignmentError
from repro.coloring.palette import FlatListAssignment
from repro.graphs.graph import Graph, Vertex

Color = Hashable

__all__ = ["Color", "ListAssignment", "uniform_lists", "random_lists"]


class ListAssignment:
    """A mapping from vertices to finite sets of allowed colors.

    A dict-shaped view over a :class:`FlatListAssignment` backend: the
    public API (``lists[v]`` returning a ``frozenset``, ``restrict``,
    ``without_colors``, ...) is unchanged from the historical dict-of-
    frozensets implementation, but the storage is one interned bitmask per
    vertex and the derivations are mask operations.  Access the backend
    through :attr:`flat` for the vectorized kernels.
    """

    __slots__ = ("_flat", "_cache")

    def __init__(
        self, lists: "Mapping[Vertex, Iterable[Color]] | FlatListAssignment"
    ):
        if isinstance(lists, FlatListAssignment):
            self._flat = lists
        elif isinstance(lists, ListAssignment):
            self._flat = lists._flat
        else:
            self._flat = FlatListAssignment(lists)
        self._cache: dict[Vertex, frozenset[Color]] = {}

    @property
    def flat(self) -> FlatListAssignment:
        """The bitmask backend (shared, immutable by convention)."""
        return self._flat

    # -- access ---------------------------------------------------------
    def __getitem__(self, v: Vertex) -> frozenset[Color]:
        cached = self._cache.get(v)
        if cached is None:
            cached = self._flat[v]  # raises ListAssignmentError when absent
            self._cache[v] = cached
        return cached

    def __contains__(self, v: Vertex) -> bool:
        return v in self._flat

    def __iter__(self):
        return iter(self._flat)

    def __len__(self) -> int:
        return len(self._flat)

    def get(
        self, v: Vertex, default: frozenset[Color] | None = None
    ) -> frozenset[Color]:
        """The list of ``v``, or ``default`` (a fresh empty frozenset if unset)."""
        if v not in self._flat:
            return frozenset() if default is None else default
        return self[v]

    def vertices(self) -> list[Vertex]:
        return self._flat.vertices()

    def as_dict(self) -> dict[Vertex, frozenset[Color]]:
        return self._flat.as_dict()

    def minimum_size(self) -> int:
        return self._flat.minimum_size()

    def palette(self) -> frozenset[Color]:
        """The union of all lists."""
        return self._flat.palette()

    # -- derivation -----------------------------------------------------
    def restrict(self, vertices: Iterable[Vertex]) -> "ListAssignment":
        """The assignment restricted to the given vertices (missing ones dropped)."""
        return ListAssignment(self._flat.restrict(vertices))

    def without_colors(
        self, removals: Mapping[Vertex, Iterable[Color]]
    ) -> "ListAssignment":
        """Remove, per vertex, the given colors (e.g. colors of colored neighbours)."""
        return ListAssignment(self._flat.without_colors(removals))

    def pruned_by_coloring(
        self, graph: Graph, coloring: Mapping[Vertex, Color]
    ) -> "ListAssignment":
        """Remove from each uncolored vertex the colors of its colored neighbours.

        This is Observation 5.1: if ``v`` has ``|L(v)| >= d`` and degree at
        most ``d`` in ``graph``, then after the pruning its list is at least
        as large as its number of uncolored neighbours.
        """
        return ListAssignment(self._flat.pruned_by_coloring(graph, coloring))

    def truncated(self, size: int) -> "ListAssignment":
        """Keep only ``size`` colors per list (deterministically, by sorted repr).

        Used to normalise lists to exactly the guaranteed size, which keeps
        the constructive Borodin–ERT case analysis tight.
        """
        return ListAssignment(self._flat.truncated(size))

    # -- validation -----------------------------------------------------
    def require_minimum(self, graph: Graph, k: int) -> None:
        """Raise unless every vertex of ``graph`` has a list of size >= k."""
        flat = self._flat
        for v in graph:
            if flat.size_of(v) < k:
                raise ListAssignmentError(
                    f"vertex {v!r} has a list of size {flat.size_of(v)} < {k}"
                )

    def covers(self, graph: Graph) -> bool:
        """Whether every vertex of ``graph`` has a (possibly empty) list."""
        return self._flat.covers(graph)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ListAssignment |V|={len(self._flat)} min|L|={self.minimum_size()}>"


def uniform_lists(graph: Graph, k: int, palette: Iterable[Color] | None = None) -> ListAssignment:
    """Every vertex gets the same list ``{1, ..., k}`` (or the given palette)."""
    colors = frozenset(palette) if palette is not None else frozenset(range(1, k + 1))
    if len(colors) < k:
        raise ListAssignmentError(f"palette has {len(colors)} colors, need {k}")
    return ListAssignment({v: colors for v in graph})


def random_lists(
    graph: Graph,
    k: int,
    palette_size: int | None = None,
    seed: int | None = None,
    rng: random.Random | None = None,
) -> ListAssignment:
    """Every vertex gets ``k`` colors drawn at random from a shared palette.

    ``palette_size`` defaults to ``2 k``, which makes lists overlap enough
    for the instances to be interesting but not identical.  Randomness
    comes from the explicit ``rng`` (or a ``random.Random(seed)`` built
    here) — never from the module-global generator — so scenario runs stay
    reproducible at any ``--workers`` setting.
    """
    if palette_size is None:
        palette_size = 2 * k
    if palette_size < k:
        raise ListAssignmentError("palette_size must be at least k")
    if rng is None:
        rng = random.Random(seed)
    palette = list(range(1, palette_size + 1))
    return ListAssignment(
        {v: frozenset(rng.sample(palette, k)) for v in graph}
    )
