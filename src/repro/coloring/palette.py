"""The flat palette core: interned colors and bitset-backed list assignments.

Every list-coloring layer of the library ultimately manipulates *sets of
colors*: removing the colors of colored neighbours (Observation 5.1),
restricting an assignment to a vertex subset, truncating lists to the
guaranteed size, picking the smallest available color.  The historical
representation — one ``frozenset[Hashable]`` per vertex — pays hashing and
allocation for every one of those operations, per vertex, per layer.

This module stores the same information flat:

* :class:`PaletteUniverse` interns the (arbitrary, hashable) color values
  of an assignment into dense integers ``0 .. U-1``.  The interning order
  is ``sorted(colors, key=repr)`` — the same deterministic order every
  sequential solver in the library uses for its ``min(available,
  key=repr)`` tie-break — so *the lowest set bit of a color mask is
  exactly the color the dict pipeline would pick*.  That equivalence is
  what makes the vectorized kernels bit-identical to the per-vertex set
  algebra.
* :class:`FlatListAssignment` stores one color *bitmask* per vertex
  (arbitrary-width Python ints, so the pure-Python backend needs nothing
  else) plus, on demand, a packed numpy view — one row of ``uint64``
  blocks per vertex — that the batch kernels (pruning over CSR arrays,
  :meth:`first_free_colors`) operate on.

The legacy :class:`~repro.coloring.assignment.ListAssignment` is a thin
dict view over this backend (lazy ``frozenset`` materialization), so every
existing call site keeps working while the hot paths read the masks.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Hashable

from repro.errors import ListAssignmentError
from repro.graphs.frozen import HAS_NUMPY, FrozenGraph
from repro.graphs.graph import Vertex

if HAS_NUMPY:
    import numpy as _np
else:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

Color = Hashable

__all__ = ["Color", "PaletteUniverse", "FlatListAssignment", "first_set_bits"]


class PaletteUniverse:
    """A frozen interning of arbitrary color values to dense integers.

    Colors are ordered by ``repr`` (ties broken by first appearance), so
    bit ``i`` of a mask is the ``i``-th smallest color under the
    ``key=repr`` ordering used by every deterministic tie-break in the
    library.  Instances are immutable and shared freely between derived
    assignments.
    """

    __slots__ = ("colors", "_index")

    def __init__(self, colors: Iterable[Color]):
        seen: dict[Color, None] = {}
        for color in colors:
            seen.setdefault(color, None)
        self.colors: tuple[Color, ...] = tuple(sorted(seen, key=repr))
        self._index: dict[Color, int] = {c: i for i, c in enumerate(self.colors)}

    def __len__(self) -> int:
        return len(self.colors)

    def __contains__(self, color: Color) -> bool:
        return color in self._index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PaletteUniverse size={len(self.colors)}>"

    @property
    def blocks(self) -> int:
        """Number of 64-bit blocks a packed row needs (at least 1)."""
        return max(1, (len(self.colors) + 63) // 64)

    def index_of(self, color: Color) -> int:
        """The dense index of ``color`` (raises ``KeyError`` when unknown)."""
        return self._index[color]

    def get_index(self, color: Color, default: int = -1) -> int:
        return self._index.get(color, default)

    def color_of(self, index: int) -> Color:
        return self.colors[index]

    def encode(self, colors: Iterable[Color], strict: bool = True) -> int:
        """Pack ``colors`` into one mask; unknown colors raise or are ignored."""
        mask = 0
        index = self._index
        if strict:
            for color in colors:
                mask |= 1 << index[color]
        else:
            for color in colors:
                i = index.get(color)
                if i is not None:
                    mask |= 1 << i
        return mask

    def decode(self, mask: int) -> frozenset[Color]:
        """The set of colors whose bits are set in ``mask``."""
        colors = self.colors
        out = []
        while mask:
            low = mask & -mask
            out.append(colors[low.bit_length() - 1])
            mask ^= low
        return frozenset(out)


def first_set_bits(rows):
    """Per-row index of the lowest set bit of a packed ``(k, blocks)`` array.

    Returns an ``int64`` array with ``-1`` for all-zero rows.  This is the
    batch form of the ``min(available, key=repr)`` tie-break: with a
    :class:`PaletteUniverse`'s repr-sorted interning, the lowest set bit of
    an availability mask *is* the color the sequential solvers would pick.
    """
    k, blocks = rows.shape
    result = _np.full(k, -1, dtype=_np.int64)
    pending = _np.arange(k)
    for b in range(blocks):
        col = rows[pending, b]
        nz = col != 0
        if nz.any():
            vals = col[nz]
            low = vals & (_np.uint64(0) - vals)  # isolate the lowest bit
            # exact for powers of two up to 2^63 in float64
            bit = _np.log2(low.astype(_np.float64)).astype(_np.int64)
            result[pending[nz]] = bit + 64 * b
        pending = pending[~nz]
        if pending.size == 0:
            break
    return result


def _pack_rows(masks: Sequence[int], blocks: int):
    """Pack Python int masks into a ``(len(masks), blocks)`` uint64 array."""
    nbytes = blocks * 8
    buf = b"".join(m.to_bytes(nbytes, "little") for m in masks)
    return _np.frombuffer(buf, dtype="<u8").reshape(len(masks), blocks).copy()


class FlatListAssignment:
    """Per-vertex color lists as bitmasks over an interned universe.

    The canonical storage is one arbitrary-width Python int per vertex
    (``masks``), which makes every derivation a handful of C-speed integer
    ops and keeps the class fully functional without numpy.  The packed
    numpy view (:meth:`rows`) is built lazily for the batch kernels.

    All derivation methods mirror the semantics of the historical dict
    implementation exactly — including deterministic ordering choices —
    which is what the dict/flat parity suite asserts.
    """

    __slots__ = ("universe", "_vertices", "_vindex", "_masks", "_rows_np")

    def __init__(
        self,
        lists: Mapping[Vertex, Iterable[Color]] | None = None,
        universe: PaletteUniverse | None = None,
    ):
        if lists is None:
            lists = {}
        materialized = {v: tuple(colors) for v, colors in lists.items()}
        if universe is None:
            universe = PaletteUniverse(
                c for colors in materialized.values() for c in colors
            )
        self.universe = universe
        self._vertices: list[Vertex] = list(materialized)
        self._vindex: dict[Vertex, int] = {
            v: i for i, v in enumerate(self._vertices)
        }
        self._masks: list[int] = [
            universe.encode(colors) for colors in materialized.values()
        ]
        self._rows_np = None

    @classmethod
    def from_masks(
        cls,
        universe: PaletteUniverse,
        vertices: Sequence[Vertex],
        masks: Sequence[int],
    ) -> "FlatListAssignment":
        """Build directly from interned masks (no re-encoding)."""
        self = cls.__new__(cls)
        self.universe = universe
        self._vertices = list(vertices)
        self._vindex = {v: i for i, v in enumerate(self._vertices)}
        self._masks = list(masks)
        self._rows_np = None
        return self

    # -- access ---------------------------------------------------------
    def __getitem__(self, v: Vertex) -> frozenset[Color]:
        try:
            i = self._vindex[v]
        except KeyError as exc:
            raise ListAssignmentError(f"vertex {v!r} has no list") from exc
        return self.universe.decode(self._masks[i])

    def __contains__(self, v: Vertex) -> bool:
        return v in self._vindex

    def __iter__(self):
        return iter(self._vertices)

    def __len__(self) -> int:
        return len(self._vertices)

    def get(self, v: Vertex, default: frozenset[Color] | None = None) -> frozenset[Color]:
        i = self._vindex.get(v)
        if i is None:
            return frozenset() if default is None else default
        return self.universe.decode(self._masks[i])

    def vertices(self) -> list[Vertex]:
        return list(self._vertices)

    def as_dict(self) -> dict[Vertex, frozenset[Color]]:
        decode = self.universe.decode
        return {v: decode(m) for v, m in zip(self._vertices, self._masks)}

    def mask_of(self, v: Vertex) -> int:
        """The raw bitmask of ``v`` (0 when the vertex has no list)."""
        i = self._vindex.get(v)
        return 0 if i is None else self._masks[i]

    def masks(self) -> list[int]:
        """The raw per-vertex masks, aligned with :meth:`vertices`."""
        return list(self._masks)

    def size_of(self, v: Vertex) -> int:
        return self.mask_of(v).bit_count()

    def minimum_size(self, default: int = 0) -> int:
        """Smallest list size, or ``default`` for a zero-vertex assignment.

        A minimum over no vertices is vacuous, so degenerate instances
        (empty corpus graphs) let the caller pick the identity their
        precondition needs — e.g. the Moser–Tardos sampler asks for
        ``minimum_size(default=1) >= 1`` so a zero-vertex run passes
        while a genuinely empty list still fails.
        """
        if not self._masks:
            return default
        return min(m.bit_count() for m in self._masks)

    def palette(self) -> frozenset[Color]:
        """The union of all lists."""
        union = 0
        for m in self._masks:
            union |= m
        return self.universe.decode(union)

    def rows(self):
        """The packed ``(n, blocks)`` uint64 numpy view (cached; numpy only)."""
        if self._rows_np is None:
            if not HAS_NUMPY:
                raise ListAssignmentError(
                    "packed rows need numpy; use the mask API instead"
                )
            self._rows_np = _pack_rows(self._masks, self.universe.blocks)
        return self._rows_np

    def rows_for(self, vertices: Sequence[Vertex]):
        """Packed rows aligned with ``vertices`` (missing vertices: zero rows)."""
        rows = self.rows()
        idx = _np.asarray(
            [self._vindex.get(v, -1) for v in vertices], dtype=_np.int64
        )
        out = _np.zeros((len(idx), rows.shape[1]), dtype=_np.uint64)
        present = idx >= 0
        out[present] = rows[idx[present]]
        return out

    # -- derivation -----------------------------------------------------
    def restrict(self, vertices: Iterable[Vertex]) -> "FlatListAssignment":
        """The assignment restricted to the given vertices (missing ones dropped)."""
        keep = set(vertices)
        kept = [
            (v, m) for v, m in zip(self._vertices, self._masks) if v in keep
        ]
        return FlatListAssignment.from_masks(
            self.universe, [v for v, _ in kept], [m for _, m in kept]
        )

    def without_colors(
        self, removals: Mapping[Vertex, Iterable[Color]]
    ) -> "FlatListAssignment":
        """Remove, per vertex, the given colors (unknown colors are no-ops)."""
        masks = list(self._masks)
        encode = self.universe.encode
        vindex = self._vindex
        for v, colors in removals.items():
            i = vindex.get(v)
            if i is not None:
                masks[i] &= ~encode(colors, strict=False)
        return FlatListAssignment.from_masks(self.universe, self._vertices, masks)

    def pruned_by_coloring(
        self, graph, coloring: Mapping[Vertex, Color]
    ) -> "FlatListAssignment":
        """Remove from each uncolored vertex the colors of its colored neighbours.

        Observation 5.1.  Colored vertices are dropped from the result.  On
        a :class:`~repro.graphs.frozen.FrozenGraph` with numpy the pruning
        runs as one vectorized pass over the CSR arrays; otherwise it walks
        neighbourhoods with integer mask ops.
        """
        if (
            HAS_NUMPY
            and isinstance(graph, FrozenGraph)
            and graph._use_numpy
            and self.universe.blocks == 1
            and len(graph) >= 64
        ):
            return self._pruned_csr(graph, coloring)
        get_index = self.universe.get_index
        out_vertices: list[Vertex] = []
        out_masks: list[int] = []
        for v, mask in zip(self._vertices, self._masks):
            if v in coloring:
                continue
            used = 0
            for u in graph.neighbors(v):
                if u in coloring:
                    i = get_index(coloring[u])
                    if i >= 0:
                        used |= 1 << i
            out_vertices.append(v)
            out_masks.append(mask & ~used)
        return FlatListAssignment.from_masks(self.universe, out_vertices, out_masks)

    def _pruned_csr(self, graph: FrozenGraph, coloring) -> "FlatListAssignment":
        """One-block vectorized pruning over a frozen graph's CSR arrays."""
        n = len(graph)
        index_of = graph.index_of
        get_index = self.universe.get_index
        color_idx = _np.full(n, -1, dtype=_np.int64)
        for v, color in coloring.items():
            i = graph._index.get(v)
            if i is not None:
                color_idx[i] = get_index(color)
        offsets, neighbors = graph.csr_arrays()
        nbr_colors = color_idx[neighbors]
        bits = _np.where(
            nbr_colors >= 0,
            _np.left_shift(
                _np.uint64(1), nbr_colors.clip(min=0).astype(_np.uint64)
            ),
            _np.uint64(0),
        )
        used = _segment_or(bits, offsets)
        out_vertices: list[Vertex] = []
        out_idx: list[int] = []
        for v in self._vertices:
            if v in coloring:
                continue
            out_vertices.append(v)
            out_idx.append(index_of(v))
        masks = self.rows()[:, 0]
        own = _np.asarray(
            [self._vindex[v] for v in out_vertices], dtype=_np.int64
        )
        gathered = _np.asarray(out_idx, dtype=_np.int64)
        pruned = masks[own] & ~used[gathered]
        return FlatListAssignment.from_masks(
            self.universe, out_vertices, [int(x) for x in pruned]
        )

    def truncated(self, size: int) -> "FlatListAssignment":
        """Keep only the ``size`` lowest bits per list (= smallest by repr).

        ``size`` must be non-negative — a negative truncation silently
        emptying every list is exactly the kind of vacuous-witness bug the
        conformance oracles exist to catch, so it raises instead.
        """
        if size < 0:
            from repro.errors import ListAssignmentError

            raise ListAssignmentError(
                f"cannot truncate lists to negative size {size}"
            )
        out = []
        for mask in self._masks:
            if mask.bit_count() > size:
                kept = 0
                m = mask
                for _ in range(size):
                    low = m & -m
                    kept |= low
                    m ^= low
                out.append(kept)
            else:
                out.append(mask)
        return FlatListAssignment.from_masks(self.universe, self._vertices, out)

    #: batch size above which first_free_colors packs rows and vectorizes
    _VECTORIZE_BATCH = 32

    def first_free_colors(
        self, vertices: Sequence[Vertex], used_masks: Sequence[int]
    ) -> list[Color]:
        """Batch tie-break kernel: smallest available color per vertex.

        ``used_masks[i]`` is the mask of colors forbidden for
        ``vertices[i]``; the result is ``min(L(v) - used, key=repr)`` for
        every vertex.  Large batches gather the packed rows and extract
        the lowest set bits in one :func:`first_set_bits` pass; small ones
        stay on integer ops.  Raises :class:`ListAssignmentError` when
        some vertex has no color left (the caller names the invariant
        that broke).
        """
        if len(vertices) != len(used_masks):
            # both code paths must reject this the same way: the scalar
            # zip would silently truncate, the packed path would die in a
            # shape broadcast — neither is a usable contract
            raise ListAssignmentError(
                f"{len(vertices)} vertices but {len(used_masks)} used masks"
            )
        color_of = self.universe.color_of
        if HAS_NUMPY and len(vertices) >= self._VECTORIZE_BATCH:
            rows = self.rows_for(vertices)
            used = _pack_rows([int(m) for m in used_masks], self.universe.blocks)
            bits = first_set_bits(rows & ~used)
            out = []
            for v, bit in zip(vertices, bits):
                if bit < 0:
                    raise ListAssignmentError(
                        f"vertex {v!r} has no available color left"
                    )
                out.append(color_of(int(bit)))
            return out
        out = []
        for v, used_mask in zip(vertices, used_masks):
            free = self.mask_of(v) & ~used_mask
            if not free:
                raise ListAssignmentError(
                    f"vertex {v!r} has no available color left"
                )
            out.append(color_of((free & -free).bit_length() - 1))
        return out

    # -- validation -----------------------------------------------------
    def require_minimum(self, graph, k: int) -> None:
        """Raise unless every vertex of ``graph`` has a list of size >= k."""
        for v in graph:
            if self.size_of(v) < k:
                raise ListAssignmentError(
                    f"vertex {v!r} has a list of size {self.size_of(v)} < {k}"
                )

    def covers(self, graph) -> bool:
        """Whether every vertex of ``graph`` has a (possibly empty) list."""
        vindex = self._vindex
        return all(v in vindex for v in graph)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<FlatListAssignment |V|={len(self._vertices)} "
            f"U={len(self.universe)} min|L|={self.minimum_size()}>"
        )


def _segment_or(values, offsets):
    """Per-segment bitwise OR of a uint64 array (empty segments give 0)."""
    n = len(offsets) - 1
    out = _np.zeros(n, dtype=_np.uint64)
    if n == 0 or len(values) == 0:
        return out
    starts = _np.asarray(offsets[:-1])
    ends = _np.asarray(offsets[1:])
    nonempty = _np.flatnonzero(starts != ends)
    if nonempty.size:
        out[nonempty] = _np.bitwise_or.reduceat(values, starts[nonempty])
    return out
