"""Exact (exponential-time) coloring solvers.

Two uses in the reproduction:

* the lower-bound experiments (Theorems 1.5, 2.5, 2.6) need exact chromatic
  numbers of small obstruction graphs (Klein-bottle grids, cycle powers);
* the constructive Borodin–ERT solver falls back to exhaustive list-coloring
  search in a rare residual case (2-connected block with tight, pairwise
  disjoint lists on every admissible vertex triple); Theorem 1.1 guarantees
  a solution exists, so the search always terminates with an answer.

Both solvers are branch-and-bound backtrackers with forward checking
(smallest-remaining-list-first variable order), which is plenty for graphs
with a few hundred vertices and small lists.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.coloring.assignment import Color, ListAssignment, uniform_lists
from repro.graphs.graph import Graph, Vertex

__all__ = [
    "list_coloring_search",
    "chromatic_number",
    "is_k_colorable",
    "list_chromatic_feasible",
]


def list_coloring_search(
    graph: Graph,
    lists: ListAssignment,
    partial: Mapping[Vertex, Color] | None = None,
    node_limit: int | None = None,
) -> dict[Vertex, Color] | None:
    """Find a proper list-coloring by backtracking, or ``None`` if none exists.

    Parameters
    ----------
    graph, lists:
        The instance.  Every vertex must have a list.
    partial:
        Optional pre-colored vertices (kept fixed).
    node_limit:
        Optional cap on the number of search nodes; ``None`` searches
        exhaustively.  When the cap is hit the function returns ``None``
        even though a coloring may exist — callers that rely on existence
        guarantees should leave it unset.
    """
    coloring: dict[Vertex, Color] = dict(partial or {})
    domains: dict[Vertex, set[Color]] = {}
    for v in graph:
        if v in coloring:
            continue
        used = {coloring[u] for u in graph.neighbors(v) if u in coloring}
        domains[v] = set(lists[v]) - used
        if not domains[v]:
            return None
    nodes_visited = 0

    def select() -> Vertex | None:
        best, best_size = None, None
        for v, dom in domains.items():
            if v in coloring:
                continue
            if best_size is None or len(dom) < best_size:
                best, best_size = v, len(dom)
                if best_size <= 1:
                    break
        return best

    def backtrack() -> bool:
        nonlocal nodes_visited
        nodes_visited += 1
        if node_limit is not None and nodes_visited > node_limit:
            return False
        v = select()
        if v is None:
            return True
        # order colors deterministically for reproducibility
        for color in sorted(domains[v], key=repr):
            coloring[v] = color
            removed: list[Vertex] = []
            feasible = True
            for u in graph.neighbors(v):
                if u in coloring or u not in domains:
                    continue
                if color in domains[u]:
                    domains[u].discard(color)
                    removed.append(u)
                    if not domains[u]:
                        feasible = False
            if feasible and backtrack():
                return True
            del coloring[v]
            for u in removed:
                domains[u].add(color)
        return False

    if backtrack():
        return coloring
    return None


def is_k_colorable(graph: Graph, k: int) -> bool:
    """Whether ``graph`` admits a proper coloring with ``k`` colors."""
    if k <= 0:
        return graph.number_of_vertices() == 0
    return list_coloring_search(graph, uniform_lists(graph, k)) is not None


def chromatic_number(graph: Graph, upper_bound: int | None = None) -> int:
    """The exact chromatic number (exponential time; use on small graphs).

    ``upper_bound`` short-circuits the search: the function never tests more
    than that many colors and raises if the bound is exceeded.
    """
    n = graph.number_of_vertices()
    if n == 0:
        return 0
    if graph.number_of_edges() == 0:
        return 1
    limit = upper_bound if upper_bound is not None else graph.max_degree() + 1
    for k in range(2, limit + 1):
        if is_k_colorable(graph, k):
            return k
    if upper_bound is not None:
        raise ValueError(
            f"chromatic number exceeds the supplied upper bound {upper_bound}"
        )
    return limit


def list_chromatic_feasible(graph: Graph, lists: ListAssignment) -> bool:
    """Whether the specific list assignment admits a proper coloring."""
    return list_coloring_search(graph, lists) is not None
