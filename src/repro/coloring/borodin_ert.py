"""Constructive solver for Theorem 1.1 (Borodin; Erdős–Rubin–Taylor).

**Theorem 1.1.** If a connected graph ``G`` is not a Gallai tree, then for
any list assignment ``L`` with ``|L(v)| >= d_G(v)`` for every vertex, ``G``
is L-list-colorable.

The paper invokes this theorem *existentially* inside Lemma 3.2 (nodes of
the LOCAL model have unbounded computation, so each root simply "finds" the
extension).  For the reproduction we implement a constructive solver whose
cases mirror the classical proof:

* **Slack case** — some vertex ``v`` has ``|L(v)| > d(v)``: order the
  vertices by decreasing BFS distance from ``v`` and color greedily; every
  vertex other than ``v`` still has an uncolored neighbour (its BFS parent)
  when its turn comes, and ``v`` itself has spare colors.

* **Leaf-block peeling** — the graph is not 2-connected: pick a leaf block
  ``B`` (with cut vertex ``x``) different from a designated non-Gallai
  block, color ``B - x`` first (its vertices adjacent to ``x`` have slack
  inside ``B - x``, so the slack case applies), shrink ``x``'s list by the
  colors used on its ``B``-neighbours, and recurse on ``G - (B - x)``,
  which still contains the non-Gallai block.

* **2-connected case** — the graph is 2-connected and neither a clique nor
  an odd cycle.  Even cycles are handled directly.  Otherwise we look for a
  vertex ``b`` with two non-adjacent neighbours ``a`` and ``c`` such that
  ``G - a - c`` is connected and ``L(a)`` and ``L(c)`` share a color: give
  that color to both, then color ``G - a - c`` greedily by decreasing BFS
  distance from ``b``; since two of ``b``'s neighbours share a color, ``b``
  keeps a spare color for the end.

* **Fallback** — when every admissible triple has disjoint lists (rare; it
  requires at least ``d(a) + d(c)`` distinct colors around a single
  vertex), the solver falls back to exhaustive search; Theorem 1.1
  guarantees a solution exists, so the search succeeds.

The public entry point :func:`degree_list_coloring` also accepts instances
whose guarantee comes from a slack vertex even if the graph *is* a Gallai
tree, because this is exactly the situation of a happy vertex whose rich
ball contains a vertex of degree at most ``d - 1`` (Lemma 3.2).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.coloring.assignment import Color, ListAssignment
from repro.coloring.exact import list_coloring_search
from repro.errors import ColoringError
from repro.graphs.graph import Graph, Vertex
from repro.graphs.properties.blocks import blocks_and_cut_vertices
from repro.graphs.properties.gallai import (
    block_is_clique,
    block_is_odd_cycle,
)

__all__ = ["degree_list_coloring", "is_degree_choosable_instance"]


def is_degree_choosable_instance(graph: Graph, lists: ListAssignment) -> bool:
    """Check the promise of :func:`degree_list_coloring` on a connected graph.

    Returns ``True`` when either some vertex has more colors than its
    degree, or the graph is not a Gallai tree.  (These are the two
    situations in which Theorem 1.1 — or a trivial greedy argument —
    guarantees a coloring.)
    """
    if any(len(lists[v]) > graph.degree(v) for v in graph):
        return True
    from repro.graphs.properties.gallai import is_gallai_tree

    return not is_gallai_tree(graph)


def degree_list_coloring(
    graph: Graph, lists: ListAssignment
) -> dict[Vertex, Color]:
    """Color ``graph`` from ``lists`` where ``|L(v)| >= d(v)`` for all ``v``.

    The graph may be disconnected; each connected component must satisfy
    the promise of Theorem 1.1 (not a Gallai tree) *or* contain a vertex
    with more colors than its degree.  Raises :class:`ColoringError` when a
    component violates both (i.e. when no coloring is guaranteed and the
    exhaustive fallback proves none exists).
    """
    for v in graph:
        if len(lists.get(v)) < graph.degree(v):
            raise ColoringError(
                f"vertex {v!r} has {len(lists.get(v))} colors but degree "
                f"{graph.degree(v)}; Theorem 1.1 requires |L(v)| >= d(v)"
            )
    coloring: dict[Vertex, Color] = {}
    for component in graph.connected_components():
        sub = graph.subgraph(component)
        coloring.update(_solve_connected(sub, lists.restrict(component)))
    return coloring


# ---------------------------------------------------------------------------
# connected case
# ---------------------------------------------------------------------------

def _solve_connected(graph: Graph, lists: ListAssignment) -> dict[Vertex, Color]:
    if len(graph) == 0:
        return {}
    if len(graph) == 1:
        v = next(iter(graph))
        if not lists[v]:
            raise ColoringError(f"vertex {v!r} has an empty list")
        return {v: min(lists[v], key=repr)}

    slack = _find_slack_vertex(graph, lists)
    if slack is not None:
        return _greedy_towards(graph, lists, slack)

    blocks, cuts = blocks_and_cut_vertices(graph)
    non_gallai = [
        b
        for b in blocks
        if not block_is_clique(graph, b) and not block_is_odd_cycle(graph, b)
    ]
    if len(blocks) == 1:
        return _solve_biconnected(graph, lists, bool(non_gallai))
    if not non_gallai:
        # Gallai tree with tight lists everywhere: no guarantee.  Attempt an
        # exhaustive search anyway (specific lists may still admit a coloring)
        # and report a precise error otherwise.
        result = list_coloring_search(graph, lists)
        if result is None:
            raise ColoringError(
                "the component is a Gallai tree with tight lists; "
                "Theorem 1.1 gives no coloring and none exists for these lists"
            )
        return result
    return _peel_leaf_block(graph, lists, blocks, cuts, non_gallai[0])


def _find_slack_vertex(graph: Graph, lists: ListAssignment) -> Vertex | None:
    for v in graph:
        if len(lists[v]) > graph.degree(v):
            return v
    return None


def _greedy_towards(
    graph: Graph, lists: ListAssignment, target: Vertex
) -> dict[Vertex, Color]:
    """Greedy coloring in decreasing BFS-distance-from-``target`` order.

    Works whenever ``|L(v)| >= d(v)`` for every vertex and
    ``|L(target)| > d(target)`` *or* ``target`` keeps an uncolored
    neighbour until the end (it is colored last, so only its own slack
    matters).
    """
    distances = graph.bfs_distances(target)
    if len(distances) != len(graph):
        raise ColoringError("graph passed to _greedy_towards is not connected")
    order = sorted(distances, key=lambda v: (-distances[v], repr(v)))
    coloring: dict[Vertex, Color] = {}
    for v in order:
        used = {coloring[u] for u in graph.neighbors(v) if u in coloring}
        available = lists[v] - used
        if not available:
            raise ColoringError(
                f"greedy-towards ran out of colors at {v!r}; "
                "the slack-vertex promise was violated"
            )
        coloring[v] = min(available, key=repr)
    return coloring


# ---------------------------------------------------------------------------
# leaf-block peeling (graph not 2-connected)
# ---------------------------------------------------------------------------

def _peel_leaf_block(
    graph: Graph,
    lists: ListAssignment,
    blocks: list[frozenset[Vertex]],
    cuts: set[Vertex],
    anchor_block: frozenset[Vertex],
) -> dict[Vertex, Color]:
    """Peel a leaf block different from ``anchor_block`` and recurse."""
    leaf = None
    for block in blocks:
        if block == anchor_block:
            continue
        if len(block & cuts) <= 1:
            leaf = block
            break
    if leaf is None:
        # the anchor block is itself the unique leaf: peel any other leaf
        # block (there are at least two leaves in a block tree with >= 2
        # blocks, so this can only happen when the anchor is one of them and
        # every other block is internal — impossible; defensive fallback)
        result = list_coloring_search(graph, lists)
        if result is None:
            raise ColoringError("failed to select a leaf block to peel")
        return result

    cut_in_leaf = next(iter(leaf & cuts), None)
    if cut_in_leaf is None:
        # disconnected defensive case; should not happen for connected graphs
        raise ColoringError("leaf block without a cut vertex in a connected graph")

    body = set(leaf) - {cut_in_leaf}
    # 1. color the leaf body first; neighbours of the cut vertex have slack
    #    inside the body because they lose a neighbour but no colors
    body_graph = graph.subgraph(body)
    body_coloring: dict[Vertex, Color] = {}
    for component in body_graph.connected_components():
        comp_graph = body_graph.subgraph(component)
        slack = next(
            (v for v in component if graph.has_edge(v, cut_in_leaf)), None
        )
        comp_lists = lists.restrict(component)
        if slack is None:
            slack = _find_slack_vertex(comp_graph, comp_lists)
        if slack is None:
            # every body vertex keeps its full degree inside the body, which
            # contradicts B being 2-connected; fall back defensively
            found = list_coloring_search(comp_graph, comp_lists)
            if found is None:
                raise ColoringError("leaf-block body could not be colored")
            body_coloring.update(found)
        else:
            body_coloring.update(_greedy_towards(comp_graph, comp_lists, slack))

    # 2. shrink the cut vertex's list by the colors used on its leaf-neighbours
    used_on_leaf = {
        body_coloring[u]
        for u in graph.neighbors(cut_in_leaf)
        if u in body_coloring
    }
    remaining_vertices = (set(graph.vertices()) - body) | {cut_in_leaf}
    rest = graph.subgraph(remaining_vertices)
    rest_lists_dict = lists.restrict(remaining_vertices).as_dict()
    rest_lists_dict[cut_in_leaf] = rest_lists_dict[cut_in_leaf] - frozenset(
        used_on_leaf
    )
    rest_lists = ListAssignment(rest_lists_dict)
    if len(rest_lists[cut_in_leaf]) < rest.degree(cut_in_leaf):
        raise ColoringError(
            "cut vertex lost too many colors while peeling a leaf block; "
            "this violates the Theorem 1.1 invariant"
        )

    # 3. recurse on the rest (still contains the anchor non-Gallai block)
    rest_coloring = _solve_connected(rest, rest_lists)
    rest_coloring.update(body_coloring)
    return rest_coloring


# ---------------------------------------------------------------------------
# 2-connected case
# ---------------------------------------------------------------------------

def _solve_biconnected(
    graph: Graph, lists: ListAssignment, promised_non_gallai: bool
) -> dict[Vertex, Color]:
    """Color a 2-connected graph with tight lists (no slack vertex)."""
    if _is_even_cycle(graph):
        return _color_even_cycle(graph, lists)

    triple = _find_brooks_triple(graph, lists, require_common_color=True)
    if triple is not None:
        a, b, c, common = triple
        return _color_with_identified_pair(graph, lists, a, b, c, common)

    # Residual case: every admissible triple has disjoint lists.  Theorem 1.1
    # still guarantees a coloring when the graph is not a clique or odd
    # cycle; find it exhaustively.
    result = list_coloring_search(graph, lists)
    if result is None:
        if promised_non_gallai:
            raise ColoringError(
                "exhaustive search failed on a 2-connected non-Gallai block; "
                "this contradicts Theorem 1.1 (please report)"
            )
        raise ColoringError(
            "the block is a clique or odd cycle with tight lists; "
            "no coloring is guaranteed and none exists for these lists"
        )
    return result


def _is_even_cycle(graph: Graph) -> bool:
    n = graph.number_of_vertices()
    return (
        n >= 4
        and n % 2 == 0
        and graph.number_of_edges() == n
        and all(graph.degree(v) == 2 for v in graph)
        and graph.is_connected()
    )


def _color_even_cycle(graph: Graph, lists: ListAssignment) -> dict[Vertex, Color]:
    """Color an even cycle from lists of size >= 2.

    If two adjacent vertices have different lists, start there (give the
    first vertex a color outside its neighbour's list); otherwise all lists
    are equal and a proper 2-coloring alternates two colors of the common
    list.
    """
    order = _cycle_order(graph)
    n = len(order)
    start_index = None
    for i in range(n):
        u, v = order[i], order[(i + 1) % n]
        if lists[u] != lists[v]:
            start_index = i
            break
    coloring: dict[Vertex, Color] = {}
    if start_index is None:
        # all lists identical: alternate two colors
        palette = sorted(lists[order[0]], key=repr)
        first, second = palette[0], palette[1]
        for i, v in enumerate(order):
            coloring[v] = first if i % 2 == 0 else second
        return coloring
    u = order[start_index]
    v = order[(start_index + 1) % n]
    outside = lists[u] - lists[v]
    if outside:
        coloring[u] = min(outside, key=repr)
    else:
        # L(u) strictly contained in L(v) is impossible for equal sizes and
        # different lists, so lists[v] - lists[u] is non-empty: swap roles.
        u, v = v, u
        start_index = (start_index + 1) % n
        coloring[u] = min(lists[u] - lists[v], key=repr)
    # walk around the cycle away from v, ending at v, greedily
    sequence = [order[(start_index - k) % n] for k in range(1, n)]
    for w in sequence:
        used = {coloring[x] for x in graph.neighbors(w) if x in coloring}
        available = lists[w] - used
        if not available:
            raise ColoringError("even-cycle coloring failed; lists too small")
        coloring[w] = min(available, key=repr)
    return coloring


def _cycle_order(graph: Graph) -> list[Vertex]:
    start = next(iter(graph))
    order = [start]
    previous = None
    current = start
    while True:
        neighbors = [u for u in graph.neighbors(current) if u != previous]
        nxt = neighbors[0]
        if nxt == start:
            break
        order.append(nxt)
        previous, current = current, nxt
    return order


def _find_brooks_triple(
    graph: Graph, lists: ListAssignment, require_common_color: bool
) -> tuple[Vertex, Vertex, Vertex, Color] | None:
    """Find ``(a, b, c, color)`` with ``b ~ a``, ``b ~ c``, ``a !~ c``,
    ``G - a - c`` connected, and ``color in L(a) & L(c)``.

    Returns ``None`` when no such triple exists (in particular when every
    candidate pair has disjoint lists and ``require_common_color`` is set).
    """
    vertex_count = graph.number_of_vertices()
    for b in sorted(graph, key=lambda v: -graph.degree(v)):
        neighbors = sorted(graph.neighbors(b), key=repr)
        for i, a in enumerate(neighbors):
            for c in neighbors[i + 1 :]:
                if graph.has_edge(a, c):
                    continue
                common = lists[a] & lists[c]
                if require_common_color and not common:
                    continue
                remaining = [v for v in graph if v not in (a, c)]
                sub = graph.subgraph(remaining)
                if sub.number_of_vertices() != vertex_count - 2:
                    continue
                if sub.is_connected():
                    color = min(common, key=repr) if common else None
                    return a, b, c, color
    return None


def _color_with_identified_pair(
    graph: Graph,
    lists: ListAssignment,
    a: Vertex,
    b: Vertex,
    c: Vertex,
    color: Color,
) -> dict[Vertex, Color]:
    """Color ``a`` and ``c`` with the same color, then finish greedily at ``b``."""
    coloring: dict[Vertex, Color] = {a: color, c: color}
    remaining = [v for v in graph if v not in (a, c)]
    sub = graph.subgraph(remaining)
    distances = sub.bfs_distances(b)
    if len(distances) != len(remaining):
        raise ColoringError("G - a - c is unexpectedly disconnected")
    order = sorted(distances, key=lambda v: (-distances[v], repr(v)))
    for v in order:
        used = {coloring[u] for u in graph.neighbors(v) if u in coloring}
        available = lists[v] - used
        if not available:
            raise ColoringError(
                f"identified-pair coloring ran out of colors at {v!r}"
            )
        coloring[v] = min(available, key=repr)
    return coloring


def extend_partial_coloring(
    graph: Graph,
    lists: ListAssignment,
    partial: Mapping[Vertex, Color],
    uncolored: set[Vertex],
) -> dict[Vertex, Color]:
    """Extend ``partial`` to ``uncolored`` using Theorem 1.1 on ``G[uncolored]``.

    Lists of uncolored vertices are pruned by the colors of their colored
    neighbours (Observation 5.1) and :func:`degree_list_coloring` is applied
    to the induced subgraph.  The promise is the caller's responsibility
    (it holds for the rich balls of happy vertices).
    """
    pruned = {}
    for v in uncolored:
        used = {partial[u] for u in graph.neighbors(v) if u in partial}
        pruned[v] = lists[v] - used
    sub = graph.subgraph(uncolored)
    extension = degree_list_coloring(sub, ListAssignment(pruned))
    merged = dict(partial)
    merged.update(extension)
    return merged
