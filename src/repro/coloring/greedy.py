"""Sequential greedy coloring algorithms.

These serve as correctness oracles and as the trivial baselines of the
experiment tables: greedy along an arbitrary order uses at most
``max_degree + 1`` colors; greedy along a degeneracy order uses at most
``degeneracy + 1 <= floor(mad) + 1`` colors, which is the bound the paper's
Theorem 1.3 improves by one (under the no-(d+1)-clique assumption).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.coloring.assignment import Color, ListAssignment
from repro.errors import ColoringError
from repro.graphs.graph import Graph, Vertex
from repro.graphs.properties.degeneracy import degeneracy_ordering

__all__ = [
    "greedy_coloring",
    "degeneracy_greedy_coloring",
    "dsatur_coloring",
    "greedy_list_coloring",
]


def _first_free_color(used: set[Color]) -> int:
    color = 1
    while color in used:
        color += 1
    return color


def greedy_coloring(
    graph: Graph, order: Sequence[Vertex] | None = None
) -> dict[Vertex, Color]:
    """Greedy coloring with colors ``1, 2, ...`` along ``order`` (default: insertion)."""
    coloring: dict[Vertex, Color] = {}
    for v in order if order is not None else graph.vertices():
        used = {coloring[u] for u in graph.neighbors(v) if u in coloring}
        coloring[v] = _first_free_color(used)
    return coloring


def degeneracy_greedy_coloring(graph: Graph) -> dict[Vertex, Color]:
    """Greedy coloring along a reversed degeneracy ordering.

    Uses at most ``degeneracy(G) + 1 <= floor(mad(G)) + 1`` colors — the
    classical bound that Theorem 1.3 sharpens.
    """
    _, ordering = degeneracy_ordering(graph)
    return greedy_coloring(graph, list(reversed(ordering)))


def dsatur_coloring(graph: Graph) -> dict[Vertex, Color]:
    """DSATUR: always color the vertex with most distinctly-colored neighbours."""
    coloring: dict[Vertex, Color] = {}
    saturation: dict[Vertex, set[Color]] = {v: set() for v in graph}
    uncolored = set(graph.vertices())
    while uncolored:
        v = max(
            uncolored,
            key=lambda u: (len(saturation[u]), graph.degree(u)),
        )
        coloring[v] = _first_free_color(saturation[v])
        uncolored.discard(v)
        for u in graph.neighbors(v):
            if u in uncolored:
                saturation[u].add(coloring[v])
    return coloring


def greedy_list_coloring(
    graph: Graph,
    lists: ListAssignment,
    order: Sequence[Vertex] | None = None,
    partial: Mapping[Vertex, Color] | None = None,
) -> dict[Vertex, Color]:
    """Greedy list-coloring along ``order``; raises if some vertex gets stuck.

    A deterministic tie-break (smallest color by ``repr``) keeps runs
    reproducible.  ``partial`` pre-assigns colors to some vertices (they are
    kept and never re-colored).
    """
    coloring: dict[Vertex, Color] = dict(partial or {})
    for v in order if order is not None else graph.vertices():
        if v in coloring:
            continue
        used = {coloring[u] for u in graph.neighbors(v) if u in coloring}
        available = lists[v] - used
        if not available:
            raise ColoringError(
                f"greedy list-coloring stuck at vertex {v!r}: "
                f"list {sorted(map(repr, lists[v]))} exhausted by neighbours"
            )
        coloring[v] = min(available, key=repr)
    return coloring
