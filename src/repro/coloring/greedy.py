"""Sequential greedy coloring algorithms.

These serve as correctness oracles and as the trivial baselines of the
experiment tables: greedy along an arbitrary order uses at most
``max_degree + 1`` colors; greedy along a degeneracy order uses at most
``degeneracy + 1 <= floor(mad) + 1`` colors, which is the bound the paper's
Theorem 1.3 improves by one (under the no-(d+1)-clique assumption).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.coloring.assignment import Color, ListAssignment
from repro.coloring.palette import FlatListAssignment
from repro.errors import ColoringError
from repro.graphs.frozen import FrozenGraph
from repro.graphs.graph import Graph, Vertex
from repro.graphs.properties.degeneracy import degeneracy_ordering

__all__ = [
    "greedy_coloring",
    "degeneracy_greedy_coloring",
    "dsatur_coloring",
    "greedy_list_coloring",
]


def _first_free_color(used: set[Color]) -> int:
    color = 1
    while color in used:
        color += 1
    return color


def greedy_coloring(
    graph: Graph, order: Sequence[Vertex] | None = None
) -> dict[Vertex, Color]:
    """Greedy coloring with colors ``1, 2, ...`` along ``order`` (default: insertion)."""
    if isinstance(graph, FrozenGraph):
        return _greedy_coloring_csr(graph, order)
    coloring: dict[Vertex, Color] = {}
    for v in order if order is not None else graph.vertices():
        used = {coloring[u] for u in graph.neighbors(v) if u in coloring}
        coloring[v] = _first_free_color(used)
    return coloring


def _greedy_coloring_csr(
    graph: FrozenGraph, order: Sequence[Vertex] | None
) -> dict[Vertex, Color]:
    """Array fast path of :func:`greedy_coloring` (identical colors).

    Works in CSR index space with one used-color bitmask per step — the
    smallest free color is the lowest zero bit, exactly the value the
    ``while color in used`` scan returns — so no per-vertex set is built.
    """
    offsets, neighbors = graph.csr_lists()
    labels = graph.vertices()
    index = graph._index
    colors = [0] * len(labels)  # 0 = uncolored
    sequence = range(len(labels)) if order is None else [index[v] for v in order]
    for i in sequence:
        used = 0
        for k in range(offsets[i], offsets[i + 1]):
            c = colors[neighbors[k]]
            if c:
                used |= 1 << (c - 1)
        colors[i] = (~used & (used + 1)).bit_length()
    if order is None:
        return {labels[i]: colors[i] for i in range(len(labels))}
    return {v: colors[index[v]] for v in order}


def degeneracy_greedy_coloring(graph: Graph) -> dict[Vertex, Color]:
    """Greedy coloring along a reversed degeneracy ordering.

    Uses at most ``degeneracy(G) + 1 <= floor(mad(G)) + 1`` colors — the
    classical bound that Theorem 1.3 sharpens.
    """
    _, ordering = degeneracy_ordering(graph)
    return greedy_coloring(graph, list(reversed(ordering)))


def dsatur_coloring(graph: Graph) -> dict[Vertex, Color]:
    """DSATUR: always color the vertex with most distinctly-colored neighbours."""
    coloring: dict[Vertex, Color] = {}
    saturation: dict[Vertex, set[Color]] = {v: set() for v in graph}
    uncolored = set(graph.vertices())
    while uncolored:
        v = max(
            uncolored,
            key=lambda u: (len(saturation[u]), graph.degree(u)),
        )
        coloring[v] = _first_free_color(saturation[v])
        uncolored.discard(v)
        for u in graph.neighbors(v):
            if u in uncolored:
                saturation[u].add(coloring[v])
    return coloring


def greedy_list_coloring(
    graph: Graph,
    lists: ListAssignment,
    order: Sequence[Vertex] | None = None,
    partial: Mapping[Vertex, Color] | None = None,
) -> dict[Vertex, Color]:
    """Greedy list-coloring along ``order``; raises if some vertex gets stuck.

    A deterministic tie-break (smallest color by ``repr``) keeps runs
    reproducible.  ``partial`` pre-assigns colors to some vertices (they are
    kept and never re-colored).
    """
    flat = lists.flat if isinstance(lists, ListAssignment) else None
    if isinstance(graph, FrozenGraph) and flat is not None:
        return _greedy_list_coloring_csr(graph, lists, flat, order, partial)
    coloring: dict[Vertex, Color] = dict(partial or {})
    for v in order if order is not None else graph.vertices():
        if v in coloring:
            continue
        used = {coloring[u] for u in graph.neighbors(v) if u in coloring}
        available = lists[v] - used
        if not available:
            raise ColoringError(
                f"greedy list-coloring stuck at vertex {v!r}: "
                f"list {sorted(map(repr, lists[v]))} exhausted by neighbours"
            )
        coloring[v] = min(available, key=repr)
    return coloring


def _greedy_list_coloring_csr(
    graph: FrozenGraph,
    lists: ListAssignment,
    flat: FlatListAssignment,
    order: Sequence[Vertex] | None,
    partial: Mapping[Vertex, Color] | None,
) -> dict[Vertex, Color]:
    """Mask fast path of :func:`greedy_list_coloring` (identical colors).

    The universe's repr-sorted interning makes the lowest set bit of
    ``L(v) & ~used`` the exact ``min(available, key=repr)`` pick.  Colors
    outside the universe (possible in ``partial``) cannot block any list
    color, matching the set-difference semantics.
    """
    offsets, neighbors = graph.csr_lists()
    index = graph._index
    universe = flat.universe
    get_index = universe.get_index
    color_of = universe.color_of
    color_idx = [-1] * len(graph)
    coloring: dict[Vertex, Color] = dict(partial or {})
    for v, color in coloring.items():
        i = index.get(v)
        if i is not None:
            color_idx[i] = get_index(color)
    mask_of = flat.mask_of
    for v in order if order is not None else graph.vertices():
        if v in coloring:
            continue
        i = index[v]
        used = 0
        for k in range(offsets[i], offsets[i + 1]):
            c = color_idx[neighbors[k]]
            if c >= 0:
                used |= 1 << c
        free = mask_of(v) & ~used
        if not free:
            raise ColoringError(
                f"greedy list-coloring stuck at vertex {v!r}: "
                f"list {sorted(map(repr, lists[v]))} exhausted by neighbours"
            )
        bit = (free & -free).bit_length() - 1
        coloring[v] = color_of(bit)
        color_idx[i] = bit
    return coloring
