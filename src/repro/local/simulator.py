"""Synchronous round engine of the LOCAL-model simulator.

The simulator owns one :class:`~repro.local.node.NodeAlgorithm` instance per
vertex and repeats, until every node reports that it is finished (or a
round limit is hit):

1. ask every node for its outgoing messages (:meth:`send`),
2. deliver all messages simultaneously (:meth:`receive`).

The engine records the number of rounds and messages, which is what the
round-complexity experiments measure.  It enforces the *synchronous*
semantics strictly: all ``send`` calls of a round happen before any
``receive`` of that round, so no node can react to information it should
not yet have.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError
from repro.graphs.frozen import GraphLike
from repro.graphs.graph import Vertex
from repro.local.network import Network
from repro.local.node import NodeAlgorithm, NodeContext

__all__ = ["SimulationResult", "SynchronousSimulator", "run_node_algorithm"]


@dataclass
class SimulationResult:
    """Outcome of a simulation.

    Attributes
    ----------
    rounds:
        Number of synchronous rounds executed.
    outputs:
        Per-vertex outputs (keyed by the original vertex labels).
    messages_sent:
        Total number of messages delivered over the run.
    finished:
        Whether every node terminated before the round limit.
    """

    rounds: int
    outputs: dict[Vertex, Any]
    messages_sent: int
    finished: bool
    per_round_messages: list[int] = field(default_factory=list)


class SynchronousSimulator:
    """Runs a node program on a network, one instance per vertex."""

    def __init__(self, network: Network):
        self.network = network

    def run(
        self,
        algorithm_factory: Callable[[], NodeAlgorithm],
        inputs: Mapping[Vertex, Any] | None = None,
        max_rounds: int = 10_000,
        strict: bool = False,
    ) -> SimulationResult:
        """Execute the algorithm until all nodes finish or ``max_rounds`` is hit.

        With ``strict=False`` (the default) hitting the round limit returns a
        result with ``finished=False``; with ``strict=True`` it raises
        :class:`~repro.errors.SimulationError` instead, which is what callers
        that *assume* termination (most tests and drivers) should use so that
        a diverging algorithm cannot silently masquerade as a slow one.
        """
        network = self.network
        inputs = network.translate_inputs(inputs)
        nodes: dict[Vertex, NodeAlgorithm] = {}
        for v in network.graph:
            node = algorithm_factory()
            node.initialize(
                NodeContext(
                    identifier=network.identifier_of[v],
                    n=network.n,
                    degree=network.degree(v),
                    input=inputs[v],
                )
            )
            nodes[v] = node

        total_messages = 0
        per_round: list[int] = []
        rounds = 0
        while not all(node.is_finished() for node in nodes.values()):
            if rounds >= max_rounds:
                if strict:
                    unfinished = sum(
                        1 for node in nodes.values() if not node.is_finished()
                    )
                    raise SimulationError(
                        f"simulation hit max_rounds={max_rounds} with "
                        f"{unfinished} unfinished node(s)"
                    )
                return SimulationResult(
                    rounds=rounds,
                    outputs={v: node.result() for v, node in nodes.items()},
                    messages_sent=total_messages,
                    finished=False,
                    per_round_messages=per_round,
                )
            rounds += 1
            outbox: dict[Vertex, dict[int, Any]] = {}
            for v, node in nodes.items():
                messages = node.send(rounds) or {}
                for port in messages:
                    if not 0 <= port < network.degree(v):
                        raise SimulationError(
                            f"node {v!r} sent on invalid port {port}"
                        )
                outbox[v] = messages
            round_messages = 0
            inbox: dict[Vertex, dict[int, Any]] = {v: {} for v in nodes}
            for v, messages in outbox.items():
                for port, payload in messages.items():
                    u = network.neighbor_on_port(v, port)
                    inbox[u][network.port_towards(u, v)] = payload
                    round_messages += 1
            for v, node in nodes.items():
                node.receive(rounds, inbox[v])
            total_messages += round_messages
            per_round.append(round_messages)

        return SimulationResult(
            rounds=rounds,
            outputs={v: node.result() for v, node in nodes.items()},
            messages_sent=total_messages,
            finished=True,
            per_round_messages=per_round,
        )


def run_node_algorithm(
    graph: GraphLike,
    algorithm_factory: Callable[[], NodeAlgorithm],
    inputs: Mapping[Vertex, Any] | None = None,
    max_rounds: int = 10_000,
    strict: bool = False,
) -> SimulationResult:
    """Convenience wrapper: build the network and run the algorithm."""
    simulator = SynchronousSimulator(Network(graph))
    return simulator.run(
        algorithm_factory, inputs=inputs, max_rounds=max_rounds, strict=strict
    )
