"""Synchronous round engine of the LOCAL-model simulator.

The simulator repeats, until every node reports that it is finished (or a
round limit is hit):

1. ask every node for its outgoing messages (:meth:`send`),
2. deliver all messages simultaneously (:meth:`receive`).

The engine records the number of rounds and messages, which is what the
round-complexity experiments measure.  It enforces the *synchronous*
semantics strictly: all ``send`` calls of a round happen before any
``receive`` of that round, so no node can react to information it should
not yet have.

The data plane runs on the network's flat-array routing fabric
(:class:`~repro.local.network.RoutingFabric`):

* delivery is one array read — the message node ``i`` sends on port ``p``
  lands in inbox slot ``reverse_slot[offsets[i] + p]`` — instead of the
  ``neighbor_on_port`` + ``port_towards`` dict hops of the dict-routed seed
  engine (kept verbatim in :mod:`repro.local.reference` for parity tests
  and A/B benchmarks);
* inbox payloads live in one preallocated per-slot list reused across
  rounds (no fresh per-vertex dicts per round); the per-node ``receive``
  dicts are built only for nodes that actually received messages;
* termination tracks an *active set* of unfinished node indices — no
  O(n) ``all(is_finished())`` scan per round (which is why
  :meth:`NodeAlgorithm.is_finished` must be monotone);
* a :class:`~repro.local.node.BatchNodeAlgorithm` opts into the fully
  vectorized path: one ``send_batch``/``receive_batch`` numpy-array
  exchange per round for all nodes at once, falling back transparently to
  its per-node twin when numpy is unavailable;
* the batched exchange itself runs on the fused kernels of
  :mod:`repro.local.kernels` — broadcast rounds are delivered with a
  single gather by ``endpoints`` (instead of the historical send-gather +
  reverse-permutation double pass), sparse "active" rounds route only the
  frontier's slots, and per-slot rounds reuse preallocated inbox buffers.
  ``run(..., reference_exchange=True)`` forces the unfused three-pass
  delivery, kept as the oracle the parity tests pin the kernels against.

Note that finished nodes still ``send`` and ``receive`` every round until
the whole network terminates — protocols like the greedy baseline rely on
finished nodes broadcasting their state — so the per-round work is O(n + m)
either way; the flat fabric and the batched path cut the constant, which is
what the ``simulator`` scenario measures.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.errors import NonTerminationError, SimulationError
from repro.graphs.frozen import GraphLike, freeze
from repro.graphs.graph import Vertex
from repro.local import kernels
from repro.local.network import Network
from repro.local.node import (
    BatchContext,
    BatchNodeAlgorithm,
    NodeAlgorithm,
    NodeContext,
)

__all__ = [
    "LazyOutputs",
    "SimulationResult",
    "SynchronousSimulator",
    "run_node_algorithm",
]


class LazyOutputs(Mapping):
    """Per-vertex outputs materialized on first dict-style access.

    The batched engine produces outputs as a label list plus a value
    list; building the ``{label: value}`` dict eagerly costs more than a
    whole fused round at n = 10^5.  This view defers that build until a
    consumer actually indexes, iterates or compares it — oracles and
    callers see a regular mapping (``Mapping`` supplies dict-equality in
    both directions), and pure round/message measurements never pay for
    it.
    """

    __slots__ = ("_labels", "_values", "_dict")

    def __init__(self, labels, values):
        self._labels = labels
        self._values = values
        self._dict: dict[Vertex, Any] | None = None

    def _materialize(self) -> dict[Vertex, Any]:
        if self._dict is None:
            self._dict = dict(zip(self._labels, self._values))
            self._labels = self._values = None
        return self._dict

    def __getitem__(self, key):
        return self._materialize()[key]

    def __iter__(self):
        return iter(self._materialize())

    def __len__(self) -> int:
        d = self._dict
        return len(d) if d is not None else len(self._labels)

    def __contains__(self, key) -> bool:
        return key in self._materialize()

    def keys(self):
        return self._materialize().keys()

    def items(self):
        return self._materialize().items()

    def values(self):
        return self._materialize().values()

    def get(self, key, default=None):
        return self._materialize().get(key, default)

    def __repr__(self) -> str:
        return repr(self._materialize())


@dataclass
class SimulationResult:
    """Outcome of a simulation.

    Attributes
    ----------
    rounds:
        Number of synchronous rounds executed.
    outputs:
        Per-vertex outputs (keyed by the original vertex labels).  The
        batched engine returns a :class:`LazyOutputs` mapping view —
        equal to and interchangeable with the eager dict of the per-node
        engine, but built only when someone looks at it.
    messages_sent:
        Total number of messages delivered over the run.
    finished:
        Whether every node terminated before the round limit.
    """

    rounds: int
    outputs: Mapping[Vertex, Any]
    messages_sent: int
    finished: bool
    per_round_messages: list[int] = field(default_factory=list)


class SynchronousSimulator:
    """Runs a node program on a network, one instance per vertex.

    A factory producing :class:`~repro.local.node.BatchNodeAlgorithm`
    instances is routed to the vectorized batched loop instead (one program
    instance drives all nodes); everything else runs the per-node loop.
    """

    def __init__(self, network: Network):
        self.network = network

    def run(
        self,
        algorithm_factory: Callable[[], NodeAlgorithm | BatchNodeAlgorithm],
        inputs: Mapping[Vertex, Any] | Any | None = None,
        max_rounds: int = 10_000,
        strict: bool = False,
        debug: bool = False,
        *,
        reference_exchange: bool = False,
    ) -> SimulationResult:
        """Execute the algorithm until all nodes finish or ``max_rounds`` is hit.

        With ``strict=False`` (the default) hitting the round limit returns a
        result with ``finished=False``; with ``strict=True`` it raises
        :class:`~repro.errors.NonTerminationError` (a
        :class:`~repro.errors.SimulationError` carrying the round count and
        active-set size) instead, which is what callers
        that *assume* termination (most tests and drivers) should use so that
        a diverging algorithm cannot silently masquerade as a slow one.

        Malformed sends always raise :class:`~repro.errors.SimulationError`
        (non-mapping returns, out-of-range ports — the latter validated with
        one comparison per message against the routing table); ``debug=True``
        upgrades the port errors to descriptive ones naming the vertex and
        its valid port range.

        ``reference_exchange=True`` routes batched broadcast rounds through
        the historical unfused three-pass delivery (send-gather by
        ``sources`` + permutation by ``reverse_slot`` + ``receive_batch``)
        instead of the fused kernels — the parity oracle for
        :mod:`repro.local.kernels`.
        """
        probe = algorithm_factory()
        if isinstance(probe, BatchNodeAlgorithm):
            return self._run_batched(
                probe, inputs, max_rounds, strict, debug,
                reference_exchange=reference_exchange,
            )
        return self._run_per_node(
            probe, algorithm_factory, inputs, max_rounds, strict, debug
        )

    # ------------------------------------------------------------------
    # Per-node engine
    # ------------------------------------------------------------------
    def _run_per_node(
        self,
        first: NodeAlgorithm,
        algorithm_factory: Callable[[], NodeAlgorithm],
        inputs: Mapping[Vertex, Any] | None,
        max_rounds: int,
        strict: bool,
        debug: bool,
    ) -> SimulationResult:
        network = self.network
        fabric = network.fabric
        offsets = fabric.offsets
        endpoints = fabric.endpoints
        reverse_slot = fabric.reverse_slot
        labels = network.labels
        n = fabric.n
        identifiers = network.identifiers_list
        declared_n = network.declared_n
        inputs_list = network.inputs_list(inputs)

        nodes: list[NodeAlgorithm] = []
        for i in range(n):
            node = first if i == 0 else algorithm_factory()
            node.initialize(
                NodeContext(
                    identifier=identifiers[i],
                    n=declared_n,
                    degree=fabric.degrees[i],
                    input=inputs_list[i],
                )
            )
            nodes.append(node)

        # preallocated data plane, reused across rounds: per-slot payloads
        # plus, per receiver, the list of inbox slots touched this round
        payloads: list[Any] = [None] * fabric.num_slots
        received: list[list[int]] = [[] for _ in range(n)]
        # staging a message only writes these buffers — no node reads them
        # until the receive phase — so delivery can ride the send loop
        # without breaking the all-sends-before-any-receive semantics
        stage = [lst.append for lst in received]
        active = [i for i in range(n) if not nodes[i].is_finished()]

        total_messages = 0
        per_round: list[int] = []
        rounds = 0
        while active:
            if rounds >= max_rounds:
                if strict:
                    raise NonTerminationError(
                        f"simulation hit max_rounds={max_rounds} with "
                        f"{len(active)} unfinished node(s)",
                        rounds=rounds,
                        active=len(active),
                    )
                return self._result(labels, nodes, rounds, total_messages,
                                    per_round, finished=False)
            rounds += 1
            round_messages = 0
            for i, node in enumerate(nodes):
                out = node.send(rounds)
                if not out:
                    continue
                try:  # free on the fast path; SimulationError surface kept
                    items = out.items()
                except AttributeError:
                    raise SimulationError(
                        f"node {labels[i]!r} returned {type(out).__name__} "
                        "from send(); expected a port -> payload mapping"
                    ) from None
                base = offsets[i]
                degree = offsets[i + 1] - base
                for port, payload in items:
                    if not 0 <= port < degree:
                        raise self._port_error(i, port, degree, debug)
                    slot = base + port
                    dest = reverse_slot[slot]
                    payloads[dest] = payload
                    stage[endpoints[slot]](dest)
                round_messages += len(out)
            # receive phase: every node hears its (possibly empty) inbox
            for j, node in enumerate(nodes):
                slots = received[j]
                if slots:
                    base = offsets[j]
                    messages = {slot - base: payloads[slot] for slot in slots}
                    slots.clear()
                else:
                    messages = {}
                node.receive(rounds, messages)
            total_messages += round_messages
            per_round.append(round_messages)
            active = [i for i in active if not nodes[i].is_finished()]

        return self._result(labels, nodes, rounds, total_messages, per_round,
                            finished=True)

    def _port_error(
        self, index: int, port: Any, degree: int, debug: bool
    ) -> SimulationError:
        label = self.network.labels[index]
        if debug:
            identifier = self.network.identifiers_list[index]
            return SimulationError(
                f"node {label!r} (identifier {identifier}) sent on invalid "
                f"port {port!r}; valid ports are 0..{degree - 1} "
                f"(degree {degree})"
            )
        return SimulationError(f"node {label!r} sent on invalid port {port}")

    @staticmethod
    def _result(
        labels: list[Vertex],
        nodes: list[NodeAlgorithm],
        rounds: int,
        total_messages: int,
        per_round: list[int],
        finished: bool,
    ) -> SimulationResult:
        return SimulationResult(
            rounds=rounds,
            outputs={labels[i]: node.result() for i, node in enumerate(nodes)},
            messages_sent=total_messages,
            finished=finished,
            per_round_messages=per_round,
        )

    # ------------------------------------------------------------------
    # Batched engine
    # ------------------------------------------------------------------
    def _run_batched(
        self,
        program: BatchNodeAlgorithm,
        inputs: Mapping[Vertex, Any] | Any | None,
        max_rounds: int,
        strict: bool,
        debug: bool = False,
        reference_exchange: bool = False,
    ) -> SimulationResult:
        network = self.network
        fabric = network.fabric
        inputs_list = network.inputs_list(inputs)

        context: BatchContext | None = None
        if fabric.has_numpy:
            context = BatchContext(
                n=fabric.n,
                identifiers=network.identifiers_np,
                degrees=fabric.degrees_np,
                offsets=fabric.offsets_np,
                endpoints=fabric.endpoints_np,
                reverse_slot=fabric.reverse_np,
                sources=fabric.sources_np(),
                inputs=inputs_list,
                network=network,
                declared_n=network.declared_n,
            )
        if context is None or not program.can_run(context):
            factory = type(program).fallback
            if factory is None:
                raise SimulationError(
                    f"{type(program).__name__} cannot run batched here "
                    "(numpy unavailable or can_run() declined) and declares "
                    "no per-node fallback"
                )
            return self._run_per_node(
                factory(), factory, inputs, max_rounds, strict, debug
            )

        import numpy as np

        reverse = fabric.reverse_np
        endpoints = fabric.endpoints_np
        sources = fabric.sources_np()
        num_slots = fabric.num_slots
        labels = network.labels
        mode = type(program).exchange_mode
        receive_broadcast = (
            getattr(program, "receive_broadcast", None)
            if mode == "broadcast" and not reference_exchange
            else None
        )
        receive_active = (
            getattr(program, "receive_active", None) if mode == "active" else None
        )
        # preallocated inbox buffers, reused across rounds (the fused
        # kernels fill them in place; programs must not retain references
        # past their receive call)
        inbox_buf = np.empty(num_slots, dtype=np.int64)
        delivered_buf = np.empty(num_slots, dtype=np.bool_)
        program.initialize_batch(context)

        total_messages = 0
        per_round: list[int] = []
        rounds = 0
        while not program.is_finished_batch():
            if rounds >= max_rounds:
                if strict:
                    raise NonTerminationError(
                        f"simulation hit max_rounds={max_rounds} with "
                        "unfinished node(s)",
                        rounds=rounds,
                    )
                return SimulationResult(
                    rounds=rounds,
                    outputs=LazyOutputs(labels, program.results_batch()),
                    messages_sent=total_messages,
                    finished=False,
                    per_round_messages=per_round,
                )
            rounds += 1
            sent = program.send_batch(rounds)
            if sent is None:
                round_messages = 0
                if receive_active is not None:
                    receive_active(rounds, None, None)
                else:
                    program.receive_batch(rounds, None, None)
            elif mode == "broadcast":
                # sources[reverse_slot] == endpoints: the send-gather and
                # the reverse permutation fuse into one endpoint gather
                round_messages = num_slots
                if receive_broadcast is not None:
                    receive_broadcast(rounds, sent)
                else:
                    if reference_exchange:
                        inbox = kernels.reference_broadcast(sent, sources, reverse)
                    else:
                        inbox = kernels.gather(sent, endpoints, out=inbox_buf)
                    program.receive_batch(rounds, inbox, None)
            elif mode == "active":
                slots, values = sent
                round_messages = len(slots)
                # the message sent from slot s arrives at slot reverse[s]
                receive_active(rounds, reverse[slots], values)
            elif isinstance(sent, tuple):
                values, mask = sent
                inbox, delivered, round_messages = kernels.deliver_masked(
                    values, mask, reverse,
                    inbox_out=inbox_buf, delivered_out=delivered_buf,
                )
                program.receive_batch(rounds, inbox, delivered)
            else:
                inbox = kernels.deliver_slots(sent, reverse, out=inbox_buf)
                round_messages = num_slots
                program.receive_batch(rounds, inbox, None)
            total_messages += round_messages
            per_round.append(round_messages)

        return SimulationResult(
            rounds=rounds,
            outputs=LazyOutputs(labels, program.results_batch()),
            messages_sent=total_messages,
            finished=True,
            per_round_messages=per_round,
        )


def run_node_algorithm(
    graph: GraphLike,
    algorithm_factory: Callable[[], NodeAlgorithm | BatchNodeAlgorithm],
    inputs: Mapping[Vertex, Any] | Any | None = None,
    max_rounds: int = 10_000,
    strict: bool = False,
    *,
    network: Network | None = None,
    debug: bool = False,
    reference_exchange: bool = False,
) -> SimulationResult:
    """Convenience wrapper: build the network and run the algorithm.

    Follows the freeze-at-the-boundary convention (docs/architecture.md):
    an unfrozen ``graph`` is frozen once here so the network's port tables
    and routing fabric read zero-copy off the CSR (freezing preserves the
    vertex order, hence the identifier assignment).  Callers that run
    several algorithms on the same graph should build one
    :class:`~repro.local.network.Network` and pass it as ``network=`` —
    the graph argument is then only documentation and is not re-validated.
    """
    if network is None:
        network = Network(freeze(graph))
    simulator = SynchronousSimulator(network)
    return simulator.run(
        algorithm_factory,
        inputs=inputs,
        max_rounds=max_rounds,
        strict=strict,
        debug=debug,
        reference_exchange=reference_exchange,
    )
