"""Ball collection: the canonical "learn your radius-r neighbourhood" routine.

In the LOCAL model, ``r`` rounds of communication let every node learn the
labelled ball of radius ``r`` around itself, and conversely the output of an
``r``-round algorithm is a function of that ball.  This module provides

* :class:`BallCollectionAlgorithm` — a genuine message-passing node program
  that floods adjacency knowledge for ``r`` rounds (used in tests to confirm
  the equivalence between rounds and ball radius);
* :func:`collect_balls` — the centralized shortcut computing the same result
  directly from the graph (used by the phase-structured drivers, which
  charge ``r`` rounds to their ledger when they call it).
"""

from __future__ import annotations

from typing import Any

from repro.graphs.frozen import FrozenGraph, GraphLike
from repro.graphs.graph import Vertex
from repro.local.node import NodeAlgorithm, NodeContext
from repro.local.simulator import run_node_algorithm

__all__ = ["BallCollectionAlgorithm", "collect_balls", "collect_balls_distributed"]


class BallCollectionAlgorithm(NodeAlgorithm):
    """Learn the ball of radius ``r`` (vertex identifiers and induced edges).

    Input (per node): the radius ``r`` (an ``int``).  Output: a pair
    ``(vertices, edges)`` where ``vertices`` is the set of identifiers at
    distance at most ``r`` and ``edges`` the set of known edges between
    them.  After ``r`` rounds the knowledge is exactly the ball.
    """

    def initialize(self, context: NodeContext) -> None:
        super().initialize(context)
        self.radius: int = int(context.input or 0)
        self.known_vertices: set[int] = {context.identifier}
        self.known_edges: set[frozenset[int]] = set()
        self.rounds_done = 0

    def send(self, round_number: int) -> dict[int, Any]:
        if self.rounds_done >= self.radius:
            return {}
        # snapshot the knowledge: messages must not alias mutable state, or a
        # receiver processed later in the round would see the sender's
        # *post-receive* knowledge and learn one hop too much
        payload = (
            self.context.identifier,
            frozenset(self.known_vertices),
            frozenset(self.known_edges),
        )
        return {port: payload for port in range(self.context.degree)}

    def receive(self, round_number: int, messages: dict[int, Any]) -> None:
        if self.rounds_done >= self.radius:
            return
        for identifier, vertices, edges in messages.values():
            self.known_vertices |= vertices
            self.known_edges |= edges
            self.known_edges.add(
                frozenset((self.context.identifier, identifier))
            )
        self.rounds_done += 1

    def is_finished(self) -> bool:
        return self.rounds_done >= self.radius

    def result(self) -> tuple[set[int], set[frozenset[int]]]:
        return self.known_vertices, self.known_edges


def collect_balls_distributed(
    graph: GraphLike, radius: int, strict: bool = False, network=None
):
    """Run :class:`BallCollectionAlgorithm` and return the simulation result.

    ``network=`` reuses a prebuilt :class:`~repro.local.network.Network`
    (and its routing fabric) across repeated collections on the same graph.
    """
    return run_node_algorithm(
        graph,
        BallCollectionAlgorithm,
        inputs={v: radius for v in graph},
        max_rounds=radius + 1,
        strict=strict,
        network=network,
    )


def collect_balls(graph: GraphLike, radius: int) -> dict[Vertex, set[Vertex]]:
    """Centralized equivalent: the ball of every vertex at the given radius.

    A :class:`~repro.graphs.frozen.FrozenGraph` input computes all balls in
    one bitset-flooding sweep (:meth:`FrozenGraph.all_balls`), which is the
    fast path the phase-structured drivers use.  On that path, vertices
    whose balls are equal (e.g. a whole component once the radius reaches
    its diameter) *share one set object* — treat the returned sets as
    read-only, or copy before mutating.
    """
    if isinstance(graph, FrozenGraph):
        return graph.all_balls(radius)
    return {v: graph.ball(v, radius) for v in graph}
