"""The seed dict-routed round engine, kept verbatim as the parity reference.

This is the pre-flat-array :class:`SynchronousSimulator` (PR 1 era): it
scans all ``n`` node objects every round (``all(is_finished())``), allocates
fresh per-vertex inbox dicts each round, and routes every message through
the ``neighbor_on_port`` + ``port_towards`` dict hops.  It is *not* used by
any driver — it exists so that

* the parity property tests can assert the flat-array engine
  (:mod:`repro.local.simulator`) produces an identical
  :class:`~repro.local.simulator.SimulationResult` on every node program,
  and
* the ``simulator`` benchmark scenario can measure the rounds/sec and
  messages/sec speedup of the flat engine against the exact seed baseline.

Do not "improve" this module: its value is being frozen in time.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Any

from repro.errors import SimulationError
from repro.graphs.frozen import GraphLike
from repro.graphs.graph import Vertex
from repro.local.network import Network
from repro.local.node import NodeAlgorithm, NodeContext
from repro.local.simulator import SimulationResult

__all__ = ["ReferenceSimulator", "run_reference_algorithm"]


class ReferenceSimulator:
    """The seed engine: dict-keyed outboxes/inboxes, dict-hop routing."""

    def __init__(self, network: Network):
        self.network = network

    def run(
        self,
        algorithm_factory: Callable[[], NodeAlgorithm],
        inputs: Mapping[Vertex, Any] | None = None,
        max_rounds: int = 10_000,
        strict: bool = False,
    ) -> SimulationResult:
        network = self.network
        inputs = network.translate_inputs(inputs)
        nodes: dict[Vertex, NodeAlgorithm] = {}
        for v in network.graph:
            node = algorithm_factory()
            node.initialize(
                NodeContext(
                    identifier=network.identifier_of[v],
                    n=network.n,
                    degree=network.degree(v),
                    input=inputs[v],
                )
            )
            nodes[v] = node

        total_messages = 0
        per_round: list[int] = []
        rounds = 0
        while not all(node.is_finished() for node in nodes.values()):
            if rounds >= max_rounds:
                if strict:
                    unfinished = sum(
                        1 for node in nodes.values() if not node.is_finished()
                    )
                    raise SimulationError(
                        f"simulation hit max_rounds={max_rounds} with "
                        f"{unfinished} unfinished node(s)"
                    )
                return SimulationResult(
                    rounds=rounds,
                    outputs={v: node.result() for v, node in nodes.items()},
                    messages_sent=total_messages,
                    finished=False,
                    per_round_messages=per_round,
                )
            rounds += 1
            outbox: dict[Vertex, dict[int, Any]] = {}
            for v, node in nodes.items():
                messages = node.send(rounds) or {}
                for port in messages:
                    if not 0 <= port < network.degree(v):
                        raise SimulationError(
                            f"node {v!r} sent on invalid port {port}"
                        )
                outbox[v] = messages
            round_messages = 0
            inbox: dict[Vertex, dict[int, Any]] = {v: {} for v in nodes}
            for v, messages in outbox.items():
                for port, payload in messages.items():
                    u = network.neighbor_on_port(v, port)
                    inbox[u][network.port_towards(u, v)] = payload
                    round_messages += 1
            for v, node in nodes.items():
                node.receive(rounds, inbox[v])
            total_messages += round_messages
            per_round.append(round_messages)

        return SimulationResult(
            rounds=rounds,
            outputs={v: node.result() for v, node in nodes.items()},
            messages_sent=total_messages,
            finished=True,
            per_round_messages=per_round,
        )


def run_reference_algorithm(
    graph: GraphLike,
    algorithm_factory: Callable[[], NodeAlgorithm],
    inputs: Mapping[Vertex, Any] | None = None,
    max_rounds: int = 10_000,
    strict: bool = False,
    *,
    network: Network | None = None,
) -> SimulationResult:
    """Seed-engine twin of :func:`~repro.local.simulator.run_node_algorithm`."""
    simulator = ReferenceSimulator(network if network is not None else Network(graph))
    return simulator.run(
        algorithm_factory, inputs=inputs, max_rounds=max_rounds, strict=strict
    )
