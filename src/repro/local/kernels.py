"""Fused single-pass round kernels for the flat data plane.

The synchronous round engine historically made three passes over the
:class:`~repro.local.network.RoutingFabric` per round: *send* (gather
per-slot payloads from node state), *deliver* (permute by
``reverse_slot``), *receive* (segment-reduce into node state).  The
kernels here collapse the first two passes into one:

``sources[reverse_slot] == endpoints``
    so for broadcast-shaped protocols (every port of a node carries the
    same value — Cole–Vishkin, the greedy baseline, the stabilizing
    recoloring family) the send-gather followed by the
    reverse-permutation is a *single* gather by ``endpoints``::

        values[k] = node_values[sources[k]]     # send pass
        inbox[k]  = values[reverse_slot[k]]     # deliver pass
                  = node_values[endpoints[k]]   # fused

This module is the only place that identity is exploited; everything
above it (the simulator, the faults engine, the batched node programs)
talks in terms of :func:`gather`, :func:`deliver_slots`,
:func:`deliver_masked` and :func:`compact_segments`.

Native build
------------
Set ``REPRO_NATIVE=1`` to require the numba-jitted variants (falls back
with a warning when numba is missing), ``REPRO_NATIVE=0`` to pin the
pure-numpy path, and leave it unset for auto-detection.  Both variants
are bit-identical — all kernels are integer gathers/permutations with
no floating-point arithmetic — and the parity is pinned by
``tests/test_kernel_parity.py`` plus the existing locality-audit
oracles.
"""

from __future__ import annotations

import os
import warnings
from typing import Any

try:  # pragma: no cover - exercised via the pure-python CI lane
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

__all__ = [
    "HAS_NUMPY",
    "native_available",
    "native_active",
    "native_mode",
    "gather",
    "deliver_slots",
    "deliver_masked",
    "compact_segments",
    "reference_broadcast",
]

# --------------------------------------------------------------------------
# native (numba) detection
# --------------------------------------------------------------------------

_NATIVE_CACHE: dict[str, Any] = {}


def native_mode() -> str:
    """The requested native mode: ``"off"``, ``"require"`` or ``"auto"``."""
    raw = os.environ.get("REPRO_NATIVE", "").strip()
    if raw == "0":
        return "off"
    if raw == "1":
        return "require"
    return "auto"


def native_available() -> bool:
    """True when numba imports and the jitted kernels compiled."""
    if "available" not in _NATIVE_CACHE:
        _NATIVE_CACHE["available"] = _try_build_native()
    return bool(_NATIVE_CACHE["available"])


def native_active() -> bool:
    """True when the jitted kernel variants are in use for this process."""
    mode = native_mode()
    if mode == "off" or not HAS_NUMPY:
        return False
    if mode == "require":
        if native_available():
            return True
        if "warned" not in _NATIVE_CACHE:
            _NATIVE_CACHE["warned"] = True
            warnings.warn(
                "REPRO_NATIVE=1 but numba is not importable; "
                "falling back to the pure-numpy kernels",
                RuntimeWarning,
                stacklevel=2,
            )
        return False
    return native_available()


def _reset_native_cache() -> None:
    """Test hook: drop the memoized numba probe."""
    _NATIVE_CACHE.clear()


def _try_build_native() -> bool:
    if not HAS_NUMPY:
        return False
    if native_mode() == "off":
        # don't even import numba when explicitly disabled
        return False
    try:
        import numba
    except ImportError:
        return False
    try:
        njit = numba.njit(cache=False, nogil=True)

        @njit
        def _gather_nb(values, index, out):  # pragma: no cover - jitted
            for k in range(index.shape[0]):
                out[k] = values[index[k]]
            return out

        @njit
        def _deliver_masked_nb(  # pragma: no cover - jitted
            values, mask, reverse, inbox, delivered
        ):
            count = 0
            for k in range(reverse.shape[0]):
                r = reverse[k]
                inbox[k] = values[r]
                delivered[k] = mask[r]
                if mask[k]:
                    count += 1
            return count

        # force compilation now so a broken toolchain degrades to numpy
        probe = np.arange(4, dtype=np.int64)
        _gather_nb(probe, probe[::-1].copy(), np.empty(4, dtype=np.int64))
        _deliver_masked_nb(
            probe,
            np.ones(4, dtype=np.bool_),
            probe[::-1].copy(),
            np.empty(4, dtype=np.int64),
            np.empty(4, dtype=np.bool_),
        )
    except Exception:  # pragma: no cover - defensive: any jit failure
        return False
    _NATIVE_CACHE["gather"] = _gather_nb
    _NATIVE_CACHE["deliver_masked"] = _deliver_masked_nb
    return True


# --------------------------------------------------------------------------
# kernels
# --------------------------------------------------------------------------


def gather(values, index, out=None):
    """``out[k] = values[index[k]]`` — the fused send+deliver pass.

    With ``index = endpoints`` this delivers a broadcast round in one
    gather; with ``index = reverse_slot`` it is the plain deliver pass
    over per-slot payloads.  ``out`` is an optional preallocated buffer
    (reused across rounds by the engine); it is only used when dtypes
    match, so callers may pass it unconditionally.
    """
    if out is not None and out.dtype == values.dtype and out.shape == index.shape:
        if native_active():
            return _NATIVE_CACHE["gather"](values, index, out)
        return np.take(values, index, out=out)
    return values[index]


def deliver_slots(values, reverse, out=None):
    """Deliver per-slot payloads: ``inbox = values[reverse_slot]``."""
    return gather(values, reverse, out=out)


def deliver_masked(values, mask, reverse, inbox_out=None, delivered_out=None):
    """Deliver a partial round: ``(inbox, delivered, messages)``.

    ``values``/``mask`` are per-slot payloads and send flags;
    ``delivered[k]`` tells the receiver whether anything arrived on
    port-slot ``k``, and ``messages`` counts the slots that actually
    sent.  Single fused pass under the native build.
    """
    if (
        native_active()
        and inbox_out is not None
        and delivered_out is not None
        and inbox_out.dtype == values.dtype
    ):
        count = _NATIVE_CACHE["deliver_masked"](
            values, mask, reverse, inbox_out, delivered_out
        )
        return inbox_out, delivered_out, int(count)
    inbox = gather(values, reverse, out=inbox_out)
    delivered = gather(mask, reverse, out=delivered_out)
    return inbox, delivered, int(mask.sum())


def compact_segments(offsets, active):
    """Slot indices + compact offsets for an active subset of nodes.

    Given the CSR ``offsets`` of the fabric and a sorted array of
    ``active`` node indices, returns ``(slots, compact_offsets)`` where
    ``slots`` lists every port-slot owned by an active node (in slot
    order within each node) and ``compact_offsets`` is the CSR offsets
    of those slots *within the compact array* — ready for
    ``segment_reduce`` over just the active rows.  This is the
    active-set compaction used by the greedy baseline once most nodes
    have committed a color.
    """
    starts = offsets[active]
    counts = offsets[active + 1] - starts
    compact_offsets = np.empty(len(active) + 1, dtype=np.int64)
    compact_offsets[0] = 0
    np.cumsum(counts, out=compact_offsets[1:])
    total = int(compact_offsets[-1])
    if total == 0:
        return np.empty(0, dtype=np.int64), compact_offsets
    slots = np.repeat(starts - compact_offsets[:-1], counts)
    slots += np.arange(total, dtype=np.int64)
    return slots, compact_offsets


def reference_broadcast(node_values, sources, reverse, endpoints=None):
    """The unfused three-pass delivery of a broadcast round.

    Materializes the per-slot send values (``node_values[sources]``)
    and permutes them by ``reverse_slot`` — exactly what the historical
    engine did.  Kept as the oracle for the fused path: the parity
    suite asserts ``reference_broadcast(...) == gather(node_values,
    endpoints)`` element-for-element on every instance.
    """
    values = node_values[sources]
    return values[reverse]
