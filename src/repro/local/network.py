"""The network side of the LOCAL-model simulator.

A :class:`Network` wraps a graph (mutable :class:`~repro.graphs.graph.Graph`
or frozen :class:`~repro.graphs.frozen.FrozenGraph`): it assigns identifiers
``1..n`` to the vertices, fixes a port numbering (for every vertex, its
incident edges are numbered ``0..deg-1``), and records the mapping back to
the original vertex labels so that simulation outputs can be reported in
terms of the caller's vertices.

For a frozen graph with the default identifier order, the port tables are
read straight off the CSR arrays: identifiers follow the vertex indices and
each CSR neighbour slice is already sorted by index, hence by identifier —
no per-vertex sort is needed.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from repro.graphs.frozen import FrozenGraph, GraphLike
from repro.graphs.graph import Vertex

__all__ = ["Network"]


class Network:
    """A port-numbered network over an input graph."""

    def __init__(self, graph: GraphLike, identifier_order: list[Vertex] | None = None):
        self.graph = graph
        vertices = identifier_order if identifier_order is not None else graph.vertices()
        if set(vertices) != set(graph.vertices()):
            raise ValueError("identifier_order must be a permutation of the vertices")
        self.identifier_of: dict[Vertex, int] = {
            v: i + 1 for i, v in enumerate(vertices)
        }
        self.vertex_of: dict[int, Vertex] = {
            i: v for v, i in self.identifier_of.items()
        }
        # port numbering: for each vertex, neighbours sorted by identifier
        if identifier_order is None and isinstance(graph, FrozenGraph):
            # CSR fast path: identifiers follow vertex indices, and each
            # neighbour slice is sorted by index == sorted by identifier
            self.ports: dict[Vertex, list[Vertex]] = {
                v: graph.neighbors(v) for v in graph
            }
        else:
            self.ports = {
                v: sorted(graph.neighbors(v), key=lambda u: self.identifier_of[u])
                for v in graph
            }
        self.port_of: dict[Vertex, dict[Vertex, int]] = {
            v: {u: p for p, u in enumerate(nbrs)} for v, nbrs in self.ports.items()
        }

    @property
    def n(self) -> int:
        return self.graph.number_of_vertices()

    def degree(self, v: Vertex) -> int:
        return len(self.ports[v])

    def neighbor_on_port(self, v: Vertex, port: int) -> Vertex:
        return self.ports[v][port]

    def port_towards(self, v: Vertex, neighbor: Vertex) -> int:
        return self.port_of[v][neighbor]

    def translate_inputs(
        self, inputs: Mapping[Vertex, Any] | None
    ) -> dict[Vertex, Any]:
        """Normalize per-vertex inputs (missing vertices get ``None``)."""
        inputs = dict(inputs or {})
        return {v: inputs.get(v) for v in self.graph}
