"""The network side of the LOCAL-model simulator.

A :class:`Network` wraps a graph (mutable :class:`~repro.graphs.graph.Graph`
or frozen :class:`~repro.graphs.frozen.FrozenGraph`): it assigns identifiers
``1..n`` to the vertices, fixes a port numbering (for every vertex, its
incident edges are numbered ``0..deg-1``), and records the mapping back to
the original vertex labels so that simulation outputs can be reported in
terms of the caller's vertices.

Internally the port numbering is materialized once per graph as a
:class:`RoutingFabric` — flat integer arrays over *directed edge slots*.
Slot ``offsets[i] + p`` is port ``p`` of the node with index ``i``
(identifier ``i + 1``); ``endpoints[slot]`` is the node index on the other
side of that port, and ``reverse_slot[slot]`` is the slot of the same edge
seen from the other endpoint.  Delivering a message sent by node ``i`` on
port ``p`` is therefore a single array read — ``reverse_slot[offsets[i]+p]``
names the receiver's inbox slot — instead of the two dict hops
(``neighbor_on_port`` + ``port_towards``) of the dict-routed engine.

For a frozen graph with the default identifier order, the port tables are
read zero-copy off the CSR arrays: identifiers follow the vertex indices and
each CSR neighbour slice is already sorted by index, hence by identifier —
no per-vertex sort is needed, and ``reverse_slot`` is computed with one
vectorized ``searchsorted`` when numpy is available.

The dict-based lookup API (:attr:`Network.ports`, :meth:`neighbor_on_port`,
:meth:`port_towards`) is kept for callers and tests, derived lazily from the
fabric.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Mapping
from typing import Any

from repro.graphs.frozen import HAS_NUMPY, FrozenGraph, GraphLike
from repro.graphs.graph import Vertex

if HAS_NUMPY:
    import numpy as _np
else:  # pragma: no cover - exercised on numpy-less installs
    _np = None

__all__ = ["Network", "RoutingFabric"]


class RoutingFabric:
    """Flat-array routing tables of a port-numbered network.

    All arrays are exposed twice: as plain Python lists (fast scalar access
    for the per-node round loop) and — when numpy is available — as ``int64``
    numpy arrays (the batched engine's data plane).  The list and array
    views alias the same data where the backend allows (zero-copy off a
    frozen graph's CSR cache).

    Attributes
    ----------
    n:
        Number of nodes; node ``i`` has identifier ``i + 1``.
    num_slots:
        Number of directed edge slots (``2m``).
    offsets / offsets_np:
        ``offsets[i] .. offsets[i+1]`` delimits node ``i``'s port slots.
    endpoints / endpoints_np:
        ``endpoints[slot]`` is the node index reached through that slot.
    reverse_slot / reverse_np:
        The same edge seen from the other side: an involution with
        ``endpoints[reverse_slot[k]] == src(k)``.
    degrees:
        Per-node degree list (``offsets`` differences, precomputed).
    """

    __slots__ = (
        "n", "num_slots", "offsets", "endpoints", "reverse_slot", "degrees",
        "offsets_np", "endpoints_np", "reverse_np", "has_numpy", "_sources_np",
        "degrees_np",
    )

    def __init__(
        self,
        offsets: list[int],
        endpoints: list[int],
        reverse_slot: list[int],
        offsets_np=None,
        endpoints_np=None,
        reverse_np=None,
        sources_np=None,
    ) -> None:
        self.n = len(offsets) - 1
        self.num_slots = len(endpoints)
        self.offsets = offsets
        self.endpoints = endpoints
        self.reverse_slot = reverse_slot
        self.degrees = [offsets[i + 1] - offsets[i] for i in range(self.n)]
        self.has_numpy = HAS_NUMPY
        if HAS_NUMPY:
            self.offsets_np = (
                offsets_np if offsets_np is not None
                else _np.asarray(offsets, dtype=_np.int64)
            )
            self.endpoints_np = (
                endpoints_np if endpoints_np is not None
                else _np.asarray(endpoints, dtype=_np.int64)
            )
            self.reverse_np = (
                reverse_np if reverse_np is not None
                else _np.asarray(reverse_slot, dtype=_np.int64)
            )
        else:  # pragma: no cover - exercised on numpy-less installs
            self.offsets_np = self.endpoints_np = self.reverse_np = None
        self.degrees_np = (
            _np.diff(self.offsets_np) if HAS_NUMPY else None
        )
        self._sources_np = sources_np

    def sources_np(self):
        """Per-slot source node index (``sources[offsets[i]+p] == i``), cached.

        The natural companion of ``endpoints`` for batched programs
        ("broadcast my value on every port" is ``values[sources]``).
        Numpy backend only; ``None`` without numpy.
        """
        if self._sources_np is None and self.has_numpy:
            self._sources_np = _np.repeat(
                _np.arange(self.n, dtype=_np.int64), self.degrees_np
            )
        return self._sources_np


def _reverse_slots_python(offsets: list[int], endpoints: list[int]) -> list[int]:
    """``reverse_slot`` by per-slot binary search in the sorted slices."""
    n = len(offsets) - 1
    reverse = [0] * len(endpoints)
    for i in range(n):
        for k in range(offsets[i], offsets[i + 1]):
            j = endpoints[k]
            reverse[k] = bisect_left(endpoints, i, offsets[j], offsets[j + 1])
    return reverse


def _fabric_from_csr(offsets_np, endpoints_np, lists: tuple[list[int], list[int]]) -> RoutingFabric:
    """Fabric straight off CSR arrays (default identifier order, numpy backend)."""
    offsets_list, endpoints_list = lists
    n = len(offsets_list) - 1
    if HAS_NUMPY and offsets_np is not None:
        degrees = _np.diff(offsets_np)
        src = _np.repeat(_np.arange(n, dtype=_np.int64), degrees)
        # directed edges are CSR-ordered, i.e. sorted by (src, dst); the
        # reverse of slot k is the position of key (dst, src) in that order
        keys = src * n + endpoints_np
        reverse_np = _np.searchsorted(keys, endpoints_np * n + src)
        return RoutingFabric(
            offsets_list, endpoints_list, reverse_np.tolist(),
            offsets_np=offsets_np, endpoints_np=endpoints_np,
            reverse_np=reverse_np, sources_np=src,
        )
    reverse = _reverse_slots_python(offsets_list, endpoints_list)
    return RoutingFabric(offsets_list, endpoints_list, reverse)


class Network:
    """A port-numbered network over an input graph.

    By default identifiers are ``1..n`` following the graph's vertex order
    (``identifier_order`` permutes that assignment).  Two keyword-only
    extensions support *truncated* networks — the locality auditor of
    :mod:`repro.verify.locality` re-runs node programs on r-ball subgraphs
    that must be indistinguishable from the full network:

    * ``identifiers`` — an explicit vertex -> identifier mapping (distinct
      positive ints, not necessarily ``1..n``).  Ports still enumerate
      neighbours in increasing identifier order, so an interior vertex of a
      ball subgraph sees the exact port numbering it had in the full graph.
    * ``declared_n`` — the value of ``n`` announced to the node programs
      (:attr:`n`), defaulting to the actual vertex count.  Algorithms whose
      schedules depend on ``n`` (Cole–Vishkin iterations, Linial parameter
      triples) then behave as if they ran in the full network.
    """

    def __init__(
        self,
        graph: GraphLike,
        identifier_order: list[Vertex] | None = None,
        *,
        identifiers: Mapping[Vertex, int] | None = None,
        declared_n: int | None = None,
    ):
        self.graph = graph
        if identifiers is not None:
            if identifier_order is not None:
                raise ValueError("pass identifier_order or identifiers, not both")
            if set(identifiers) != set(graph.vertices()):
                raise ValueError("identifiers must cover exactly the vertices")
            ids = {v: int(i) for v, i in identifiers.items()}
            if len(set(ids.values())) != len(ids) or (ids and min(ids.values()) < 1):
                raise ValueError("identifiers must be distinct positive integers")
            # ports enumerate neighbours by increasing identifier, exactly
            # like the default 1..n assignment enumerates them by index
            order = sorted(ids, key=ids.__getitem__)
            self.identifier_of = ids
            self._default_order = False
        else:
            if identifier_order is None:
                order = graph.vertices()
            else:
                order = list(identifier_order)
                if set(order) != set(graph.vertices()):
                    raise ValueError("identifier_order must be a permutation of the vertices")
            self.identifier_of = {v: i + 1 for i, v in enumerate(order)}
            self._default_order = identifier_order is None
        self._order: list[Vertex] = order
        self.vertex_of: dict[int, Vertex] = {
            i: v for v, i in self.identifier_of.items()
        }
        self._index: dict[Vertex, int] = {v: i for i, v in enumerate(order)}
        self.identifiers_list: list[int] = [self.identifier_of[v] for v in order]
        if declared_n is None:
            self.declared_n = len(order)
        else:
            self.declared_n = int(declared_n)
            if self.declared_n < len(order):
                raise ValueError("declared_n must be at least the vertex count")
        if self.identifiers_list and max(self.identifiers_list) > self.declared_n:
            raise ValueError("identifiers must lie in 1..declared_n")
        self._fabric: RoutingFabric | None = None
        self._ports: dict[Vertex, list[Vertex]] | None = None
        self._port_of: dict[Vertex, dict[Vertex, int]] | None = None
        self._identifiers_np = None

    # ------------------------------------------------------------------
    # Flat-array data plane
    # ------------------------------------------------------------------
    @property
    def labels(self) -> list[Vertex]:
        """Vertex labels by node index (``labels[i]`` has identifier ``i+1``)."""
        return self._order

    @property
    def fabric(self) -> RoutingFabric:
        """The routing fabric, built once per network on first use."""
        if self._fabric is None:
            self._fabric = self._build_fabric()
        return self._fabric

    @property
    def identifiers_np(self):
        """``identifiers_list`` as a cached ``int64`` array (numpy only)."""
        if self._identifiers_np is None and HAS_NUMPY:
            self._identifiers_np = _np.asarray(
                self.identifiers_list, dtype=_np.int64
            )
        return self._identifiers_np

    def _build_fabric(self) -> RoutingFabric:
        graph = self.graph
        if self._default_order and isinstance(graph, FrozenGraph):
            # zero-copy fast path: identifiers follow the CSR vertex indices
            # and each neighbour slice is already sorted by index
            offsets, neighbors = graph.csr_arrays()
            if not graph._use_numpy:
                return _fabric_from_csr(None, None, (offsets, neighbors))
            return _fabric_from_csr(offsets, neighbors, graph.csr_lists())
        # general path: sort each neighbourhood by identifier
        index = {v: i for i, v in enumerate(self._order)}
        offsets_list = [0] * (len(self._order) + 1)
        endpoints_list: list[int] = []
        for i, v in enumerate(self._order):
            endpoints_list.extend(sorted(index[u] for u in self.graph.neighbors(v)))
            offsets_list[i + 1] = len(endpoints_list)
        reverse = _reverse_slots_python(offsets_list, endpoints_list)
        return RoutingFabric(offsets_list, endpoints_list, reverse)

    # ------------------------------------------------------------------
    # Dict-based lookup API (lazy views over the fabric)
    # ------------------------------------------------------------------
    @property
    def ports(self) -> dict[Vertex, list[Vertex]]:
        """Per-vertex neighbour labels in port order (lazy)."""
        if self._ports is None:
            fabric = self.fabric
            order = self._order
            self._ports = {
                v: [
                    order[fabric.endpoints[k]]
                    for k in range(fabric.offsets[i], fabric.offsets[i + 1])
                ]
                for i, v in enumerate(order)
            }
        return self._ports

    @property
    def port_of(self) -> dict[Vertex, dict[Vertex, int]]:
        """Inverse port tables ``v -> {neighbor: port}`` (lazy)."""
        if self._port_of is None:
            self._port_of = {
                v: {u: p for p, u in enumerate(nbrs)}
                for v, nbrs in self.ports.items()
            }
        return self._port_of

    @property
    def n(self) -> int:
        """The ``n`` known to every node (``declared_n``; the vertex count by default)."""
        return self.declared_n

    def degree(self, v: Vertex) -> int:
        i = self._index[v]
        fabric = self.fabric
        return fabric.offsets[i + 1] - fabric.offsets[i]

    def neighbor_on_port(self, v: Vertex, port: int) -> Vertex:
        i = self._index[v]
        fabric = self.fabric
        base = fabric.offsets[i]
        if not 0 <= port < fabric.offsets[i + 1] - base:
            raise IndexError(f"vertex {v!r} has no port {port}")
        return self._order[fabric.endpoints[base + port]]

    def port_towards(self, v: Vertex, neighbor: Vertex) -> int:
        return self.port_of[v][neighbor]

    # ------------------------------------------------------------------
    # Input translation
    # ------------------------------------------------------------------
    def translate_inputs(
        self, inputs: Mapping[Vertex, Any] | Any | None
    ) -> dict[Vertex, Any]:
        """Normalize per-vertex inputs (missing vertices get ``None``).

        Accepts either a vertex-keyed mapping or a sequence/array aligned
        with the node index order (``labels``) — the flat data plane hands
        inputs around as arrays, the dict engines as mappings.
        """
        if inputs is None:
            return {v: None for v in self.graph}
        if isinstance(inputs, Mapping):
            inputs = dict(inputs)
            return {v: inputs.get(v) for v in self.graph}
        if len(inputs) != len(self._order):
            raise ValueError("sequence inputs must have one entry per vertex")
        index = self._index
        return {v: inputs[index[v]] for v in self.graph}

    def inputs_list(self, inputs: Mapping[Vertex, Any] | Any | None):
        """Per-node inputs by node index (missing vertices get ``None``).

        Mapping inputs are spread by vertex label; sequence/array inputs
        are taken as already index-aligned and returned as-is (arrays stay
        arrays — the batched programs consume them zero-copy).
        """
        if inputs is None:
            return [None] * len(self._order)
        if isinstance(inputs, Mapping):
            if not inputs:
                return [None] * len(self._order)
            return [inputs.get(v) for v in self._order]
        if len(inputs) != len(self._order):
            raise ValueError("sequence inputs must have one entry per vertex")
        return inputs
