"""Node-side API of the LOCAL-model simulator.

In the LOCAL model each vertex of the input graph is a processor with a
unique identifier in ``{1, ..., n}``; computation proceeds in synchronous
rounds, and in each round every node may send an arbitrarily large message
to each neighbour.  There is no bound on local computation.

A distributed algorithm is written by subclassing :class:`NodeAlgorithm`:

* :meth:`NodeAlgorithm.initialize` receives the node's :class:`NodeContext`
  (its identifier, the number of vertices ``n``, its degree, and any
  algorithm-specific input such as its color list);
* each round, the simulator calls :meth:`NodeAlgorithm.send` to collect the
  outgoing message per port and then :meth:`NodeAlgorithm.receive` with the
  incoming messages;
* a node signals termination through :meth:`NodeAlgorithm.is_finished` and
  exposes its output through :meth:`NodeAlgorithm.result`.

Nodes address their neighbours through *ports* ``0 .. degree-1``; they do
not a priori know the identifiers on the other side of each port (that
information must be learned by communication, exactly as in the model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["NodeContext", "NodeAlgorithm"]


@dataclass
class NodeContext:
    """Initial knowledge of a node.

    Attributes
    ----------
    identifier:
        The node's unique identifier (an integer between 1 and ``n``).
    n:
        The number of vertices of the network, known to every node.
    degree:
        The node's degree (the number of ports).
    input:
        Algorithm-specific input (e.g. the node's color list, or its parent
        port in a rooted forest).  ``None`` when the algorithm needs none.
    """

    identifier: int
    n: int
    degree: int
    input: Any = None
    extra: dict[str, Any] = field(default_factory=dict)


class NodeAlgorithm:
    """Base class for LOCAL-model node programs.

    Subclasses typically store their state on ``self`` during
    :meth:`initialize` and update it in :meth:`receive`.
    """

    def initialize(self, context: NodeContext) -> None:
        """Called once before round 1 with the node's initial knowledge."""
        self.context = context

    def send(self, round_number: int) -> dict[int, Any]:
        """Return the message to send on each port this round.

        Ports missing from the returned dict carry no message.  The default
        sends nothing.
        """
        return {}

    def receive(self, round_number: int, messages: dict[int, Any]) -> None:
        """Process the messages received this round (keyed by port)."""

    def is_finished(self) -> bool:
        """Whether this node has computed its final output."""
        return True

    def result(self) -> Any:
        """The node's output (e.g. its chosen color)."""
        return None
