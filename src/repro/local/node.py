"""Node-side API of the LOCAL-model simulator.

In the LOCAL model each vertex of the input graph is a processor with a
unique identifier in ``{1, ..., n}``; computation proceeds in synchronous
rounds, and in each round every node may send an arbitrarily large message
to each neighbour.  There is no bound on local computation.

A distributed algorithm is written by subclassing :class:`NodeAlgorithm`:

* :meth:`NodeAlgorithm.initialize` receives the node's :class:`NodeContext`
  (its identifier, the number of vertices ``n``, its degree, and any
  algorithm-specific input such as its color list);
* each round, the simulator calls :meth:`NodeAlgorithm.send` to collect the
  outgoing message per port and then :meth:`NodeAlgorithm.receive` with the
  incoming messages;
* a node signals termination through :meth:`NodeAlgorithm.is_finished` and
  exposes its output through :meth:`NodeAlgorithm.result`.

Nodes address their neighbours through *ports* ``0 .. degree-1``; they do
not a priori know the identifiers on the other side of each port (that
information must be learned by communication, exactly as in the model).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any, ClassVar

__all__ = [
    "NodeContext",
    "NodeAlgorithm",
    "BatchContext",
    "BatchNodeAlgorithm",
    "segment_reduce",
    "lowest_free_bit",
]


@dataclass
class NodeContext:
    """Initial knowledge of a node.

    Attributes
    ----------
    identifier:
        The node's unique identifier (an integer between 1 and ``n``).
    n:
        The number of vertices of the network, known to every node.
    degree:
        The node's degree (the number of ports).
    input:
        Algorithm-specific input (e.g. the node's color list, or its parent
        port in a rooted forest).  ``None`` when the algorithm needs none.
    """

    identifier: int
    n: int
    degree: int
    input: Any = None
    extra: dict[str, Any] = field(default_factory=dict)


class NodeAlgorithm:
    """Base class for LOCAL-model node programs.

    Subclasses typically store their state on ``self`` during
    :meth:`initialize` and update it in :meth:`receive`.
    """

    def initialize(self, context: NodeContext) -> None:
        """Called once before round 1 with the node's initial knowledge."""
        self.context = context

    def send(self, round_number: int) -> dict[int, Any]:
        """Return the message to send on each port this round.

        Ports missing from the returned dict carry no message.  The default
        sends nothing.
        """
        return {}

    def receive(self, round_number: int, messages: dict[int, Any]) -> None:
        """Process the messages received this round (keyed by port)."""

    def is_finished(self) -> bool:
        """Whether this node has computed its final output.

        Termination must be *monotone*: once a node reports finished it must
        keep reporting finished (the engine tracks an active set of
        unfinished nodes and never re-checks nodes that already finished).
        """
        return True

    def result(self) -> Any:
        """The node's output (e.g. its chosen color)."""
        return None


# ---------------------------------------------------------------------------
# Batched node programs
# ---------------------------------------------------------------------------

@dataclass
class BatchContext:
    """What a batched node program knows about the whole network.

    The arrays are the simulator's routing fabric (numpy ``int64``), shared
    read-only with the program: ``offsets[i] .. offsets[i+1]`` delimits the
    directed edge slots of the node with index ``i`` (identifier ``i+1``),
    ``endpoints[slot]`` is the node index on the other side of a slot, and
    ``reverse_slot[slot]`` the same edge seen from that side.  ``inputs`` is
    the per-node algorithm input by node index.

    A batched program sees the *same* information a per-node program could
    assemble from one round of neighbour exchange (identifiers are public in
    the LOCAL model and ``endpoints`` is exactly what an id-broadcast round
    delivers) — it must not derive anything a message-passing algorithm
    could not.
    """

    n: int
    identifiers: Any  # int64[n], distinct values in 1..declared_n (1..n by default)
    degrees: Any  # int64[n]
    offsets: Any  # int64[n+1]
    endpoints: Any  # int64[num_slots]
    reverse_slot: Any  # int64[num_slots]
    sources: Any = None  # int64[num_slots]: source node index of each slot
    inputs: list[Any] = field(default_factory=list)
    network: Any = None
    #: the ``n`` announced to the nodes; differs from :attr:`n` only on
    #: truncated networks (the locality auditor's r-ball re-runs).  Batched
    #: programs must derive n-dependent schedules from this, never from the
    #: array length, or they stop being locality-faithful.
    declared_n: int | None = None

    @property
    def num_slots(self) -> int:
        return len(self.endpoints)

    @property
    def known_n(self) -> int:
        """The ``n`` a node program should reason with (``declared_n`` or ``n``)."""
        return self.n if self.declared_n is None else self.declared_n


class BatchNodeAlgorithm:
    """Opt-in batched node program: one instance drives all ``n`` nodes.

    Instead of the simulator calling ``send``/``receive`` on ``n`` node
    objects, a batched program exchanges *per-slot numpy arrays* with the
    engine once per round:

    * :meth:`send_batch` returns the outgoing message values aligned with
      the fabric's directed edge slots — ``out[offsets[i] + p]`` is what
      node ``i`` sends on port ``p``.  Return ``None`` for a silent round,
      or a ``(values, mask)`` pair to send on a subset of slots.
    * the engine routes the array through ``reverse_slot`` (one fancy-index
      gather) and calls :meth:`receive_batch` with the inbox array —
      ``inbox[offsets[i] + p]`` is what node ``i`` received on port ``p``
      (``delivered`` masks the slots that actually carry a message, or is
      ``None`` when all do).

    The round/message accounting is identical to the per-node engine: a
    batched port of a per-node algorithm must produce the same
    ``SimulationResult`` (the parity tests enforce this for the shipped
    ports).  Set :attr:`fallback` to the equivalent per-node factory; the
    simulator transparently runs it when numpy is unavailable or
    :meth:`can_run` declines the instance (e.g. values too wide for the
    vectorized bit tricks).

    Exchange modes
    --------------
    :attr:`exchange_mode` selects how :meth:`send_batch`'s return value is
    routed (see :mod:`repro.local.kernels` for the fused delivery):

    ``"slots"`` (default)
        Per-slot payloads as described above.
    ``"broadcast"``
        Every port of a node carries the same value: :meth:`send_batch`
        returns a *per-node* ``int64[n]`` array and the engine delivers it
        with the single fused gather ``inbox = values[endpoints]``
        (``sources[reverse_slot] == endpoints``).  A broadcast round always
        counts ``num_slots`` messages, exactly like the per-node program
        broadcasting on every port.  Programs may implement
        ``receive_broadcast(round_number, node_values)`` to consume the
        per-node array directly (skipping the inbox materialization when
        only e.g. a parent's value is needed); the engine falls back to
        materializing the inbox and calling :meth:`receive_batch` when the
        method is absent, and the reference three-pass engine always takes
        that unfused path.
    ``"active"``
        Sparse rounds: :meth:`send_batch` returns a ``(slots, values)``
        pair listing only the slots that carry a message (``len(slots)``
        messages are charged).  The engine maps them to destination slots
        through ``reverse_slot`` and calls
        ``receive_active(round_number, dest_slots, values)``.  This is how
        wave-style Omega(n)-round protocols keep each round O(frontier)
        instead of O(n).
    """

    #: Per-node factory the simulator falls back to when the batched path
    #: cannot run (numpy missing, or :meth:`can_run` returned False).
    fallback: ClassVar[Callable[[], NodeAlgorithm] | None] = None

    #: How ``send_batch`` payloads are routed: "slots", "broadcast" or
    #: "active" (see the class docstring).
    exchange_mode: ClassVar[str] = "slots"

    def can_run(self, context: BatchContext) -> bool:
        """Whether the batched path supports this instance (default: yes)."""
        return True

    def initialize_batch(self, context: BatchContext) -> None:
        """Called once before round 1 with the whole-network context."""
        self.context = context

    def send_batch(self, round_number: int):
        """Per-slot outgoing values: ``ndarray``, ``(ndarray, mask)`` or ``None``."""
        return None

    def receive_batch(self, round_number: int, inbox, delivered) -> None:
        """Process the per-slot inbox (``delivered`` is a bool mask or ``None``)."""

    def is_finished_batch(self) -> bool:
        """Whether every node has computed its final output (monotone)."""
        return True

    def results_batch(self) -> list[Any]:
        """Per-node outputs by node index."""
        return [None] * self.context.n


def segment_reduce(ufunc, values, offsets, empty=0):
    """Per-node reduction of per-slot ``values``: ``out[i] = ufunc.reduce(values[offsets[i]:offsets[i+1]])``.

    The workhorse of batched programs ("OR of my neighbours' color bits",
    "max uncolored neighbour id").  Wraps ``ufunc.reduceat`` with the empty
    segment handling it lacks: degree-0 nodes get ``empty``.  The reduction
    runs over the starts of the *non-empty* segments only — consecutive
    non-empty starts delimit exactly one segment's values because the
    segments skipped in between are empty — so trailing empty segments
    cannot truncate the last real one.
    """
    import numpy as np

    n = len(offsets) - 1
    out = np.full(n, empty, dtype=np.int64)
    if n == 0 or len(values) == 0:
        return out
    starts = offsets[:-1]
    nonempty = np.flatnonzero(starts != offsets[1:])
    if nonempty.size:
        out[nonempty] = ufunc.reduceat(values, starts[nonempty])
    return out


def lowest_free_bit(used):
    """Per-element index of the lowest zero bit of an int64 mask array.

    The "smallest free color" extraction shared by the batched coloring
    programs: with colors encoded as bits, ``lowest_free_bit(used)`` is
    the first color absent from each node's used-set.  Masks must leave
    bit 62 clear (all batched palettes are far below that), so
    ``used + 1`` cannot overflow and the isolated bit is a power of two
    that float64 represents exactly.
    """
    import numpy as np

    isolated = ~used & (used + 1)
    return np.log2(isolated.astype(np.float64)).astype(np.int64)
