"""LOCAL-model simulation: node programs, synchronous engine, round accounting.

The round engine (:mod:`repro.local.simulator`) runs on flat integer arrays
derived from the graph's CSR (:class:`~repro.local.network.RoutingFabric`);
:class:`~repro.local.node.BatchNodeAlgorithm` opts a node program into the
fully vectorized batched path.  The seed dict-routed engine survives in
:mod:`repro.local.reference` for parity tests and A/B benchmarks.
"""

from repro.local.ball_collection import (
    BallCollectionAlgorithm,
    collect_balls,
    collect_balls_distributed,
)
from repro.local.ledger import LedgerEntry, RoundLedger
from repro.local.network import Network, RoutingFabric
from repro.local.node import (
    BatchContext,
    BatchNodeAlgorithm,
    NodeAlgorithm,
    NodeContext,
    segment_reduce,
)
from repro.local.reference import ReferenceSimulator, run_reference_algorithm
from repro.local.simulator import (
    SimulationResult,
    SynchronousSimulator,
    run_node_algorithm,
)

__all__ = [
    "BallCollectionAlgorithm",
    "collect_balls",
    "collect_balls_distributed",
    "LedgerEntry",
    "RoundLedger",
    "Network",
    "RoutingFabric",
    "BatchContext",
    "BatchNodeAlgorithm",
    "NodeAlgorithm",
    "NodeContext",
    "segment_reduce",
    "ReferenceSimulator",
    "run_reference_algorithm",
    "SimulationResult",
    "SynchronousSimulator",
    "run_node_algorithm",
]
