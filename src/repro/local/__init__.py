"""LOCAL-model simulation: node programs, synchronous engine, round accounting."""

from repro.local.ball_collection import (
    BallCollectionAlgorithm,
    collect_balls,
    collect_balls_distributed,
)
from repro.local.ledger import LedgerEntry, RoundLedger
from repro.local.network import Network
from repro.local.node import NodeAlgorithm, NodeContext
from repro.local.simulator import (
    SimulationResult,
    SynchronousSimulator,
    run_node_algorithm,
)

__all__ = [
    "BallCollectionAlgorithm",
    "collect_balls",
    "collect_balls_distributed",
    "LedgerEntry",
    "RoundLedger",
    "Network",
    "NodeAlgorithm",
    "NodeContext",
    "SimulationResult",
    "SynchronousSimulator",
    "run_node_algorithm",
]
