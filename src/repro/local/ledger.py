"""Round accounting for phase-structured algorithms.

The composed algorithm of Theorem 1.3 alternates purely local computations
(each vertex inspects its ``c log n`` ball) with calls to distributed
primitives (ruling forests, (d+1)-coloring, layered tree coloring).  Rather
than running a single gigantic node program, the driver executes the phases
and charges rounds to a :class:`RoundLedger`, one entry per phase, following
exactly the accounting in the proofs of Lemmas 3.1 and 3.2.  The ledger
total is the round complexity reported by the experiments.

Each entry records which part of the paper it instantiates so that the
benchmark output can be traced back to the analysis
(e.g. ``"Lemma 3.2: ruling forest"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LedgerEntry", "RoundLedger"]


@dataclass(frozen=True)
class LedgerEntry:
    """One charged phase: a name, the number of rounds, and a paper reference."""

    phase: str
    rounds: int
    reference: str = ""

    def __post_init__(self) -> None:
        if self.rounds < 0:
            raise ValueError("rounds must be non-negative")


@dataclass
class RoundLedger:
    """Accumulates the rounds charged by the phases of an algorithm."""

    entries: list[LedgerEntry] = field(default_factory=list)

    def charge(self, phase: str, rounds: int, reference: str = "") -> LedgerEntry:
        """Append an entry and return it."""
        entry = LedgerEntry(phase=phase, rounds=int(rounds), reference=reference)
        self.entries.append(entry)
        return entry

    def extend(self, other: "RoundLedger", prefix: str = "") -> None:
        """Merge another ledger's entries (optionally prefixing phase names)."""
        for entry in other.entries:
            self.entries.append(
                LedgerEntry(
                    phase=f"{prefix}{entry.phase}",
                    rounds=entry.rounds,
                    reference=entry.reference,
                )
            )

    def total(self) -> int:
        """Total number of rounds charged."""
        return sum(entry.rounds for entry in self.entries)

    def by_phase(self) -> dict[str, int]:
        """Total rounds grouped by phase name."""
        result: dict[str, int] = {}
        for entry in self.entries:
            result[entry.phase] = result.get(entry.phase, 0) + entry.rounds
        return result

    def summary(self) -> str:
        """A human-readable multi-line summary (used by benchmark output)."""
        lines = [f"total rounds: {self.total()}"]
        for phase, rounds in sorted(self.by_phase().items(), key=lambda kv: -kv[1]):
            lines.append(f"  {phase}: {rounds}")
        return "\n".join(lines)
