"""Linial-style lower bounds on paths and trees.

Two classical facts frame the paper's results:

* coloring an n-vertex path (hence any tree) with **2** colors requires
  ``Omega(n)`` rounds — this is why Corollary 1.4 excludes arboricity 1 and
  Theorem 1.3 requires ``d >= 3``;
* coloring trees/paths with **any constant** number of colors requires
  ``Omega(log* n)`` rounds (Linial), so the polylogarithmic complexity of
  Theorem 1.3 cannot be improved to ``o(log n)`` in general, and the
  ``O(log* n)`` of Cole–Vishkin is optimal up to constants.

The first fact follows from Observation 2.4 applied with an odd cycle as
the obstruction (its balls of radius up to ``(n-3)/2`` look exactly like
path balls, yet it is 3-chromatic); :func:`path_two_coloring_lower_bound`
certifies it computationally.  The second is recorded as
:func:`log_star_floor` (the quantity the Cole–Vishkin round counts are
compared against in the experiments).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.generators.classic import cycle, path
from repro.graphs.graph import Graph
from repro.lowerbounds.indistinguishability import (
    LowerBoundCertificate,
    certify_coloring_lower_bound,
)

__all__ = ["PathLowerBound", "path_two_coloring_lower_bound", "log_star_floor"]


def log_star_floor(n: int) -> int:
    """The iterated logarithm ``log* n`` (number of log2 applications to reach <= 1)."""
    import math

    count = 0
    value = float(n)
    while value > 1.0:
        value = math.log2(value)
        count += 1
        if count > 64:
            break
    return count


@dataclass
class PathLowerBound:
    """Certificate that 2-coloring paths needs more than ``rounds`` rounds."""

    certificate: LowerBoundCertificate
    obstruction: Graph
    target: Graph


def path_two_coloring_lower_bound(n: int, rounds: int) -> PathLowerBound:
    """Certify that no ``rounds``-round algorithm 2-colors every n-vertex path.

    The obstruction is the odd cycle ``C_m`` with ``m = 2*rounds + 5``
    (3-chromatic); all its balls of radius ``rounds + 1`` are paths, which
    also occur in the n-vertex path provided ``n`` is large enough.
    """
    m = 2 * (rounds + 1) + 3
    if m > n:
        raise ValueError("n too small for the requested number of rounds")
    obstruction = cycle(m)
    target = path(max(n, m + 2 * (rounds + 2)))
    certificate = certify_coloring_lower_bound(
        obstruction,
        target,
        rounds=rounds,
        colors=2,
        obstruction_chromatic_lower_bound=3,
        sample_obstruction_vertices=[0],  # cycles are vertex-transitive
    )
    return PathLowerBound(certificate, obstruction, target)
