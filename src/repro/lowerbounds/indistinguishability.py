"""Observation 2.4: indistinguishability lower bounds for distributed coloring.

**Observation 2.4 (Linial).**  Let ``G`` be a graph, and ``H`` be a graph
with at most ``|V(G)|`` vertices, such that each ball of radius at most
``r + 1`` in ``H`` is isomorphic to some ball of radius at most ``r + 1``
in ``G``.  Then no distributed algorithm can color ``G`` with fewer than
``chi(H)`` colors in at most ``r`` rounds.

(The reasoning: after ``r`` rounds the output of a vertex is a function of
its labelled ball of radius ``r``; if every ball of ``H`` also occurs in
``G``, an algorithm that q-colors every graph "looking like G locally"
would in particular q-color ``H``, which is impossible for ``q < chi(H)``.)

:class:`LowerBoundCertificate` packages the three facts that have to be
checked — the vertex-count inequality, the chromatic lower bound on ``H``,
and the ball-isomorphism condition — and
:func:`certify_coloring_lower_bound` verifies them computationally, which
is what the lower-bound experiments (Theorems 1.5, 2.5, 2.6) run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LowerBoundError
from repro.graphs.graph import Graph, Vertex
from repro.graphs.properties.balls import (
    RootedBall,
    all_rooted_balls,
    rooted_ball,
    rooted_balls_isomorphic,
)

__all__ = ["LowerBoundCertificate", "certify_coloring_lower_bound", "balls_embed"]


@dataclass(frozen=True)
class LowerBoundCertificate:
    """A verified instance of Observation 2.4.

    The conclusion it certifies: *no distributed algorithm running in at
    most ``rounds`` rounds can properly color every graph of the target
    class (of which ``target`` is a member) with at most ``colors``
    colors*, because the obstruction graph ``obstruction`` (whose chromatic
    number exceeds ``colors``) is locally indistinguishable from ``target``
    at that radius.
    """

    rounds: int
    colors: int
    obstruction_vertices: int
    target_vertices: int
    obstruction_chromatic_lower_bound: int
    checked_balls: int

    def conclusion(self) -> str:
        return (
            f"no {self.rounds}-round distributed algorithm can "
            f"{self.colors}-color every graph of the target class "
            f"(obstruction has chi >= {self.obstruction_chromatic_lower_bound} "
            f"on {self.obstruction_vertices} vertices)"
        )


def balls_embed(
    obstruction: Graph,
    target: Graph,
    radius: int,
    sample_obstruction_vertices: list[Vertex] | None = None,
) -> tuple[bool, int]:
    """Check that every rooted ball of ``obstruction`` appears in ``target``.

    Returns ``(all_embedded, number_of_balls_checked)``.  The check is
    exact rooted-graph isomorphism, pruned by cheap invariant signatures.
    ``sample_obstruction_vertices`` restricts the check to the given
    centers (useful for vertex-transitive obstructions where one center per
    orbit suffices; the default checks every vertex).
    """
    target_balls: list[RootedBall] = all_rooted_balls(target, radius)
    by_signature: dict[tuple, list[RootedBall]] = {}
    for ball in target_balls:
        by_signature.setdefault(ball.signature(), []).append(ball)

    centers = (
        sample_obstruction_vertices
        if sample_obstruction_vertices is not None
        else obstruction.vertices()
    )
    checked = 0
    # Obstructions are typically highly symmetric (grids, circulants), so the
    # same rooted ball recurs at many centers; certified ball types are
    # cached and re-verified by a single isomorphism test instead of a full
    # search through the target's balls.
    certified: list[RootedBall] = []
    for center in centers:
        checked += 1
        ball = rooted_ball(obstruction, center, radius)
        if any(rooted_balls_isomorphic(ball, known) for known in certified):
            continue
        candidates = by_signature.get(ball.signature(), [])
        if not any(rooted_balls_isomorphic(ball, candidate) for candidate in candidates):
            return False, checked
        certified.append(ball)
    return True, checked


def certify_coloring_lower_bound(
    obstruction: Graph,
    target: Graph,
    rounds: int,
    colors: int,
    obstruction_chromatic_lower_bound: int,
    sample_obstruction_vertices: list[Vertex] | None = None,
) -> LowerBoundCertificate:
    """Verify an Observation 2.4 certificate or raise :class:`LowerBoundError`.

    Parameters
    ----------
    obstruction:
        The high-chromatic graph ``H`` (e.g. a Klein-bottle grid or a
        non-4-colorable toroidal triangulation).
    target:
        A member ``G`` of the target class (e.g. a planar grid) with at
        least as many vertices as ``H``.
    rounds:
        The number of rounds ``r`` being ruled out.
    colors:
        The number of colors ``q`` being ruled out (must satisfy
        ``q < chi(H)``, witnessed by ``obstruction_chromatic_lower_bound``).
    obstruction_chromatic_lower_bound:
        A lower bound on ``chi(H)`` that the caller has established (e.g.
        by exact computation on a small instance, or by an independence
        number argument); must exceed ``colors``.
    """
    if obstruction_chromatic_lower_bound <= colors:
        raise LowerBoundError(
            "the chromatic lower bound on the obstruction must exceed the "
            "number of colors being ruled out"
        )
    if obstruction.number_of_vertices() > target.number_of_vertices():
        raise LowerBoundError(
            "Observation 2.4 requires |V(H)| <= |V(G)| "
            f"({obstruction.number_of_vertices()} > {target.number_of_vertices()})"
        )
    embedded, checked = balls_embed(
        obstruction, target, rounds + 1, sample_obstruction_vertices
    )
    if not embedded:
        raise LowerBoundError(
            f"some ball of radius {rounds + 1} of the obstruction does not "
            "occur in the target graph; the certificate fails at this radius"
        )
    return LowerBoundCertificate(
        rounds=rounds,
        colors=colors,
        obstruction_vertices=obstruction.number_of_vertices(),
        target_vertices=target.number_of_vertices(),
        obstruction_chromatic_lower_bound=obstruction_chromatic_lower_bound,
        checked_balls=checked,
    )
