"""Theorems 2.5 and 2.6: lower bounds from Klein-bottle quadrangulations.

Gallai proved that the ``(2k+1) x (2l+1)`` rectangular grid on the Klein
bottle is 4-chromatic.  Since

* every ball of radius less than ``l`` of ``G_{5, 2l+1}`` is isomorphic to
  a ball of a planar triangle-free graph (the pentagonal tube ``H_{2l}`` of
  Figure 2, right), and
* every ball of radius less than ``k`` of ``G_{2k+1, 2k+1}`` is isomorphic
  to a ball of the planar (2k+1)x(2k+1) rectangular grid,

Observation 2.4 rules out

* 3-coloring all n-vertex triangle-free planar graphs in ``o(n)`` rounds
  (Theorem 2.5), and
* 3-coloring all n-vertex planar bipartite graphs in ``o(sqrt(n))`` rounds
  (Theorem 2.6).

The helpers below build both certificates: the obstruction, a suitable
planar target with at least as many vertices, the chromatic lower bound
(exact backtracking for small grids, Gallai's theorem recorded as metadata
for large ones), and the ball-embedding check via
:func:`repro.lowerbounds.indistinguishability.certify_coloring_lower_bound`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coloring.exact import chromatic_number
from repro.errors import LowerBoundError
from repro.graphs.generators.surfaces import (
    klein_bottle_grid,
    pentagonal_tube,
    planar_grid_patch,
)
from repro.graphs.graph import Graph
from repro.lowerbounds.indistinguishability import (
    LowerBoundCertificate,
    certify_coloring_lower_bound,
)

__all__ = [
    "KleinBottleLowerBound",
    "triangle_free_lower_bound",
    "bipartite_grid_lower_bound",
    "klein_grid_chromatic_number",
]


def klein_grid_chromatic_number(k: int, l: int, exact_limit: int = 36) -> int:
    """Chromatic number of ``G_{k,l}`` (exact when small, Gallai's value otherwise).

    For odd ``k`` and ``l`` the value is 4 (Gallai); instances with at most
    ``exact_limit`` vertices are verified by the exact solver.
    """
    graph = klein_bottle_grid(k, l)
    if graph.number_of_vertices() <= exact_limit:
        return chromatic_number(graph, upper_bound=6)
    if k % 2 == 1 and l % 2 == 1:
        return 4
    raise LowerBoundError(
        "chromatic number of an even Klein-bottle grid is not needed by the paper"
    )


@dataclass
class KleinBottleLowerBound:
    """A certificate plus the graphs it was established on."""

    certificate: LowerBoundCertificate
    obstruction: Graph
    target: Graph


def triangle_free_lower_bound(
    l: int, rounds: int, verify_chromatic: bool = True
) -> KleinBottleLowerBound:
    """Theorem 2.5 instance: ``G_{5, 2l+1}`` vs a planar triangle-free target.

    Rules out ``rounds``-round 3-coloring of triangle-free planar graphs;
    the paper's statement needs ``rounds < l / 2``-ish, and the certificate
    check fails (raises) when ``rounds`` is too large for the given ``l``.
    """
    if rounds + 1 >= l:
        raise LowerBoundError(
            "Theorem 2.5 needs the probed radius (rounds + 1) to stay below l: "
            f"got rounds={rounds}, l={l}"
        )
    obstruction = klein_bottle_grid(5, 2 * l + 1)
    # a pentagonal tube with at least as many vertices and ample margin so
    # that its central balls realize all obstruction balls
    tube_length = max(2 * l + 1 + 4 * (rounds + 2), 8)
    target = pentagonal_tube(tube_length)
    chi_bound = 4
    if verify_chromatic and obstruction.number_of_vertices() <= 36:
        chi_bound = chromatic_number(obstruction, upper_bound=6)
    certificate = certify_coloring_lower_bound(
        obstruction,
        target,
        rounds=rounds,
        colors=3,
        obstruction_chromatic_lower_bound=chi_bound,
    )
    return KleinBottleLowerBound(certificate, obstruction, target)


def bipartite_grid_lower_bound(
    k: int, rounds: int, verify_chromatic: bool = True
) -> KleinBottleLowerBound:
    """Theorem 2.6 instance: ``G_{2k+1, 2k+1}`` vs the planar rectangular grid.

    Rules out ``rounds``-round 3-coloring of planar bipartite graphs
    (the planar grid is 2-colorable, the Klein-bottle grid is 4-chromatic).
    """
    if rounds + 1 >= k:
        raise LowerBoundError(
            "Theorem 2.6 needs the probed radius (rounds + 1) to stay below k: "
            f"got rounds={rounds}, k={k}"
        )
    size = 2 * k + 1
    obstruction = klein_bottle_grid(size, size)
    margin = 2 * (rounds + 2)
    target = planar_grid_patch(size + margin, size + margin)
    chi_bound = 4
    if verify_chromatic and obstruction.number_of_vertices() <= 36:
        chi_bound = chromatic_number(obstruction, upper_bound=6)
    certificate = certify_coloring_lower_bound(
        obstruction,
        target,
        rounds=rounds,
        colors=3,
        obstruction_chromatic_lower_bound=chi_bound,
    )
    return KleinBottleLowerBound(certificate, obstruction, target)
