"""Lower-bound machinery: Observation 2.4 certificates and the paper's obstructions."""

from repro.lowerbounds.fisk import (
    FiskLowerBound,
    cycle_power_chromatic_lower_bound,
    cycle_power_independence_number,
    planar_four_coloring_lower_bound,
)
from repro.lowerbounds.indistinguishability import (
    LowerBoundCertificate,
    balls_embed,
    certify_coloring_lower_bound,
)
from repro.lowerbounds.klein_bottle import (
    KleinBottleLowerBound,
    bipartite_grid_lower_bound,
    klein_grid_chromatic_number,
    triangle_free_lower_bound,
)
from repro.lowerbounds.linial_paths import (
    PathLowerBound,
    log_star_floor,
    path_two_coloring_lower_bound,
)

__all__ = [
    "FiskLowerBound",
    "cycle_power_chromatic_lower_bound",
    "cycle_power_independence_number",
    "planar_four_coloring_lower_bound",
    "LowerBoundCertificate",
    "balls_embed",
    "certify_coloring_lower_bound",
    "KleinBottleLowerBound",
    "bipartite_grid_lower_bound",
    "klein_grid_chromatic_number",
    "triangle_free_lower_bound",
    "PathLowerBound",
    "log_star_floor",
    "path_two_coloring_lower_bound",
]
