"""Theorem 1.5: no o(n)-round distributed algorithm 4-colors planar graphs.

The paper's witness is a Fisk triangulation of the torus (a triangulation
with exactly two adjacent odd-degree vertices, hence not 4-colorable by
Fisk's parity theorem) whose balls of radius ``(n-1)/6 - 3`` are planar.

Our reproduction substitutes the cube of a cycle ``C_n(1,2,3)`` (see
:func:`repro.graphs.generators.surfaces.fisk_like_triangulation`), also a
6-regular toroidal triangulation, which offers the same two properties with
elementary certificates:

* **not 4-colorable**: its independence number is ``floor(n/4)`` (an
  independent set picks vertices pairwise more than 3 apart along the
  cycle), so ``chi >= ceil(n / floor(n/4)) = 5`` whenever ``n`` is not a
  multiple of 4 — :func:`cycle_power_independence_number` verifies the
  independence number exactly on small instances and the bound is also
  confirmed by exact chromatic computation for small ``n``;
* **locally planar**: every ball of radius ``r < (n-7)/6`` induces a cube
  of a path, which is a planar 3-tree; the planar target of the
  Observation 2.4 certificate is simply a long enough path cube.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.coloring.exact import chromatic_number
from repro.errors import LowerBoundError
from repro.graphs.generators.surfaces import fisk_like_triangulation, path_power
from repro.graphs.graph import Graph
from repro.lowerbounds.indistinguishability import (
    LowerBoundCertificate,
    certify_coloring_lower_bound,
)

__all__ = [
    "FiskLowerBound",
    "planar_four_coloring_lower_bound",
    "cycle_power_chromatic_lower_bound",
    "cycle_power_independence_number",
]


def cycle_power_independence_number(n: int, power: int = 3) -> int:
    """The independence number of ``C_n(1..power)``: ``floor(n / (power+1))``.

    An independent set must leave at least ``power`` vertices between
    consecutive picks along the cycle, so at most ``floor(n/(power+1))``
    vertices fit, and picking every ``(power+1)``-th vertex achieves it.
    """
    return n // (power + 1)


def cycle_power_chromatic_lower_bound(n: int, power: int = 3) -> int:
    """``chi >= ceil(n / alpha)`` for the cycle power (5 when ``4 does not divide n``)."""
    alpha = cycle_power_independence_number(n, power)
    return math.ceil(n / alpha)


@dataclass
class FiskLowerBound:
    """An Observation 2.4 certificate for Theorem 1.5 plus its graphs."""

    certificate: LowerBoundCertificate
    obstruction: Graph
    target: Graph


def planar_four_coloring_lower_bound(
    n: int, rounds: int, verify_chromatic_exactly: bool = False
) -> FiskLowerBound:
    """Build and verify the Theorem 1.5 certificate at size ``n``.

    Rules out 4-coloring every planar graph in ``rounds`` rounds, using the
    non-4-colorable locally-planar toroidal triangulation on ``n`` vertices
    (``n >= 13``, ``n`` not divisible by 4).  Raises when ``rounds`` is too
    large relative to ``n`` for the balls to remain planar/path-like.
    """
    if n % 4 == 0 or n < 13:
        raise LowerBoundError(
            "the obstruction needs n >= 13 with n not divisible by 4 "
            "(otherwise C_n(1,2,3) is 4-colorable)"
        )
    obstruction = fisk_like_triangulation(n)
    chi_bound = cycle_power_chromatic_lower_bound(n)
    if chi_bound <= 4:
        raise LowerBoundError("n must not be divisible by 4")
    if verify_chromatic_exactly:
        exact = chromatic_number(obstruction, upper_bound=7)
        if exact != chi_bound and exact < 5:
            raise LowerBoundError(
                f"exact chromatic number {exact} contradicts the bound {chi_bound}"
            )
        chi_bound = max(chi_bound, 5)
    # a ball of radius R in C_n(1,2,3) is a path cube (hence planar) exactly
    # when the two ends of the window {-3R, ..., 3R} stay more than 3 apart
    # along the cycle, i.e. when n >= 6R + 4
    if n < 6 * (rounds + 1) + 4:
        raise LowerBoundError(
            f"radius {rounds + 1} balls of C_{n}(1,2,3) wrap around the cycle; "
            "increase n or decrease rounds"
        )
    target = path_power(n + 6 * (rounds + 2), power=3)
    certificate = certify_coloring_lower_bound(
        obstruction,
        target,
        rounds=rounds,
        colors=4,
        obstruction_chromatic_lower_bound=chi_bound,
        sample_obstruction_vertices=[0],  # the circulant is vertex-transitive
    )
    return FiskLowerBound(certificate, obstruction, target)
