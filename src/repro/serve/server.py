"""The asyncio coloring service: JSONL over TCP, cache in front, batcher behind.

Request path of ``op=color``::

    readline -> decode -> validate -> ResultCache lookup ----------- hit -> respond
                                         | miss
                                         v
                              MicroBatcher.submit(key, JobSpec)
                          (single-flight; window-flushed into the
                           batch engine via execute_jobs)
                                         |
                                         v
                        cache.put(key, payload) -> respond

Every failure mode a client can trigger — malformed JSON, unknown ops,
bad digests, oversized uploads or request lines, even an injected
worker crash — is converted to a structured error response; the event
loop and (where framing allows) the connection survive.  See
``docs/serving.md`` for the full schema and :mod:`repro.serve.client`
for the matching client.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

from repro.serve.batching import MicroBatcher
from repro.serve.cache import ResultCache, result_key
from repro.serve.executor import ALGORITHMS, JobSpec
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ServeError,
    canonical_params,
    decode_line,
    encode_line,
    error_response,
)
from repro.serve.store import GraphStore

__all__ = ["ServeConfig", "ColoringService"]


@dataclass
class ServeConfig:
    """Tunables of one service instance (CLI flags map 1:1 onto these)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is printed/exposed
    workers: int = 1  # >1 fans batches over a process pool
    cache_max_bytes: int = 64 * 1024 * 1024
    batch_window_ms: float = 2.0
    max_batch: int = 32
    max_request_bytes: int = 32 * 1024 * 1024  # per JSONL frame
    max_upload_edges: int = 2_000_000
    preload_standard: bool = True
    #: admit the "crash" algorithm (tests only — never on by default)
    fault_injection: bool = False
    metadata: dict[str, Any] = field(default_factory=dict)


class ColoringService:
    """One running server: a GraphStore, a ResultCache and a MicroBatcher."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.store = GraphStore(
            use_pool=self.config.workers > 1,
            max_upload_edges=self.config.max_upload_edges,
            preload_standard=self.config.preload_standard,
        )
        self.cache = ResultCache(max_bytes=self.config.cache_max_bytes)
        self.batcher = MicroBatcher(
            workers=self.config.workers,
            window_seconds=self.config.batch_window_ms / 1000.0,
            max_batch=self.config.max_batch,
        )
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self.requests = 0
        self.errors = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the (host, port) actually bound."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_request_bytes,
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def serve_forever(self) -> None:
        """Run until :meth:`shutdown` (or the shutdown op) is called."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._shutdown.wait()
        await self.batcher.drain()
        self.store.close()

    async def shutdown(self) -> None:
        self._shutdown.set()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._shutdown.is_set():
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # frame longer than max_request_bytes: the stream is no
                    # longer line-synchronized, so answer once and hang up
                    self.errors += 1
                    writer.write(
                        encode_line(
                            error_response(
                                None,
                                "too-large",
                                "request line exceeds "
                                f"{self.config.max_request_bytes} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break  # client closed
                if not line.strip():
                    continue
                response = await self._handle_request(line)
                writer.write(encode_line(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-write; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutting down while this connection was idle
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _handle_request(self, line: bytes) -> dict[str, Any]:
        self.requests += 1
        request_id: Any = None
        try:
            request = decode_line(line)
            request_id = request.get("id")
            op = request.get("op")
            if not isinstance(op, str):
                raise ServeError("bad-request", "request must carry a string 'op'")
            handler = self._OPS.get(op)
            if handler is None:
                raise ServeError(
                    "unknown-op", f"unknown op {op!r}; known: {sorted(self._OPS)}"
                )
            payload = await handler(self, request)
        except ServeError as exc:
            self.errors += 1
            return error_response(request_id, exc.code, exc.message)
        except Exception as exc:  # noqa: BLE001 - the loop must survive anything
            self.errors += 1
            return error_response(
                request_id, "internal", f"{type(exc).__name__}: {exc}"
            )
        response: dict[str, Any] = {"ok": True, "protocol": PROTOCOL_VERSION, **payload}
        if request_id is not None:
            response["id"] = request_id
        return response

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    async def _op_ping(self, request: dict[str, Any]) -> dict[str, Any]:
        return {"pong": True, "algorithms": sorted(self._admitted_algorithms())}

    async def _op_instances(self, request: dict[str, Any]) -> dict[str, Any]:
        return {"instances": self.store.instances()}

    async def _op_upload(self, request: dict[str, Any]) -> dict[str, Any]:
        return self.store.upload(
            request.get("n"),
            request.get("edges"),
            name=request.get("name", ""),
        )

    def _admitted_algorithms(self) -> list[str]:
        names = [a for a in ALGORITHMS if a != "crash"]
        if self.config.fault_injection:
            names.append("crash")
        return names

    async def _op_color(self, request: dict[str, Any]) -> dict[str, Any]:
        algorithm = request.get("algorithm", "greedy")
        if algorithm not in self._admitted_algorithms():
            raise ServeError(
                "unknown-algorithm",
                f"unknown algorithm {algorithm!r}; known: "
                f"{sorted(self._admitted_algorithms())}",
            )
        digest = request.get("graph_digest")
        params = canonical_params(request.get("params"))
        self.store.resolve(digest)  # raises unknown-digest before any queueing
        key = result_key(digest, algorithm, params)
        payload = self.cache.get(key)
        cached = payload is not None
        if payload is None:
            spec = JobSpec(self.store.handle(digest), algorithm, params)
            payload = await self.batcher.submit(key, spec)
            error = payload.get("error")
            if error is not None:
                code = error.get("code", "compute-failed")
                raise ServeError(
                    code if code in ("clique-found", "unknown-algorithm", "bad-request")
                    else "compute-failed",
                    error.get("message", "compute failed"),
                )
            self.cache.put(key, payload)
        response = dict(payload)
        if not request.get("return_coloring", True):
            response.pop("coloring", None)
        response["cached"] = cached
        return response

    async def _op_stats(self, request: dict[str, Any]) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "cache": self.cache.stats(),
            "batching": self.batcher.stats(),
            "graphs": len(self.store.instances()),
            "workers": self.config.workers,
        }

    async def _op_shutdown(self, request: dict[str, Any]) -> dict[str, Any]:
        # respond first, then trip the event: the caller gets confirmation
        asyncio.get_running_loop().call_soon(self._shutdown.set)
        return {"stopping": True}

    _OPS = {
        "ping": _op_ping,
        "instances": _op_instances,
        "upload": _op_upload,
        "color": _op_color,
        "stats": _op_stats,
        "shutdown": _op_shutdown,
    }
