"""Micro-batching: coalesce concurrent requests onto the batch engine.

Two cooperating mechanisms, both keyed by the result-cache key
(digest + algorithm + canonical params):

* **single-flight coalescing** — concurrent requests for the *same* key
  share one future and therefore one computation.  This is what makes
  the cache-consistency property trivially true under interleaving:
  identical requests racing a miss all receive the same payload object,
  so their ``coloring_digest``\\ s are bit-identical by construction.
* **window batching** — distinct keys arriving within
  ``window_seconds`` (or until ``max_batch`` accumulate) are flushed as
  one list into :func:`repro.serve.executor.execute_jobs`, which fans
  them across the process pool in a single
  :meth:`~repro.analysis.runner.ExperimentRunner.run_batch` call instead
  of per-request round trips.

The batcher lives on the event loop; only the (blocking) execution
itself is pushed to a thread via ``run_in_executor``, so the loop keeps
accepting connections while a batch computes.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

from repro.serve.executor import JobSpec, execute_jobs

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Coalescing, windowed dispatcher of compute jobs."""

    def __init__(
        self,
        *,
        workers: int = 1,
        window_seconds: float = 0.002,
        max_batch: int = 32,
        execute: Callable[..., list[dict[str, Any]]] | None = None,
    ):
        self.workers = max(1, int(workers))
        self.window_seconds = max(0.0, float(window_seconds))
        self.max_batch = max(1, int(max_batch))
        self._execute = execute if execute is not None else execute_jobs
        #: in-flight single-flight futures by cache key
        self._pending: dict[str, asyncio.Future] = {}
        #: keys queued for the next flush, in arrival order
        self._queue: list[tuple[str, JobSpec]] = []
        self._flush_handle: asyncio.TimerHandle | None = None
        #: strong refs to in-flight batch tasks (the loop only keeps weak ones)
        self._tasks: set[asyncio.Task] = set()
        # stats
        self.batches = 0
        self.batched_jobs = 0
        self.coalesced = 0
        self.max_batch_size = 0

    async def submit(self, key: str, spec: JobSpec) -> dict[str, Any]:
        """The payload for ``key``, computing at most once per in-flight key.

        Shielded: one client cancelling (disconnecting) must not cancel
        the computation out from under coalesced peers.
        """
        future = self._pending.get(key)
        if future is None:
            future = asyncio.get_running_loop().create_future()
            self._pending[key] = future
            self._queue.append((key, spec))
            if len(self._queue) >= self.max_batch:
                self._flush()
            elif self._flush_handle is None:
                self._flush_handle = asyncio.get_running_loop().call_later(
                    self.window_seconds, self._flush
                )
        else:
            self.coalesced += 1
        return await asyncio.shield(future)

    def _flush(self) -> None:
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        if not self._queue:
            return
        batch, self._queue = self._queue, []
        self.batches += 1
        self.batched_jobs += len(batch)
        self.max_batch_size = max(self.max_batch_size, len(batch))
        task = asyncio.get_running_loop().create_task(self._run(batch))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _fail_batch(self, batch: list[tuple[str, JobSpec]], exc: Exception) -> None:
        """Reject every still-unresolved waiter of a failed batch.

        Every key of the batch is also evicted from ``_pending`` so the
        next request retries instead of awaiting a dead future.
        """
        for key, _spec in batch:
            future = self._pending.pop(key, None)
            if future is not None and not future.done():
                future.set_exception(exc)

    async def _run(self, batch: list[tuple[str, JobSpec]]) -> None:
        loop = asyncio.get_running_loop()
        specs = [spec for _key, spec in batch]
        try:
            # materialize eagerly: a lazy iterable from ``execute`` must
            # raise here, inside the guard, not while distributing below
            payloads = list(
                await loop.run_in_executor(
                    None, lambda: self._execute(specs, workers=self.workers)
                )
            )
            if len(payloads) != len(batch):
                raise RuntimeError(
                    f"executor returned {len(payloads)} payload(s) "
                    f"for a batch of {len(batch)}"
                )
        except Exception as exc:  # noqa: BLE001 - executor must not sink futures
            self._fail_batch(batch, exc)
            return
        for (key, _spec), payload in zip(batch, payloads):
            future = self._pending.pop(key, None)
            if future is not None and not future.done():
                future.set_result(payload)

    async def drain(self) -> None:
        """Flush and wait for every in-flight job (shutdown path)."""
        self._flush()
        pending = [f for f in self._pending.values() if not f.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    def stats(self) -> dict[str, Any]:
        return {
            "batches": self.batches,
            "batched_jobs": self.batched_jobs,
            "coalesced": self.coalesced,
            "max_batch_size": self.max_batch_size,
            "in_flight": len(self._pending),
            "window_seconds": self.window_seconds,
            "max_batch": self.max_batch,
            "workers": self.workers,
        }
