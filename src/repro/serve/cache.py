"""Digest-keyed LRU result cache with a byte cap.

Mirrors the corpus npz cache semantics (:mod:`repro.corpus.instances`):
entries are keyed by content digest, sized in bytes, and evicted
least-recently-used once the configured budget is exceeded.  Here the
content is a finished coloring *response payload* rather than a graph,
and the key also folds in the algorithm and its canonical parameters —
the same triple the micro-batcher coalesces on, so a cache hit and a
coalesced in-flight join return byte-identical results.

The cache is synchronous and unlocked by design: the server mutates it
only from the event-loop thread, so no request ever observes a
half-updated entry.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Any

from repro.serve.protocol import params_key

__all__ = ["ResultCache", "result_key"]


def result_key(digest: str, algorithm: str, params: dict[str, Any]) -> str:
    """The cache/coalescing key of one coloring request.

    ``params`` must already be canonical (:func:`~repro.serve.protocol.
    canonical_params`) so two spellings of the same request share a key.
    """
    return f"{digest}:{algorithm}:{params_key(params)}"


class ResultCache:
    """Byte-capped LRU of coloring response payloads.

    ``max_bytes <= 0`` disables caching entirely (every lookup misses);
    a single payload larger than the cap is simply not stored.
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024):
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[str, tuple[dict[str, Any], int]] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        return self._bytes

    def get(self, key: str) -> dict[str, Any] | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def put(self, key: str, payload: dict[str, Any]) -> None:
        size = len(json.dumps(payload, sort_keys=True, separators=(",", ":")))
        if size > self.max_bytes:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old[1]
        self._entries[key] = (payload, size)
        self._bytes += size
        while self._bytes > self.max_bytes and len(self._entries) > 1:
            _evicted_key, (_payload, evicted_size) = self._entries.popitem(last=False)
            self._bytes -= evicted_size
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0

    def stats(self) -> dict[str, Any]:
        lookups = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "bytes": self._bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }
