"""Compute jobs of the coloring service: algorithms + oracle verdicts.

One request becomes one :func:`compute_job` call — a module-level,
picklable function taking a :class:`~repro.analysis.shared.
SharedGraphHandle` instead of a graph, so jobs travel to pool workers as
a few dozen bytes and the CSR arrays move through shared memory
(:mod:`repro.analysis.shared`).  Every job *verifies its own output*
before returning: the response carries
:class:`~repro.verify.coloring.ProperColoringOracle` and
:class:`~repro.verify.coloring.PaletteBudgetOracle` verdicts plus the
order-independent :func:`~repro.verify.parity.coloring_digest`, so a
client (and the e2e suite) can gate on legality without recomputing
anything.

:func:`execute_jobs` is the bridge the micro-batcher calls from an
executor thread.  It partitions on handle kind — ``"local"`` handles
(non-identity-labelled graphs, or a server running without a pool) only
resolve in this process and run inline; shareable handles fan out
through :meth:`~repro.analysis.runner.ExperimentRunner.run_batch`.  A
pool that dies mid-batch (a worker crash) degrades to an inline retry
of that batch; a job that fails even inline yields a structured
``compute-failed`` payload, never an exception and never a hang.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any

from repro.analysis.runner import BatchTask, ExperimentRunner
from repro.analysis.shared import SharedGraphHandle, attach
from repro.serve.protocol import ServeError
from repro.verify.coloring import PaletteBudgetOracle, ProperColoringOracle
from repro.verify.parity import coloring_digest

__all__ = ["ALGORITHMS", "compute_job", "execute_jobs", "JobSpec"]

#: ``algorithm`` request values -> (runner, description).  ``crash`` is the
#: fault-injection hook; the server only admits it with --fault-injection.
ALGORITHMS: dict[str, str] = {
    "greedy": "degeneracy-ordered greedy, budget = degeneracy + 1",
    "delta-plus-one": "batched Linial + color reduction, budget = maxdeg + 1",
    "theorem13": "Theorem 1.3 flat pipeline, budget = d (param d, default degeneracy)",
    "crash": "fault injection: dies mid-request (requires --fault-injection)",
}


def _run_greedy(graph, params: dict[str, Any]) -> tuple[dict, int, int]:
    from repro.coloring.greedy import degeneracy_greedy_coloring

    coloring = degeneracy_greedy_coloring(graph)
    return coloring, graph.degeneracy() + 1, 0


def _run_delta_plus_one(graph, params: dict[str, Any]) -> tuple[dict, int, int]:
    from repro.distributed.linial import delta_plus_one_coloring

    result = delta_plus_one_coloring(graph, batched=True)
    return result.coloring, graph.max_degree() + 1, result.rounds


def _run_theorem13(graph, params: dict[str, Any]) -> tuple[dict, int, int]:
    from repro.core.sparse_coloring import color_sparse_graph

    d = params.get("d")
    if d is None:
        # the theorem needs d >= 3; degeneracy + 1 always admits a coloring
        d = max(graph.degeneracy() + 1, 3)
    if not isinstance(d, int) or isinstance(d, bool) or d < 1:
        raise ServeError("bad-request", f"param d must be a positive integer, got {d!r}")
    try:
        result = color_sparse_graph(graph, d=d, backend="flat")
    except ValueError as exc:  # e.g. the theorem's d >= 3 precondition
        raise ServeError("bad-request", str(exc)) from None
    if result.coloring is None:
        raise ServeError(
            "clique-found",
            f"graph contains a {d + 1}-clique {sorted(map(repr, result.clique))}; "
            f"no {d}-coloring exists — retry with a larger d",
        )
    return result.coloring, d, result.rounds


def _run_crash(graph, params: dict[str, Any]) -> tuple[dict, int, int]:
    """Fault injection: kill the worker (pool) or raise (inline retry path).

    ``os._exit`` in a *pool worker* simulates a segfault/OOM — the parent
    sees ``BrokenExecutor`` and must degrade, which is exactly what the
    fault-path tests assert.  In the serving process itself (inline mode
    or the degraded retry) it raises instead: the service must never take
    itself down for one request.
    """
    mode = params.get("mode", "exit")
    if mode == "exit" and multiprocessing.parent_process() is not None:
        os._exit(1)
    raise RuntimeError("injected crash")


_RUNNERS = {
    "greedy": _run_greedy,
    "delta-plus-one": _run_delta_plus_one,
    "theorem13": _run_theorem13,
    "crash": _run_crash,
}


def compute_job(
    handle: SharedGraphHandle,
    algorithm: str,
    params: dict[str, Any],
    seed: int | None = None,
) -> dict[str, Any]:
    """Color the graph behind ``handle`` and self-verify; returns the payload.

    Domain failures (unknown algorithm, a clique on the Theorem 1.3 path,
    bad params) come back as ``{"error": {...}}`` payloads — only genuine
    crashes escape as exceptions, so the pool transport layer can tell
    "this request is wrong" from "this worker died".  ``seed`` is accepted
    for :class:`BatchTask` compatibility; the served algorithms are
    deterministic.
    """
    del seed
    start = time.perf_counter()
    runner = _RUNNERS.get(algorithm)
    if runner is None:
        return _error_payload(
            "unknown-algorithm",
            f"unknown algorithm {algorithm!r}; known: {sorted(_RUNNERS)}",
        )
    graph = attach(handle)
    try:
        coloring, budget, rounds = runner(graph, params)
    except ServeError as exc:
        return _error_payload(exc.code, exc.message)
    proper = ProperColoringOracle().check(graph=graph, coloring=coloring)
    palette = PaletteBudgetOracle().check(coloring=coloring, budget=budget)
    colors = len(set(coloring.values())) if coloring else 0
    return {
        "graph_digest": handle.digest,
        "algorithm": algorithm,
        "params": params,
        "n": len(graph),
        "m": graph.number_of_edges(),
        "colors": colors,
        "budget": budget,
        "rounds": rounds,
        "coloring_digest": coloring_digest(coloring),
        "valid": proper.ok and palette.ok,
        "verdicts": [_verdict_dict(v) for v in (proper, palette)],
        # vertices serialized by repr: labels may be tuples (torus/grid)
        "coloring": sorted([repr(v), c] for v, c in coloring.items()),
        "compute_seconds": time.perf_counter() - start,
    }


def _verdict_dict(verdict) -> dict[str, Any]:
    return {
        "oracle": verdict.oracle,
        "ok": verdict.ok,
        "checked": verdict.checked,
        "failures": verdict.failures,
        "diagnostics": list(verdict.diagnostics),
    }


def _error_payload(code: str, message: str) -> dict[str, Any]:
    return {"error": {"code": code, "message": message}}


class JobSpec:
    """One queued compute: handle + algorithm + canonical params."""

    __slots__ = ("handle", "algorithm", "params")

    def __init__(self, handle: SharedGraphHandle, algorithm: str, params: dict[str, Any]):
        self.handle = handle
        self.algorithm = algorithm
        self.params = params


def _run_inline(spec: JobSpec) -> dict[str, Any]:
    try:
        return compute_job(spec.handle, spec.algorithm, spec.params)
    except Exception as exc:  # noqa: BLE001 - degraded path must not raise
        return _error_payload(
            "compute-failed", f"{type(exc).__name__}: {exc}"
        )


def execute_jobs(specs: list[JobSpec], *, workers: int = 1) -> list[dict[str, Any]]:
    """Run a batch of jobs, preserving order; every slot gets a payload.

    ``workers > 1`` fans shareable handles out over the batch engine's
    process pool; ``"local"`` handles cannot cross a process boundary and
    always run inline in this process.  Pool death degrades the whole
    batch to inline retries (each individually guarded), so the caller
    always receives ``len(specs)`` payloads — some possibly
    ``compute-failed`` — and never an exception.
    """
    results: list[dict[str, Any] | None] = [None] * len(specs)
    pooled: list[tuple[int, JobSpec]] = []
    for index, spec in enumerate(specs):
        if workers > 1 and spec.handle.kind != "local":
            pooled.append((index, spec))
        else:
            results[index] = _run_inline(spec)
    if pooled:
        runner = ExperimentRunner("serve-batch")
        tasks = [
            BatchTask(
                instance=spec.handle.digest,
                algorithm=spec.algorithm,
                fn=compute_job,
                args=(spec.handle, spec.algorithm, spec.params),
                seed_arg=None,
            )
            for _index, spec in pooled
        ]
        try:
            rows = runner.run_batch(tasks, max_workers=workers, parallel=True)
            for (index, _spec), row in zip(pooled, rows):
                results[index] = row.metrics
        except Exception:  # noqa: BLE001 - pool died mid-batch: degrade inline
            for index, spec in pooled:
                results[index] = _run_inline(spec)
    return [payload if payload is not None else _error_payload("internal", "job lost")
            for payload in results]
