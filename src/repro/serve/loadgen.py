"""The load generator: replay mixed workloads against a live service.

Drives N concurrent asyncio clients against a :class:`~repro.serve.
server.ColoringService` (booted in-process on an ephemeral port by
default, or pointed at an external ``host:port``) and measures what the
ROADMAP's "millions of users" axis asks for: p50/p95/p99 request
latency, throughput, cache hit rate — plus the correctness facts the
oracle gate needs (every response ``valid``, every repeated key
digest-consistent).

Three workload shapes, all deterministic per seed:

* ``small-hot`` — many small planar/sparse queries over the standard
  corpus set, hot-key skewed: the cache-friendly regime.
* ``mixed`` — the same small-query stream with a few huge sparse
  requests interleaved (one streaming k-degenerate graph of ``huge_n``
  vertices, uploaded through the real upload path): head-of-line
  pressure on the batcher.
* ``replay`` — one cold pass and one identical warm pass: isolates the
  cache (the warm pass should be nearly all hits).

:func:`run_workload` is the synchronous entry point the ``serve``
scenario task calls; it returns one metrics mapping per scenario row.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any

from repro.serve.client import ServeClient, ServeResponseError
from repro.serve.protocol import params_key
from repro.serve.server import ColoringService, ServeConfig

__all__ = ["WORKLOADS", "run_workload", "run_load"]

WORKLOADS = ("small-hot", "mixed", "replay")

#: the small-query vocabulary: standard instances with non-trivial edges
_SMALL_INSTANCES = (
    "planar-tri-60-s3",
    "grid-6x10",
    "bounded-mad-64-k2-s5",
    "forest-union-80-a2-s1",
    "path-33",
)
#: (algorithm, params) mix for small queries, hot keys first (skewed draw)
_SMALL_REQUESTS = (
    ("greedy", {}),
    ("greedy", {}),
    ("delta-plus-one", {}),
    ("theorem13", {}),
)


def _standard_digests(service: ColoringService) -> dict[str, str]:
    by_name = {row["instance"]: row["graph_digest"] for row in service.store.instances()}
    return {name: by_name[name] for name in _SMALL_INSTANCES}


def _small_request(rng: random.Random, digests: dict[str, str]) -> dict[str, Any]:
    # skew toward the first instances/algorithms: a hot-key distribution
    name = _SMALL_INSTANCES[min(rng.randrange(len(_SMALL_INSTANCES)),
                                rng.randrange(len(_SMALL_INSTANCES)))]
    algorithm, params = _SMALL_REQUESTS[min(rng.randrange(len(_SMALL_REQUESTS)),
                                            rng.randrange(len(_SMALL_REQUESTS)))]
    return {
        "op": "color",
        "graph_digest": digests[name],
        "algorithm": algorithm,
        "params": params,
        "return_coloring": False,
    }


def _build_schedules(
    workload: str,
    clients: int,
    requests: int,
    digests: dict[str, str],
    huge_digest: str | None,
    rng: random.Random,
) -> list[list[dict[str, Any]]]:
    """Per-client request lists, ``requests`` total across all clients."""
    schedules: list[list[dict[str, Any]]] = [[] for _ in range(clients)]
    if workload == "replay":
        # one shared trace, issued cold by the first half of the clients and
        # replayed warm by the second half (same keys -> hits/coalescing)
        trace = [_small_request(rng, digests) for _ in range(max(1, requests // clients))]
        for index in range(clients):
            schedules[index] = list(trace)
        return schedules
    for index in range(requests):
        request = _small_request(rng, digests)
        if workload == "mixed" and huge_digest is not None and index % 16 == 7:
            request = {
                "op": "color",
                "graph_digest": huge_digest,
                "algorithm": "greedy",
                "params": {},
                "return_coloring": False,
            }
        schedules[index % clients].append(request)
    return schedules


async def _client_body(
    host: str,
    port: int,
    schedule: list[dict[str, Any]],
    latencies: list[float],
    outcomes: dict[str, Any],
) -> None:
    async with ServeClient(host, port) as client:
        for request in schedule:
            start = time.perf_counter()
            try:
                response = await client.request(request)
            except (ServeResponseError, ConnectionError) as exc:
                outcomes["errors"] += 1
                outcomes["error_examples"].append(str(exc)[:200])
                continue
            latencies.append(time.perf_counter() - start)
            if not response.get("valid", False):
                outcomes["invalid"] += 1
            if response.get("cached"):
                outcomes["hits_observed"] += 1
            key = (
                f"{response.get('graph_digest')}:{response.get('algorithm')}:"
                f"{params_key(response.get('params') or {})}"
            )
            seen = outcomes["digests"].setdefault(key, response.get("coloring_digest"))
            if seen != response.get("coloring_digest"):
                outcomes["digest_mismatches"] += 1


def _percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolation percentile (numpy's default convention).

    ``q`` is a fraction in [0, 1].  An empty sample reports 0.0 (smoke
    runs can legitimately record no latencies) and a single sample is its
    own percentile for every ``q`` — neither may raise.
    """
    count = len(sorted_values)
    if count == 0:
        return 0.0
    if count == 1:
        return float(sorted_values[0])
    position = min(max(q, 0.0), 1.0) * (count - 1)
    lower = int(position)
    upper = min(lower + 1, count - 1)
    fraction = position - lower
    return float(
        sorted_values[lower] * (1.0 - fraction) + sorted_values[upper] * fraction
    )


async def run_load(
    *,
    workload: str,
    clients: int,
    requests: int,
    huge_n: int,
    seed: int,
    config: ServeConfig | None = None,
) -> dict[str, Any]:
    """Boot an in-process service, replay the workload, return the metrics."""
    if workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}; known: {WORKLOADS}")
    service = ColoringService(config or ServeConfig())
    host, port = await service.start()
    server_task = asyncio.ensure_future(service.serve_forever())
    try:
        rng = random.Random(seed)
        digests = _standard_digests(service)
        huge_digest = None
        if workload == "mixed":
            # the huge sparse instance travels through the real upload path
            from repro.graphs.generators.streaming import stream_degenerate_edges

            edges = stream_degenerate_edges(huge_n, 2, seed=seed % (2**31))
            async with ServeClient(host, port) as uploader:
                summary = await uploader.upload(
                    huge_n,
                    [[int(u), int(v)] for u, v in edges],
                    name=f"huge-sparse-{huge_n}",
                )
            huge_digest = summary["graph_digest"]
        schedules = _build_schedules(
            workload, clients, requests, digests, huge_digest, rng
        )
        latencies: list[float] = []
        outcomes: dict[str, Any] = {
            "errors": 0,
            "invalid": 0,
            "hits_observed": 0,
            "digest_mismatches": 0,
            "digests": {},
            "error_examples": [],
        }
        wall_start = time.perf_counter()
        await asyncio.gather(
            *(
                _client_body(host, port, schedule, latencies, outcomes)
                for schedule in schedules
                if schedule
            )
        )
        wall = time.perf_counter() - wall_start
        async with ServeClient(host, port) as probe:
            stats = await probe.stats()
    finally:
        await service.shutdown()
        try:
            await asyncio.wait_for(server_task, timeout=10)
        except asyncio.TimeoutError:  # pragma: no cover - shutdown safety net
            server_task.cancel()
    latencies.sort()
    completed = len(latencies)
    return {
        "workload": workload,
        "clients": clients,
        "requests": completed,
        "errors": outcomes["errors"],
        "invalid": outcomes["invalid"],
        "digest_mismatches": outcomes["digest_mismatches"],
        "valid": outcomes["invalid"] == 0 and completed > 0,
        "digest_consistent": outcomes["digest_mismatches"] == 0,
        "p50_ms": _percentile(latencies, 0.50) * 1000.0,
        "p95_ms": _percentile(latencies, 0.95) * 1000.0,
        "p99_ms": _percentile(latencies, 0.99) * 1000.0,
        "throughput_rps": (completed / wall) if wall > 0 else 0.0,
        "cache_hit_rate": stats["cache"]["hit_rate"],
        "cache_entries": stats["cache"]["entries"],
        "cache_bytes": stats["cache"]["bytes"],
        "coalesced": stats["batching"]["coalesced"],
        "batches": stats["batching"]["batches"],
        "max_batch_size": stats["batching"]["max_batch_size"],
        "huge_n": huge_n if workload == "mixed" else 0,
        "error_examples": outcomes["error_examples"][:3],
    }


def run_workload(
    workload: str,
    *,
    clients: int = 8,
    requests: int = 240,
    huge_n: int = 50_000,
    seed: int | None = None,
    cache_max_bytes: int = 64 * 1024 * 1024,
    batch_window_ms: float = 2.0,
    workers: int = 1,
) -> dict[str, Any]:
    """Synchronous wrapper: one workload replay on a fresh event loop."""
    config = ServeConfig(
        port=0,
        workers=workers,
        cache_max_bytes=cache_max_bytes,
        batch_window_ms=batch_window_ms,
        max_upload_edges=max(2_000_000, 4 * huge_n),
    )
    return asyncio.run(
        run_load(
            workload=workload,
            clients=clients,
            requests=requests,
            huge_n=huge_n,
            seed=0 if seed is None else seed,
            config=config,
        )
    )
