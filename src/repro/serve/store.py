"""The server's graph store: standard corpus instances plus client uploads.

Requests reference graphs by content digest (:func:`repro.corpus.
graph_digest`).  At boot the store materializes the
:data:`~repro.corpus.STANDARD_INSTANCES` set through the shared
:class:`~repro.corpus.InstanceCorpus` — a few milliseconds, and it gives
every client a stable digest vocabulary without uploading anything.
Uploaded edge lists become identity-labelled
:class:`~repro.graphs.frozen.FrozenGraph` objects, content-addressed the
same way; uploading a graph the server already knows is a no-op that
returns the existing digest.

Graphs are handed to the compute executor as
:class:`~repro.analysis.shared.SharedGraphHandle` objects: published
into shared memory when the server runs a worker pool, registered
same-process (:func:`repro.analysis.shared.local_handle`) otherwise —
either way the request path never pickles a CSR array.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from repro.analysis import shared
from repro.corpus import (
    STANDARD_INSTANCES,
    InstanceCorpus,
    InstanceSpec,
    default_corpus,
    graph_digest,
)
from repro.errors import GraphError
from repro.graphs.frozen import FrozenGraph, freeze
from repro.serve.protocol import ServeError

__all__ = ["GraphStore"]


class GraphStore:
    """Digest-addressed graphs: preloaded standard instances + upload LRU."""

    def __init__(
        self,
        *,
        corpus: InstanceCorpus | None = None,
        use_pool: bool = False,
        max_upload_edges: int = 2_000_000,
        max_uploads: int = 32,
        preload_standard: bool = True,
    ):
        self.corpus = corpus if corpus is not None else default_corpus()
        self.use_pool = use_pool
        self.max_upload_edges = int(max_upload_edges)
        self.max_uploads = int(max_uploads)
        #: digest -> (instance name, frozen graph)
        self._graphs: dict[str, tuple[str, FrozenGraph]] = {}
        #: upload insertion order for count-capped eviction
        self._uploads: OrderedDict[str, None] = OrderedDict()
        #: digests this store published (released on close)
        self._handles: dict[str, shared.SharedGraphHandle] = {}
        if preload_standard:
            for name, spec in STANDARD_INSTANCES.items():
                self._add_spec(name, spec)

    # ------------------------------------------------------------------
    def _add_spec(self, name: str, spec: InstanceSpec) -> str:
        frozen = self.corpus.frozen(spec)
        digest = graph_digest(frozen)
        self._graphs.setdefault(digest, (name, frozen))
        return digest

    def add_graph(self, graph, *, name: str = "") -> str:
        """Register an in-memory graph (tests and the loadgen use this)."""
        frozen = graph if isinstance(graph, FrozenGraph) else freeze(graph)
        digest = graph_digest(frozen)
        self._graphs.setdefault(digest, (name or frozen.name or digest, frozen))
        return digest

    def upload(self, n: Any, edges: Any, *, name: str = "") -> dict[str, Any]:
        """Validate and register an uploaded edge list; returns its summary.

        Caps are enforced *before* any array is built so an oversized
        upload costs the server a length check, not memory.  Malformed
        payloads raise :class:`ServeError` (``bad-request``/``too-large``)
        — the connection and the event loop survive.
        """
        if not isinstance(n, int) or isinstance(n, bool) or n < 0:
            raise ServeError("bad-request", f"n must be a nonnegative integer, got {n!r}")
        if not isinstance(edges, list):
            raise ServeError(
                "bad-request", f"edges must be a list of [u, v] pairs, got {type(edges).__name__}"
            )
        if n > 2 * self.max_upload_edges + 1:
            raise ServeError(
                "too-large",
                f"upload has n={n} vertices; cap is {2 * self.max_upload_edges + 1}",
            )
        if len(edges) > self.max_upload_edges:
            raise ServeError(
                "too-large",
                f"upload has {len(edges)} edges; cap is {self.max_upload_edges}",
            )
        for pair in edges:
            if (
                not isinstance(pair, (list, tuple))
                or len(pair) != 2
                or not all(isinstance(x, int) and not isinstance(x, bool) for x in pair)
            ):
                raise ServeError(
                    "bad-request", f"edge {pair!r} is not an [int, int] pair"
                )
        if not isinstance(name, str):
            raise ServeError("bad-request", "graph name must be a string")
        try:
            frozen = FrozenGraph.from_edge_array(n, edges, name=name or "upload")
        except GraphError as exc:
            raise ServeError("bad-request", f"invalid edge list: {exc}") from None
        digest = graph_digest(frozen)
        known = digest in self._graphs
        if not known:
            self._graphs[digest] = (name or f"upload-{digest}", frozen)
            self._uploads[digest] = None
            self._evict_uploads()
        return {
            "graph_digest": digest,
            "n": len(frozen),
            "m": frozen.number_of_edges(),
            "known": known,
        }

    def _evict_uploads(self) -> None:
        while len(self._uploads) > self.max_uploads:
            digest, _ = self._uploads.popitem(last=False)
            self._graphs.pop(digest, None)
            if self._handles.pop(digest, None) is not None:
                shared.release(digest)

    # ------------------------------------------------------------------
    def resolve(self, digest: Any) -> tuple[str, FrozenGraph]:
        """``(instance name, graph)`` for a digest; ``unknown-digest`` if absent."""
        if not isinstance(digest, str):
            raise ServeError(
                "bad-request", f"graph_digest must be a string, got {type(digest).__name__}"
            )
        entry = self._graphs.get(digest)
        if entry is None:
            raise ServeError(
                "unknown-digest",
                f"no graph with digest {digest!r} is loaded; upload it or use "
                "one of the standard instances (op=instances)",
            )
        return entry

    def handle(self, digest: str) -> shared.SharedGraphHandle:
        """The zero-copy executor handle for a known digest (published lazily)."""
        handle = self._handles.get(digest)
        if handle is None:
            _name, graph = self.resolve(digest)
            if self.use_pool:
                handle = shared.publish(graph, digest=digest)
            else:
                handle = shared.local_handle(graph, digest=digest)
            self._handles[digest] = handle
        return handle

    def instances(self) -> list[dict[str, Any]]:
        """The digest vocabulary: every loaded graph, standard set first."""
        rows = []
        for digest, (name, graph) in self._graphs.items():
            rows.append(
                {
                    "graph_digest": digest,
                    "instance": name,
                    "n": len(graph),
                    "m": graph.number_of_edges(),
                    "uploaded": digest in self._uploads,
                }
            )
        rows.sort(key=lambda r: (r["uploaded"], r["instance"]))
        return rows

    def close(self) -> None:
        """Release every publication this store created."""
        for digest in list(self._handles):
            self._handles.pop(digest, None)
            shared.release(digest)
