"""A minimal asyncio client for the coloring service.

Speaks the JSONL protocol of :mod:`repro.serve.protocol` over one TCP
connection.  Requests are serialized per connection with a lock
(responses come back in request order), so one client instance is safe
to share between coroutines — the load generator opens one per
simulated user instead.  :meth:`ServeClient.request` returns the raw
response dict; :class:`ServeResponseError` is raised for structured
``ok=false`` responses so callers can switch on the error code.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.serve.protocol import decode_line, encode_line

__all__ = ["ServeClient", "ServeResponseError"]


class ServeResponseError(Exception):
    """A structured ``ok=false`` response, code and message attached."""

    def __init__(self, code: str, message: str, response: dict[str, Any]):
        self.code = code
        self.response = response
        super().__init__(f"[{code}] {message}")


class ServeClient:
    """One JSONL connection to a running coloring service."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()

    async def connect(self) -> "ServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=64 * 1024 * 1024
        )
        return self

    async def aclose(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "ServeClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    async def request(self, payload: dict[str, Any], *, check: bool = True) -> dict[str, Any]:
        """Send one request line, await its response line.

        ``check=True`` (default) raises :class:`ServeResponseError` on
        ``ok=false``; pass ``check=False`` to inspect error responses
        directly (the fault-path tests do).
        """
        if self._reader is None or self._writer is None:
            await self.connect()
        async with self._lock:
            self._writer.write(encode_line(payload))
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = decode_line(line)
        if check and not response.get("ok"):
            error = response.get("error") or {}
            raise ServeResponseError(
                error.get("code", "internal"), error.get("message", ""), response
            )
        return response

    # ------------------------------------------------------------------
    # convenience wrappers
    # ------------------------------------------------------------------
    async def ping(self) -> dict[str, Any]:
        return await self.request({"op": "ping"})

    async def instances(self) -> list[dict[str, Any]]:
        return (await self.request({"op": "instances"}))["instances"]

    async def upload(self, n: int, edges: list, *, name: str = "") -> dict[str, Any]:
        return await self.request(
            {"op": "upload", "n": n, "edges": edges, "name": name}
        )

    async def color(
        self,
        graph_digest: str,
        algorithm: str = "greedy",
        *,
        params: dict[str, Any] | None = None,
        return_coloring: bool = True,
        check: bool = True,
    ) -> dict[str, Any]:
        return await self.request(
            {
                "op": "color",
                "graph_digest": graph_digest,
                "algorithm": algorithm,
                "params": params or {},
                "return_coloring": return_coloring,
            },
            check=check,
        )

    async def stats(self) -> dict[str, Any]:
        return await self.request({"op": "stats"})

    async def shutdown(self) -> dict[str, Any]:
        return await self.request({"op": "shutdown"})
