"""A minimal asyncio client for the coloring service.

Speaks the JSONL protocol of :mod:`repro.serve.protocol` over one TCP
connection.  Requests are serialized per connection with a lock
(responses come back in request order), so one client instance is safe
to share between coroutines — the load generator opens one per
simulated user instead.  :meth:`ServeClient.request` returns the raw
response dict; :class:`ServeResponseError` is raised for structured
``ok=false`` responses so callers can switch on the error code.

Transport faults are retried: every service op is idempotent (uploads
are content-addressed, colorings digest-keyed and cached), so a dropped
connection mid-request is safe to replay.  Both :meth:`ServeClient.
connect` and :meth:`ServeClient.request` make a bounded number of
attempts with exponential backoff and jitter between them; an optional
per-request ``deadline`` caps the whole exchange — backoff sleeps
included — and raises :class:`ServeDeadlineError` (a ``TimeoutError``)
when it expires.  Structured error responses are never retried: the
server answered, it just said no.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any

from repro.serve.protocol import decode_line, encode_line

__all__ = ["ServeClient", "ServeDeadlineError", "ServeResponseError"]


class ServeResponseError(Exception):
    """A structured ``ok=false`` response, code and message attached."""

    def __init__(self, code: str, message: str, response: dict[str, Any]):
        self.code = code
        self.response = response
        super().__init__(f"[{code}] {message}")


class ServeDeadlineError(TimeoutError):
    """The per-request deadline expired before a response arrived."""


#: transport-level failures worth a reconnect-and-replay
_RETRYABLE = (ConnectionError, asyncio.IncompleteReadError, OSError)


class ServeClient:
    """One JSONL connection to a running coloring service.

    ``retries`` is the number of *additional* attempts after the first
    (so ``retries=2`` means at most three exchanges per request);
    ``backoff_base`` doubles per retry up to ``backoff_max``, scaled by
    a jitter factor in [0.5, 1.5) drawn from ``jitter_seed`` (seed it in
    tests for reproducible schedules).  ``deadline`` is the per-request
    wall-clock budget in seconds (``None`` = wait forever).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        retries: int = 2,
        backoff_base: float = 0.05,
        backoff_max: float = 1.0,
        deadline: float | None = None,
        jitter_seed: int | None = None,
    ):
        self.host = host
        self.port = port
        self.retries = max(0, int(retries))
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.deadline = deadline
        self._rng = random.Random(jitter_seed)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    async def connect(self) -> "ServeClient":
        """Open the connection, retrying refused/failed dials with backoff."""
        deadline_at = self._deadline_at()
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            await self._backoff(attempt, deadline_at)
            try:
                self._reader, self._writer = await self._guarded(
                    asyncio.open_connection(
                        self.host, self.port, limit=64 * 1024 * 1024
                    ),
                    deadline_at,
                )
                return self
            except _RETRYABLE as exc:
                last_error = exc
        raise ConnectionError(
            f"could not connect to {self.host}:{self.port} after "
            f"{self.retries + 1} attempt(s): {last_error}"
        ) from last_error

    async def aclose(self) -> None:
        await self._drop()

    async def _drop(self) -> None:
        """Tear down the current connection (quietly) so the next attempt redials."""
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def __aenter__(self) -> "ServeClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # retry plumbing
    # ------------------------------------------------------------------
    def _deadline_at(self) -> float | None:
        if self.deadline is None:
            return None
        return asyncio.get_running_loop().time() + self.deadline

    def _remaining(self, deadline_at: float | None) -> float | None:
        if deadline_at is None:
            return None
        remaining = deadline_at - asyncio.get_running_loop().time()
        if remaining <= 0:
            raise ServeDeadlineError(
                f"deadline of {self.deadline}s expired before the request "
                "completed"
            )
        return remaining

    async def _backoff(self, attempt: int, deadline_at: float | None) -> None:
        """Sleep before retry ``attempt`` (no-op before the first try)."""
        if attempt == 0:
            return
        delay = min(self.backoff_max, self.backoff_base * 2 ** (attempt - 1))
        delay *= 0.5 + self._rng.random()  # equal jitter: [0.5x, 1.5x)
        remaining = self._remaining(deadline_at)
        if remaining is not None:
            delay = min(delay, remaining)
        if delay > 0:
            await asyncio.sleep(delay)

    async def _guarded(self, awaitable, deadline_at: float | None):
        """Run one awaitable under what is left of the deadline."""
        remaining = self._remaining(deadline_at)
        if remaining is None:
            return await awaitable
        try:
            return await asyncio.wait_for(awaitable, timeout=remaining)
        except (TimeoutError, asyncio.TimeoutError) as exc:
            raise ServeDeadlineError(
                f"deadline of {self.deadline}s expired before the request "
                "completed"
            ) from exc

    # ------------------------------------------------------------------
    async def request(self, payload: dict[str, Any], *, check: bool = True) -> dict[str, Any]:
        """Send one request line, await its response line.

        Transport failures (dropped connection, refused redial, truncated
        response) are retried up to ``retries`` times with backoff; the
        per-request ``deadline`` bounds the whole exchange including the
        sleeps.  ``check=True`` (default) raises
        :class:`ServeResponseError` on ``ok=false``; pass ``check=False``
        to inspect error responses directly (the fault-path tests do).
        """
        deadline_at = self._deadline_at()
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            await self._backoff(attempt, deadline_at)
            try:
                line = await self._guarded(self._exchange(payload), deadline_at)
            except _RETRYABLE as exc:
                last_error = exc
                await self._drop()
                continue
            break
        else:
            raise ConnectionError(
                f"request failed after {self.retries + 1} attempt(s): "
                f"{last_error}"
            ) from last_error
        response = decode_line(line)
        if check and not response.get("ok"):
            error = response.get("error") or {}
            raise ServeResponseError(
                error.get("code", "internal"), error.get("message", ""), response
            )
        return response

    async def _exchange(self, payload: dict[str, Any]) -> bytes:
        """One write/read round trip; raises ConnectionError on EOF."""
        if self._reader is None or self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port, limit=64 * 1024 * 1024
            )
        async with self._lock:
            self._writer.write(encode_line(payload))
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return line

    # ------------------------------------------------------------------
    # convenience wrappers
    # ------------------------------------------------------------------
    async def ping(self) -> dict[str, Any]:
        return await self.request({"op": "ping"})

    async def instances(self) -> list[dict[str, Any]]:
        return (await self.request({"op": "instances"}))["instances"]

    async def upload(self, n: int, edges: list, *, name: str = "") -> dict[str, Any]:
        return await self.request(
            {"op": "upload", "n": n, "edges": edges, "name": name}
        )

    async def color(
        self,
        graph_digest: str,
        algorithm: str = "greedy",
        *,
        params: dict[str, Any] | None = None,
        return_coloring: bool = True,
        check: bool = True,
    ) -> dict[str, Any]:
        return await self.request(
            {
                "op": "color",
                "graph_digest": graph_digest,
                "algorithm": algorithm,
                "params": params or {},
                "return_coloring": return_coloring,
            },
            check=check,
        )

    async def stats(self) -> dict[str, Any]:
        return await self.request({"op": "stats"})

    async def shutdown(self) -> dict[str, Any]:
        return await self.request({"op": "shutdown"})
