"""The wire protocol of the coloring service: newline-delimited JSON.

One request per line, one response line per request, over a plain TCP
stream — no HTTP dependency, so the service runs on the bare standard
library.  Every request is a JSON object with an ``op`` field and an
optional client-chosen ``id`` echoed back verbatim; every response is a
JSON object with ``ok`` plus either the op's payload or a structured
``error`` (:data:`ERROR_CODES`).  The full request/response schema is
documented in ``docs/serving.md``.

The module is deliberately transport-free: :func:`encode_line` /
:func:`decode_line` do the framing, :class:`ServeError` carries the
structured error codes, and both the server and the client build on the
same helpers so the two sides cannot drift.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "ServeError",
    "encode_line",
    "decode_line",
    "error_response",
    "canonical_params",
    "params_key",
]

#: bumped when the request/response shape changes incompatibly; responses
#: carry it so clients can detect a mismatched server
PROTOCOL_VERSION = 1

#: every structured error code a response may carry
ERROR_CODES = (
    "bad-request",      # malformed JSON, missing/ill-typed fields, bad edge lists
    "unknown-op",       # op not in the dispatch table
    "unknown-digest",   # graph_digest/instance refers to nothing the server knows
    "unknown-algorithm",  # algorithm not registered (or fault injection disabled)
    "too-large",        # upload or request line exceeds the configured caps
    "clique-found",     # Theorem 1.3 returned the clique side of the dichotomy
    "compute-failed",   # the job crashed (after the degraded inline retry)
    "internal",         # unexpected server-side exception (the loop survives)
)


class ServeError(Exception):
    """A structured, client-visible request failure.

    Raising one of these anywhere in request handling produces an
    ``ok=false`` response with the given code — never a dead connection
    and never a dead event loop.
    """

    def __init__(self, code: str, message: str):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown serve error code {code!r}")
        self.code = code
        self.message = message
        super().__init__(f"[{code}] {message}")


def encode_line(payload: dict[str, Any]) -> bytes:
    """One response/request as a compact JSON line (the frame unit)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one frame; raises :class:`ServeError` on malformed input."""
    try:
        payload = json.loads(line.decode("utf-8", errors="strict"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServeError("bad-request", f"request is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ServeError(
            "bad-request", f"request must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def error_response(request_id: Any, code: str, message: str) -> dict[str, Any]:
    """The structured-failure response shape (``ok`` false, ``error`` object)."""
    response: dict[str, Any] = {
        "ok": False,
        "protocol": PROTOCOL_VERSION,
        "error": {"code": code, "message": message},
    }
    if request_id is not None:
        response["id"] = request_id
    return response


def canonical_params(params: Any) -> dict[str, Any]:
    """Validate and canonicalize a request's algorithm parameters.

    Parameters must be a flat JSON object of scalars — that keeps the
    cache key (:func:`params_key`) total and order-independent, so the
    same request always lands on the same cache entry.
    """
    if params is None:
        return {}
    if not isinstance(params, dict):
        raise ServeError(
            "bad-request", f"params must be an object, got {type(params).__name__}"
        )
    out: dict[str, Any] = {}
    for key in sorted(params):
        value = params[key]
        if not isinstance(key, str):
            raise ServeError("bad-request", f"param name {key!r} is not a string")
        if value is not None and not isinstance(value, (str, int, float, bool)):
            raise ServeError(
                "bad-request",
                f"param {key!r} must be a JSON scalar, got {type(value).__name__}",
            )
        out[key] = value
    return out


def params_key(params: dict[str, Any]) -> str:
    """Canonical string form of validated params (cache-key component)."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))
