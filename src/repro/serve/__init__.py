"""Coloring-as-a-service: the always-on asyncio front of the pipeline.

``python -m repro serve`` boots a JSONL-over-TCP service whose requests
reference corpus instances by content digest (or upload edge lists) and
whose responses carry colorings *plus* the PR-5 oracle verdicts that
prove them legal.  The package layers, front to back:

* :mod:`~repro.serve.protocol` — the wire format and structured errors;
* :mod:`~repro.serve.server` / :mod:`~repro.serve.client` — the asyncio
  endpoints;
* :mod:`~repro.serve.cache` — digest-keyed, byte-capped LRU of finished
  responses;
* :mod:`~repro.serve.batching` — single-flight coalescing + window
  batching onto the batch engine;
* :mod:`~repro.serve.store` / :mod:`~repro.serve.executor` — digest
  resolution, zero-copy shared-memory handoff, self-verifying compute
  jobs;
* :mod:`~repro.serve.loadgen` — the mixed-workload load generator
  behind the ``serve`` scenario (``BENCH_serve.json``).

See ``docs/serving.md`` for the request/response schema.
"""

from repro.serve.client import ServeClient, ServeDeadlineError, ServeResponseError
from repro.serve.protocol import PROTOCOL_VERSION, ServeError
from repro.serve.server import ColoringService, ServeConfig

__all__ = [
    "PROTOCOL_VERSION",
    "ServeError",
    "ServeClient",
    "ServeDeadlineError",
    "ServeResponseError",
    "ColoringService",
    "ServeConfig",
]
