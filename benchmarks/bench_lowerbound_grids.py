"""E10 — Theorems 2.5/2.6 (Klein-bottle grid lower bounds): now the `lowerbound-grids` scenario.

All construction, certification and export live in :mod:`repro.scenarios`.
Run it with::

    PYTHONPATH=src python -m repro run lowerbound-grids
"""

from repro.cli import main
from repro.scenarios import run_scenario

SCENARIO = "lowerbound-grids"


def build_table(**overrides):
    """Run the scenario inline and return the populated ExperimentRunner."""
    return run_scenario(
        SCENARIO, overrides=overrides or None, workers=1, export=False
    ).runner


if __name__ == "__main__":
    raise SystemExit(main(["run", SCENARIO]))
