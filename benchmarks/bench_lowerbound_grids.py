"""E10 — Theorems 2.5 and 2.6: 3-coloring lower bounds from Klein-bottle grids.

Paper claims:

* (2.5) no o(n)-round algorithm 3-colors every triangle-free planar graph —
  witnessed by G_{5, 2l+1} (4-chromatic) whose balls look like balls of the
  planar pentagonal tube;
* (2.6) no o(sqrt(n))-round algorithm 3-colors every planar bipartite graph
  — witnessed by G_{2k+1, 2k+1} whose balls look like planar-grid balls
  (the grid itself is 2-colorable!).

The benchmark certifies both families at growing sizes; the certified round
bound grows linearly in l (i.e. ~n) for the first family and linearly in k
(i.e. ~sqrt(n)) for the second.
"""

from repro.analysis import ExperimentRunner
from repro.lowerbounds import bipartite_grid_lower_bound, triangle_free_lower_bound


def build_table() -> ExperimentRunner:
    runner = ExperimentRunner("E10: Theorems 2.5/2.6 — 3-coloring lower bounds")
    for l, rounds in [(4, 2), (8, 6), (12, 10)]:

        def run(l=l, rounds=rounds):
            result = triangle_free_lower_bound(l, rounds=rounds)
            cert = result.certificate
            return {
                "obstruction_n": cert.obstruction_vertices,
                "certified_rounds": cert.rounds,
                "colors_ruled_out": cert.colors,
                "target": "triangle-free planar",
            }

        runner.run(f"G_5x{2 * l + 1}", "Thm 2.5 certificate", run)

    for k, rounds in [(4, 2), (6, 4), (8, 6)]:

        def run(k=k, rounds=rounds):
            result = bipartite_grid_lower_bound(k, rounds=rounds)
            cert = result.certificate
            return {
                "obstruction_n": cert.obstruction_vertices,
                "certified_rounds": cert.rounds,
                "colors_ruled_out": cert.colors,
                "target": "planar bipartite (grid)",
            }

        runner.run(f"G_{2 * k + 1}x{2 * k + 1}", "Thm 2.6 certificate", run)
    return runner


def test_lowerbound_triangle_free(benchmark):
    result = benchmark(lambda: triangle_free_lower_bound(4, rounds=2))
    assert result.certificate.colors == 3


def test_lowerbound_grids_table(capsys):
    runner = build_table()
    r25 = runner.metric_series("Thm 2.5 certificate", "certified_rounds")
    r26 = runner.metric_series("Thm 2.6 certificate", "certified_rounds")
    assert r25 == sorted(r25) and r26 == sorted(r26)
    with capsys.disabled():
        runner.print_table()


if __name__ == "__main__":
    build_table().print_table()
