"""E7 — Corollary 2.1 / Theorem 6.1 (Brooks): now the `corollary21-brooks` scenario.

All generation, measurement and export live in :mod:`repro.scenarios`.
Run it with::

    PYTHONPATH=src python -m repro run corollary21-brooks
"""

from repro.cli import main
from repro.scenarios import run_scenario

SCENARIO = "corollary21-brooks"


def build_table(**overrides):
    """Run the scenario inline and return the populated ExperimentRunner."""
    return run_scenario(
        SCENARIO, overrides=overrides or None, workers=1, export=False
    ).runner


if __name__ == "__main__":
    raise SystemExit(main(["run", SCENARIO]))
