"""E7 — Corollary 2.1 / Theorem 6.1: Brooks-type Δ-list-coloring.

Paper claim: graphs of maximum degree Δ >= 3 without a K_{Δ+1} are
Δ-list-colorable in ``O(Δ^2 log^3 n)`` rounds (one color better than the
greedy Δ+1), and the same machinery handles "nice" list-assignments where
list sizes vary per vertex (Theorem 6.1).
"""

from repro.analysis import ExperimentRunner
from repro.coloring import uniform_lists, verify_list_coloring
from repro.coloring.assignment import ListAssignment
from repro.core import brooks_list_coloring, nice_list_coloring
from repro.distributed import greedy_distributed_coloring
from repro.graphs.generators import classic
from repro.graphs.properties.cliques import is_clique


def nice_lists_for(graph):
    lists = {}
    for v in graph:
        degree = graph.degree(v)
        size = degree + 1 if degree <= 2 or is_clique(graph, graph.neighbors(v)) else degree
        lists[v] = frozenset(range(1, size + 1))
    return ListAssignment(lists)


def build_table(ns=(60, 120), degrees=(4, 5)) -> ExperimentRunner:
    runner = ExperimentRunner("E7: Corollary 2.1 (Brooks) and Theorem 6.1 (nice lists)")
    for d in degrees:
        for n in ns:
            if n * d % 2:
                n += 1
            g = classic.random_regular_graph(n, d, seed=n + d)
            instance = f"{d}-regular n={n}"

            def run_brooks(g=g, d=d):
                result = brooks_list_coloring(g)
                verify_list_coloring(g, result.coloring, uniform_lists(g, d))
                return {"colors": result.colors_used(), "budget": d, "rounds": result.rounds}

            def run_greedy(g=g, d=d):
                result = greedy_distributed_coloring(g)
                return {"colors": len(set(result.coloring.values())), "budget": d + 1,
                        "rounds": result.rounds}

            def run_nice(g=g, d=d):
                lists = nice_lists_for(g)
                result = nice_list_coloring(g, lists)
                verify_list_coloring(g, result.coloring, lists)
                return {"colors": len(set(result.coloring.values())), "budget": d,
                        "rounds": result.rounds}

            runner.run(instance, "Cor 2.1 (Delta colors)", run_brooks)
            runner.run(instance, "greedy (Delta+1)", run_greedy)
            runner.run(instance, "Thm 6.1 (nice lists)", run_nice)
    return runner


def test_corollary21_brooks(benchmark):
    g = classic.random_regular_graph(60, 4, seed=1)
    result = benchmark(lambda: brooks_list_coloring(g))
    assert result.succeeded and result.colors_used() <= 4


def test_corollary21_table(capsys):
    runner = build_table(ns=(60,), degrees=(4,))
    for row in runner.rows:
        assert row.metrics["colors"] <= row.metrics["budget"]
    with capsys.disabled():
        runner.print_table()


if __name__ == "__main__":
    build_table().print_table()
