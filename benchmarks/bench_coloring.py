"""E15 — flat palette A/B: now the `coloring` registry scenario.

All generation, measurement and export live in :mod:`repro.scenarios`
(task in ``tasks.py``, grid and parity checks in ``catalog.py``).  Run it
with::

    PYTHONPATH=src python -m repro run coloring

This shim keeps the ``build_table()`` entry point of the script-era API
and makes ``python benchmarks/bench_coloring.py`` equivalent to the CLI
invocation above.
"""

from repro.cli import main
from repro.scenarios import run_scenario

SCENARIO = "coloring"


def build_table(**overrides):
    """Run the scenario inline and return the populated ExperimentRunner."""
    return run_scenario(
        SCENARIO, overrides=overrides or None, workers=1, export=False
    ).runner


if __name__ == "__main__":
    raise SystemExit(main(["run", SCENARIO]))
