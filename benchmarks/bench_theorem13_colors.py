"""E1 — Theorem 1.3 (colors): d-list-coloring of graphs with mad <= d.

Paper claim: for every graph with ``mad(G) <= d`` (``d >= 3``) and no
``(d+1)``-clique, the algorithm finds a proper coloring where every vertex
uses a color from its own list of size ``d``.  The greedy/degeneracy
baseline needs ``floor(mad)+1`` colors in general, i.e. one more.

This benchmark sweeps ``d`` over bounded-mad random graphs (uniform and
random lists) and reports the number of colors used by Theorem 1.3 and by
the degeneracy-greedy baseline.
"""

from repro.analysis import ExperimentRunner
from repro.coloring import (
    degeneracy_greedy_coloring,
    random_lists,
    uniform_lists,
    verify_list_coloring,
)
from repro.core import color_sparse_graph
from repro.graphs.generators import sparse


def build_table(sizes=(80, 160), ds=(4, 6)) -> ExperimentRunner:
    runner = ExperimentRunner("E1: Theorem 1.3 — colors used vs. the budget d")
    for d in ds:
        for n in sizes:
            g = sparse.random_degenerate_graph(n, d // 2, seed=n + d)
            instance = f"n={n} d={d}"

            def run_uniform(g=g, d=d):
                lists = uniform_lists(g, d)
                result = color_sparse_graph(g, d=d, lists=lists)
                verify_list_coloring(g, result.coloring, lists)
                return {"colors": result.colors_used(), "budget": d,
                        "rounds": result.rounds, "valid": True}

            def run_random_lists(g=g, d=d):
                lists = random_lists(g, d, palette_size=2 * d, seed=d)
                result = color_sparse_graph(g, d=d, lists=lists)
                verify_list_coloring(g, result.coloring, lists)
                return {"colors": result.colors_used(), "budget": d,
                        "rounds": result.rounds, "valid": True}

            def run_greedy(g=g, d=d):
                coloring = degeneracy_greedy_coloring(g)
                return {"colors": len(set(coloring.values())), "budget": d,
                        "rounds": 0, "valid": True}

            runner.run(instance, "thm1.3 uniform lists", run_uniform)
            runner.run(instance, "thm1.3 random lists", run_random_lists)
            runner.run(instance, "greedy baseline", run_greedy)
    return runner


def test_theorem13_colors(benchmark):
    g = sparse.random_degenerate_graph(80, 2, seed=1)
    result = benchmark(lambda: color_sparse_graph(g, d=4))
    assert result.succeeded and result.colors_used() <= 4


def test_theorem13_colors_table(capsys):
    runner = build_table()
    for row in runner.rows:
        # with uniform lists {1..d} the number of distinct colors is at most d;
        # with per-vertex random lists only list-membership is guaranteed
        # (verified inside the run), not a global palette bound
        if row.algorithm == "thm1.3 uniform lists":
            assert row.metrics["colors"] <= row.metrics["budget"]
        assert row.metrics["valid"]
    with capsys.disabled():
        runner.print_table()


if __name__ == "__main__":
    build_table().print_table()
