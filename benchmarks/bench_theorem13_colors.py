"""E1 — Theorem 1.3 (colors): now the `theorem13-colors` registry scenario.

All generation, measurement and export live in :mod:`repro.scenarios`
(tasks in ``tasks.py``, grid and checks in ``catalog.py``).  Run it with::

    PYTHONPATH=src python -m repro run theorem13-colors

This shim keeps the old ``build_table()`` entry point for callers of the
script-era API and makes ``python benchmarks/bench_theorem13_colors.py``
equivalent to the CLI invocation above.
"""

from repro.cli import main
from repro.scenarios import run_scenario

SCENARIO = "theorem13-colors"


def build_table(**overrides):
    """Run the scenario inline and return the populated ExperimentRunner."""
    return run_scenario(
        SCENARIO, overrides=overrides or None, workers=1, export=False
    ).runner


if __name__ == "__main__":
    raise SystemExit(main(["run", SCENARIO]))
