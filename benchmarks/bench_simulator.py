"""E14 — LOCAL round engine throughput: now the `simulator` scenario.

Times the synchronous round engine's three data planes — the dict-routed
seed engine, the flat-array per-node engine and the vectorized batched
protocol — on Cole–Vishkin (rooted path) and the greedy baseline (ring),
checking cross-engine round/message parity on every instance.  Run it
with::

    PYTHONPATH=src python -m repro run simulator [--repeat 3]

Executing this file exports the repository-root ``BENCH_simulator.json``
perf-trajectory artifact, exactly like the CLI invocation above.  Diff two
artifacts (e.g. across PRs) with ``python tools/bench_diff.py``.
"""

from pathlib import Path

from repro.cli import main
from repro.scenarios import run_scenario

SCENARIO = "simulator"


def build_table(**overrides):
    """Run the scenario inline and return the populated ExperimentRunner."""
    return run_scenario(
        SCENARIO, overrides=overrides or None, workers=1, export=False
    ).runner


def export_artifact(path: str | None = None) -> Path:
    """Run the scenario and write ``BENCH_simulator.json`` (repo root by default)."""
    if path is None:
        path = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"
    run = run_scenario(SCENARIO, workers=1, out=path)
    run.runner.print_table()
    return run.path


if __name__ == "__main__":
    raise SystemExit(main(["run", SCENARIO]))
