"""E3 — Lemma 3.1: the happy set is a constant fraction of the graph.

Paper claim: ``|A| >= n / (3d)^3`` in general and ``|A| >= n / (12d + 1)``
when there are no poor vertices; consequently the peeling needs
``O(d^3 log n)`` (resp. ``O(d log n)``) layers.  The benchmark measures the
actual happy fraction of the first layer and the total number of peeling
layers on three input families, including the adversarial d-regular case
where no vertex has small degree.
"""

from repro.analysis import ExperimentRunner
from repro.core import classify_vertices, peel_happy_layers
from repro.graphs.generators import classic, planar, sparse


def build_table() -> ExperimentRunner:
    runner = ExperimentRunner("E3: Lemma 3.1 — happy fraction and peeling layers")
    cases = [
        ("forest-union a=2, n=200", sparse.union_of_random_forests(200, 2, seed=1), 4),
        ("planar triangulation, n=200", planar.stacked_triangulation(200, seed=2), 6),
        ("4-regular, n=120", classic.random_regular_graph(120, 4, seed=3), 4),
    ]
    for name, g, d in cases:

        def run(g=g, d=d):
            cls = classify_vertices(g, d=d)
            peeling = peel_happy_layers(g, d=d)
            n = g.number_of_vertices()
            fraction = len(cls.happy) / n
            bound = 1 / (3 * d) ** 3
            no_poor_bound = 1 / (12 * d + 1) if not cls.poor else None
            return {
                "happy_fraction": round(fraction, 3),
                "paper_bound": round(bound, 5),
                "no_poor_bound": round(no_poor_bound, 4) if no_poor_bound else "-",
                "layers": peeling.number_of_layers,
                "poor": len(cls.poor),
            }

        runner.run(name, f"classification d={d}", run)
    return runner


def test_lemma31_happy_fraction(benchmark):
    g = sparse.union_of_random_forests(150, 2, seed=4)
    cls = benchmark(lambda: classify_vertices(g, d=4))
    assert len(cls.happy) >= g.number_of_vertices() / (3 * 4) ** 3


def test_lemma31_table(capsys):
    runner = build_table()
    for row in runner.rows:
        assert row.metrics["happy_fraction"] >= row.metrics["paper_bound"]
    with capsys.disabled():
        runner.print_table()


if __name__ == "__main__":
    build_table().print_table()
