"""E3 — Lemma 3.1 (happy fraction): now the `lemma31-happy-fraction` scenario.

All generation, measurement and export live in :mod:`repro.scenarios`.
Run it with::

    PYTHONPATH=src python -m repro run lemma31-happy-fraction
"""

from repro.cli import main
from repro.scenarios import run_scenario

SCENARIO = "lemma31-happy-fraction"


def build_table(**overrides):
    """Run the scenario inline and return the populated ExperimentRunner."""
    return run_scenario(
        SCENARIO, overrides=overrides or None, workers=1, export=False
    ).runner


if __name__ == "__main__":
    raise SystemExit(main(["run", SCENARIO]))
