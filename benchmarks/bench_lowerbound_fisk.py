"""E9 — Theorem 1.5 (planar 4-coloring lower bound): now the `lowerbound-fisk` scenario.

All construction, certification and export live in :mod:`repro.scenarios`.
Run it with::

    PYTHONPATH=src python -m repro run lowerbound-fisk
"""

from repro.cli import main
from repro.scenarios import run_scenario

SCENARIO = "lowerbound-fisk"


def build_table(**overrides):
    """Run the scenario inline and return the populated ExperimentRunner."""
    return run_scenario(
        SCENARIO, overrides=overrides or None, workers=1, export=False
    ).runner


if __name__ == "__main__":
    raise SystemExit(main(["run", SCENARIO]))
