"""E9 — Theorem 1.5: no o(n)-round algorithm 4-colors planar graphs.

Paper claim (via Fisk triangulations; we substitute the locally planar,
non-4-colorable toroidal triangulation C_n(1,2,3), see DESIGN.md): for
every n there is a graph whose balls of radius ~n/6 are planar yet whose
chromatic number is 5, so by Observation 2.4 any algorithm 4-coloring all
planar graphs needs Omega(n) rounds.  The benchmark certifies the
obstruction at growing sizes and reports the certified round lower bound,
which grows linearly in n.
"""

from repro.analysis import ExperimentRunner
from repro.lowerbounds import planar_four_coloring_lower_bound


CASES = [(29, 3), (49, 6), (97, 14)]


def build_table() -> ExperimentRunner:
    runner = ExperimentRunner("E9: Theorem 1.5 — 4-coloring planar graphs needs Omega(n) rounds")
    for n, rounds in CASES:

        def run(n=n, rounds=rounds):
            result = planar_four_coloring_lower_bound(n, rounds=rounds)
            cert = result.certificate
            return {
                "obstruction_n": cert.obstruction_vertices,
                "certified_rounds": cert.rounds,
                "colors_ruled_out": cert.colors,
                "chi_obstruction": cert.obstruction_chromatic_lower_bound,
                "rounds/n": round(cert.rounds / n, 3),
            }

        runner.run(f"n={n}", "Observation 2.4 certificate", run)
    return runner


def test_lowerbound_fisk(benchmark):
    result = benchmark(lambda: planar_four_coloring_lower_bound(29, rounds=3))
    assert result.certificate.colors == 4


def test_lowerbound_fisk_table(capsys):
    runner = build_table()
    rounds = runner.metric_series("Observation 2.4 certificate", "certified_rounds")
    ns = runner.metric_series("Observation 2.4 certificate", "obstruction_n")
    # the certified bound grows linearly with n (constant rounds/n ratio)
    assert rounds == sorted(rounds)
    assert rounds[-1] / ns[-1] >= 0.5 * rounds[0] / ns[0]
    with capsys.disabled():
        runner.print_table()


if __name__ == "__main__":
    build_table().print_table()
