"""E2 — Theorem 1.3 (rounds): now the `theorem13-rounds` registry scenario.

All generation, measurement, the polylog fit and export live in
:mod:`repro.scenarios`.  Run it with::

    PYTHONPATH=src python -m repro run theorem13-rounds

This shim keeps the old ``build_table()`` entry point (returning the
runner plus the (ns, rounds) series it used to expose).
"""

from repro.cli import main
from repro.scenarios import run_scenario

SCENARIO = "theorem13-rounds"


def build_table(**overrides):
    """Run the scenario inline; return (runner, ns, rounds) like the old API."""
    runner = run_scenario(
        SCENARIO, overrides=overrides or None, workers=1, export=False
    ).runner
    ns = runner.metric_series("thm1.3 (paper radius)", "n")
    rounds = runner.metric_series("thm1.3 (paper radius)", "rounds")
    return runner, ns, rounds


if __name__ == "__main__":
    raise SystemExit(main(["run", SCENARIO]))
