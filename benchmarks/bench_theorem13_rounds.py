"""E2 — Theorem 1.3 (rounds): polylogarithmic round complexity.

Paper claim: the algorithm runs in ``O(d^4 log^3 n)`` rounds
(``O(d^2 log^3 n)`` when the maximum degree is at most ``d``).  At feasible
simulation sizes the constants dominate, so the benchmark checks the
*shape*: the charged round totals, normalised by ``log2(n)^3``, should stay
bounded as ``n`` grows (they would grow linearly for an Omega(n) algorithm),
and the fitted polylog exponent should stay close to or below 3.
"""

from repro.analysis import ExperimentRunner, fit_polylog, normalized_by_polylog
from repro.core import color_sparse_graph
from repro.graphs.generators import sparse


SIZES = (60, 120, 240, 480)
D = 4


def build_table() -> tuple[ExperimentRunner, list[int], list[int]]:
    runner = ExperimentRunner("E2: Theorem 1.3 — charged rounds vs n (d=4)")
    ns, rounds = [], []
    for n in SIZES:
        g = sparse.union_of_random_forests(n, 2, seed=n)

        def run(g=g):
            result = color_sparse_graph(g, d=D)
            assert result.succeeded
            return {
                "rounds": result.rounds,
                "layers": result.peeling.number_of_layers,
                "rounds/log^3": result.rounds / (max(2, n).bit_length() ** 3),
            }

        row = runner.run(f"n={n}", "thm1.3 (paper radius)", run)
        ns.append(n)
        rounds.append(row.metrics["rounds"])
    return runner, ns, rounds


def test_theorem13_rounds(benchmark):
    g = sparse.union_of_random_forests(120, 2, seed=7)
    result = benchmark(lambda: color_sparse_graph(g, d=D))
    assert result.succeeded


def test_theorem13_round_scaling_is_polylog(capsys):
    runner, ns, rounds = build_table()
    normalized = normalized_by_polylog(ns, rounds, power=3)
    # bounded ratio across an 8x size range (allow generous slack for the
    # integer radius jumps of c*log2(n))
    assert max(normalized) <= 6 * min(normalized)
    fit = fit_polylog(ns, rounds)
    assert fit.exponent <= 4.0
    with capsys.disabled():
        runner.print_table()
        print(f"fitted rounds ~ {fit.coefficient:.1f} * log2(n)^{fit.exponent:.2f}")


if __name__ == "__main__":
    runner, ns, rounds = build_table()
    runner.print_table()
    fit = fit_polylog(ns, rounds)
    print(f"fitted rounds ~ {fit.coefficient:.1f} * log2(n)^{fit.exponent:.2f}")
