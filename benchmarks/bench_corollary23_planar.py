"""E6 — Corollary 2.3 vs Goldberg–Plotkin–Shannon on planar graphs.

Paper claim: planar graphs are 6-list-colorable, triangle-free planar
graphs 4-list-colorable and girth->=6 planar graphs 3-list-colorable, all
in ``O(log^3 n)`` rounds; GPS achieves 7 colors (general planar) in
``O(log n)`` rounds.  The benchmark reports colors and charged rounds for
both algorithms on the three planar families.
"""

from repro.analysis import ExperimentRunner
from repro.coloring import verify_coloring
from repro.core import (
    color_high_girth_planar_graph,
    color_planar_graph,
    color_triangle_free_planar_graph,
)
from repro.distributed import gps_coloring
from repro.graphs.generators import planar


def build_table(n=150) -> ExperimentRunner:
    runner = ExperimentRunner("E6: Corollary 2.3 on planar graphs vs GPS")

    triangulation = planar.stacked_triangulation(n, seed=1)
    triangle_free = planar.triangle_free_planar(n, seed=2)
    high_girth = planar.high_girth_planar(n, seed=3)

    def ours_general():
        result = color_planar_graph(triangulation)
        verify_coloring(triangulation, result.coloring)
        return {"colors": result.colors_used(), "budget": 6, "rounds": result.rounds}

    def gps_general():
        result = gps_coloring(triangulation, degree_threshold=6)
        verify_coloring(triangulation, result.coloring)
        return {"colors": result.colors_used, "budget": 7, "rounds": result.rounds}

    def ours_triangle_free():
        result = color_triangle_free_planar_graph(triangle_free)
        verify_coloring(triangle_free, result.coloring)
        return {"colors": result.colors_used(), "budget": 4, "rounds": result.rounds}

    def ours_high_girth():
        result = color_high_girth_planar_graph(high_girth)
        verify_coloring(high_girth, result.coloring)
        return {"colors": result.colors_used(), "budget": 3, "rounds": result.rounds}

    runner.run(f"planar triangulation n={len(triangulation)}", "Cor 2.3 (6 colors)", ours_general)
    runner.run(f"planar triangulation n={len(triangulation)}", "GPS (7 colors)", gps_general)
    runner.run(f"triangle-free planar n={len(triangle_free)}", "Cor 2.3 (4 colors)", ours_triangle_free)
    runner.run(f"girth>=6 planar n={len(high_girth)}", "Cor 2.3 (3 colors)", ours_high_girth)
    return runner


def test_corollary23_planar(benchmark):
    g = planar.stacked_triangulation(100, seed=4)
    result = benchmark(lambda: color_planar_graph(g))
    assert result.succeeded and result.colors_used() <= 6


def test_corollary23_table(capsys):
    runner = build_table()
    for row in runner.rows:
        assert row.metrics["colors"] <= row.metrics["budget"]
    with capsys.disabled():
        runner.print_table()


if __name__ == "__main__":
    build_table().print_table()
