"""E4 — Lemma 3.2: extending a coloring of G - A to G.

Paper claim: any list-coloring of ``G - A`` extends to ``G`` in
``O(d log^2 n)`` rounds, using a ruling forest, a (d+1) stable partition,
layered tree coloring and Theorem 1.1 on the root balls.  The benchmark
isolates one extension step (the happy set of the first peeling layer) and
reports the charged rounds, the number of ruling-forest roots, and the
number of sad vertices that had to be recolored — all quantities appearing
in the proof.
"""

from repro.analysis import ExperimentRunner
from repro.coloring import uniform_lists, verify_list_coloring
from repro.coloring.greedy import greedy_list_coloring
from repro.core import classify_vertices
from repro.core.extension import extend_coloring_to_happy_set
from repro.graphs.generators import planar, sparse
from repro.graphs.properties.degeneracy import degeneracy_ordering


def one_extension(g, d, radius):
    lists = uniform_lists(g, d)
    cls = classify_vertices(g, d=d, radius=radius)
    rest = [v for v in g if v not in cls.happy]
    sub = g.subgraph(rest)
    _, order = degeneracy_ordering(sub)
    base = greedy_list_coloring(sub, lists.restrict(rest), list(reversed(order)))
    coloring, report = extend_coloring_to_happy_set(
        g, lists, happy=cls.happy, rich=cls.rich, coloring=base,
        radius=radius, d=d,
    )
    verify_list_coloring(g, coloring, lists)
    return cls, report


def build_table() -> ExperimentRunner:
    runner = ExperimentRunner("E4: Lemma 3.2 — one extension step")
    cases = [
        ("planar n=120", planar.stacked_triangulation(120, seed=1), 6, 3),
        ("planar n=240", planar.stacked_triangulation(240, seed=2), 6, 4),
        ("forest-union n=200", sparse.union_of_random_forests(200, 2, seed=3), 4, 4),
    ]
    for name, g, d, radius in cases:

        def run(g=g, d=d, radius=radius):
            cls, report = one_extension(g, d, radius)
            return {
                "happy": len(cls.happy),
                "roots": report.roots,
                "tree_vertices": report.tree_vertices,
                "recolored_sad": report.recolored_sad_vertices,
                "rounds": report.rounds,
            }

        runner.run(name, f"extension d={d} r={radius}", run)
    return runner


def test_lemma32_extension(benchmark):
    g = planar.stacked_triangulation(100, seed=4)
    cls, report = benchmark(lambda: one_extension(g, 6, 3))
    assert report.roots >= 1


def test_lemma32_table(capsys):
    runner = build_table()
    for row in runner.rows:
        assert row.metrics["rounds"] > 0
    with capsys.disabled():
        runner.print_table()


if __name__ == "__main__":
    build_table().print_table()
