"""E4 — Lemma 3.2 (extension step): now the `lemma32-extension` scenario.

All generation, measurement and export live in :mod:`repro.scenarios`.
Run it with::

    PYTHONPATH=src python -m repro run lemma32-extension
"""

from repro.cli import main
from repro.scenarios import run_scenario

SCENARIO = "lemma32-extension"


def build_table(**overrides):
    """Run the scenario inline and return the populated ExperimentRunner."""
    return run_scenario(
        SCENARIO, overrides=overrides or None, workers=1, export=False
    ).runner


if __name__ == "__main__":
    raise SystemExit(main(["run", SCENARIO]))
