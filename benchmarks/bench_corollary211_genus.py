"""E8 — Corollary 2.11 on fixed surfaces: now the `corollary211-genus` scenario.

All generation, measurement and export live in :mod:`repro.scenarios`.
Run it with::

    PYTHONPATH=src python -m repro run corollary211-genus
"""

from repro.cli import main
from repro.scenarios import run_scenario

SCENARIO = "corollary211-genus"


def build_table(**overrides):
    """Run the scenario inline and return the populated ExperimentRunner."""
    return run_scenario(
        SCENARIO, overrides=overrides or None, workers=1, export=False
    ).runner


if __name__ == "__main__":
    raise SystemExit(main(["run", SCENARIO]))
