"""E8 — Corollary 2.11: coloring graphs embedded on a fixed surface.

Paper claim: graphs of Euler genus g are H(g)-list-colorable in
``O(log^3 n)`` rounds, and ``H(g) - 1`` colors suffice when the Heawood mad
bound is an integer and the graph is not K_{H(g)}.  The benchmark colors
6-regular toroidal triangulations (Euler genus 2, Heawood number 7) with
both budgets and reports the colors actually used.
"""

from repro.analysis import ExperimentRunner
from repro.coloring import verify_coloring
from repro.core import color_embedded_graph, genus_color_budget
from repro.graphs.generators import surfaces


def build_table(sizes=((6, 8), (8, 10))) -> ExperimentRunner:
    runner = ExperimentRunner("E8: Corollary 2.11 on toroidal triangulations (Euler genus 2)")
    for k, l in sizes:
        g = surfaces.toroidal_triangular_grid(k, l)
        instance = f"torus triangulation {k}x{l} (n={len(g)})"

        def run(improved, g=g):
            result = color_embedded_graph(g, euler_genus=2, improved=improved)
            verify_coloring(g, result.coloring)
            return {
                "colors": result.colors_used(),
                "budget": genus_color_budget(2, improved=improved),
                "rounds": result.rounds,
            }

        runner.run(instance, "H(g)=7 budget", lambda g=g: run(False, g))
        runner.run(instance, "H(g)-1=6 budget", lambda g=g: run(True, g))
    return runner


def test_corollary211_genus(benchmark):
    g = surfaces.toroidal_triangular_grid(6, 6)
    result = benchmark(lambda: color_embedded_graph(g, euler_genus=2, improved=True))
    assert result.succeeded and result.colors_used() <= 6


def test_corollary211_table(capsys):
    runner = build_table(sizes=((6, 8),))
    for row in runner.rows:
        assert row.metrics["colors"] <= row.metrics["budget"]
    with capsys.disabled():
        runner.print_table()


if __name__ == "__main__":
    build_table().print_table()
