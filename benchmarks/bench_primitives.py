"""E11/E12 — round complexity of the distributed building blocks, plus E13,
the CSR-core speedup tracker.

* Cole–Vishkin 3-colors rooted forests in O(log* n) rounds — the measured
  round counts barely move while n grows by two orders of magnitude, and
  Linial's lower bound says Omega(log* n) is necessary (so every algorithm
  in this repository, including Theorem 1.3, inherits that floor).
* Linial + color reduction produce a (Δ+1)-coloring in O(log* n + Δ²)
  rounds.
* The (k, k log n)-ruling forest of Awerbuch et al. (the engine of
  Lemma 3.2) satisfies its separation/depth guarantees with O(k log n)
  charged rounds.
* 2-coloring a path, by contrast, needs Omega(n) rounds (Observation 2.4
  certificate) — the reason Theorem 1.3 requires d >= 3.
* E13 (:func:`build_csr_speedup`) times the two hottest sequential
  primitives — degeneracy peeling and ball collection — on the seed
  dict-of-sets path versus the :class:`FrozenGraph` CSR path, at n = 10,000.
  Ball collection is measured at the paper-realistic rich-ball radius
  (``c log2 n`` always exceeds the diameter at simulable sizes, so every
  ball is a whole component — the regime Lemma 3.1 classification runs in).
  Running this file as a script exports the machine-readable
  ``BENCH_primitives.json`` artifact at the repository root so the perf
  trajectory is diffable across PRs.
"""

import time
from collections import deque
from pathlib import Path

from repro.analysis import BatchTask, ExperimentRunner
from repro.graphs.generators import classic
from repro.graphs.generators.sparse import union_of_random_forests
from repro.graphs.properties.degeneracy import _degeneracy_ordering_sets
from repro.local.ball_collection import collect_balls
from repro.lowerbounds import log_star_floor, path_two_coloring_lower_bound
from repro.distributed import (
    color_rooted_forest,
    delta_plus_one_coloring,
    ruling_forest,
)


def bfs_parents(graph, root):
    parents = {root: None}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for w in graph.neighbors(u):
            if w not in parents:
                parents[w] = u
                queue.append(w)
    return parents


def build_table() -> ExperimentRunner:
    runner = ExperimentRunner("E11/E12: primitives — measured rounds")
    for n in (50, 500, 5000):
        g = classic.path(n)

        def run_cv(g=g, n=n):
            result = color_rooted_forest(g, bfs_parents(g, 0))
            colors = set(result.outputs.values())
            return {"rounds": result.rounds, "colors": len(colors),
                    "log_star_n": log_star_floor(n)}

        runner.run(f"path n={n}", "Cole-Vishkin (3 colors)", run_cv)

    for n in (60, 240):
        g = classic.random_regular_graph(n, 4, seed=n)

        def run_dp1(g=g):
            result = delta_plus_one_coloring(g)
            return {"rounds": result.rounds,
                    "colors": len(set(result.coloring.values())),
                    "log_star_n": log_star_floor(len(g))}

        runner.run(f"4-regular n={n}", "Linial + reduction (Delta+1)", run_dp1)

    for n in (100, 400):
        g = classic.grid_2d(n // 10, 10)

        def run_ruling(g=g):
            forest = ruling_forest(g, set(g.vertices()), alpha=4)
            return {"rounds": forest.rounds, "colors": len(forest.roots),
                    "log_star_n": forest.beta}

        runner.run(f"grid n={n}", "ruling forest (alpha=4)", run_ruling)

    def run_path_lb():
        result = path_two_coloring_lower_bound(200, rounds=20)
        return {"rounds": result.certificate.rounds, "colors": 2, "log_star_n": 0}

    runner.run("path n=200", "2-coloring lower bound (Omega(n))", run_path_lb)
    return runner


# -- E13: CSR core speedup --------------------------------------------------

def _measure_degeneracy(n, arboricity, backend, seed=None):
    """Time one degeneracy-ordering computation (module-level: picklable).

    The CSR timing is taken on a pre-frozen graph; the one-time freeze cost
    is reported separately (``freeze_seconds``) because it is paid once per
    graph and amortized over every primitive that runs on the frozen view.
    """
    graph = union_of_random_forests(n, arboricity, seed=seed)
    metrics = {"n": n, "m": graph.number_of_edges()}
    if backend == "dict":
        start = time.perf_counter()
        value = _degeneracy_ordering_sets(graph)[0]
        metrics["compute_seconds"] = time.perf_counter() - start
    else:
        start = time.perf_counter()
        frozen = graph.freeze()
        metrics["freeze_seconds"] = time.perf_counter() - start
        start = time.perf_counter()
        value = frozen.degeneracy_ordering()[0]
        metrics["compute_seconds"] = time.perf_counter() - start
    metrics["degeneracy"] = value
    return metrics


def _measure_balls(n, arboricity, radius, backend, seed=None):
    """Time one all-vertices ball collection (module-level: picklable)."""
    graph = union_of_random_forests(n, arboricity, seed=seed)
    if backend != "dict":
        graph = graph.freeze()
    start = time.perf_counter()
    balls = collect_balls(graph, radius)
    elapsed = time.perf_counter() - start
    return {
        "n": n,
        "radius": radius,
        "total_ball_members": sum(len(b) for b in balls.values()),
        "compute_seconds": elapsed,
    }


def build_csr_speedup(
    n: int = 10_000, arboricity: int = 3, radius: int = 8, seed: int = 42
) -> ExperimentRunner:
    """E13: dict-of-sets vs CSR on the two hottest primitives.

    ``radius`` defaults to a value exceeding the diameter of the instance —
    the rich-ball regime of Lemma 3.1 (the paper's ``c log2 n`` radius is
    ~600 at this n).  All four measurements share one deterministic
    instance, so the comparison is exact; timings are taken inside the
    tasks around the computation only, and the batch runs serially
    (``parallel=False``) so concurrent workers cannot skew the timings.
    """
    runner = ExperimentRunner(
        "E13: CSR core — dict-of-sets vs FrozenGraph",
        metadata={"n": n, "arboricity": arboricity, "radius": radius, "seed": seed},
    )
    instance = f"forest_union n={n} a={arboricity}"
    tasks = [
        BatchTask(instance, "degeneracy ordering (dict-of-sets)",
                  _measure_degeneracy, args=(n, arboricity, "dict"),
                  kwargs={"seed": seed}, seed_arg=None),
        BatchTask(instance, "degeneracy ordering (CSR)",
                  _measure_degeneracy, args=(n, arboricity, "csr"),
                  kwargs={"seed": seed}, seed_arg=None),
        BatchTask(instance, f"ball collection r={radius} (dict-of-sets)",
                  _measure_balls, args=(n, arboricity, radius, "dict"),
                  kwargs={"seed": seed}, seed_arg=None),
        BatchTask(instance, f"ball collection r={radius} (CSR)",
                  _measure_balls, args=(n, arboricity, radius, "csr"),
                  kwargs={"seed": seed}, seed_arg=None),
    ]
    runner.run_batch(tasks, parallel=False)
    for primitive in ("degeneracy ordering", f"ball collection r={radius}"):
        baseline = runner.metric_series(f"{primitive} (dict-of-sets)", "compute_seconds")
        csr = runner.metric_series(f"{primitive} (CSR)", "compute_seconds")
        if baseline and csr and csr[0] > 0:
            speedup = baseline[0] / csr[0]
            runner.metadata[f"speedup[{primitive}]"] = round(speedup, 2)
            runner.add(instance, f"{primitive} speedup", speedup_x=round(speedup, 2))
    return runner


def export_artifact(path: str | None = None) -> Path:
    """Run both tables and write the ``BENCH_primitives.json`` artifact."""
    table = build_table()
    csr = build_csr_speedup()
    combined = ExperimentRunner("primitives", metadata=dict(csr.metadata))
    combined.rows = table.rows + csr.rows
    if path is None:
        path = Path(__file__).resolve().parent.parent / "BENCH_primitives.json"
    table.print_table()
    csr.print_table()
    return combined.export_json(path)


def test_cole_vishkin_rounds(benchmark):
    g = classic.path(500)
    parents = bfs_parents(g, 0)
    result = benchmark(lambda: color_rooted_forest(g, parents))
    assert result.finished


def test_primitives_table(capsys):
    runner = build_table()
    cv_rounds = runner.metric_series("Cole-Vishkin (3 colors)", "rounds")
    # log*-like growth: 100x more vertices costs at most a few extra rounds
    assert cv_rounds[-1] <= cv_rounds[0] + 6
    with capsys.disabled():
        runner.print_table()


if __name__ == "__main__":
    artifact = export_artifact()
    print(f"\nwrote {artifact}")
