"""E11/E12 — round complexity of the distributed building blocks.

* Cole–Vishkin 3-colors rooted forests in O(log* n) rounds — the measured
  round counts barely move while n grows by two orders of magnitude, and
  Linial's lower bound says Omega(log* n) is necessary (so every algorithm
  in this repository, including Theorem 1.3, inherits that floor).
* Linial + color reduction produce a (Δ+1)-coloring in O(log* n + Δ²)
  rounds.
* The (k, k log n)-ruling forest of Awerbuch et al. (the engine of
  Lemma 3.2) satisfies its separation/depth guarantees with O(k log n)
  charged rounds.
* 2-coloring a path, by contrast, needs Omega(n) rounds (Observation 2.4
  certificate) — the reason Theorem 1.3 requires d >= 3.
"""

from collections import deque

from repro.analysis import ExperimentRunner
from repro.graphs.generators import classic
from repro.lowerbounds import log_star_floor, path_two_coloring_lower_bound
from repro.distributed import (
    color_rooted_forest,
    delta_plus_one_coloring,
    ruling_forest,
)


def bfs_parents(graph, root):
    parents = {root: None}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for w in graph.neighbors(u):
            if w not in parents:
                parents[w] = u
                queue.append(w)
    return parents


def build_table() -> ExperimentRunner:
    runner = ExperimentRunner("E11/E12: primitives — measured rounds")
    for n in (50, 500, 5000):
        g = classic.path(n)

        def run_cv(g=g, n=n):
            result = color_rooted_forest(g, bfs_parents(g, 0))
            colors = set(result.outputs.values())
            return {"rounds": result.rounds, "colors": len(colors),
                    "log_star_n": log_star_floor(n)}

        runner.run(f"path n={n}", "Cole-Vishkin (3 colors)", run_cv)

    for n in (60, 240):
        g = classic.random_regular_graph(n, 4, seed=n)

        def run_dp1(g=g):
            result = delta_plus_one_coloring(g)
            return {"rounds": result.rounds,
                    "colors": len(set(result.coloring.values())),
                    "log_star_n": log_star_floor(len(g))}

        runner.run(f"4-regular n={n}", "Linial + reduction (Delta+1)", run_dp1)

    for n in (100, 400):
        g = classic.grid_2d(n // 10, 10)

        def run_ruling(g=g):
            forest = ruling_forest(g, set(g.vertices()), alpha=4)
            return {"rounds": forest.rounds, "colors": len(forest.roots),
                    "log_star_n": forest.beta}

        runner.run(f"grid n={n}", "ruling forest (alpha=4)", run_ruling)

    def run_path_lb():
        result = path_two_coloring_lower_bound(200, rounds=20)
        return {"rounds": result.certificate.rounds, "colors": 2, "log_star_n": 0}

    runner.run("path n=200", "2-coloring lower bound (Omega(n))", run_path_lb)
    return runner


def test_cole_vishkin_rounds(benchmark):
    g = classic.path(500)
    parents = bfs_parents(g, 0)
    result = benchmark(lambda: color_rooted_forest(g, parents))
    assert result.finished


def test_primitives_table(capsys):
    runner = build_table()
    cv_rounds = runner.metric_series("Cole-Vishkin (3 colors)", "rounds")
    # log*-like growth: 100x more vertices costs at most a few extra rounds
    assert cv_rounds[-1] <= cv_rounds[0] + 6
    with capsys.disabled():
        runner.print_table()


if __name__ == "__main__":
    build_table().print_table()
