"""E11/E12/E13 — distributed primitives + CSR speedup: now the `primitives` scenario.

All generation, timing and export live in :mod:`repro.scenarios` (the E13
dict-of-sets vs CSR A/B shares one fixed instance seed and always runs
serially so concurrent workers cannot skew the timings).  Run it with::

    PYTHONPATH=src python -m repro run primitives

Executing this file exports the repository-root ``BENCH_primitives.json``
perf-trajectory artifact, exactly like the CLI invocation above.
"""

from pathlib import Path

from repro.cli import main
from repro.scenarios import run_scenario

SCENARIO = "primitives"


def build_table(**overrides):
    """Run the scenario inline and return the populated ExperimentRunner."""
    return run_scenario(
        SCENARIO, overrides=overrides or None, workers=1, export=False
    ).runner


def export_artifact(path: str | None = None) -> Path:
    """Run the scenario and write ``BENCH_primitives.json`` (repo root by default)."""
    if path is None:
        path = Path(__file__).resolve().parent.parent / "BENCH_primitives.json"
    run = run_scenario(SCENARIO, workers=1, out=path)
    run.runner.print_table()
    return run.path


if __name__ == "__main__":
    raise SystemExit(main(["run", SCENARIO]))
