"""E5 — Corollary 1.4 vs Barenboim–Elkin: 2a colors vs (2+eps)a + 1.

Paper claim: graphs of arboricity ``a >= 2`` are 2a-list-colorable in
``O(a^4 log^3 n)`` rounds, one color better than the
``floor((2+eps)a) + 1`` colors of Barenboim–Elkin (which runs in
``O(a log n)`` rounds).  The benchmark reports colors and charged rounds of
both algorithms on unions of ``a`` random spanning forests.
"""

from repro.analysis import ExperimentRunner
from repro.coloring import verify_coloring
from repro.core import color_bounded_arboricity_graph
from repro.distributed import barenboim_elkin_coloring
from repro.graphs.generators import sparse


def build_table(ns=(120,), arboricities=(2, 3)) -> ExperimentRunner:
    runner = ExperimentRunner("E5: Corollary 1.4 vs Barenboim–Elkin")
    for a in arboricities:
        for n in ns:
            g = sparse.union_of_random_forests(n, a, seed=n + a)
            instance = f"n={n} a={a}"

            def run_ours(g=g, a=a):
                result = color_bounded_arboricity_graph(g, arboricity=a)
                verify_coloring(g, result.coloring)
                return {"colors": result.colors_used(), "palette": 2 * a,
                        "rounds": result.rounds}

            def run_baseline(g=g, a=a):
                result = barenboim_elkin_coloring(g, arboricity=a, epsilon=1.0)
                verify_coloring(g, result.coloring)
                return {"colors": result.colors_used, "palette": result.palette_size,
                        "rounds": result.rounds}

            runner.run(instance, "Cor 1.4 (2a colors)", run_ours)
            runner.run(instance, "Barenboim-Elkin", run_baseline)
    return runner


def test_corollary14(benchmark):
    g = sparse.union_of_random_forests(100, 2, seed=5)
    result = benchmark(lambda: color_bounded_arboricity_graph(g, arboricity=2))
    assert result.succeeded and result.colors_used() <= 4


def test_corollary14_table(capsys):
    runner = build_table()
    ours = runner.metric_series("Cor 1.4 (2a colors)", "palette")
    baseline = runner.metric_series("Barenboim-Elkin", "palette")
    # the paper's headline: our palette is strictly smaller
    assert all(o < b for o, b in zip(ours, baseline))
    with capsys.disabled():
        runner.print_table()


if __name__ == "__main__":
    build_table().print_table()
