"""E5 — Corollary 1.4 vs Barenboim–Elkin: now the `corollary14-arboricity` scenario.

All generation, measurement and export live in :mod:`repro.scenarios`.
Run it with::

    PYTHONPATH=src python -m repro run corollary14-arboricity
"""

from repro.cli import main
from repro.scenarios import run_scenario

SCENARIO = "corollary14-arboricity"


def build_table(**overrides):
    """Run the scenario inline and return the populated ExperimentRunner."""
    return run_scenario(
        SCENARIO, overrides=overrides or None, workers=1, export=False
    ).runner


if __name__ == "__main__":
    raise SystemExit(main(["run", SCENARIO]))
