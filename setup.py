"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that the package can be installed in
editable mode in fully offline environments (where build isolation cannot
download ``wheel``):

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
