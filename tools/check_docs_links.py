#!/usr/bin/env python3
"""Trivial markdown link checker for the repo docs (no dependencies).

Scans the given markdown files for inline links/images
(``[text](target)``), resolves each *relative* target against the file's
directory, and fails if the target doesn't exist.  ``http(s)://`` and
``mailto:`` targets are skipped (no network in CI); ``#anchor`` suffixes
are stripped before the existence check and bare in-page anchors are
accepted as-is.

Usage::

    python tools/check_docs_links.py README.md PAPER.md docs/*.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# [text](target) — doesn't try to handle nested parens or reference links;
# the repo's docs don't use them.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:")


def check_file(path: Path) -> list[str]:
    problems = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for target in LINK.findall(line):
            if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(f"{path}:{lineno}: broken link -> {target}")
    return problems


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_docs_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    problems: list[str] = []
    checked = 0
    for arg in argv:
        path = Path(arg)
        if not path.exists():
            problems.append(f"{path}: file not found")
            continue
        checked += 1
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {checked} file(s): {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
