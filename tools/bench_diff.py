#!/usr/bin/env python3
"""Diff two ``BENCH_*.json`` artifacts: per-row seconds deltas + speedup summary.

Rows are matched by ``(instance, algorithm)``; for every matched row the
old and new wall times are printed with the delta and the old/new speedup
factor (> 1 means the new artifact is faster).  Rows carrying a
``peak_rss_bytes`` metric on both sides additionally get a memory column,
and the summary reports the peak-RSS delta next to the time totals.  Both
artifacts are schema-validated (``repro.scenarios.schema``) before
diffing.

Usage::

    python tools/bench_diff.py OLD.json NEW.json [--max-regression PCT] \\
        [--max-rss-regression PCT]

``--max-regression 20`` exits non-zero if any matched row got more than
20% slower; ``--max-rss-regression`` gates peak RSS the same way — the
knobs CI or a perf PR can use as gates.  Wall times are noisy; pair this
with ``python -m repro run <scenario> --repeat 3``, which records
median-of-K times, before trusting small deltas.  Peak RSS is a process
high-water mark: within one artifact later rows can only grow, so compare
like rows across artifacts, not rows within one.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.scenarios.schema import validate_artifact  # noqa: E402


def load_artifact(path: Path) -> tuple[dict, list[str]]:
    try:
        artifact = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return {}, [f"{path}: cannot load artifact: {exc}"]
    problems = [f"{path}: {p}" for p in validate_artifact(artifact)]
    return artifact, problems


def rows_by_key(artifact: dict) -> dict[tuple[str, str], dict]:
    return {
        (row["instance"], row["algorithm"]): row
        for row in artifact.get("rows", [])
        if isinstance(row, dict)
    }


def peak_rss(row: dict) -> int | None:
    metrics = row.get("metrics")
    value = metrics.get("peak_rss_bytes") if isinstance(metrics, dict) else None
    return value if isinstance(value, int) and not isinstance(value, bool) else None


def fmt_mib(value: int | None) -> str:
    return f"{value / 2**20:.0f}M" if value is not None else "-"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json artifacts (seconds per row, speedups)."
    )
    parser.add_argument("old", type=Path, help="baseline artifact")
    parser.add_argument("new", type=Path, help="candidate artifact")
    parser.add_argument(
        "--max-regression", type=float, default=None, metavar="PCT",
        help="fail if any matched row is more than PCT%% slower",
    )
    parser.add_argument(
        "--max-rss-regression", type=float, default=None, metavar="PCT",
        help="fail if any matched row's peak_rss_bytes grew more than PCT%%",
    )
    args = parser.parse_args(argv)

    old_artifact, problems = load_artifact(args.old)
    new_artifact, new_problems = load_artifact(args.new)
    problems += new_problems
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 2

    old_rows = rows_by_key(old_artifact)
    new_rows = rows_by_key(new_artifact)
    matched = [key for key in old_rows if key in new_rows]
    only_old = [key for key in old_rows if key not in new_rows]
    only_new = [key for key in new_rows if key not in old_rows]

    print(f"{args.old.name} ({old_artifact['name']}) -> "
          f"{args.new.name} ({new_artifact['name']}): "
          f"{len(matched)} matched row(s)")
    width = max((len(f"{i} / {a}") for i, a in matched), default=10)
    print(f"\n{'row'.ljust(width)}  {'old s':>9}  {'new s':>9}  "
          f"{'delta s':>9}  speedup  {'old rss':>8}  {'new rss':>8}")
    speedups: list[float] = []
    regressions: list[str] = []
    rss_pairs: list[tuple[int, int]] = []
    for key in matched:
        old_s = float(old_rows[key]["seconds"])
        new_s = float(new_rows[key]["seconds"])
        old_rss = peak_rss(old_rows[key])
        new_rss = peak_rss(new_rows[key])
        if old_s == new_s == 0:
            continue  # synthetic rows (derived speedups etc.) carry no timing
        speedup = old_s / new_s if new_s > 0 else float("inf")
        speedups.append(speedup)
        name = f"{key[0]} / {key[1]}"
        print(f"{name.ljust(width)}  {old_s:>9.4f}  {new_s:>9.4f}  "
              f"{new_s - old_s:>+9.4f}  {speedup:>6.2f}x  "
              f"{fmt_mib(old_rss):>8}  {fmt_mib(new_rss):>8}")
        if (
            args.max_regression is not None
            and old_s > 0
            and (new_s - old_s) / old_s * 100 > args.max_regression
        ):
            regressions.append(
                f"{name}: {old_s:.4f}s -> {new_s:.4f}s "
                f"(+{(new_s - old_s) / old_s * 100:.1f}%)"
            )
        if old_rss is not None and new_rss is not None:
            rss_pairs.append((old_rss, new_rss))
            if (
                args.max_rss_regression is not None
                and old_rss > 0
                and (new_rss - old_rss) / old_rss * 100 > args.max_rss_regression
            ):
                regressions.append(
                    f"{name}: peak RSS {fmt_mib(old_rss)} -> {fmt_mib(new_rss)} "
                    f"(+{(new_rss - old_rss) / old_rss * 100:.1f}%)"
                )

    if speedups:
        total_old = sum(float(old_rows[k]["seconds"]) for k in matched)
        total_new = sum(float(new_rows[k]["seconds"]) for k in matched)
        print(f"\nmedian speedup: {statistics.median(speedups):.2f}x   "
              f"total: {total_old:.3f}s -> {total_new:.3f}s "
              f"({total_old / total_new if total_new > 0 else float('inf'):.2f}x)")
    if rss_pairs:
        old_peak = max(o for o, _ in rss_pairs)
        new_peak = max(n for _, n in rss_pairs)
        print(f"peak RSS over matched rows: {fmt_mib(old_peak)} -> "
              f"{fmt_mib(new_peak)} "
              f"({(new_peak - old_peak) / old_peak * 100:+.1f}%)"
              if old_peak > 0 else
              f"peak RSS over matched rows: {fmt_mib(old_peak)} -> {fmt_mib(new_peak)}")
    for key in only_old:
        print(f"only in {args.old.name}: {key[0]} / {key[1]}")
    for key in only_new:
        print(f"only in {args.new.name}: {key[0]} / {key[1]}")

    if regressions:
        print(f"\n{len(regressions)} row(s) regressed beyond the gate:",
              file=sys.stderr)
        for regression in regressions:
            print(f"  {regression}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
