"""Parity suite for the fused round kernels (:mod:`repro.local.kernels`).

Three layers of pinning:

* kernel unit tests — every kernel against a naive per-slot loop;
* engine parity properties (hypothesis over generator seeds) — the fused
  batched engine, the unfused three-pass reference (``reference_exchange``),
  the flat per-node engine and the frozen seed engine must agree on
  outputs, rounds, total and per-round message counts for Cole–Vishkin,
  the greedy baseline and the wave 2-coloring;
* native-build gating — ``REPRO_NATIVE`` semantics, the missing-numba
  warning, and numpy-vs-numba bit parity when numba is importable.
"""

from __future__ import annotations

import importlib.util
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.distributed.cole_vishkin import (
    BatchColeVishkinForestColoring,
    ColeVishkinForestColoring,
    cole_vishkin_iterations,
)
from repro.distributed.greedy_baseline import (
    BatchGreedyLocalMaximaAlgorithm,
    GreedyLocalMaximaAlgorithm,
)
from repro.distributed.wave import BatchWaveTwoColoring, WaveTwoColoring
from repro.graphs.generators import classic, sparse
from repro.graphs.graph import Graph
from repro.local import Network, ReferenceSimulator, SynchronousSimulator
from repro.local import kernels
from repro.verify import assert_simulation_parity

HAS_NUMBA = importlib.util.find_spec("numba") is not None

seeds = st.integers(min_value=0, max_value=2**20)


# ---------------------------------------------------------------------------
# kernel unit tests
# ---------------------------------------------------------------------------


def _random_fabric(seed: int, n: int = 30):
    rng = random.Random(seed)
    graph = sparse.union_of_random_forests(n, 2, seed=seed).freeze()
    order = graph.vertices()
    rng.shuffle(order)
    return Network(graph, identifier_order=order).fabric


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_gather_matches_loop(seed):
    fabric = _random_fabric(seed)
    endpoints = fabric.endpoints_np
    values = np.arange(100, 100 + fabric.offsets_np[-1], dtype=np.int64)
    node_values = np.arange(len(fabric.offsets_np) - 1, dtype=np.int64) * 7
    expected = np.array([node_values[e] for e in endpoints], dtype=np.int64)
    assert (kernels.gather(node_values, endpoints) == expected).all()
    out = np.empty(endpoints.shape[0], dtype=np.int64)
    got = kernels.gather(node_values, endpoints, out=out)
    assert got is out and (got == expected).all()
    # deliver_slots is a gather by reverse_slot
    reverse = fabric.reverse_np
    assert (
        kernels.deliver_slots(values, reverse)
        == np.array([values[r] for r in reverse])
    ).all()


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_deliver_masked_matches_loop(seed):
    fabric = _random_fabric(seed)
    reverse = fabric.reverse_np
    m = reverse.shape[0]
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 1000, size=m, dtype=np.int64)
    mask = rng.integers(0, 2, size=m).astype(bool)
    inbox, delivered, messages = kernels.deliver_masked(
        values, mask, reverse,
        inbox_out=np.empty(m, dtype=np.int64),
        delivered_out=np.empty(m, dtype=np.bool_),
    )
    assert messages == int(mask.sum())
    for k in range(m):
        assert inbox[k] == values[reverse[k]]
        assert delivered[k] == mask[reverse[k]]


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_compact_segments_matches_slices(seed):
    fabric = _random_fabric(seed)
    offsets = fabric.offsets_np
    n = offsets.shape[0] - 1
    rng = np.random.default_rng(seed)
    active = np.flatnonzero(rng.integers(0, 2, size=n))
    slots, compact_offsets = kernels.compact_segments(offsets, active)
    expected = np.concatenate(
        [np.arange(offsets[i], offsets[i + 1]) for i in active]
    ) if active.size else np.empty(0, dtype=np.int64)
    assert (slots == expected).all()
    for j, i in enumerate(active):
        lo, hi = compact_offsets[j], compact_offsets[j + 1]
        assert hi - lo == offsets[i + 1] - offsets[i]
        assert (slots[lo:hi] == np.arange(offsets[i], offsets[i + 1])).all()


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_fusion_identity(seed):
    """The load-bearing identity: sources[reverse_slot] == endpoints."""
    fabric = _random_fabric(seed)
    sources = fabric.sources_np()
    assert (sources[fabric.reverse_np] == fabric.endpoints_np).all()
    node_values = np.arange(len(fabric.offsets_np) - 1, dtype=np.int64) * 3 + 1
    assert (
        kernels.reference_broadcast(node_values, sources, fabric.reverse_np)
        == kernels.gather(node_values, fabric.endpoints_np)
    ).all()


# ---------------------------------------------------------------------------
# cross-engine parity: fused == unfused reference == per-node == seed
# ---------------------------------------------------------------------------


def _random_tree(n: int, seed: int) -> Graph:
    rng = random.Random(seed)
    graph = Graph()
    graph.add_vertex(0)
    for i in range(1, n):
        graph.add_edge(rng.randrange(i), i)
    return graph


def _four_engines(net, per_node, batched, inputs, max_rounds):
    """Run all four data planes on one instance; return the results."""
    fused = SynchronousSimulator(net).run(
        batched, inputs=inputs, max_rounds=max_rounds, strict=True
    )
    unfused = SynchronousSimulator(net).run(
        batched, inputs=inputs, max_rounds=max_rounds, strict=True,
        reference_exchange=True,
    )
    flat = SynchronousSimulator(net).run(
        per_node, inputs=inputs, max_rounds=max_rounds, strict=True
    )
    seed_result = ReferenceSimulator(net).run(
        per_node, inputs=inputs, max_rounds=max_rounds, strict=True
    )
    return fused, unfused, flat, seed_result


def _assert_all_match(fused, unfused, flat, seed_result):
    assert_simulation_parity(fused, unfused, labels=("fused", "reference"))
    assert_simulation_parity(fused, flat, labels=("fused", "per-node"))
    assert_simulation_parity(fused, seed_result, labels=("fused", "seed"))
    assert fused.per_round_messages == seed_result.per_round_messages


@given(seeds, st.integers(min_value=2, max_value=40))
@settings(max_examples=20, deadline=None)
def test_cole_vishkin_engine_parity(seed, n):
    graph = _random_tree(n, seed).freeze()
    net = Network(graph)
    parent = {0: None}
    for v in graph.vertices():
        for u in graph.neighbors(v):
            if u > v:
                parent[u] = net.identifier_of[v]
    inputs = {v: parent.get(v) for v in graph.vertices()}
    max_rounds = 10 * cole_vishkin_iterations(n) + 30
    _assert_all_match(*_four_engines(
        net, ColeVishkinForestColoring, BatchColeVishkinForestColoring,
        inputs, max_rounds,
    ))


@given(seeds, st.integers(min_value=2, max_value=40))
@settings(max_examples=20, deadline=None)
def test_greedy_engine_parity(seed, n):
    graph = sparse.union_of_random_forests(n, 2, seed=seed).freeze()
    order = graph.vertices()
    random.Random(seed).shuffle(order)
    net = Network(graph, identifier_order=order)
    delta = max(1, graph.max_degree())
    inputs = {v: delta for v in graph.vertices()}
    _assert_all_match(*_four_engines(
        net, GreedyLocalMaximaAlgorithm, BatchGreedyLocalMaximaAlgorithm,
        inputs, n + 2,
    ))


@given(seeds, st.integers(min_value=1, max_value=40))
@settings(max_examples=20, deadline=None)
def test_wave_engine_parity(seed, n):
    graph = _random_tree(n, seed).freeze()
    net = Network(graph)
    inputs = {v: v == 0 for v in graph.vertices()}
    fused, unfused, flat, seed_result = _four_engines(
        net, WaveTwoColoring, BatchWaveTwoColoring, inputs, n + 2
    )
    _assert_all_match(fused, unfused, flat, seed_result)
    # 2-coloring by distance parity: every tree edge is bichromatic
    outputs = fused.outputs
    for v in graph.vertices():
        for u in graph.neighbors(v):
            assert outputs[u] != outputs[v]


def test_wave_path_lower_bound_signature():
    """On a rooted path the wave spends exactly n rounds, 2(n-1) messages."""
    for n in (1, 2, 5, 37):
        graph = classic.path(n).freeze()
        inputs = {v: v == 0 for v in graph.vertices()}
        result = SynchronousSimulator(Network(graph)).run(
            BatchWaveTwoColoring, inputs=inputs, max_rounds=n + 2, strict=True
        )
        assert result.rounds == n
        assert result.messages_sent == 2 * (n - 1)


def test_active_mode_charges_frontier_messages():
    """The active exchange mode charges len(slots), not num_slots."""
    n = 12
    graph = classic.path(n).freeze()
    inputs = {v: v == 0 for v in graph.vertices()}
    result = SynchronousSimulator(Network(graph)).run(
        BatchWaveTwoColoring, inputs=inputs, max_rounds=n + 2, strict=True
    )
    # round 1: the root broadcasts on its single port; interior rounds: the
    # frontier node broadcasts on both ports; the far endpoint speaks last
    assert result.per_round_messages[0] == 1
    assert result.per_round_messages[-1] == 1
    assert all(m == 2 for m in result.per_round_messages[1:-1])


# ---------------------------------------------------------------------------
# native-build gating
# ---------------------------------------------------------------------------


@pytest.fixture
def native_cache_reset():
    kernels._reset_native_cache()
    yield
    kernels._reset_native_cache()


def test_repro_native_off_pins_numpy(monkeypatch, native_cache_reset):
    monkeypatch.setenv("REPRO_NATIVE", "0")
    assert kernels.native_mode() == "off"
    assert not kernels.native_active()
    # "off" must not even probe numba
    assert not kernels.native_available()


@pytest.mark.skipif(HAS_NUMBA, reason="numba is installed")
def test_repro_native_require_warns_without_numba(monkeypatch, native_cache_reset):
    monkeypatch.setenv("REPRO_NATIVE", "1")
    assert kernels.native_mode() == "require"
    with pytest.warns(RuntimeWarning, match="REPRO_NATIVE=1 but numba"):
        assert not kernels.native_active()
    # the warning fires once per process, not once per round
    with warnings_none():
        assert not kernels.native_active()


class warnings_none:
    """Context asserting no warnings are emitted inside the block."""

    def __enter__(self):
        import warnings as _w

        self._catcher = _w.catch_warnings(record=True)
        self._records = self._catcher.__enter__()
        import warnings as _w2

        _w2.simplefilter("always")
        return self._records

    def __exit__(self, *exc):
        self._catcher.__exit__(*exc)
        assert not self._records, [str(r.message) for r in self._records]
        return False


@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
def test_native_kernels_bit_identical(monkeypatch, native_cache_reset):
    monkeypatch.setenv("REPRO_NATIVE", "1")
    assert kernels.native_active()
    fabric = _random_fabric(7, n=60)
    endpoints = fabric.endpoints_np
    reverse = fabric.reverse_np
    m = endpoints.shape[0]
    node_values = np.arange(len(fabric.offsets_np) - 1, dtype=np.int64) * 11
    rng = np.random.default_rng(7)
    values = rng.integers(0, 1000, size=m, dtype=np.int64)
    mask = rng.integers(0, 2, size=m).astype(bool)
    native_gather = kernels.gather(
        node_values, endpoints, out=np.empty(m, dtype=np.int64)
    ).copy()
    native_inbox, native_delivered, native_count = kernels.deliver_masked(
        values, mask, reverse,
        inbox_out=np.empty(m, dtype=np.int64),
        delivered_out=np.empty(m, dtype=np.bool_),
    )
    native_inbox = native_inbox.copy()
    native_delivered = native_delivered.copy()

    kernels._reset_native_cache()
    monkeypatch.setenv("REPRO_NATIVE", "0")
    assert not kernels.native_active()
    assert (kernels.gather(node_values, endpoints) == native_gather).all()
    inbox, delivered, count = kernels.deliver_masked(values, mask, reverse)
    assert (inbox == native_inbox).all()
    assert (delivered == native_delivered).all()
    assert count == native_count


@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
def test_native_engine_bit_identical(monkeypatch, native_cache_reset):
    """Full engine runs agree bit-for-bit between numba and numpy kernels."""
    graph = sparse.union_of_random_forests(50, 2, seed=3).freeze()
    net = Network(graph)
    delta = max(1, graph.max_degree())
    inputs = {v: delta for v in graph.vertices()}

    monkeypatch.setenv("REPRO_NATIVE", "1")
    native = SynchronousSimulator(net).run(
        BatchGreedyLocalMaximaAlgorithm, inputs=inputs,
        max_rounds=52, strict=True,
    )
    kernels._reset_native_cache()
    monkeypatch.setenv("REPRO_NATIVE", "0")
    plain = SynchronousSimulator(net).run(
        BatchGreedyLocalMaximaAlgorithm, inputs=inputs,
        max_rounds=52, strict=True,
    )
    assert_simulation_parity(native, plain, labels=("numba", "numpy"))


# ---------------------------------------------------------------------------
# the Barenboim–Elkin backend downgrade is loud (satellite of the flat flip)
# ---------------------------------------------------------------------------


def test_barenboim_elkin_wide_palette_warns_and_strict_raises():
    from repro.distributed.barenboim_elkin import barenboim_elkin_coloring

    graph = sparse.union_of_random_forests(40, 2, seed=5)
    # floor((2+1)*21)+1 = 64 >= 62: too wide for the int64 slot kernel
    with pytest.warns(RuntimeWarning, match="falling back to backend='dict'"):
        result = barenboim_elkin_coloring(graph, arboricity=21)
    assert result.palette_size == 64
    with pytest.raises(ValueError, match="backend='flat' cannot run"):
        barenboim_elkin_coloring(
            graph, arboricity=21, strict_backend=True
        )
    # inside the kernel limit the flat path runs silently
    import warnings as _w

    with _w.catch_warnings():
        _w.simplefilter("error")
        barenboim_elkin_coloring(graph, arboricity=2)
